//! Offline differential fuzzer (no proptest needed): generates random
//! OCCAM programs with the same shapes as tests/occam_differential.rs and
//! checks the compiled pipeline against the reference interpreter.
//!
//! Build: see scripts/offline-build.sh; run with a case count argument.

use queue_machine::occam::ast::{BinOp, Decl, Expr, Lvalue, Process, Replicator};
use queue_machine::occam::interp::Interp;
use queue_machine::occam::sema::SymKind;
use queue_machine::occam::{codegen, sema, Options};
use queue_machine::sim::config::SystemConfig;
use queue_machine::sim::system::System;

const ARRAY_LEN: i32 = 8;

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[derive(Clone)]
struct Scope {
    scalars: Vec<&'static str>,
    arrays: Vec<&'static str>,
}

fn expr(rng: &mut Rng, scope: &Scope, depth: u32) -> Expr {
    let leaf = |rng: &mut Rng| {
        if rng.below(2) == 0 {
            Expr::Const(rng.below(19) as i32 - 9)
        } else {
            Expr::Var((*rng.pick(&scope.scalars)).into())
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.below(10) {
        0..=2 => leaf(rng),
        3 => Expr::Neg(Box::new(expr(rng, scope, depth - 1))),
        4 => Expr::Not(Box::new(expr(rng, scope, depth - 1))),
        5..=7 => {
            let ops = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Mod,
                BinOp::And,
                BinOp::Or,
                BinOp::Shl,
                BinOp::Shr,
                BinOp::Lt,
                BinOp::Ge,
                BinOp::Eq,
            ];
            let op = *rng.pick(&ops);
            Expr::bin(op, expr(rng, scope, depth - 1), expr(rng, scope, depth - 1))
        }
        _ => {
            let a = *rng.pick(&scope.arrays);
            let i = expr(rng, scope, depth - 1);
            Expr::Index(a.into(), Box::new(Expr::bin(BinOp::And, i, Expr::Const(ARRAY_LEN - 1))))
        }
    }
}

fn stmt(rng: &mut Rng, scope: &Scope, depth: u32, allow_output: bool) -> Process {
    let leaf = |rng: &mut Rng| {
        let n = if allow_output { 3 } else { 2 };
        match rng.below(n) {
            0 => Process::Assign(Lvalue::Var((*rng.pick(&scope.scalars)).into()), expr(rng, scope, 2)),
            1 => {
                let a = *rng.pick(&scope.arrays);
                let i = expr(rng, scope, 2);
                Process::Assign(
                    Lvalue::Index(
                        a.into(),
                        Box::new(Expr::bin(BinOp::And, i, Expr::Const(ARRAY_LEN - 1))),
                    ),
                    expr(rng, scope, 2),
                )
            }
            _ => Process::Output("screen".into(), expr(rng, scope, 2)),
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.below(9) {
        0..=2 => leaf(rng),
        3 | 4 => {
            let n = 1 + rng.below(3);
            Process::Seq(None, (0..n).map(|_| stmt(rng, scope, depth - 1, allow_output)).collect())
        }
        5 | 6 => Process::If(vec![
            (expr(rng, scope, 2), stmt(rng, scope, depth - 1, allow_output)),
            (Expr::Const(-1), stmt(rng, scope, depth - 1, allow_output)),
        ]),
        _ => {
            let start = rng.below(3) as i32;
            let count = rng.below(5) as i32;
            let tag = rng.below(1000);
            let n = 1 + rng.below(2);
            Process::Seq(
                Some(Replicator {
                    var: format!("r{depth}_{tag}"),
                    start: Expr::Const(start),
                    count: Expr::Const(count),
                }),
                (0..n).map(|_| stmt(rng, scope, depth - 1, allow_output)).collect(),
            )
        }
    }
}

fn program(rng: &mut Rng) -> Process {
    let half0 = Scope { scalars: vec!["v0"], arrays: vec!["a0"] };
    let half1 = Scope { scalars: vec!["v1"], arrays: vec!["a1"] };
    let full = Scope { scalars: vec!["v0", "v1", "v2"], arrays: vec!["a0", "a1"] };
    let before = stmt(rng, &full, 2, true);
    let b0 = stmt(rng, &half0, 2, false);
    let b1 = stmt(rng, &half1, 2, false);
    let after = stmt(rng, &full, 2, true);
    let dump = |name: &str| Process::Output("screen".into(), Expr::Var(name.into()));
    Process::Scope(
        vec![
            Decl::Scalar("v0".into()),
            Decl::Scalar("v1".into()),
            Decl::Scalar("v2".into()),
            Decl::Array("a0".into(), ARRAY_LEN as u32),
            Decl::Array("a1".into(), ARRAY_LEN as u32),
        ],
        vec![],
        Box::new(Process::Seq(
            None,
            vec![before, Process::Par(None, vec![b0, b1]), after, dump("v0"), dump("v1"), dump("v2")],
        )),
    )
}

fn run_differential(program: &Process, pes: usize, opts: &Options) -> Result<(), String> {
    let resolved = sema::analyse(program).map_err(|e| format!("sema: {e}"))?;
    let oracle = Interp::new(&resolved, vec![]).run().map_err(|e| format!("oracle: {e}"))?;
    let asm = codegen::generate(&resolved, opts).map_err(|e| format!("codegen: {e}"))?;
    let object =
        queue_machine::isa::asm::assemble(&asm).map_err(|e| format!("assemble: {e}\n{asm}"))?;
    let mut sys = System::new(SystemConfig::with_pes(pes));
    sys.load_object(&object);
    sys.spawn_main(object.symbol("main").expect("main"));
    let out = sys.run().map_err(|e| format!("simulation failed: {e}\n{asm}"))?;
    if out.output != oracle.output {
        return Err(format!(
            "screen diverged (pes={pes}): sim {:?} vs oracle {:?}\n{asm}",
            out.output, oracle.output
        ));
    }
    for (name, kind) in &resolved.syms {
        if let SymKind::Array { addr, len } = kind {
            let expected = &oracle.arrays[name];
            for i in 0..*len {
                let got = sys.memory.peek_global(addr + 4 * i);
                if got != expected[i as usize] {
                    return Err(format!(
                        "{name}[{i}] diverged (pes={pes}): sim {got} vs oracle {}\n{asm}",
                        expected[i as usize]
                    ));
                }
            }
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `--hash N` mode: print an FNV hash of the generated assembly for N
    // programs — run the binary several times to detect nondeterministic
    // codegen (HashMap iteration order leaking into emitted code).
    if args.get(1).map(String::as_str) == Some("--hash") {
        let cases: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50);
        let mut acc: u64 = 1469598103934665603;
        for i in 0..cases {
            let mut rng = Rng(0x1234_5678_9ABC_DEF0u64.wrapping_add(i * 0x9E37) | 1);
            let p = program(&mut rng);
            let resolved = sema::analyse(&p).expect("well-scoped");
            for opts in [
                Options::default(),
                Options {
                    live_value_analysis: false,
                    input_sequencing: false,
                    priority_scheduling: false,
                    loop_unrolling: false,
                },
            ] {
                let asm = codegen::generate(&resolved, &opts).expect("compiles");
                for b in asm.bytes() {
                    acc ^= u64::from(b);
                    acc = acc.wrapping_mul(1099511628211);
                }
            }
        }
        println!("{acc:016x}");
        return;
    }
    let cases: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let seed0: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0x9E37_79B9_7F4A_7C15);
    let mut failures = 0;
    for i in 0..cases {
        let mut rng = Rng(seed0.wrapping_add(i.wrapping_mul(0x2545_F491_4F6C_DD1D)) | 1);
        let p = program(&mut rng);
        let no_opts = Options {
            live_value_analysis: false,
            input_sequencing: false,
            priority_scheduling: false,
            loop_unrolling: false,
        };
        for (pes, opts) in [(2usize, Options::default()), (3usize, no_opts)] {
            if let Err(e) = run_differential(&p, pes, &opts) {
                failures += 1;
                let opts_tag = if opts.live_value_analysis { "default" } else { "no-opts" };
                println!("=== case {i} ({opts_tag}) FAILED ===");
                println!("{p:?}");
                let first = e.lines().take(3).collect::<Vec<_>>().join("\n");
                println!("{first}");
                println!();
                if failures >= 10 {
                    println!("stopping after {failures} failures");
                    std::process::exit(1);
                }
            }
        }
        if (i + 1) % 200 == 0 {
            eprintln!("{} cases done, {failures} failures", i + 1);
        }
    }
    println!("done: {cases} cases, {failures} failures");
    std::process::exit(i32::from(failures > 0));
}
