#!/usr/bin/env bash
# Re-measure the performance baseline and rewrite BENCH_baseline.json
# (schema qm-bench-perf/v1, consumed by the perf_gate binary and the CI
# perf-gate job — see EXPERIMENTS.md).
#
# Run this when a perf_gate failure is *intended* — a known,
# deliberate change in simulator cost per cycle, or a change in any
# gated point's deterministic cycle count — and commit the refreshed
# file together with the change that caused it. The gated figures are
# calibration-relative (dimensionless), so a baseline refreshed on any
# reasonably quiet machine gates everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."
./scripts/offline-build.sh >/dev/null
./target/offline/perf_gate --refresh >/dev/null
echo "BENCH_baseline.json refreshed:"
cat BENCH_baseline.json
