#!/usr/bin/env bash
# Offline build + unit-test driver for environments without a crates.io
# mirror. The workspace's library crates have no external dependencies
# (proptest/rand/criterion are dev-only), so everything below compiles
# with bare rustc. Integration tests that need proptest are skipped;
# the deterministic ones under tests/ are built with --test.
#
# Usage: scripts/offline-build.sh [--run-tests|--clippy|--doc|--faults|--snapshot|--verify|--perf|--shards|--serve|--xlate]
#
# --clippy rebuilds everything with clippy-driver (a drop-in rustc) and
# -Dwarnings, mirroring the CI `cargo clippy -- -D warnings` gate without
# needing the registry.
#
# --doc runs bare rustdoc with -Dwarnings over every library crate,
# mirroring the CI `RUSTDOCFLAGS="-D warnings" cargo doc --no-deps` gate.
#
# --faults builds everything and then runs the fault-injection smoke
# sweep (`fault_sweep --smoke`), mirroring the CI fault-smoke job.
#
# --snapshot builds everything and then runs the snapshot round-trip and
# divergence-bisection smoke check (`replay --smoke`), mirroring the CI
# snapshot-smoke job.
#
# --verify builds everything and then statically verifies every bundled
# workload (`verify_workloads --strict`), mirroring the CI
# verify-workloads job.
#
# --shards builds everything and then runs the sharded-execution smoke
# check (`shard_smoke`): a workload grid at shard counts {1,2,4} whose
# metrics must be bit-identical to the serial scheduler, mirroring the
# CI sharded-smoke job (contract in docs/DETERMINISM.md).
#
# --perf builds everything and then runs the continuous performance
# gate (`perf_gate`) against the committed BENCH_baseline.json,
# mirroring the CI perf-gate job. Refresh the baseline with
# scripts/refresh-perf-baseline.sh when a slowdown is intended.
#
# --serve builds everything and then runs the end-to-end service smoke
# check (`serve_smoke`): HTTP fidelity against a direct WorkloadRun,
# compile-cache hits, and bit-identical snapshot preemption, mirroring
# the CI serve-smoke job.
#
# --xlate builds everything and then runs the translated-backend smoke
# check: the fixed xlate equivalence grid (interp vs translated
# bit-identity on outcomes, digests and snapshot bytes, plus
# cross-backend snapshot hand-offs) and a `replay --backend translated`
# divergence bisection, mirroring the CI xlate-smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."
OUT=target/offline
DRIVER=rustc
FLAGS="-O -Adead_code"
if [[ "${1:-}" == "--clippy" ]]; then
    OUT=target/offline-clippy
    DRIVER=clippy-driver
    FLAGS="-Adead_code -Dwarnings"
fi
mkdir -p "$OUT"
RUSTC="$DRIVER --edition 2021 $FLAGS"

L="-L $OUT"

if [[ "${1:-}" == "--doc" ]]; then
    # Build rlibs with plain rustc first so rustdoc can resolve externs.
    "$0" >/dev/null
    EXTERNS="--extern qm_core=$OUT/libqm_core.rlib --extern qm_isa=$OUT/libqm_isa.rlib --extern qm_verify=$OUT/libqm_verify.rlib --extern qm_sim=$OUT/libqm_sim.rlib --extern qm_occam=$OUT/libqm_occam.rlib --extern qm_workloads=$OUT/libqm_workloads.rlib --extern qm_serve=$OUT/libqm_serve.rlib"
    for lib in crates/qm-core/src/lib.rs crates/qm-isa/src/lib.rs \
               crates/qm-verify/src/lib.rs \
               crates/qm-sim/src/lib.rs crates/qm-occam/src/lib.rs \
               crates/qm-workloads/src/lib.rs crates/qm-serve/src/lib.rs \
               crates/qm-bench/src/lib.rs \
               src/lib.rs; do
        name=$(echo "$lib" | sed -E 's#crates/(qm-[a-z]+)/src/lib.rs#\1#;s#^src/lib.rs#queue_machine#;s/-/_/')
        rustdoc --edition 2021 -Dwarnings --crate-name "$name" $L $EXTERNS \
            --out-dir target/offline-doc "$lib"
    done
    echo "offline doc OK"
    exit 0
fi
$RUSTC --crate-type lib --crate-name qm_core crates/qm-core/src/lib.rs -o "$OUT/libqm_core.rlib"
$RUSTC --crate-type lib --crate-name qm_isa $L --extern qm_core="$OUT/libqm_core.rlib" crates/qm-isa/src/lib.rs -o "$OUT/libqm_isa.rlib"
$RUSTC --crate-type lib --crate-name qm_occam $L --extern qm_core="$OUT/libqm_core.rlib" --extern qm_isa="$OUT/libqm_isa.rlib" crates/qm-occam/src/lib.rs -o "$OUT/libqm_occam.rlib"
$RUSTC --crate-type lib --crate-name qm_verify $L --extern qm_core="$OUT/libqm_core.rlib" --extern qm_isa="$OUT/libqm_isa.rlib" crates/qm-verify/src/lib.rs -o "$OUT/libqm_verify.rlib"
$RUSTC --crate-type lib --crate-name qm_sim $L --extern qm_core="$OUT/libqm_core.rlib" --extern qm_isa="$OUT/libqm_isa.rlib" --extern qm_verify="$OUT/libqm_verify.rlib" crates/qm-sim/src/lib.rs -o "$OUT/libqm_sim.rlib"
$RUSTC --crate-type lib --crate-name qm_workloads $L --extern qm_core="$OUT/libqm_core.rlib" --extern qm_isa="$OUT/libqm_isa.rlib" --extern qm_sim="$OUT/libqm_sim.rlib" --extern qm_occam="$OUT/libqm_occam.rlib" crates/qm-workloads/src/lib.rs -o "$OUT/libqm_workloads.rlib"
$RUSTC --crate-type lib --crate-name qm_serve $L --extern qm_core="$OUT/libqm_core.rlib" --extern qm_isa="$OUT/libqm_isa.rlib" --extern qm_verify="$OUT/libqm_verify.rlib" --extern qm_sim="$OUT/libqm_sim.rlib" --extern qm_occam="$OUT/libqm_occam.rlib" --extern qm_workloads="$OUT/libqm_workloads.rlib" crates/qm-serve/src/lib.rs -o "$OUT/libqm_serve.rlib"
EXTERNS="--extern qm_core=$OUT/libqm_core.rlib --extern qm_isa=$OUT/libqm_isa.rlib --extern qm_verify=$OUT/libqm_verify.rlib --extern qm_sim=$OUT/libqm_sim.rlib --extern qm_occam=$OUT/libqm_occam.rlib --extern qm_workloads=$OUT/libqm_workloads.rlib --extern qm_serve=$OUT/libqm_serve.rlib"
$RUSTC --crate-type lib --crate-name queue_machine $L $EXTERNS src/lib.rs -o "$OUT/libqueue_machine.rlib"
$RUSTC --crate-type lib --crate-name qm_bench $L $EXTERNS crates/qm-bench/src/lib.rs -o "$OUT/libqm_bench.rlib"
$RUSTC --crate-name qm_verify_cli $L $EXTERNS crates/qm-verify/src/bin/qm-verify.rs -o "$OUT/qm-verify"
for bin in crates/qm-bench/src/bin/*.rs; do
    name=$(basename "$bin" .rs)
    $RUSTC --crate-name "$name" $L $EXTERNS --extern qm_bench="$OUT/libqm_bench.rlib" "$bin" -o "$OUT/$name"
done
$RUSTC --crate-name qm_serve_cli $L $EXTERNS crates/qm-serve/src/bin/qm-serve.rs -o "$OUT/qm-serve"
$RUSTC --crate-name serve_smoke $L $EXTERNS crates/qm-serve/src/bin/serve_smoke.rs -o "$OUT/serve_smoke"
[[ "$DRIVER" == rustc ]] && echo "offline build OK"

if [[ "${1:-}" == "--run-tests" || "${1:-}" == "--clippy" ]]; then
    ALLEXT="$EXTERNS --extern qm_bench=$OUT/libqm_bench.rlib --extern queue_machine=$OUT/libqueue_machine.rlib"
    for lib in crates/qm-core/src/lib.rs crates/qm-isa/src/lib.rs \
               crates/qm-verify/src/lib.rs \
               crates/qm-sim/src/lib.rs crates/qm-occam/src/lib.rs \
               crates/qm-workloads/src/lib.rs crates/qm-serve/src/lib.rs \
               crates/qm-bench/src/lib.rs; do
        name=$(echo "$lib" | sed -E 's#crates/(qm-[a-z]+)/src/lib.rs#\1#;s/-/_/')
        $RUSTC --test --crate-name "${name}_unit" $L $ALLEXT "$lib" -o "$OUT/${name}_unit"
        [[ "$DRIVER" == rustc ]] && "$OUT/${name}_unit" -q
    done
    # Integration tests that don't need proptest.
    for t in tests/end_to_end.rs tests/thesis_results.rs tests/deadlock_report.rs \
             crates/qm-occam/tests/compile_run.rs crates/qm-occam/tests/codegen_behavior.rs \
             crates/qm-occam/tests/deterministic_shapes.rs \
             crates/qm-isa/tests/von_neumann.rs crates/qm-workloads/tests/runner_paths.rs \
             crates/qm-workloads/tests/xlate_fixed.rs \
             crates/qm-sim/tests/trace_events.rs \
             crates/qm-sim/tests/fault_recovery.rs \
             crates/qm-sim/tests/snapshot_roundtrip.rs \
             crates/qm-sim/tests/snapshot_resume.rs \
             crates/qm-sim/tests/shard_edges.rs \
             crates/qm-sim/tests/determinism_doc.rs \
             crates/qm-sim/tests/steady_state_alloc.rs \
             crates/qm-sim/tests/send_sync.rs \
             crates/qm-serve/tests/serve_http.rs \
             crates/qm-bench/tests/api_golden.rs \
             crates/qm-bench/tests/sweep_determinism.rs \
             crates/qm-bench/tests/perf_ratio.rs \
             crates/qm-bench/tests/fault_sweep_determinism.rs \
             crates/qm-bench/tests/resumable_sweep.rs \
             crates/qm-verify/tests/negative_fixtures.rs \
             crates/qm-workloads/tests/verify_strict.rs \
             crates/qm-isa/tests/isa_doc.rs; do
        [[ -f "$t" ]] || continue
        name=$(basename "$t" .rs)
        $RUSTC --test --crate-name "itest_$name" $L $ALLEXT "$t" -o "$OUT/itest_$name"
        [[ "$DRIVER" == rustc ]] && "$OUT/itest_$name" -q
    done
    if [[ "$DRIVER" == rustc ]]; then
        echo "offline tests OK"
    else
        echo "offline clippy OK"
    fi
fi

if [[ "${1:-}" == "--faults" ]]; then
    "$OUT/fault_sweep" --smoke
    echo "offline fault smoke OK"
fi

if [[ "${1:-}" == "--snapshot" ]]; then
    "$OUT/replay" --smoke
    echo "offline snapshot smoke OK"
fi

if [[ "${1:-}" == "--verify" ]]; then
    "$OUT/verify_workloads" --strict
    echo "offline verify OK"
fi

if [[ "${1:-}" == "--shards" ]]; then
    "$OUT/shard_smoke"
    echo "offline shard smoke OK"
fi

if [[ "${1:-}" == "--perf" ]]; then
    "$OUT/perf_gate"
    echo "offline perf gate OK"
fi

if [[ "${1:-}" == "--serve" ]]; then
    "$OUT/serve_smoke"
    echo "offline serve smoke OK"
fi

if [[ "${1:-}" == "--xlate" ]]; then
    ALLEXT="$EXTERNS --extern qm_bench=$OUT/libqm_bench.rlib --extern queue_machine=$OUT/libqueue_machine.rlib"
    $RUSTC --test --crate-name itest_xlate_fixed $L $ALLEXT \
        crates/qm-workloads/tests/xlate_fixed.rs -o "$OUT/itest_xlate_fixed"
    "$OUT/itest_xlate_fixed" -q
    "$OUT/replay" --backend translated >/dev/null
    echo "offline xlate smoke OK"
fi
