//! Reproduce a Chapter 6 speed-up curve: the 8×8 matrix multiplication
//! benchmark on 1–8 processing elements (Fig. 6.8).
//!
//! ```sh
//! cargo run --release --example speedup_curve
//! ```

use queue_machine::occam::Options;
use queue_machine::workloads::{matmul, speedup_curve};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = matmul(8);
    println!("workload: {}\n", w.name);
    println!("{:>4}  {:>10}  {:>16}", "PEs", "cycles", "throughput ratio");
    for p in speedup_curve(&w, &[1, 2, 4, 8], &Options::default())? {
        println!("{:>4}  {:>10}  {:>16.2}", p.pes, p.cycles, p.throughput_ratio);
    }
    Ok(())
}
