//! Quickstart: evaluate an expression on a queue machine and a stack
//! machine, then on the indexed queue machine via a data-flow graph.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use queue_machine::core::dfg::Dag;
use queue_machine::core::expr::ParseTree;
use queue_machine::core::level_order::level_order_sequence;
use queue_machine::core::{simple, stack};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The thesis's running example: f <- a*b + (c-d)/e  (Table 3.1).
    let tree = ParseTree::parse_infix("a*b + (c-d)/e")?;
    let env = |name: &str| match name {
        "a" => 2,
        "b" => 3,
        "c" => 20,
        "d" => 6,
        "e" => 7,
        _ => 0,
    };

    println!("expression: {tree}");
    println!("\nstack machine program (post-order):");
    for op in tree.post_order() {
        println!("  {op}");
    }
    println!("\nqueue machine program (level-order traversal):");
    for op in level_order_sequence(&tree) {
        println!("  {op}");
    }
    let q = simple::evaluate_tree(&tree, &env)?;
    let s = stack::evaluate_tree(&tree, &env)?;
    println!("\nqueue result = {q}, stack result = {s}");
    assert_eq!(q, s);

    // Common subexpressions turn the tree into a DAG, which the *indexed*
    // queue machine executes directly (Table 3.4).
    let shared = ParseTree::parse_infix("a/(a+b) + (a+b)*c")?;
    let dag = Dag::from_parse_tree(&shared);
    println!(
        "\nd <- a/(a+b) + (a+b)*c: {} tree nodes shrink to {} DAG nodes",
        shared.node_count(),
        dag.len()
    );
    let program = dag.to_indexed_program(&dag.topo_order())?;
    println!("indexed queue machine program:");
    print!("{program}");
    let env2 = |n: &str| match n {
        "a" => 12,
        "b" => 4,
        "c" => 3,
        _ => 0,
    };
    println!("result = {}", program.evaluate(&env2)?);
    Ok(())
}
