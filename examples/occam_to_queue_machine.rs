//! Compile an OCCAM program to queue machine code and run it on the
//! multiprocessor simulator.
//!
//! ```sh
//! cargo run --example occam_to_queue_machine
//! ```

use queue_machine::occam::{compile, Options};
use queue_machine::sim::config::SystemConfig;
use queue_machine::sim::system::System;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The thesis's Fig. 4.6 iteration example, with output to the host.
    let src = "\
var sum, result:
seq
  sum := 0
  seq k = [1 for 10]
    sum := sum + k
  result := sum
  screen ! result
";
    println!("OCCAM source:\n{src}");
    let compiled = compile(src, &Options::default())?;
    println!(
        "compiled into {} context(s), {} words of code\n",
        compiled.context_count,
        compiled.object.words().len()
    );
    println!("queue machine assembly:\n{}", compiled.asm);

    for pes in [1, 2] {
        let mut sys = System::new(SystemConfig::with_pes(pes));
        sys.load_object(&compiled.object);
        sys.spawn_main(compiled.object.symbol("main").expect("main context"));
        let out = sys.run()?;
        println!(
            "{pes} PE(s): output {:?} in {} cycles, {} contexts, {} channel transfers",
            out.output, out.elapsed_cycles, out.contexts_created, out.channel_transfers
        );
        assert_eq!(out.output, vec![55]);
    }
    Ok(())
}
