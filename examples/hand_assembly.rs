//! Program the queue machine PE directly in assembly: a parent context
//! `rfork`s a child, streams it three numbers over the spliced channel,
//! and reads back their sum — the dynamic data-flow graph splicing
//! protocol by hand.
//!
//! ```sh
//! cargo run --example hand_assembly
//! ```

use queue_machine::sim::config::SystemConfig;
use queue_machine::sim::system::System;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "
main:   trap #0,#adder :r0,r1   ; rfork adder -> r0 = its in chan, r1 = out chan
        send r0,#10             ; stream three operands
        send r0,#14
        send r0,#18
        recv r1,#0 :r2          ; their sum comes back
        send+3 #0,r2            ; report to the host (channel 0)
        trap #2,#0              ; end context

adder:  recv r17,#0 :r0         ; r17 = my in channel
        recv r17,#0 :r1
        plus+2 r0,r1 :r0 >
        recv r17,#0 :r1
        plus+2 r0,r1 :r0
        send+1 r18,r0           ; r18 = my out channel
        trap #2,#0
";
    println!("assembly:\n{src}");
    let mut sys = System::with_assembly(SystemConfig::with_pes(2), src)?;
    let out = sys.run()?;
    println!(
        "output = {:?} in {} cycles across {} contexts",
        out.output, out.elapsed_cycles, out.contexts_created
    );
    assert_eq!(out.output, vec![42]);
    Ok(())
}
