//! Cross-crate integration: OCCAM programs compiled with every
//! optimization mix, executed on multiprocessors of every size, checked
//! against bit-exact references.

use queue_machine::occam::Options;
use queue_machine::sim::config::{Placement, SystemConfig};
use queue_machine::sim::system::System;
use queue_machine::workloads::{cholesky, congruence, fft, matmul, Workload, WorkloadRun};

fn all_option_mixes() -> Vec<Options> {
    let mut out = Vec::new();
    for live in [false, true] {
        for seq in [false, true] {
            for prio in [false, true] {
                for unroll in [false, true] {
                    out.push(Options {
                        live_value_analysis: live,
                        input_sequencing: seq,
                        priority_scheduling: prio,
                        loop_unrolling: unroll,
                    });
                }
            }
        }
    }
    out
}

fn check_everywhere(w: &Workload) {
    for pes in [1, 3, 8] {
        let r = WorkloadRun::with_pes(pes)
            .run(w)
            .unwrap_or_else(|e| panic!("{} on {pes} PEs: {e}", w.name));
        assert!(r.correct, "{} on {pes} PEs: {:?}", w.name, r.mismatches);
    }
}

#[test]
fn matmul_runs_everywhere() {
    check_everywhere(&matmul(5));
}

#[test]
fn fft_runs_everywhere() {
    check_everywhere(&fft(8));
}

#[test]
fn cholesky_runs_everywhere() {
    check_everywhere(&cholesky(5));
}

#[test]
fn congruence_runs_everywhere() {
    check_everywhere(&congruence(5));
}

#[test]
fn matmul_correct_under_every_option_mix() {
    let w = matmul(4);
    for opts in all_option_mixes() {
        let r = WorkloadRun::with_pes(2)
            .options(opts)
            .run(&w)
            .unwrap_or_else(|e| panic!("{opts:?}: {e}"));
        assert!(r.correct, "{opts:?}: {:?}", r.mismatches);
    }
}

#[test]
fn fft_correct_under_every_option_mix() {
    let w = fft(8);
    for opts in all_option_mixes() {
        let r = WorkloadRun::with_pes(2)
            .options(opts)
            .run(&w)
            .unwrap_or_else(|e| panic!("{opts:?}: {e}"));
        assert!(r.correct, "{opts:?}: {:?}", r.mismatches);
    }
}

#[test]
fn placement_policies_agree_on_results() {
    let w = congruence(4);
    for placement in [Placement::RoundRobin, Placement::LeastLoaded, Placement::Local] {
        let cfg = SystemConfig { placement, ..SystemConfig::with_pes(4) };
        let r = WorkloadRun::new().config(cfg).run(&w).unwrap();
        assert!(r.correct, "{placement:?}: {:?}", r.mismatches);
    }
}

#[test]
fn rendezvous_channels_still_work() {
    // Capacity 0 = the §4.2 pure rendezvous semantics.
    let w = matmul(3);
    let cfg = SystemConfig { channel_capacity: 0, ..SystemConfig::with_pes(2) };
    let r = WorkloadRun::new().config(cfg).run(&w).unwrap();
    assert!(r.correct, "{:?}", r.mismatches);
}

#[test]
fn single_partition_bus_works() {
    let w = matmul(3);
    let cfg = SystemConfig { partitions: 1, ..SystemConfig::with_pes(4) };
    let r = WorkloadRun::new().config(cfg).run(&w).unwrap();
    assert!(r.correct, "{:?}", r.mismatches);
}

#[test]
fn deterministic_across_runs() {
    let w = fft(8);
    let a = WorkloadRun::with_pes(4).run(&w).unwrap();
    let b = WorkloadRun::with_pes(4).run(&w).unwrap();
    assert_eq!(a.outcome.elapsed_cycles, b.outcome.elapsed_cycles);
    assert_eq!(a.outcome.output, b.outcome.output);
}

#[test]
fn assembly_protocol_interoperates_with_compiled_code() {
    // Hand-written assembly child spliced by a hand-written parent, run
    // through the same kernel the compiler targets.
    let src = "
main:   trap #0,#child :r0,r1
        send r0,#6
        send r0,#7
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
child:  recv r17,#0 :r0
        recv r17,#0 :r1
        mul+2 r0,r1 :r0
        send+1 r18,r0
        trap #2,#0
";
    let mut sys = System::with_assembly(SystemConfig::with_pes(2), src).unwrap();
    let out = sys.run().unwrap();
    assert_eq!(out.output, vec![42]);
}

#[test]
fn workload_statistics_are_sane() {
    let w = matmul(4);
    let r = WorkloadRun::with_pes(4).run(&w).unwrap();
    let o = &r.outcome;
    assert!(o.instructions > 0);
    assert!(o.contexts_created >= 5, "par over 4 rows forks at least 4 children");
    assert!(o.peak_live_contexts >= 2);
    assert!(o.channel_transfers > 0);
    assert_eq!(o.instructions, o.pes.iter().map(|p| p.stats.instructions).sum::<u64>());
    assert!(o.elapsed_cycles >= o.pes.iter().map(|p| p.busy_cycles).max().unwrap());
}
