//! Differential fuzzing: random OCCAM programs run through the reference
//! interpreter (oracle) and through the full pipeline (compile → assemble
//! → multiprocessor simulation); screen output and final array contents
//! must match exactly.
//!
//! Generated programs keep `par` branches independent (disjoint
//! reads/writes, no host output inside `par`) so the sequential oracle is
//! a valid model of the concurrent execution.

use proptest::prelude::*;

use queue_machine::occam::ast::{BinOp, Decl, Expr, Lvalue, Process, Replicator};
use queue_machine::occam::interp::Interp;
use queue_machine::occam::sema::SymKind;
use queue_machine::occam::{codegen, sema, Options};
use queue_machine::sim::config::SystemConfig;
use queue_machine::sim::system::System;

const ARRAY_LEN: i32 = 8;

/// Variables a generated fragment may read/write.
#[derive(Debug, Clone)]
struct Scope {
    scalars: Vec<String>,
    arrays: Vec<String>,
}

fn expr_strategy(scope: Scope, depth: u32) -> BoxedStrategy<Expr> {
    let scalars = scope.scalars.clone();
    let arrays = scope.arrays.clone();
    let leaf = prop_oneof![
        (-9i32..10).prop_map(Expr::Const),
        proptest::sample::select(scalars).prop_map(Expr::Var),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = expr_strategy(scope, depth - 1);
    let masked_index = |e: Expr| Expr::bin(BinOp::And, e, Expr::Const(ARRAY_LEN - 1));
    prop_oneof![
        3 => leaf,
        1 => inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
        1 => inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
        3 => (
            proptest::sample::select(vec![
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Mod,
                BinOp::And,
                BinOp::Or,
                BinOp::Shl,
                BinOp::Shr,
                BinOp::Lt,
                BinOp::Ge,
                BinOp::Eq,
            ]),
            inner.clone(),
            inner.clone(),
        )
            .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
        2 => (proptest::sample::select(arrays), inner)
            .prop_map(move |(a, i)| Expr::Index(a, Box::new(masked_index(i)))),
    ]
    .boxed()
}

fn stmt_strategy(scope: Scope, depth: u32, allow_output: bool) -> BoxedStrategy<Process> {
    let e = || expr_strategy(scope.clone(), 2);
    let assign_scalar = (proptest::sample::select(scope.scalars.clone()), e())
        .prop_map(|(v, x)| Process::Assign(Lvalue::Var(v), x));
    let assign_array =
        (proptest::sample::select(scope.arrays.clone()), e(), e()).prop_map(|(a, i, x)| {
            let idx = Expr::bin(BinOp::And, i, Expr::Const(ARRAY_LEN - 1));
            Process::Assign(Lvalue::Index(a, Box::new(idx)), x)
        });
    let output = e().prop_map(|x| Process::Output("screen".into(), x));
    let mut leaf = vec![assign_scalar.boxed(), assign_array.boxed()];
    if allow_output {
        leaf.push(output.boxed());
    }
    let leaf = proptest::strategy::Union::new(leaf);
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = || stmt_strategy(scope.clone(), depth - 1, allow_output);
    let seq = proptest::collection::vec(inner(), 1..4).prop_map(|ps| Process::Seq(None, ps));
    let ifp = (e(), inner(), inner())
        .prop_map(|(c, a, b)| Process::If(vec![(c, a), (Expr::Const(-1), b)]));
    let repl = (0i32..3, 0i32..5, proptest::collection::vec(inner(), 1..3), 0u32..1000).prop_map(
        move |(start, count, body, tag)| {
            Process::Seq(
                Some(Replicator {
                    var: format!("r{depth}_{tag}"),
                    start: Expr::Const(start),
                    count: Expr::Const(count),
                }),
                body,
            )
        },
    );
    prop_oneof![3 => leaf, 2 => seq, 2 => ifp, 2 => repl].boxed()
}

/// A whole program: independent `par` halves plus sequential code around
/// them, ending with scalar dumps to `screen`.
fn program_strategy() -> impl Strategy<Value = Process> {
    let half0 = Scope { scalars: vec!["v0".into()], arrays: vec!["a0".into()] };
    let half1 = Scope { scalars: vec!["v1".into()], arrays: vec!["a1".into()] };
    let full = Scope {
        scalars: vec!["v0".into(), "v1".into(), "v2".into()],
        arrays: vec!["a0".into(), "a1".into()],
    };
    (
        stmt_strategy(full.clone(), 2, true),
        stmt_strategy(half0, 2, false),
        stmt_strategy(half1, 2, false),
        stmt_strategy(full, 2, true),
    )
        .prop_map(|(before, b0, b1, after)| {
            let dump = |name: &str| Process::Output("screen".into(), Expr::Var(name.into()));
            Process::Scope(
                vec![
                    Decl::Scalar("v0".into()),
                    Decl::Scalar("v1".into()),
                    Decl::Scalar("v2".into()),
                    Decl::Array("a0".into(), ARRAY_LEN as u32),
                    Decl::Array("a1".into(), ARRAY_LEN as u32),
                ],
                vec![],
                Box::new(Process::Seq(
                    None,
                    vec![
                        before,
                        Process::Par(None, vec![b0, b1]),
                        after,
                        dump("v0"),
                        dump("v1"),
                        dump("v2"),
                    ],
                )),
            )
        })
}

fn run_differential(program: &Process, pes: usize, opts: &Options) {
    let resolved = sema::analyse(program).expect("generated programs are well-scoped");
    // Oracle.
    let oracle = Interp::new(&resolved, vec![]).run().expect("oracle runs");
    // Pipeline.
    let asm = codegen::generate(&resolved, opts).expect("compiles");
    let object = queue_machine::isa::asm::assemble(&asm).expect("assembles");
    let mut sys = System::new(SystemConfig::with_pes(pes));
    sys.load_object(&object);
    sys.spawn_main(object.symbol("main").expect("main"));
    let out = sys.run().unwrap_or_else(|e| panic!("simulation failed: {e}\n{asm}"));
    assert_eq!(out.output, oracle.output, "screen output diverged\n{asm}");
    // Final array states.
    for (name, kind) in &resolved.syms {
        if let SymKind::Array { addr, len } = kind {
            let expected = &oracle.arrays[name];
            for i in 0..*len {
                let got = sys.memory.peek_global(addr + 4 * i);
                assert_eq!(got, expected[i as usize], "{name}[{i}] diverged (pes={pes})\n{asm}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn compiled_programs_match_the_oracle(program in program_strategy()) {
        run_differential(&program, 2, &Options::default());
    }

    #[test]
    fn compiled_programs_match_without_optimizations(program in program_strategy()) {
        let opts = Options {
            live_value_analysis: false,
            input_sequencing: false,
            priority_scheduling: false,
            loop_unrolling: false,
        };
        run_differential(&program, 3, &opts);
    }
}

#[test]
fn differential_smoke() {
    // One fixed program through the same path (fast signal when the
    // harness itself breaks).
    let program = queue_machine::occam::parse::parse(
        "\
var v0, v1, v2, s:
var a0[8], a1[8]:
seq
  seq i = [0 for 8]
    a0[i] := i * i
  par
    v0 := a0[3] + 1
    v1 := 9
  v2 := v0 * v1
  screen ! v2
",
    )
    .unwrap();
    run_differential(&program, 2, &Options::default());
}
