//! Deterministic reproductions of every checked-in proptest regression
//! seed from `tests/occam_differential.proptest-regressions`, so the
//! shrunk failure cases stay covered even when proptest is unavailable
//! (and so a plain `cargo test seed_` pinpoints them immediately).
//!
//! Each program below is the literal `shrinks to` value of one `cc` line,
//! transcribed with the AST constructors. They are run through the same
//! differential harness as the proptest suite: reference interpreter
//! (oracle) vs. compile → assemble → multiprocessor simulation.

use queue_machine::occam::ast::{BinOp, Decl, Expr, Lvalue, Process, Replicator};
use queue_machine::occam::interp::Interp;
use queue_machine::occam::sema::SymKind;
use queue_machine::occam::{codegen, sema, Options};
use queue_machine::sim::config::SystemConfig;
use queue_machine::sim::system::System;

fn c(v: i32) -> Expr {
    Expr::Const(v)
}
fn var(n: &str) -> Expr {
    Expr::Var(n.into())
}
fn idx(a: &str, e: Expr) -> Expr {
    Expr::Index(a.into(), Box::new(e))
}
fn neg(e: Expr) -> Expr {
    Expr::Neg(Box::new(e))
}
fn not(e: Expr) -> Expr {
    Expr::Not(Box::new(e))
}
fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    Expr::bin(op, a, b)
}
fn assign_var(n: &str, e: Expr) -> Process {
    Process::Assign(Lvalue::Var(n.into()), e)
}
fn assign_idx(a: &str, i: Expr, e: Expr) -> Process {
    Process::Assign(Lvalue::Index(a.into(), Box::new(i)), e)
}
fn out(e: Expr) -> Process {
    Process::Output("screen".into(), e)
}
fn seq(ps: Vec<Process>) -> Process {
    Process::Seq(None, ps)
}
fn seqr(v: &str, start: i32, count: i32, ps: Vec<Process>) -> Process {
    Process::Seq(Some(Replicator { var: v.into(), start: c(start), count: c(count) }), ps)
}
fn par(ps: Vec<Process>) -> Process {
    Process::Par(None, ps)
}
fn ifp(branches: Vec<(Expr, Process)>) -> Process {
    Process::If(branches)
}

/// The fixed declaration frame every generated program shares, plus the
/// trailing scalar dumps.
fn program(body: Vec<Process>) -> Process {
    let mut ps = body;
    ps.push(out(var("v0")));
    ps.push(out(var("v1")));
    ps.push(out(var("v2")));
    Process::Scope(
        vec![
            Decl::Scalar("v0".into()),
            Decl::Scalar("v1".into()),
            Decl::Scalar("v2".into()),
            Decl::Array("a0".into(), 8),
            Decl::Array("a1".into(), 8),
        ],
        vec![],
        Box::new(Process::Seq(None, ps)),
    )
}

/// The same differential check the proptest harness performs.
fn run_differential(program: &Process, pes: usize, opts: &Options) {
    let resolved = sema::analyse(program).expect("well-scoped");
    let oracle = Interp::new(&resolved, vec![]).run().expect("oracle runs");
    let asm = codegen::generate(&resolved, opts).expect("compiles");
    let object = queue_machine::isa::asm::assemble(&asm).expect("assembles");
    let mut sys = System::new(SystemConfig::with_pes(pes));
    sys.load_object(&object);
    sys.spawn_main(object.symbol("main").expect("main"));
    let out = sys.run().unwrap_or_else(|e| panic!("simulation failed: {e}\n{asm}"));
    assert_eq!(out.output, oracle.output, "screen output diverged (pes={pes})\n{asm}");
    for (name, kind) in &resolved.syms {
        if let SymKind::Array { addr, len } = kind {
            let expected = &oracle.arrays[name];
            for i in 0..*len {
                let got = sys.memory.peek_global(addr + 4 * i);
                assert_eq!(got, expected[i as usize], "{name}[{i}] diverged (pes={pes})\n{asm}");
            }
        }
    }
}

fn check(body: Vec<Process>) {
    let p = program(body);
    run_differential(&p, 2, &Options::default());
    let no_opts = Options {
        live_value_analysis: false,
        input_sequencing: false,
        priority_scheduling: false,
        loop_unrolling: false,
    };
    run_differential(&p, 3, &no_opts);
}

/// Seed 65a8ebac: nested `if` with an all-false guard list inside `par`.
#[test]
fn seed_nested_if_false_guards_in_par() {
    check(vec![
        assign_var("v0", c(0)),
        par(vec![
            ifp(vec![
                (
                    c(0),
                    ifp(vec![
                        (c(0), assign_var("v0", c(0))),
                        (
                            c(-1),
                            assign_idx(
                                "a0",
                                bin(BinOp::And, c(-1), c(7)),
                                idx("a0", bin(BinOp::And, var("v0"), c(7))),
                            ),
                        ),
                    ]),
                ),
                (
                    c(-1),
                    ifp(vec![
                        (
                            not(not(c(5))),
                            assign_idx(
                                "a0",
                                bin(BinOp::And, c(9), c(7)),
                                neg(idx("a0", bin(BinOp::And, var("v0"), c(7)))),
                            ),
                        ),
                        (
                            c(-1),
                            assign_idx(
                                "a0",
                                bin(BinOp::And, c(-6), c(7)),
                                neg(bin(BinOp::Shr, c(-7), var("v0"))),
                            ),
                        ),
                    ]),
                ),
            ]),
            assign_var("v1", neg(c(0))),
        ]),
        assign_idx(
            "a1",
            bin(BinOp::And, neg(bin(BinOp::Shr, c(7), c(2))), c(7)),
            not(idx("a0", bin(BinOp::And, c(-4), c(7)))),
        ),
    ]);
}

/// Seed fe8d3dd6: `if` chain inside `par` where a guard reads the other
/// half's scalar.
#[test]
fn seed_if_chain_guard_reads_in_par() {
    check(vec![
        assign_var("v1", c(0)),
        par(vec![
            assign_var("v0", idx("a0", bin(BinOp::And, bin(BinOp::Mul, c(0), c(0)), c(7)))),
            ifp(vec![
                (
                    c(0),
                    assign_idx(
                        "a1",
                        bin(BinOp::And, c(0), c(7)),
                        neg(bin(BinOp::Add, var("v1"), var("v1"))),
                    ),
                ),
                (
                    c(-1),
                    ifp(vec![
                        (
                            var("v1"),
                            assign_idx(
                                "a1",
                                bin(BinOp::And, not(not(c(4))), c(7)),
                                idx("a1", bin(BinOp::And, bin(BinOp::And, c(-8), var("v1")), c(7))),
                            ),
                        ),
                        (
                            c(-1),
                            assign_idx(
                                "a1",
                                bin(BinOp::And, idx("a1", bin(BinOp::And, var("v1"), c(7))), c(7)),
                                bin(BinOp::Mod, c(-1), c(-9)),
                            ),
                        ),
                    ]),
                ),
            ]),
        ]),
        assign_idx("a0", bin(BinOp::And, idx("a0", bin(BinOp::And, var("v1"), c(7))), c(7)), c(-6)),
    ]);
}

/// Seed 6abec181: one-shot replicator before a `par` whose second branch
/// writes an array the tail then reads.
#[test]
fn seed_one_shot_replicator_then_par() {
    check(vec![
        seqr("r2_0", 0, 1, vec![seq(vec![out(c(0)), assign_var("v2", neg(c(1)))])]),
        par(vec![
            assign_var("v0", c(0)),
            seq(vec![assign_idx(
                "a1",
                bin(BinOp::And, var("v1"), c(7)),
                bin(BinOp::Add, bin(BinOp::Ge, c(5), c(-2)), c(-6)),
            )]),
        ]),
        seq(vec![
            out(bin(
                BinOp::Add,
                idx("a1", bin(BinOp::And, c(8), c(7))),
                bin(BinOp::Sub, var("v0"), c(8)),
            )),
            assign_idx(
                "a0",
                bin(BinOp::And, bin(BinOp::Div, c(1), bin(BinOp::And, c(5), c(-6))), c(7)),
                not(not(var("v1"))),
            ),
            ifp(vec![
                (
                    idx("a1", bin(BinOp::And, var("v1"), c(7))),
                    out(neg(idx("a0", bin(BinOp::And, c(-5), c(7))))),
                ),
                (c(-1), assign_var("v2", idx("a0", bin(BinOp::And, neg(c(-3)), c(7))))),
            ]),
        ]),
    ]);
}

/// Seed b8f48b65: replicators before, inside and after a `par` with a
/// conditional replicated branch.
#[test]
fn seed_replicators_around_conditional_par() {
    check(vec![
        seq(vec![
            ifp(vec![
                (c(0), assign_var("v0", c(0))),
                (c(-1), assign_var("v0", neg(idx("a0", bin(BinOp::And, c(0), c(7)))))),
            ]),
            seqr(
                "r1_0",
                0,
                3,
                vec![
                    assign_var("v0", idx("a0", bin(BinOp::And, c(0), c(7)))),
                    assign_idx(
                        "a0",
                        bin(
                            BinOp::And,
                            idx(
                                "a0",
                                bin(BinOp::And, idx("a0", bin(BinOp::And, c(0), c(7))), c(7)),
                            ),
                            c(7),
                        ),
                        neg(var("v0")),
                    ),
                ],
            ),
        ]),
        par(vec![
            assign_idx("a0", bin(BinOp::And, c(0), c(7)), neg(not(var("v0")))),
            ifp(vec![
                (
                    bin(
                        BinOp::Lt,
                        idx("a1", bin(BinOp::And, var("v1"), c(7))),
                        bin(BinOp::Sub, var("v1"), var("v1")),
                    ),
                    seqr(
                        "r1_135",
                        2,
                        4,
                        vec![assign_var(
                            "v1",
                            bin(
                                BinOp::Div,
                                bin(BinOp::Add, var("v1"), var("v1")),
                                bin(BinOp::Shr, c(-8), var("v1")),
                            ),
                        )],
                    ),
                ),
                (c(-1), assign_var("v1", c(-8))),
            ]),
        ]),
        seq(vec![
            seqr(
                "r1_333",
                0,
                4,
                vec![
                    assign_var("v1", bin(BinOp::Add, c(7), not(c(-7)))),
                    assign_idx(
                        "a1",
                        bin(
                            BinOp::And,
                            bin(BinOp::Or, idx("a0", bin(BinOp::And, var("v0"), c(7))), c(-3)),
                            c(7),
                        ),
                        var("v2"),
                    ),
                ],
            ),
            assign_idx(
                "a0",
                bin(
                    BinOp::And,
                    bin(
                        BinOp::Or,
                        bin(BinOp::Ge, var("v0"), var("v1")),
                        idx("a1", bin(BinOp::And, var("v1"), c(7))),
                    ),
                    c(7),
                ),
                idx("a1", bin(BinOp::And, var("v1"), c(7))),
            ),
            assign_idx(
                "a1",
                bin(
                    BinOp::And,
                    idx("a1", bin(BinOp::And, idx("a1", bin(BinOp::And, c(1), c(7))), c(7))),
                    c(7),
                ),
                idx("a0", bin(BinOp::And, var("v0"), c(7))),
            ),
        ]),
    ]);
}

/// Seed 0f653a94: zero-count replicators nested inside a `par` branch.
#[test]
fn seed_zero_count_replicators_in_par() {
    check(vec![
        assign_var("v0", c(0)),
        par(vec![
            assign_var("v0", c(0)),
            seqr("r2_0", 0, 0, vec![seqr("r1_0", 0, 0, vec![assign_var("v1", c(0))])]),
        ]),
        ifp(vec![
            (c(0), assign_var("v0", c(0))),
            (
                c(-1),
                assign_idx(
                    "a0",
                    bin(BinOp::And, bin(BinOp::Add, c(0), c(0)), c(7)),
                    bin(BinOp::Or, var("v0"), c(-6)),
                ),
            ),
        ]),
    ]);
}

/// Seed c385c57d: `par` writing an array read before and after it.
#[test]
fn seed_par_array_write_ordering() {
    check(vec![
        assign_var("v2", bin(BinOp::Or, idx("a1", bin(BinOp::And, var("v0"), c(7))), c(0))),
        par(vec![
            assign_var("v0", c(0)),
            assign_idx("a1", bin(BinOp::And, bin(BinOp::Mul, c(0), c(0)), c(7)), neg(c(-1))),
        ]),
        seq(vec![assign_idx("a0", bin(BinOp::And, c(0), c(7)), c(0))]),
    ]);
}
