//! Property-based tests over the core execution models: for *any*
//! expression, the queue machine, the stack machine, the indexed queue
//! machine (via a DAG) and direct recursion all agree; encodings round
//! trip; schedules respect the partial order.

use proptest::prelude::*;

use queue_machine::core::dfg::Dag;
use queue_machine::core::expr::{Op, ParseTree};
use queue_machine::core::{simple, stack};
use queue_machine::isa::{Instruction, Opcode, SrcMode};

/// Strategy: arbitrary expression parse trees (division avoided so every
/// tree evaluates without faults; values stay small to dodge overflow
/// asymmetries in intermediate prints).
fn arb_tree() -> impl Strategy<Value = ParseTree> {
    let leaf = prop_oneof![
        (0u8..6).prop_map(|i| ParseTree::var(&format!("v{i}"))),
        (-20i32..20).prop_map(ParseTree::lit),
    ];
    leaf.prop_recursive(6, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| ParseTree::unary(Op::Neg, t)),
            inner.clone().prop_map(|t| ParseTree::unary(Op::Not, t)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ParseTree::binary(Op::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ParseTree::binary(Op::Sub, a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| ParseTree::binary(Op::Mul, a, b)),
        ]
    })
}

fn env(name: &str) -> i32 {
    match name {
        "v0" => 3,
        "v1" => -7,
        "v2" => 11,
        "v3" => 0,
        "v4" => 25,
        _ => -1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Thesis §3.3: the level-order queue program computes every
    /// expression a stack machine can.
    #[test]
    fn queue_stack_and_direct_agree(tree in arb_tree()) {
        let direct = tree.evaluate(&env).unwrap();
        prop_assert_eq!(simple::evaluate_tree(&tree, &env).unwrap(), direct);
        prop_assert_eq!(stack::evaluate_tree(&tree, &env).unwrap(), direct);
    }

    /// Thesis §3.6: the DAG-generated indexed program agrees too, for
    /// the canonical linearisation and for the priority schedule.
    #[test]
    fn indexed_queue_machine_agrees(tree in arb_tree()) {
        let direct = tree.evaluate(&env).unwrap();
        let dag = Dag::from_parse_tree(&tree);
        prop_assert_eq!(dag.evaluate(&env).unwrap(), direct);
        let p = dag.to_indexed_program(&dag.topo_order()).unwrap();
        prop_assert_eq!(p.evaluate(&env).unwrap(), direct);
        // A second, distinct linearisation (plain FIFO schedule).
        let order = dag.schedule_by(|_| 0);
        let p2 = dag.to_indexed_program(&order).unwrap();
        prop_assert_eq!(p2.evaluate(&env).unwrap(), direct);
    }

    /// The DAG never grows past the tree, and sharing only helps.
    #[test]
    fn dag_no_larger_than_tree(tree in arb_tree()) {
        let dag = Dag::from_parse_tree(&tree);
        prop_assert!(dag.len() <= tree.node_count());
    }

    /// Infix printing round-trips through the parser.
    #[test]
    fn display_parse_round_trip(tree in arb_tree()) {
        let printed = tree.to_string();
        let reparsed = ParseTree::parse_infix(&printed).unwrap();
        prop_assert_eq!(
            reparsed.evaluate(&env).unwrap(),
            tree.evaluate(&env).unwrap()
        );
    }

    /// Every queue program's depth equals the number of live values.
    #[test]
    fn queue_depth_bounded_by_leaves(tree in arb_tree()) {
        let ops = queue_machine::core::level_order_sequence(&tree);
        let depth = simple::max_queue_depth(&ops, &env).unwrap();
        let leaves = ops.iter().filter(|o| o.arity().operands() == 0).count();
        prop_assert!(depth <= leaves.max(1));
    }
}

/// Strategy: arbitrary (valid) basic instructions.
fn arb_src() -> impl Strategy<Value = SrcMode> {
    prop_oneof![
        (0u8..16).prop_map(SrcMode::Window),
        (16u8..32).prop_map(SrcMode::Global),
        (-15i8..=15).prop_map(SrcMode::Imm),
        any::<i32>().prop_map(SrcMode::ImmWord),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let opcodes: Vec<Opcode> =
        Opcode::ALL.iter().map(|&(op, _)| op).filter(|op| !op.is_dup()).collect();
    prop_oneof![
        (
            proptest::sample::select(opcodes),
            arb_src(),
            arb_src(),
            0u8..32,
            0u8..32,
            0u8..8,
            any::<bool>(),
        )
            .prop_map(|(op, src1, src2, dst1, dst2, qp_inc, cont)| {
                Instruction::Basic { op, src1, src2, dst1, dst2, qp_inc, cont }
            }),
        // dup1 ignores its second offset at execution time but still
        // encodes it, so the model round-trips for arbitrary off2 — keep
        // generating the full range (the checked-in regression seed is a
        // dup1 with off2 = 1).
        (any::<bool>(), any::<u8>(), any::<u8>(), any::<bool>())
            .prop_map(|(two, off1, off2, cont)| Instruction::Dup { two, off1, off2, cont }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every instruction encodes and decodes to itself.
    #[test]
    fn instruction_encode_decode_round_trip(instr in arb_instruction()) {
        let words = instr.encode().unwrap();
        let (decoded, used) = Instruction::decode(&words).unwrap();
        prop_assert_eq!(used, words.len());
        prop_assert_eq!(decoded, instr);
    }

    /// Disassembled text re-assembles to the identical words.
    #[test]
    fn disassembly_round_trips_through_assembler(instrs in proptest::collection::vec(arb_instruction(), 1..20)) {
        let mut words = Vec::new();
        for i in &instrs {
            words.extend(i.encode().unwrap());
        }
        let text = queue_machine::isa::asm::disassemble(&words).join("\n");
        let obj = queue_machine::isa::asm::assemble(&text).unwrap();
        prop_assert_eq!(obj.words(), &words[..]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Fig. 4.20 scheduler emits a valid linearisation for any
    /// priority assignment.
    #[test]
    fn schedules_respect_partial_order(tree in arb_tree(), seed in any::<u64>()) {
        let dag = Dag::from_parse_tree(&tree);
        let order = dag.schedule_by(|op| {
            // An arbitrary but deterministic pseudo-priority.
            let h = format!("{op}{seed}").len() as i32;
            h % 7
        });
        prop_assert!(dag.respects_partial_order(&order));
        let p = dag.to_indexed_program(&order).unwrap();
        prop_assert_eq!(p.evaluate(&env).unwrap(), tree.evaluate(&env).unwrap());
    }
}
