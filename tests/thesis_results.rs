//! The headline reproduction claims of the thesis, as assertions.
//! `EXPERIMENTS.md` records the measured values these tests pin down.

use queue_machine::core::enumerate::tree_count;
use queue_machine::core::pipeline::speedup_row;
use queue_machine::occam::Options;
use queue_machine::sim::amdahl::{amdahl, modified_amdahl};
use queue_machine::workloads::{cholesky, congruence, fft, matmul, speedup_curve};

/// Table 3.2 shape: ties through 4 nodes, then monotone growth, queue
/// ahead by several percent at 11 nodes, case 2 ≥ case 1.
#[test]
fn table_3_2_shape() {
    let mut prev_c1 = 0.0;
    for n in 1..=11 {
        let row = speedup_row(n, 2);
        assert!(row.case1 >= 1.0 - 1e-12, "queue never loses (n={n})");
        assert!(row.case2 >= 1.0 - 1e-12);
        assert!(row.case1 >= prev_c1 - 1e-9, "monotone in tree size (n={n})");
        if n <= 4 {
            assert!((row.case1 - 1.0).abs() < 1e-9, "small trees tie (n={n})");
        }
        prev_c1 = row.case1;
    }
    let big = speedup_row(11, 2);
    assert!(big.case1 > 1.05, "≈6-11% at 11 nodes, got {}", big.case1);
    assert!(big.case2 >= big.case1 - 1e-9, "overlapped fetch favours the queue");
}

/// Table 3.3 shape: case 1 speed-up grows with pipeline depth; case 2
/// peaks at two/three stages and then declines (the thesis's observation
/// that case 2 is unrealistic for deep pipelines).
#[test]
fn table_3_3_shape() {
    let rows: Vec<_> = (1..=6).map(|k| speedup_row(11, k)).collect();
    for w in rows.windows(2) {
        assert!(w[1].case1 >= w[0].case1 - 1e-9, "case 1 grows with stages");
    }
    let peak = rows
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.case2.total_cmp(&b.1.case2))
        .map(|(i, _)| i + 1)
        .unwrap();
    assert!((2..=3).contains(&peak), "case 2 peaks at a shallow pipeline, got {peak} stages");
    assert!(rows[5].case2 < rows[1].case2, "case 2 declines for deep pipelines");
}

/// Motzkin tree counts (our enumeration; the thesis's differs from n=6,
/// see EXPERIMENTS.md).
#[test]
fn tree_counts_are_motzkin() {
    assert_eq!(
        (1..=11).map(tree_count).collect::<Vec<_>>(),
        vec![1, 1, 2, 4, 9, 21, 51, 127, 323, 835, 2188]
    );
}

/// Figs 6.6–6.7: the analytic fits at 8 processors.
#[test]
fn amdahl_fits() {
    assert!((amdahl(0.93, 8) - 5.369).abs() < 0.01);
    assert!((modified_amdahl(0.63, 0.3, 8) - 6.517).abs() < 0.01);
}

/// Figs 6.8–6.12 shape: every workload verifies bit-exact and speeds up
/// monotonically-ish from 1 to 8 PEs; matmul and congruence scale well.
#[test]
fn multiprocessor_speedup_shapes() {
    let opts = Options::default();
    let curves = [
        ("matmul", speedup_curve(&matmul(8), &[1, 8], &opts).unwrap(), 3.0),
        ("fft", speedup_curve(&fft(16), &[1, 8], &opts).unwrap(), 1.8),
        ("cholesky", speedup_curve(&cholesky(8), &[1, 8], &opts).unwrap(), 1.15),
        ("congruence", speedup_curve(&congruence(8), &[1, 8], &opts).unwrap(), 3.0),
    ];
    for (name, curve, floor) in curves {
        let s8 = curve.last().unwrap().throughput_ratio;
        assert!(s8 >= floor, "{name}: throughput ratio {s8:.2} below floor {floor}");
    }
}

/// Table 6.6: every compiler optimization pays for itself on the matmul
/// benchmark (factor ≥ 1.0 means disabling it costs cycles).
#[test]
fn optimizations_do_not_hurt_matmul() {
    let w = matmul(6);
    let pes = 4;
    let base = queue_machine::workloads::WorkloadRun::with_pes(pes).run(&w).unwrap();
    assert!(base.correct);
    let variants = [
        Options { live_value_analysis: false, ..Options::default() },
        Options { input_sequencing: false, ..Options::default() },
        Options { priority_scheduling: false, ..Options::default() },
        Options { loop_unrolling: false, ..Options::default() },
    ];
    for (i, opts) in variants.iter().enumerate() {
        let r =
            queue_machine::workloads::WorkloadRun::with_pes(pes).options(*opts).run(&w).unwrap();
        assert!(r.correct, "variant {i}");
        #[allow(clippy::cast_precision_loss)]
        let factor = r.outcome.elapsed_cycles as f64 / base.outcome.elapsed_cycles as f64;
        assert!(factor > 0.9, "variant {i} should not massively help: {factor:.2}");
    }
}
