//! The enriched deadlock wait-for report: on `SimError::Deadlock` the
//! simulator names, for every parked context, the channel, the direction,
//! the blocked PC and the channel's cache occupancy — instead of a bare
//! context-id list.

use queue_machine::sim::config::SystemConfig;
use queue_machine::sim::msg::{CacheState, ChanDir};
use queue_machine::sim::system::{SimError, System};

/// A classic crossed rendezvous: each side receives before sending.
const CROSSED: &str = "
main:   trap #0,#peer :r0,r1
        recv r1,#0 :r2
        send r0,#1
        trap #2,#0
peer:   recv r17,#0 :r0
        send+1 r18,r0
        trap #2,#0
";

#[test]
fn crossed_rendezvous_reports_both_waiters() {
    let mut sys = System::with_assembly(SystemConfig::with_pes(2), CROSSED).unwrap();
    let err = sys.run().unwrap_err();
    let SimError::Deadlock { blocked } = &err else {
        panic!("expected a deadlock, got {err:?}");
    };
    assert_eq!(blocked.len(), 2, "both contexts are parked: {blocked:?}");
    for b in blocked {
        assert_eq!(b.dir, ChanDir::Recv, "both sides are stuck receiving");
        assert_eq!(b.value, None);
        assert!(b.pc > 0, "blocked PC recorded");
        assert_eq!(b.chan_state, CacheState::ReceiverBlocked { receivers: 1 });
    }
    // The two contexts wait on *different* channels — the wait-for cycle.
    assert_ne!(blocked[0].chan, blocked[1].chan);
    assert_ne!(blocked[0].ctx, blocked[1].ctx);
}

#[test]
fn report_display_is_a_readable_wait_for_dump() {
    let mut sys = System::with_assembly(SystemConfig::with_pes(2), CROSSED).unwrap();
    let report = sys.run().unwrap_err().to_string();
    assert!(report.starts_with("deadlock: 2 context(s) blocked on channels"), "{report}");
    assert!(report.contains("recv on chan"), "{report}");
    assert!(report.contains("at pc 0x"), "{report}");
    assert!(report.contains("ReceiverBlocked"), "{report}");
    assert!(report.lines().count() >= 3, "one line per waiter:\n{report}");
}

#[test]
fn blocked_sender_reports_its_offered_value() {
    // Pure rendezvous (capacity 0): the send parks and blocks forever.
    let src = "main: send #5,#77\n      trap #2,#0\n";
    let mut cfg = SystemConfig::with_pes(1);
    cfg.channel_capacity = 0;
    let mut sys = System::with_assembly(cfg, src).unwrap();
    let err = sys.run().unwrap_err();
    let SimError::Deadlock { blocked } = &err else {
        panic!("expected a deadlock, got {err:?}");
    };
    assert_eq!(blocked.len(), 1);
    assert_eq!(blocked[0].dir, ChanDir::Send);
    assert_eq!(blocked[0].chan, 5);
    assert_eq!(blocked[0].value, Some(77));
    assert!(matches!(blocked[0].chan_state, CacheState::SenderBlocked { buffered: 0, senders: 1 }));
    assert!(err.to_string().contains("offering 77"), "{err}");
}
