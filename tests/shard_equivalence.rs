//! Serial-vs-sharded order equivalence over the real workloads.
//!
//! The sharded run loop (qm-sim's `shard` module) promises bit-identical
//! results to the serial scheduler — `docs/DETERMINISM.md` is the
//! contract, and this file is its property-level pin: randomized
//! (workload, PE count, shard count, channel capacity, placement,
//! fault seed) combinations must produce identical outcomes and state
//! digests, and the big-machine configurations must hold their pinned
//! golden cycle counts at every shard count.
//!
//! (Needs the `proptest` dev-dependency; the dependency-free edge-case
//! suite lives in `crates/qm-sim/tests/shard_edges.rs` so offline
//! builds keep equivalent coverage.)

use proptest::prelude::*;

use queue_machine::sim::config::{Placement, SystemConfig};
use queue_machine::sim::fault::FaultPlan;
use queue_machine::sim::snapshot::Snapshot;
use queue_machine::workloads::{self, Workload, WorkloadRun};

fn workload(ix: usize) -> Workload {
    match ix % 5 {
        0 => workloads::matmul(5),
        1 => workloads::fft(16),
        2 => workloads::cholesky(6),
        3 => workloads::congruence(8),
        _ => workloads::reduction(64),
    }
}

/// Run one configuration and reduce it to everything deterministic:
/// the simulator outcome plus the post-run state digest.
fn fingerprint(
    w: &Workload,
    cfg: &SystemConfig,
    plan: Option<&FaultPlan>,
    shards: usize,
) -> (queue_machine::sim::system::RunOutcome, u64) {
    let mut run = WorkloadRun::new().config(cfg.clone()).shards(shards);
    if let Some(plan) = plan {
        run = run.fault_plan(plan.clone());
    }
    let (mut sys, _compiled) = run.prepare(w).expect("prepares");
    let outcome = sys.run().expect("runs");
    let digest = Snapshot::capture(&sys).state_digest();
    (outcome, digest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any workload, machine size (1–128 PEs), shard count (2–8),
    /// channel capacity and placement policy: the sharded run is
    /// bit-identical to the serial one.
    #[test]
    fn sharded_equals_serial_for_any_configuration(
        wl in 0usize..5,
        pes_pow in 0u32..8,          // 1..=128 PEs
        shards in 2usize..9,
        capacity in prop_oneof![Just(0usize), Just(8usize)],
        least_loaded in any::<bool>(),
    ) {
        let pes = 1usize << pes_pow;
        let mut cfg = SystemConfig::with_pes(pes);
        cfg.channel_capacity = capacity;
        cfg.placement = if least_loaded { Placement::LeastLoaded } else { Placement::RoundRobin };
        let w = workload(wl);
        let serial = fingerprint(&w, &cfg, None, 1);
        let sharded = fingerprint(&w, &cfg, None, shards);
        prop_assert_eq!(serial, sharded, "pes={} shards={}", pes, shards);
    }

    /// Fault draws replay identically under sharding: seeded plans with
    /// stall windows placed to straddle the shard partition boundaries.
    #[test]
    fn sharded_fault_replay_is_identical(
        wl in 0usize..5,
        shards in 2usize..5,
        seed in any::<u64>(),
        loss in 0u32..300_000,
    ) {
        let pes = 8;
        let cfg = SystemConfig::with_pes(pes);
        // With `shards` shards over 8 PEs the first boundary falls at
        // PE 8/shards; stall both sides of it.
        let edge = pes / shards;
        let plan = FaultPlan::seeded(seed)
            .with_send_loss(loss)
            .with_bus_drops(loss / 2)
            .with_trap_delays(loss, 7)
            .with_stall(edge.saturating_sub(1), 10, 60)
            .with_stall(edge.min(pes - 1), 30, 90);
        let w = workload(wl);
        let serial = fingerprint(&w, &cfg, Some(&plan), 1);
        let sharded = fingerprint(&w, &cfg, Some(&plan), shards);
        prop_assert_eq!(serial, sharded, "shards={}", shards);
    }
}

/// Pinned big-machine goldens: `(workload, pes, cycles, instructions)`
/// from the serial scheduler — every shard count must reproduce them
/// exactly. matmul saturates by 64 PEs; reduction's cycle count moves
/// with the ring diameter as partitions grow.
const BIG_MACHINE_GOLDENS: [(&str, usize, u64, u64); 6] = [
    ("matmul8", 64, 8_861, 21_752),
    ("matmul8", 256, 8_861, 21_752),
    ("matmul8", 1024, 8_861, 21_752),
    ("reduction64", 64, 4_537, 7_215),
    ("reduction64", 256, 4_753, 7_215),
    ("reduction64", 1024, 4_753, 7_215),
];

#[test]
fn big_machine_goldens_hold_at_every_shard_count() {
    for &(name, pes, cycles, instructions) in &BIG_MACHINE_GOLDENS {
        let w = match name {
            "matmul8" => workloads::matmul(8),
            _ => workloads::reduction(64),
        };
        for shards in [1usize, 2, 4, 8] {
            let r = WorkloadRun::with_pes(pes).shards(shards).run(&w).expect("runs");
            assert!(r.correct, "{name}/{pes}pe shards={shards} verified incorrect");
            assert_eq!(
                (r.outcome.elapsed_cycles, r.outcome.instructions),
                (cycles, instructions),
                "{name}/{pes}pe shards={shards} drifted from the golden"
            );
        }
    }
}
