//! End-to-end tests: OCCAM source → queue machine code → multiprocessor
//! execution. Every test checks program *output* (host channel) or final
//! memory, across PE counts and compiler option settings.

use qm_occam::{compile, Options};
use qm_sim::config::SystemConfig;
use qm_sim::system::System;

/// Compile and run on `pes` PEs; return the host-channel output.
fn run(src: &str, pes: usize, opts: &Options) -> Vec<i32> {
    let compiled = compile(src, opts).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let mut sys = System::new(SystemConfig::with_pes(pes));
    sys.load_object(&compiled.object);
    let main = compiled.object.symbol("main").expect("main context");
    sys.spawn_main(main);
    let out = sys.run().unwrap_or_else(|e| panic!("run failed: {e}\nassembly:\n{}", compiled.asm));
    out.output
}

fn run_default(src: &str) -> Vec<i32> {
    run(src, 1, &Options::default())
}

/// All sixteen option combinations produce identical output.
fn run_all_options(src: &str, expect: &[i32]) {
    for live in [false, true] {
        for seq in [false, true] {
            for prio in [false, true] {
                for unroll in [false, true] {
                    let opts = Options {
                        live_value_analysis: live,
                        input_sequencing: seq,
                        priority_scheduling: prio,
                        loop_unrolling: unroll,
                    };
                    assert_eq!(
                        run(src, 2, &opts),
                        expect,
                        "options live={live} seq={seq} prio={prio} unroll={unroll}"
                    );
                }
            }
        }
    }
}

#[test]
fn straight_line_output() {
    let out = run_default("screen ! 20 + 22\n");
    assert_eq!(out, vec![42]);
}

#[test]
fn sequential_assignments() {
    let src = "\
var x, y:
seq
  x := 6
  y := x * 7
  screen ! y
";
    assert_eq!(run_default(src), vec![42]);
}

#[test]
fn expression_operators() {
    let src = "\
var a:
seq
  a := 10
  screen ! (a + 5) * 2 - 3
  screen ! a / 3
  screen ! a \\ 3
  screen ! -a
  screen ! a << 2
  screen ! a >> 1
";
    assert_eq!(run_default(src), vec![27, 3, 1, -10, 40, 5]);
}

#[test]
fn comparisons_produce_booleans() {
    let src = "\
var a:
seq
  a := 5
  screen ! a < 10
  screen ! a > 10
  screen ! a = 5
  screen ! a <> 5
";
    assert_eq!(run_default(src), vec![-1, 0, -1, 0]);
}

#[test]
fn while_loop_sums() {
    // The Fig. 4.6 worked example: Σ k for k = 1..10 = 55.
    let src = "\
var sum, k:
seq
  sum := 0
  k := 1
  while k <= 10
    seq
      sum := sum + k
      k := k + 1
  screen ! sum
";
    assert_eq!(run_default(src), vec![55]);
}

#[test]
fn replicated_seq_sums() {
    let src = "\
var sum:
seq
  sum := 0
  seq k = [1 for 10]
    sum := sum + k
  screen ! sum
";
    assert_eq!(run_default(src), vec![55]);
}

#[test]
fn if_selects_first_true_guard() {
    let src = "\
var x, y:
seq
  x := -7
  if
    x < 0
      y := 0 - x
    true
      y := x
  screen ! y
";
    assert_eq!(run_default(src), vec![7]);
}

#[test]
fn if_with_no_true_guard_skips() {
    let src = "\
var x, y:
seq
  x := 3
  y := 99
  if
    x < 0
      y := 0
  screen ! y
";
    assert_eq!(run_default(src), vec![99]);
}

#[test]
fn nested_if_in_loop_classifies() {
    // Count negatives in a sequence.
    let src = "\
var neg, k, v:
seq
  neg := 0
  seq k = [0 for 8]
    seq
      v := (k * 3) - 10
      if
        v < 0
          neg := neg + 1
        true
          skip
  screen ! neg
";
    // k*3-10 < 0 for k = 0,1,2,3 → 4 negatives.
    assert_eq!(run_default(src), vec![4]);
}

#[test]
fn arrays_store_and_fetch() {
    let src = "\
var v[8], i, sum:
seq
  seq i = [0 for 8]
    v[i] := i * i
  sum := 0
  seq i = [0 for 8]
    sum := sum + v[i]
  screen ! sum
";
    // Σ i² for 0..8 = 140.
    assert_eq!(run_default(src), vec![140]);
}

#[test]
fn par_branches_compute_independently() {
    let src = "\
var a, b:
seq
  par
    a := 6 * 7
    b := 10 * 10
  screen ! a
  screen ! b
";
    assert_eq!(run_default(src), vec![42, 100]);
}

#[test]
fn par_branches_communicate_over_channel() {
    let src = "\
var y:
chan c:
seq
  par
    c ! 21
    var x:
    seq
      c ? x
      y := x * 2
  screen ! y
";
    assert_eq!(run_default(src), vec![42]);
}

#[test]
fn replicated_par_fills_array() {
    let src = "\
var sq[8], i, sum:
seq
  par i = [0 for 8]
    sq[i] := i * i
  sum := 0
  seq i = [0 for 8]
    sum := sum + sq[i]
  screen ! sum
";
    for pes in [1, 2, 4] {
        assert_eq!(run(src, pes, &Options::default()), vec![140], "{pes} PEs");
    }
}

#[test]
fn procedure_with_value_and_var_params() {
    let src = "\
proc double(value x, var y) =
  y := x * 2
var a:
seq
  double(21, a)
  screen ! a
";
    assert_eq!(run_default(src), vec![42]);
}

#[test]
fn procedure_with_array_param() {
    let src = "\
proc fill(v, value n) =
  var i:
  seq i = [0 for n]
    v[i] := i + 1
var data[6], s, i:
seq
  fill(data, 6)
  s := 0
  seq i = [0 for 6]
    s := s + data[i]
  screen ! s
";
    assert_eq!(run_default(src), vec![21]);
}

#[test]
fn recursive_procedure() {
    // factorial(5) via recursion — exercises reentrant contexts.
    let src = "\
proc fact(value n, var r) =
  if
    n <= 1
      r := 1
    true
      var sub:
      seq
        fact(n - 1, sub)
        r := n * sub
var f:
seq
  fact(5, f)
  screen ! f
";
    assert_eq!(run_default(src), vec![120]);
}

#[test]
fn keyboard_reads_host_input() {
    let src = "\
var x:
seq
  keyboard ? x
  screen ! x * 3
";
    let compiled = compile(src, &Options::default()).unwrap();
    let mut sys = System::new(SystemConfig::with_pes(1));
    sys.load_object(&compiled.object);
    sys.push_input(14);
    sys.spawn_main(compiled.object.symbol("main").unwrap());
    assert_eq!(sys.run().unwrap().output, vec![42]);
}

#[test]
fn output_ordering_is_sequenced() {
    // Control tokens must keep screen outputs in program order.
    let src = "\
var i:
seq i = [0 for 5]
  screen ! i
";
    assert_eq!(run_default(src), vec![0, 1, 2, 3, 4]);
}

#[test]
fn all_compiler_options_agree() {
    let src = "\
var v[4], i, acc:
seq
  seq i = [0 for 4]
    v[i] := i + 10
  acc := 0
  seq i = [0 for 4]
    acc := acc + v[i] * (i + 1)
  if
    acc > 100
      screen ! acc
    true
      screen ! -acc
";
    // acc = 10*1 + 11*2 + 12*3 + 13*4 = 120 > 100.
    run_all_options(src, &[120]);
}

#[test]
fn multi_pe_runs_match_single_pe() {
    let src = "\
var r[4], i, total:
seq
  par i = [0 for 4]
    var acc, j:
    seq
      acc := 0
      seq j = [1 for 6]
        acc := acc + (i + 1) * j
      r[i] := acc
  total := 0
  seq i = [0 for 4]
    total := total + r[i]
  screen ! total
";
    // Σ_{i=1..4} i * 21 = 210.
    let baseline = run(src, 1, &Options::default());
    assert_eq!(baseline, vec![210]);
    for pes in [2, 4, 8] {
        assert_eq!(run(src, pes, &Options::default()), baseline, "{pes} PEs");
    }
}

#[test]
fn parallel_speedup_is_observable() {
    // Four heavy independent instances: more PEs should reduce elapsed
    // cycles substantially.
    let src = "\
var r[4], i, total:
seq
  par i = [0 for 4]
    var acc, j:
    seq
      acc := 0
      seq j = [1 for 40]
        acc := acc + (i + 1) * j
      r[i] := acc
  total := 0
  seq i = [0 for 4]
    total := total + r[i]
  screen ! total
";
    let compiled = compile(src, &Options::default()).unwrap();
    let mut elapsed = Vec::new();
    for pes in [1usize, 4] {
        let mut sys = System::new(SystemConfig::with_pes(pes));
        sys.load_object(&compiled.object);
        sys.spawn_main(compiled.object.symbol("main").unwrap());
        let out = sys.run().unwrap();
        assert_eq!(out.output, vec![8200]);
        elapsed.push(out.elapsed_cycles);
    }
    assert!(
        (elapsed[0] as f64) / (elapsed[1] as f64) > 1.5,
        "expected speedup, got {} vs {}",
        elapsed[0],
        elapsed[1]
    );
}

#[test]
fn wait_and_now_sequence_in_time() {
    let src = "\
var t0, t1:
seq
  t0 := now
  wait now after t0 + 500
  t1 := now
  screen ! t1 - t0 >= 500
";
    assert_eq!(run_default(src), vec![-1]);
}
