//! Deterministic coverage for the program shapes the proptest
//! differential suite historically shrank to (see
//! `tests/occam_differential.proptest-regressions` at the workspace
//! root): zero-count replicators, `par` branches that only conditionally
//! write, `if` chains with no true guard, and `par` write ordering.
//!
//! Each program runs through the reference interpreter (oracle) and the
//! full compile → assemble → simulate pipeline; screen output and final
//! array contents must agree. This keeps the shapes covered without
//! proptest and pinpoints the failing shape immediately on regression.

use qm_occam::ast::Process;
use qm_occam::interp::Interp;
use qm_occam::sema::SymKind;
use qm_occam::{codegen, parse, sema, Options};
use qm_sim::config::SystemConfig;
use qm_sim::system::System;

fn no_opts() -> Options {
    Options {
        live_value_analysis: false,
        input_sequencing: false,
        priority_scheduling: false,
        loop_unrolling: false,
    }
}

/// Differential check: oracle vs. pipeline, across PE counts and the two
/// option settings the proptest suite exercises.
fn check(src: &str) {
    let ast: Process = parse::parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
    let resolved = sema::analyse(&ast).unwrap_or_else(|e| panic!("sema failed: {e}\n{src}"));
    let oracle = Interp::new(&resolved, vec![])
        .run()
        .unwrap_or_else(|e| panic!("oracle failed: {e}\n{src}"));
    for (pes, opts) in [(1, Options::default()), (2, Options::default()), (3, no_opts())] {
        let asm = codegen::generate(&resolved, &opts)
            .unwrap_or_else(|e| panic!("codegen failed: {e}\n{src}"));
        let object =
            qm_isa::asm::assemble(&asm).unwrap_or_else(|e| panic!("assemble failed: {e}\n{asm}"));
        let mut sys = System::new(SystemConfig::with_pes(pes));
        sys.load_object(&object);
        sys.spawn_main(object.symbol("main").expect("main context"));
        let out = sys.run().unwrap_or_else(|e| panic!("simulation failed (pes={pes}): {e}\n{asm}"));
        assert_eq!(out.output, oracle.output, "screen diverged (pes={pes})\n{asm}");
        for (name, kind) in &resolved.syms {
            if let SymKind::Array { addr, len } = kind {
                let expected = &oracle.arrays[name];
                for i in 0..*len {
                    let got = sys.memory.peek_global(addr + 4 * i);
                    assert_eq!(
                        got, expected[i as usize],
                        "{name}[{i}] diverged (pes={pes})\n{asm}"
                    );
                }
            }
        }
    }
}

#[test]
fn zero_count_replicated_seq_is_a_no_op() {
    check(
        "\
var v:
seq
  v := 7
  seq i = [0 for 0]
    v := 99
  screen ! v
",
    );
}

#[test]
fn zero_count_replicated_par_is_a_no_op() {
    check(
        "\
var v:
var a[8]:
seq
  v := 7
  par i = [0 for 0]
    a[i /\\ 7] := 99
  screen ! v
  screen ! a[0]
",
    );
}

#[test]
fn nested_zero_count_replicators_inside_par() {
    // Shape of seed 0f653a94: a par branch that is itself a zero-count
    // replicated seq wrapping another zero-count replicated seq.
    check(
        "\
var v0, v1:
seq
  v0 := 0
  par
    v0 := 0
    seq i = [0 for 0]
      seq j = [0 for 0]
        v1 := 5
  screen ! v0
  screen ! v1
",
    );
}

#[test]
fn one_count_replicators_run_exactly_once() {
    check(
        "\
var v:
var a[8]:
seq
  seq i = [0 for 1]
    v := 3
  par i = [2 for 1]
    a[i /\\ 7] := 41
  screen ! v
  screen ! a[2]
",
    );
}

#[test]
fn if_with_no_true_guard_inside_par_writes_nothing() {
    // Shape of seeds 65a8ebac / fe8d3dd6: an if chain inside a par branch
    // whose guards are all false — the branch must complete without
    // writing, and the sibling branch's write must land.
    check(
        "\
var v0, v1:
seq
  v0 := 5
  par
    if
      0 <> 0
        v0 := 9
      1 < 0
        v0 := 8
    v1 := 1
  screen ! v0
  screen ! v1
",
    );
}

#[test]
fn nested_if_false_then_default_inside_par() {
    check(
        "\
var v0, v1:
var a0[8]:
seq
  v0 := 0
  par
    if
      0 <> 0
        v0 := 0
      true
        if
          v0 <> 0
            a0[1] := 10
          true
            a0[2] := 20
    v1 := 0 - 1
  screen ! a0[1]
  screen ! a0[2]
  screen ! v1
",
    );
}

#[test]
fn par_branches_write_disjoint_array_slots_in_order() {
    // Shape of seed c385c57d / b8f48b65: the tail after a par must observe
    // every branch's writes, and writes before the par must not be
    // clobbered by branches that do not touch them.
    check(
        "\
var v0:
var a0[8], a1[8]:
seq
  a0[1] := 10
  par
    seq
      a0[2] := 20
      a0[3] := a0[2] + 1
    a1[2] := 30
  a0[4] := a0[3] + a1[2]
  screen ! a0[1]
  screen ! a0[4]
",
    );
}

#[test]
fn conditionally_writing_par_branch_then_tail_read() {
    // A par branch whose only write is guarded by a false condition; the
    // tail reads the would-be target and must see the pre-par value.
    check(
        "\
var v0, v1:
var a0[8]:
seq
  a0[3] := 77
  par
    if
      1 = 2
        a0[3] := 0
    v1 := 4
  v0 := a0[3]
  screen ! v0
  screen ! v1
",
    );
}

#[test]
fn replicated_par_with_conditional_writes() {
    check(
        "\
var v:
var a[8]:
seq
  seq i = [0 for 8]
    a[i /\\ 7] := 0 - 1
  par i = [0 for 4]
    if
      i >= 2
        a[i /\\ 7] := i * 10
  v := (((a[0] + a[1]) + a[2]) + a[3])
  screen ! v
",
    );
}

#[test]
fn nested_par_inside_par_branch() {
    check(
        "\
var v0, v1, v2:
var a0[8], a1[8]:
seq
  par
    par
      v0 := 1
      a0[0] := 11
    seq
      v1 := 2
      a1[0] := 22
  v2 := v0 + v1
  screen ! v2
  screen ! a0[0]
  screen ! a1[0]
",
    );
}
