//! White-box tests of code-generation behaviour: context structure,
//! optimization effects and graceful degradation.

use qm_occam::codegen::context_graphs;
use qm_occam::graph::{Actor, ChanRef};
use qm_occam::{compile, parse, sema, Options};

fn graphs(src: &str, opts: &Options) -> Vec<(String, qm_occam::graph::ContextGraph)> {
    let resolved = sema::analyse(&parse::parse(src).unwrap()).unwrap();
    context_graphs(&resolved, opts).unwrap()
}

#[test]
fn unrolled_constant_loop_is_a_single_context() {
    let src = "\
var s:
seq
  s := 0
  seq i = [0 for 8]
    s := s + i
  screen ! s
";
    let g = graphs(src, &Options::default());
    assert_eq!(g.len(), 1, "fully unrolled into main: {:?}", labels(&g));
    // Without unrolling the loop spawns test/body/term contexts.
    let g = graphs(src, &Options { loop_unrolling: false, ..Options::default() });
    assert_eq!(g.len(), 4, "term+body+test+main: {:?}", labels(&g));
}

fn labels(g: &[(String, qm_occam::graph::ContextGraph)]) -> Vec<&str> {
    g.iter().map(|(l, _)| l.as_str()).collect()
}

#[test]
fn runtime_bound_loops_stay_loops() {
    let src = "\
var s, n:
seq
  n := 8
  seq i = [0 for n]
    s := s + i
  screen ! s
";
    let g = graphs(src, &Options::default());
    assert!(g.len() > 1, "run-time count cannot unroll");
}

#[test]
fn read_only_arrays_need_no_control_tokens() {
    // `data` is host-initialised and never written: its fetches must not
    // be control-sequenced, and no K token for it appears anywhere.
    let src = "\
var data[4], s:
seq
  s := data[0] + data[1] + data[2] + data[3]
  screen ! s
";
    let g = graphs(src, &Options::default());
    let (_, main) = &g[0];
    for id in 0..main.len() {
        if main.node(id).actor == Actor::Fetch {
            assert!(
                main.node(id).ctrl.is_empty(),
                "read-only fetch {id} carries control edges: {:?}",
                main.node(id).ctrl
            );
        }
    }
}

#[test]
fn written_arrays_are_sequenced() {
    let src = "\
var data[4], s:
seq
  data[0] := 7
  s := data[0]
  screen ! s
";
    let g = graphs(src, &Options::default());
    let (_, main) = &g[0];
    let fetches: Vec<usize> =
        (0..main.len()).filter(|&i| main.node(i).actor == Actor::Fetch).collect();
    assert_eq!(fetches.len(), 1);
    assert!(!main.node(fetches[0]).ctrl.is_empty(), "the fetch must be ordered after the store");
}

#[test]
fn queue_page_overflow_degrades_to_loops() {
    // 16 iterations × 3 assignments of wide expressions would overflow
    // the 256-slot queue page if unrolled together with the rest; the
    // compiler must fall back rather than fail.
    let mut body = String::from("var s, t, u:\nseq\n");
    for _ in 0..4 {
        body.push_str("  seq i = [0 for 16]\n");
        body.push_str("    seq\n");
        body.push_str("      s := s + (i * 3) - (i / 2) + (s >> 1)\n");
        body.push_str("      t := t + s - (i * i) + (t >> 2)\n");
        body.push_str("      u := u + t - s + (u >> 3)\n");
    }
    body.push_str("  screen ! s + t + u\n");
    let compiled = compile(&body, &Options::default()).expect("falls back, never fails");
    assert!(compiled.context_count >= 1);
}

#[test]
fn main_context_ends_with_end_trap() {
    let g = graphs("screen ! 1\n", &Options::default());
    let (_, main) = &g[0];
    let ends = (0..main.len()).filter(|&i| main.node(i).actor == Actor::End).count();
    assert_eq!(ends, 1);
}

#[test]
fn procedures_compile_once_for_many_call_sites() {
    let src = "\
proc inc(value x, var y) =
  y := x + 1
var a, b, c:
seq
  inc(1, a)
  inc(a, b)
  inc(b, c)
  screen ! c
";
    let g = graphs(src, &Options::default());
    let proc_contexts = labels(&g).iter().filter(|l| l.starts_with("proc_")).count();
    assert_eq!(proc_contexts, 1, "one reentrant context body: {:?}", labels(&g));
}

#[test]
fn recv_nodes_use_in_register_in_child_contexts() {
    let src = "\
var x:
seq
  x := 0
  while x < 3
    x := x + 1
  screen ! x
";
    let g = graphs(src, &Options::default());
    let test_ctx = g.iter().find(|(l, _)| l.starts_with("test")).expect("loop test context");
    let has_inreg_recv =
        (0..test_ctx.1.len()).any(|i| test_ctx.1.node(i).actor == Actor::Recv(ChanRef::InReg));
    assert!(has_inreg_recv, "loop contexts receive L on r17");
}

#[test]
fn dot_export_covers_all_contexts() {
    let src = "\
var x:
seq
  x := 1
  if
    x > 0
      screen ! x
";
    let opts = Options::default();
    let dot = qm_occam::draw::program_to_dot(src, &opts).unwrap();
    let g = graphs(src, &opts);
    assert_eq!(dot.matches("digraph").count(), g.len());
}
