//! Recursive-descent parser for the OCCAM subset.
//!
//! Declarations (`var`, `chan`, `proc`) precede the process they scope
//! over at the same indentation, per OCCAM convention. Constructors take
//! their component processes in an indented block. Unlike strict OCCAM,
//! expressions use conventional operator precedence (OCCAM required full
//! parenthesisation; accepting both is harmless).

use crate::ast::{BinOp, Decl, Expr, Lvalue, Param, ProcDef, Process, Replicator};
use crate::lex::{lex, SpannedTok, Tok};

/// Parse error with source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lex::LexError> for ParseError {
    fn from(e: crate::lex::LexError) -> Self {
        ParseError { line: e.line, msg: e.msg }
    }
}

/// Parse an OCCAM source text into its top-level process.
///
/// # Errors
///
/// [`ParseError`] on any lexical or syntactic problem.
pub fn parse(src: &str) -> Result<Process, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let process = p.process()?;
    p.expect(&Tok::Eof)?;
    Ok(process)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { line: self.line(), msg: msg.into() })
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    /// Declarations followed by a statement: the OCCAM "process".
    fn process(&mut self) -> Result<Process, ParseError> {
        let mut decls: Vec<Decl> = Vec::new();
        let mut procs: Vec<ProcDef> = Vec::new();
        loop {
            if self.at_keyword("var") || self.at_keyword("chan") {
                let is_var = self.at_keyword("var");
                self.bump();
                loop {
                    let name = self.ident()?;
                    if is_var && *self.peek() == Tok::LBracket {
                        self.bump();
                        let len = match self.bump() {
                            Tok::Int(n) if n > 0 && n <= i64::from(u32::MAX) => {
                                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                                {
                                    n as u32
                                }
                            }
                            other => {
                                return self.err(format!(
                                    "array length must be a positive literal, found {other:?}"
                                ))
                            }
                        };
                        self.expect(&Tok::RBracket)?;
                        decls.push(Decl::Array(name, len));
                    } else if is_var {
                        decls.push(Decl::Scalar(name));
                    } else {
                        decls.push(Decl::Chan(name));
                    }
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::Colon)?;
                self.expect(&Tok::Newline)?;
            } else if self.at_keyword("proc") {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::LParen)?;
                let mut params = Vec::new();
                if *self.peek() != Tok::RParen {
                    loop {
                        let mode = self.ident()?;
                        let param = match mode.as_str() {
                            "value" => Param::Value(self.ident()?),
                            "var" => Param::Var(self.ident()?),
                            // Bare name defaults to `var` like OCCAM 1.
                            _ => Param::Var(mode),
                        };
                        params.push(param);
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Eq)?;
                self.expect(&Tok::Newline)?;
                self.expect(&Tok::Indent)?;
                let body = self.process()?;
                self.expect(&Tok::Dedent)?;
                // Optional trailing ':' line closing the definition.
                if *self.peek() == Tok::Colon {
                    self.bump();
                    self.expect(&Tok::Newline)?;
                }
                procs.push(ProcDef { name, params, body });
            } else {
                break;
            }
        }
        let stmt = self.statement()?;
        if decls.is_empty() && procs.is_empty() {
            Ok(stmt)
        } else {
            Ok(Process::Scope(decls, procs, Box::new(stmt)))
        }
    }

    fn replicator(&mut self) -> Result<Option<Replicator>, ParseError> {
        if let Tok::Ident(_) = self.peek() {
            let var = self.ident()?;
            self.expect(&Tok::Eq)?;
            self.expect(&Tok::LBracket)?;
            let start = self.expr()?;
            if !self.at_keyword("for") {
                return self.err("expected 'for' in replicator");
            }
            self.bump();
            let count = self.expr()?;
            self.expect(&Tok::RBracket)?;
            Ok(Some(Replicator { var, start, count }))
        } else {
            Ok(None)
        }
    }

    fn block(&mut self) -> Result<Vec<Process>, ParseError> {
        self.expect(&Tok::Newline)?;
        if *self.peek() != Tok::Indent {
            return Ok(Vec::new()); // empty constructor body (e.g. `seq` alone)
        }
        self.bump();
        let mut out = Vec::new();
        while *self.peek() != Tok::Dedent {
            out.push(self.process()?);
        }
        self.bump(); // Dedent
        Ok(out)
    }

    fn statement(&mut self) -> Result<Process, ParseError> {
        match self.peek().clone() {
            Tok::Ident(kw) if kw == "seq" => {
                self.bump();
                let rep = self.replicator()?;
                let body = self.block()?;
                Ok(Process::Seq(rep, body))
            }
            Tok::Ident(kw) if kw == "par" => {
                self.bump();
                let rep = self.replicator()?;
                let body = self.block()?;
                Ok(Process::Par(rep, body))
            }
            Tok::Ident(kw) if kw == "while" => {
                self.bump();
                let cond = self.expr()?;
                let mut body = self.block()?;
                let inner = match body.len() {
                    1 => body.remove(0),
                    _ => Process::Seq(None, body),
                };
                Ok(Process::While(cond, Box::new(inner)))
            }
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                self.expect(&Tok::Newline)?;
                self.expect(&Tok::Indent)?;
                let mut branches = Vec::new();
                while *self.peek() != Tok::Dedent {
                    let guard = self.expr()?;
                    self.expect(&Tok::Newline)?;
                    self.expect(&Tok::Indent)?;
                    let mut body = Vec::new();
                    while *self.peek() != Tok::Dedent {
                        body.push(self.process()?);
                    }
                    self.bump();
                    let inner = match body.len() {
                        1 => body.into_iter().next().expect("len checked"),
                        _ => Process::Seq(None, body),
                    };
                    branches.push((guard, inner));
                }
                self.bump();
                Ok(Process::If(branches))
            }
            Tok::Ident(kw) if kw == "skip" => {
                self.bump();
                self.expect(&Tok::Newline)?;
                Ok(Process::Skip)
            }
            Tok::Ident(kw) if kw == "wait" => {
                self.bump();
                // `wait now after e` (thesis syntax); `now after` optional.
                if self.at_keyword("now") {
                    self.bump();
                    if self.at_keyword("after") {
                        self.bump();
                    }
                }
                let e = self.expr()?;
                self.expect(&Tok::Newline)?;
                Ok(Process::Wait(e))
            }
            Tok::Ident(_) => {
                let name = self.ident()?;
                match self.peek().clone() {
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if *self.peek() != Tok::RParen {
                            loop {
                                args.push(self.expr()?);
                                if *self.peek() == Tok::Comma {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&Tok::RParen)?;
                        self.expect(&Tok::Newline)?;
                        Ok(Process::Call(name, args))
                    }
                    Tok::LBracket => {
                        self.bump();
                        let idx = self.expr()?;
                        self.expect(&Tok::RBracket)?;
                        self.expect(&Tok::Assign)?;
                        let e = self.expr()?;
                        self.expect(&Tok::Newline)?;
                        Ok(Process::Assign(Lvalue::Index(name, Box::new(idx)), e))
                    }
                    Tok::Assign => {
                        self.bump();
                        let e = self.expr()?;
                        self.expect(&Tok::Newline)?;
                        Ok(Process::Assign(Lvalue::Var(name), e))
                    }
                    Tok::Bang => {
                        self.bump();
                        let e = self.expr()?;
                        self.expect(&Tok::Newline)?;
                        Ok(Process::Output(name, e))
                    }
                    Tok::Query => {
                        self.bump();
                        let lv = self.lvalue()?;
                        self.expect(&Tok::Newline)?;
                        Ok(Process::Input(name, lv))
                    }
                    other => self.err(format!("unexpected {other:?} after identifier")),
                }
            }
            other => self.err(format!("expected a process, found {other:?}")),
        }
    }

    fn lvalue(&mut self) -> Result<Lvalue, ParseError> {
        let name = self.ident()?;
        if *self.peek() == Tok::LBracket {
            self.bump();
            let idx = self.expr()?;
            self.expect(&Tok::RBracket)?;
            Ok(Lvalue::Index(name, Box::new(idx)))
        } else {
            Ok(Lvalue::Var(name))
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::Pipe || self.at_keyword("or") {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == Tok::Amp || self.at_keyword("and") {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.shift_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Gt => BinOp::Gt,
            Tok::Le => BinOp::Le,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.shift_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn shift_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Backslash => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                // Fold negated literals so `-1` is a constant, not a
                // negation node (keeps printed programs re-parseable to
                // identical trees).
                match self.unary_expr()? {
                    Expr::Const(v) => Ok(Expr::Const(v.wrapping_neg())),
                    other => Ok(Expr::Neg(Box::new(other))),
                }
            }
            Tok::Ident(kw) if kw == "not" => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary_expr()?)))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Int(n) => {
                if n > i64::from(i32::MAX) {
                    return self.err("integer literal exceeds 32 bits");
                }
                #[allow(clippy::cast_possible_truncation)]
                Ok(Expr::Const(n as i32))
            }
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(Expr::Const(-1)),
                "false" => Ok(Expr::Const(0)),
                "now" => Ok(Expr::Now),
                _ => {
                    if *self.peek() == Tok::LBracket {
                        self.bump();
                        let idx = self.expr()?;
                        self.expect(&Tok::RBracket)?;
                        Ok(Expr::Index(name, Box::new(idx)))
                    } else {
                        Ok(Expr::Var(name))
                    }
                }
            },
            Tok::LParen => {
                let inner = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(inner)
            }
            other => self.err(format!("expected an expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thesis_iteration_example_parses() {
        // Fig. 4.6's program.
        let src = "\
var sum, result:
seq
  sum := 0
  seq k = [1 for 10]
    sum := sum + k
  result := sum
";
        let p = parse(src).unwrap();
        match p {
            Process::Scope(decls, procs, body) => {
                assert_eq!(decls.len(), 2);
                assert!(procs.is_empty());
                match *body {
                    Process::Seq(None, stmts) => {
                        assert_eq!(stmts.len(), 3);
                        assert!(matches!(stmts[1], Process::Seq(Some(_), _)));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dynamic_process_creation_example() {
        // Fig. 4.7.
        let src = "\
var n:
seq
  n := 4
  par i = [1 for n]
    skip
";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn channels_and_io() {
        let src = "\
chan c:
par
  c ! 5 + 1
  var x:
  c ? x
";
        let p = parse(src).unwrap();
        match p {
            Process::Scope(_, _, body) => match *body {
                Process::Par(None, branches) => {
                    assert!(matches!(branches[0], Process::Output(..)));
                    assert!(matches!(branches[1], Process::Scope(..)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_with_guards() {
        let src = "\
var x, y:
if
  x < 0
    y := 0 - x
  true
    y := x
";
        let p = parse(src).unwrap();
        match p {
            Process::Scope(_, _, body) => match *body {
                Process::If(branches) => assert_eq!(branches.len(), 2),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn while_loop() {
        let src = "\
var i:
while i < 10
  i := i + 1
";
        assert!(
            matches!(parse(src).unwrap(), Process::Scope(_, _, b) if matches!(*b, Process::While(..)))
        );
    }

    #[test]
    fn procedure_definition_and_call() {
        let src = "\
proc double(value x, var y) =
  y := x * 2
seq
  var a:
  double(21, a)
";
        let p = parse(src).unwrap();
        match p {
            Process::Scope(decls, procs, _) => {
                assert!(decls.is_empty());
                assert_eq!(procs.len(), 1);
                assert_eq!(procs[0].name, "double");
                assert_eq!(procs[0].params.len(), 2);
                assert!(matches!(procs[0].params[0], Param::Value(_)));
                assert!(matches!(procs[0].params[1], Param::Var(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arrays_parse() {
        let src = "\
var v[8], i:
seq
  v[0] := 1
  i := v[0] + v[1]
";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn expression_precedence() {
        let src = "var x:\nx := 1 + 2 * 3\n";
        match parse(src).unwrap() {
            Process::Scope(_, _, b) => match *b {
                Process::Assign(_, e) => {
                    assert_eq!(
                        e,
                        Expr::bin(
                            BinOp::Add,
                            Expr::Const(1),
                            Expr::bin(BinOp::Mul, Expr::Const(2), Expr::Const(3))
                        )
                    );
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_report_lines() {
        let e = parse("var x:\nx := := 1\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn wait_now_after() {
        let src = "wait now after 100\n";
        assert!(matches!(parse(src).unwrap(), Process::Wait(_)));
    }
}
