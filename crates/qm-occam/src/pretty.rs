//! Pretty-printer: AST → OCCAM source text.
//!
//! Useful for dumping generated/transformed programs (e.g. the
//! differential fuzzer's cases) in a form the parser accepts again:
//! `parse(print(p))` reproduces `p` up to expression parenthesisation.

use std::fmt::Write as _;

use crate::ast::{BinOp, Decl, Expr, Lvalue, Param, ProcDef, Process, Replicator};

/// Render a process tree as OCCAM source.
#[must_use]
pub fn print_process(p: &Process) -> String {
    let mut out = String::new();
    emit(p, 0, &mut out);
    out
}

fn pad(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn emit(p: &Process, indent: usize, out: &mut String) {
    match p {
        Process::Skip => {
            pad(indent, out);
            out.push_str("skip\n");
        }
        Process::Wait(e) => {
            pad(indent, out);
            let _ = writeln!(out, "wait now after {}", print_expr(e));
        }
        Process::Assign(lv, e) => {
            pad(indent, out);
            let _ = writeln!(out, "{} := {}", print_lvalue(lv), print_expr(e));
        }
        Process::Output(c, e) => {
            pad(indent, out);
            let _ = writeln!(out, "{c} ! {}", print_expr(e));
        }
        Process::Input(c, lv) => {
            pad(indent, out);
            let _ = writeln!(out, "{c} ? {}", print_lvalue(lv));
        }
        Process::Seq(rep, ps) | Process::Par(rep, ps) => {
            pad(indent, out);
            let kw = if matches!(p, Process::Seq(..)) { "seq" } else { "par" };
            match rep {
                Some(r) => {
                    let _ = writeln!(out, "{kw} {}", print_replicator(r));
                }
                None => {
                    let _ = writeln!(out, "{kw}");
                }
            }
            for q in ps {
                emit(q, indent + 1, out);
            }
        }
        Process::If(branches) => {
            pad(indent, out);
            out.push_str("if\n");
            for (cond, body) in branches {
                pad(indent + 1, out);
                let _ = writeln!(out, "{}", print_expr(cond));
                emit(body, indent + 2, out);
            }
        }
        Process::While(cond, body) => {
            pad(indent, out);
            let _ = writeln!(out, "while {}", print_expr(cond));
            emit(body, indent + 1, out);
        }
        Process::Scope(decls, procs, body) => {
            for d in decls {
                pad(indent, out);
                match d {
                    Decl::Scalar(n) => {
                        let _ = writeln!(out, "var {n}:");
                    }
                    Decl::Array(n, len) => {
                        let _ = writeln!(out, "var {n}[{len}]:");
                    }
                    Decl::Chan(n) => {
                        let _ = writeln!(out, "chan {n}:");
                    }
                }
            }
            for pd in procs {
                emit_proc(pd, indent, out);
            }
            emit(body, indent, out);
        }
        Process::Call(name, args) => {
            pad(indent, out);
            let rendered: Vec<String> = args.iter().map(print_expr).collect();
            let _ = writeln!(out, "{name}({})", rendered.join(", "));
        }
    }
}

fn emit_proc(pd: &ProcDef, indent: usize, out: &mut String) {
    pad(indent, out);
    let params: Vec<String> = pd
        .params
        .iter()
        .map(|p| match p {
            Param::Value(n) => format!("value {n}"),
            Param::Var(n) => format!("var {n}"),
        })
        .collect();
    let _ = writeln!(out, "proc {}({}) =", pd.name, params.join(", "));
    emit(&pd.body, indent + 1, out);
}

fn print_lvalue(lv: &Lvalue) -> String {
    match lv {
        Lvalue::Var(n) => n.clone(),
        Lvalue::Index(n, i) => format!("{n}[{}]", print_expr(i)),
    }
}

fn print_replicator(r: &Replicator) -> String {
    format!("{} = [{} for {}]", r.var, print_expr(&r.start), print_expr(&r.count))
}

/// Render an expression (fully parenthesised, OCCAM-friendly).
#[must_use]
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Const(v) => {
            if *v < 0 {
                format!("(-{})", v.unsigned_abs())
            } else {
                v.to_string()
            }
        }
        Expr::Var(n) => n.clone(),
        Expr::Index(n, i) => format!("{n}[{}]", print_expr(i)),
        Expr::Neg(x) => format!("(-{})", print_expr(x)),
        Expr::Not(x) => format!("(not {})", print_expr(x)),
        Expr::Now => "now".into(),
        Expr::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "\\",
                BinOp::And => "/\\",
                BinOp::Or => "\\/",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Gt => ">",
                BinOp::Le => "<=",
                BinOp::Ge => ">=",
            };
            format!("({} {sym} {})", print_expr(a), print_expr(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn round_trip(src: &str) {
        let ast = parse(src).unwrap();
        let printed = print_process(&ast);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(ast, reparsed, "--- printed ---\n{printed}");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip("var x:\nseq\n  x := 1 + (2 * 3)\n  screen ! x\n  skip\n");
    }

    #[test]
    fn constructs_round_trip() {
        round_trip(
            "\
var v[8], s, i:
seq
  seq i = [0 for 8]
    v[i] := i
  par
    s := v[0]
    skip
  while s < 10
    s := s + 1
  if
    s = 10
      screen ! s
    true
      skip
",
        );
    }

    #[test]
    fn procedures_round_trip() {
        round_trip(
            "\
proc f(value n, var acc, v) =
  seq
    acc := n + v[0]
var a, b[4]:
seq
  f(1, a, b)
  screen ! a
",
        );
    }

    #[test]
    fn channels_round_trip() {
        round_trip(
            "\
chan c:
var x:
par
  c ! 41
  seq
    c ? x
    screen ! x + 1
",
        );
    }

    #[test]
    fn negative_constants_survive() {
        round_trip("var x:\nseq\n  x := -5 \\ -3\n  screen ! not x\n");
    }

    #[test]
    fn wait_and_now_round_trip() {
        round_trip("var t:\nseq\n  t := now\n  wait now after t + 100\n");
    }
}
