//! Code generation: resolved OCCAM → contexts + splicing protocol (§4.2).
//!
//! Every constructor is compiled by *dynamic data-flow graph splicing*:
//!
//! * `while` → a chain of contexts: the parent `rfork`s a *test* context
//!   and transmits the loop-live set `L`; the test evaluates the condition,
//!   selects the *body* or *terminator* address, `ifork`s it (inheriting
//!   the out channel) and forwards `L`; the body computes and `ifork`s the
//!   test again; the terminator sends the live-out subset straight back to
//!   the parent (thesis Fig. 4.6).
//! * `if` → the parent evaluates the guards, selects a branch address with
//!   the `sel` lowering (`(a ∧ c) ∨ (b ∧ ¬c)`), `rfork`s it and exchanges
//!   the union interface; every branch echoes unmodified values.
//! * `par` → one `rfork` per component (Fig. 4.9).
//! * replicated `par` → a spawner loop `rfork`ing one context per
//!   instance plus a collector loop receiving one completion token per
//!   instance on a shared done-channel (Fig. 4.10).
//! * procedure instantiation → `rfork` of the (reentrant) procedure
//!   context; value parameters flow in, `var` parameters flow back
//!   (Fig. 4.5).
//!
//! Side effects are sequenced with control tokens (§4.6): one `K$io`
//! token for channel I/O and timing, and one `K$a$<array>` token per
//! array with multiple-readers/single-writer ordering. Control tokens are
//! part of context interfaces, so cross-context side-effect ordering rides
//! the same channels as data.

use std::collections::{BTreeSet, HashMap};

use qm_isa::Opcode;

use crate::ast::{BinOp, Decl, Expr, Lvalue, Param, Process, Replicator};
use crate::emit::{emit_context, wire_end, EmitError};
use crate::graph::{Actor, ChanRef, ContextGraph, NodeId, ValueRef};
use crate::sema::{Resolved, SymKind};
use crate::Options;

/// Code generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError {
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codegen error: {}", self.msg)
    }
}

impl std::error::Error for CodegenError {}

impl From<EmitError> for CodegenError {
    fn from(e: EmitError) -> Self {
        CodegenError { msg: e.msg }
    }
}

/// The I/O + timing control token.
const K_IO: &str = "K$io";

fn k_arr(name: &str) -> String {
    format!("K$a${name}")
}

fn is_k(name: &str) -> bool {
    name.starts_with("K$")
}

/// Generate assembly for a resolved program.
///
/// # Errors
///
/// [`CodegenError`] for unsupported shapes (e.g. procedure bodies
/// capturing outer variables) or contexts exceeding the queue page.
pub fn generate(resolved: &Resolved, opts: &Options) -> Result<String, CodegenError> {
    match generate_once(resolved, opts) {
        Err(e) if opts.loop_unrolling && e.msg.contains("queue page") => {
            // Unrolling inflated a context past its queue page: degrade
            // gracefully by recompiling with loops kept as contexts (the
            // §4.3 granularity trade-off, resource-pressure edition).
            generate_once(resolved, &Options { loop_unrolling: false, ..*opts })
        }
        other => other,
    }
}

fn generate_once(resolved: &Resolved, opts: &Options) -> Result<String, CodegenError> {
    let graphs = context_graphs(resolved, opts)?;
    let mut asm = String::new();
    for (label, graph) in &graphs {
        asm.push_str(&emit_context(label, graph, opts.priority_scheduling)?);
    }
    Ok(asm)
}

/// Build the per-context data-flow graphs without emitting code (used by
/// [`crate::draw`] and by tests that inspect graph structure).
///
/// # Errors
///
/// Same failures as [`generate`].
pub fn context_graphs(
    resolved: &Resolved,
    opts: &Options,
) -> Result<Vec<(String, ContextGraph)>, CodegenError> {
    let mut c = Compiler {
        written: written_arrays(resolved),
        r: resolved,
        opts,
        contexts: Vec::new(),
        fresh: 0,
        proc_plans: HashMap::new(),
    };
    let main = resolved.main.clone();
    c.build_context("main".into(), &[], Some(&[]), false, |c, ctx| {
        c.stmt(ctx, &main, &BTreeSet::new())
    })?;
    Ok(c.contexts)
}

/// Interface of a compiled child context.
#[derive(Debug, Clone)]
struct ChildPlan {
    label: String,
    /// Names in the order the child receives them on its in channel.
    inputs: Vec<String>,
    /// Names in the order the child sends them on its out channel.
    outputs: Vec<String>,
}

/// Side-effect sequencing state for one control token.
#[derive(Debug, Clone, Default)]
struct Tail {
    /// Write barriers: nodes every subsequent access must follow.
    barrier: Vec<NodeId>,
    /// Reads since the last barrier (a new barrier must follow them all).
    reads: Vec<NodeId>,
}

/// A context under construction.
struct Ctx {
    g: ContextGraph,
    bindings: HashMap<String, ValueRef>,
    tails: HashMap<String, Tail>,
    recv_ins: Vec<(String, NodeId)>,
    /// Per-splice-channel send/recv chains, keyed by the channel value's
    /// producing node.
    chan_chains: HashMap<(NodeId, u8), NodeId>,
    /// Program-order chain through *every* potentially blocking channel
    /// operation (§4.6's strict single control token). A context may
    /// block on any channel op; chaining them in program order guarantees
    /// it blocks in the same order a sequential execution would, which is
    /// what makes the rendezvous protocol deadlock-free.
    io_chain: Option<NodeId>,
    /// First chained channel op (the prologue receives are linked in
    /// front of it during finalisation).
    first_io: Option<NodeId>,
}

impl Ctx {
    fn new() -> Self {
        Ctx {
            g: ContextGraph::new(),
            bindings: HashMap::new(),
            tails: HashMap::new(),
            recv_ins: Vec::new(),
            chan_chains: HashMap::new(),
            io_chain: None,
            first_io: None,
        }
    }

    /// Thread `node` onto the program-order channel-operation chain.
    fn link_io(&mut self, node: NodeId) {
        if let Some(prev) = self.io_chain.replace(node) {
            self.g.add_ctrl(prev, node);
        } else {
            self.first_io = Some(node);
        }
    }

    fn bind(&mut self, name: &str, v: ValueRef) {
        self.bindings.insert(name.to_string(), v);
    }

    fn value(&mut self, name: &str) -> Result<ValueRef, CodegenError> {
        if let Some(v) = self.bindings.get(name) {
            return Ok(*v);
        }
        if is_k(name) {
            // Control tokens materialise lazily as a zero word.
            let n = self.g.add(Actor::Const(0), &[], &[]);
            let v = ValueRef::of(n);
            self.bind(name, v);
            return Ok(v);
        }
        Err(CodegenError {
            msg: format!(
                "no binding for {name} in this context (procedure bodies may only reference \
                 their parameters)"
            ),
        })
    }

    fn tail(&mut self, name: &str) -> &mut Tail {
        self.tails.entry(name.to_string()).or_default()
    }

    /// Control predecessors for a *read* access under token `name`.
    fn read_ctrl(&mut self, name: &str) -> Vec<NodeId> {
        self.tail(name).barrier.clone()
    }

    /// Control predecessors for a *barrier* access (write / transfer).
    fn barrier_ctrl(&mut self, name: &str) -> Vec<NodeId> {
        let t = self.tail(name);
        let mut c = t.barrier.clone();
        c.extend(t.reads.iter().copied());
        c.sort_unstable();
        c.dedup();
        c
    }

    fn note_read(&mut self, name: &str, node: NodeId) {
        self.tail(name).reads.push(node);
    }

    fn note_barrier(&mut self, name: &str, node: NodeId) {
        let t = self.tail(name);
        t.barrier = vec![node];
        t.reads.clear();
    }

    /// Chain an operation on a run-time channel value.
    fn chan_ctrl(&mut self, chan: ValueRef, node: NodeId) -> Vec<NodeId> {
        let key = (chan.node, chan.out);
        let prev = self.chan_chains.insert(key, node);
        prev.into_iter().collect()
    }
}

struct Compiler<'a> {
    r: &'a Resolved,
    opts: &'a Options,
    contexts: Vec<(String, ContextGraph)>,
    fresh: usize,
    proc_plans: HashMap<String, ChildPlan>,
    /// Arrays written anywhere in the program. Host-initialised arrays
    /// that are only ever read need no control-token sequencing at all.
    written: BTreeSet<String>,
}

impl<'a> Compiler<'a> {
    fn fresh_label(&mut self, base: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("{base}_{n}")
    }

    fn fresh_name(&mut self, base: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("{base}${n}")
    }

    fn kind(&self, name: &str) -> Option<&SymKind> {
        self.r.syms.get(name)
    }

    /// Whether accesses to array `name` must be sequenced. Array
    /// parameters always thread their token (the bound array may be
    /// written through an alias); named arrays only when some statement
    /// writes them.
    fn k_needed(&self, name: &str) -> bool {
        self.kind(name) == Some(&SymKind::ArrayParam) || self.written.contains(name)
    }

    // ------------------------------------------------------------------
    // Context construction
    // ------------------------------------------------------------------

    /// Build a context: prologue receives for `live_in`, the body closure,
    /// then (when `live_out` is `Some`) epilogue sends on the out channel.
    /// Returns the interface plan; `allow_pi` enables §4.5 input
    /// sequencing (only safe when this context has a single, matching
    /// sender).
    fn build_context(
        &mut self,
        label: String,
        live_in: &[String],
        live_out: Option<&[String]>,
        allow_pi: bool,
        body: impl FnOnce(&mut Self, &mut Ctx) -> Result<(), CodegenError>,
    ) -> Result<ChildPlan, CodegenError> {
        let mut ctx = Ctx::new();
        for name in live_in {
            let n = ctx.g.add(Actor::Recv(ChanRef::InReg), &[], &[]);
            ctx.bind(name, ValueRef::of(n));
            if is_k(name) {
                ctx.note_barrier(name, n);
            }
            ctx.recv_ins.push((name.clone(), n));
        }
        body(self, &mut ctx)?;
        if let Some(outs) = live_out {
            let mut prev: Option<NodeId> = None;
            for name in outs {
                let v = ctx.value(name)?;
                let mut ctrl: Vec<NodeId> = prev.into_iter().collect();
                if is_k(name) {
                    ctrl.extend(ctx.barrier_ctrl(name));
                }
                if prev.is_none() {
                    // Deadlock avoidance: drain every input before the
                    // first output send — the parent sends all inputs
                    // before receiving any output, and both sides block
                    // on the rendezvous.
                    ctrl.extend(ctx.recv_ins.iter().map(|&(_, n)| n));
                }
                let s = ctx.g.add(Actor::Send(ChanRef::OutReg), &[v], &ctrl);
                ctx.link_io(s);
                prev = Some(s);
            }
        }
        // Input sequencing: order the prologue receives.
        let inputs: Vec<String> = if allow_pi
            && self.opts.input_sequencing
            && ctx.recv_ins.len() > 1
        {
            let nodes: Vec<NodeId> = ctx.recv_ins.iter().map(|&(_, n)| n).collect();
            let ordered = ctx.g.input_order(&nodes);
            ordered
                .iter()
                .map(|&n| {
                    ctx.recv_ins.iter().find(|&&(_, m)| m == n).expect("input node known").0.clone()
                })
                .collect()
        } else {
            live_in.to_vec()
        };
        // Chain the receives in the chosen order (they all share the in
        // channel, so order is semantically load-bearing).
        let node_of: HashMap<&String, NodeId> =
            ctx.recv_ins.iter().map(|(n, id)| (n, *id)).collect();
        for pair in inputs.windows(2) {
            ctx.g.add_ctrl(node_of[&pair[0]], node_of[&pair[1]]);
        }
        // Drain the inputs before any other channel operation can block
        // the context (same rationale as link_io).
        if let (Some(last_in), Some(first_io)) = (inputs.last(), ctx.first_io) {
            ctx.g.add_ctrl(node_of[last_in], first_io);
        }
        let end = ctx.g.add(Actor::End, &[], &[]);
        wire_end(&mut ctx.g, end);
        self.contexts.push((label.clone(), ctx.g));
        Ok(ChildPlan {
            label,
            inputs,
            outputs: live_out.map(<[String]>::to_vec).unwrap_or_default(),
        })
    }

    /// Parent-side splice: fork `target`, send the plan's inputs
    /// (translated through `map`: child name → parent name), then receive
    /// the plan's outputs (rfork only). `spawn_only` skips the receives
    /// (replicated `par` bodies report on a done-channel instead).
    #[allow(clippy::too_many_arguments)]
    fn splice(
        &mut self,
        ctx: &mut Ctx,
        target: ValueRef,
        plan: &ChildPlan,
        iterative: bool,
        local: bool,
        map: &HashMap<String, String>,
        in_vals: &HashMap<String, ValueRef>,
        spawn_only: bool,
    ) -> Result<(), CodegenError> {
        let resolve = |name: &String| map.get(name).cloned().unwrap_or_else(|| name.clone());
        let fork = ctx.g.add(Actor::Fork { iterative, local }, &[target], &[]);
        let c_in = ValueRef { node: fork, out: 0 };
        let mut last_send: Option<NodeId> = None;
        for name in &plan.inputs {
            let parent_name = resolve(name);
            let v = if let Some(v) = in_vals.get(name) { *v } else { ctx.value(&parent_name)? };
            let mut ctrl = Vec::new();
            if is_k(&parent_name) {
                ctrl.extend(ctx.barrier_ctrl(&parent_name));
            }
            let s = ctx.g.add(Actor::Send(ChanRef::Value), &[c_in, v], &ctrl);
            ctx.link_io(s);
            for c in ctx.chan_ctrl(c_in, s) {
                ctx.g.add_ctrl(c, s);
            }
            if is_k(&parent_name) {
                ctx.note_barrier(&parent_name, s);
            }
            last_send = Some(s);
        }
        if iterative || spawn_only {
            return Ok(());
        }
        let c_out = ValueRef { node: fork, out: 1 };
        let mut first_recv = true;
        for name in &plan.outputs {
            let parent_name = resolve(name);
            // Deadlock avoidance: never wait for an output before every
            // input has been handed over.
            let ctrl: Vec<NodeId> = if first_recv {
                first_recv = false;
                last_send.into_iter().collect()
            } else {
                Vec::new()
            };
            let r = ctx.g.add(Actor::Recv(ChanRef::Value), &[c_out], &ctrl);
            ctx.link_io(r);
            for c in ctx.chan_ctrl(c_out, r) {
                ctx.g.add_ctrl(c, r);
            }
            ctx.bind(&parent_name, ValueRef::of(r));
            if is_k(&parent_name) {
                ctx.note_barrier(&parent_name, r);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn const_node(&self, ctx: &mut Ctx, v: i32) -> ValueRef {
        ValueRef::of(ctx.g.add(Actor::Const(v), &[], &[]))
    }

    fn expr(&mut self, ctx: &mut Ctx, e: &Expr) -> Result<ValueRef, CodegenError> {
        Ok(match e {
            Expr::Const(v) => self.const_node(ctx, *v),
            Expr::Var(name) => match self.kind(name) {
                Some(SymKind::Array { addr, .. }) =>
                {
                    #[allow(clippy::cast_possible_wrap)]
                    self.const_node(ctx, *addr as i32)
                }
                Some(SymKind::Chan { host: true }) => self.const_node(ctx, 0),
                _ => ctx.value(name)?,
            },
            Expr::Index(name, idx) => {
                let addr = self.addr_value(ctx, name, idx)?;
                if self.k_needed(name) {
                    let k = k_arr(name);
                    let ctrl = ctx.read_ctrl(&k);
                    let f = ctx.g.add(Actor::Fetch, &[addr], &ctrl);
                    ctx.note_read(&k, f);
                    ValueRef::of(f)
                } else {
                    // Never-written (host-constant) array: reads need no
                    // sequencing.
                    ValueRef::of(ctx.g.add(Actor::Fetch, &[addr], &[]))
                }
            }
            Expr::Neg(inner) => {
                if let Expr::Const(v) = **inner {
                    return Ok(self.const_node(ctx, v.wrapping_neg()));
                }
                let v = self.expr(ctx, inner)?;
                ValueRef::of(ctx.g.add(Actor::Neg, &[v], &[]))
            }
            Expr::Not(inner) => {
                let v = self.expr(ctx, inner)?;
                ValueRef::of(ctx.g.add(Actor::Not, &[v], &[]))
            }
            Expr::Bin(op, a, b) => {
                let va = self.expr(ctx, a)?;
                let vb = self.expr(ctx, b)?;
                ValueRef::of(ctx.g.add(Actor::Bin(binop_opcode(*op)), &[va, vb], &[]))
            }
            Expr::Now => {
                let ctrl = ctx.barrier_ctrl(K_IO);
                let n = ctx.g.add(Actor::Now, &[], &ctrl);
                ctx.note_barrier(K_IO, n);
                ValueRef::of(n)
            }
        })
    }

    /// Byte address of `name[idx]`.
    fn addr_value(
        &mut self,
        ctx: &mut Ctx,
        name: &str,
        idx: &Expr,
    ) -> Result<ValueRef, CodegenError> {
        match self.kind(name) {
            Some(SymKind::Array { addr, len }) => {
                if let Expr::Const(k) = idx {
                    if *k < 0 || (*k as u32) >= *len {
                        return Err(CodegenError {
                            msg: format!("constant index {k} out of bounds for {name}[{len}]"),
                        });
                    }
                    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
                    return Ok(self.const_node(ctx, (*addr + 4 * (*k as u32)) as i32));
                }
                #[allow(clippy::cast_possible_wrap)]
                let base = self.const_node(ctx, *addr as i32);
                self.indexed_addr(ctx, base, idx)
            }
            _ => {
                let base = ctx.value(name)?;
                self.indexed_addr(ctx, base, idx)
            }
        }
    }

    fn indexed_addr(
        &mut self,
        ctx: &mut Ctx,
        base: ValueRef,
        idx: &Expr,
    ) -> Result<ValueRef, CodegenError> {
        let iv = self.expr(ctx, idx)?;
        let two = self.const_node(ctx, 2);
        let scaled = ctx.g.add(Actor::Bin(Opcode::Lshift), &[iv, two], &[]);
        Ok(ValueRef::of(ctx.g.add(Actor::Bin(Opcode::Plus), &[base, ValueRef::of(scaled)], &[])))
    }

    /// The run-time channel word for a named channel.
    fn chan_value(&mut self, ctx: &mut Ctx, name: &str) -> Result<ValueRef, CodegenError> {
        match self.kind(name) {
            Some(SymKind::Chan { host: true }) => Ok(self.const_node(ctx, 0)),
            _ => ctx.value(name),
        }
    }

    /// `sel(cond, a, b)` lowering: `(a ∧ cond) ∨ (b ∧ ¬cond)`.
    fn sel(&mut self, ctx: &mut Ctx, cond: ValueRef, a: ValueRef, b: ValueRef) -> ValueRef {
        // OCCAM truth is "any non-zero"; the mask trick needs the
        // canonical all-ones/all-zeroes encoding, so normalise first
        // (`ne` produces exactly that).
        let zero = self.const_node(ctx, 0);
        let c = ctx.g.add(Actor::Bin(Opcode::Ne), &[cond, zero], &[]);
        let cond = ValueRef::of(c);
        let t1 = ctx.g.add(Actor::Bin(Opcode::And), &[a, cond], &[]);
        let ncond = ctx.g.add(Actor::Not, &[cond], &[]);
        let t2 = ctx.g.add(Actor::Bin(Opcode::And), &[b, ValueRef::of(ncond)], &[]);
        ValueRef::of(ctx.g.add(Actor::Bin(Opcode::Or), &[ValueRef::of(t1), ValueRef::of(t2)], &[]))
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmts(
        &mut self,
        ctx: &mut Ctx,
        ps: &[Process],
        live_after: &BTreeSet<String>,
    ) -> Result<(), CodegenError> {
        // Backward live sets: live[i] is the set live after ps[i]. Only
        // *unconditional* definitions kill liveness — an `if`/`while`
        // may leave the old value in place, which the echo protocol must
        // then transmit.
        let mut lives: Vec<BTreeSet<String>> = vec![live_after.clone()];
        for p in ps.iter().rev() {
            let (u, _) = self.uses_defs(p);
            let kills = self.must_defs(p);
            let mut l = lives.last().expect("seeded").clone();
            for x in &kills {
                l.remove(x);
            }
            l.extend(u);
            lives.push(l);
        }
        lives.reverse(); // lives[i+1] = live after ps[i]
        for (i, p) in ps.iter().enumerate() {
            self.stmt(ctx, p, &lives[i + 1])?;
        }
        Ok(())
    }

    fn stmt(
        &mut self,
        ctx: &mut Ctx,
        p: &Process,
        live_after: &BTreeSet<String>,
    ) -> Result<(), CodegenError> {
        match p {
            Process::Skip => Ok(()),
            Process::Assign(Lvalue::Var(x), e) => {
                let v = self.expr(ctx, e)?;
                ctx.bind(x, v);
                Ok(())
            }
            Process::Assign(Lvalue::Index(a, idx), e) => {
                let v = self.expr(ctx, e)?;
                let addr = self.addr_value(ctx, a, idx)?;
                let k = k_arr(a);
                let ctrl = ctx.barrier_ctrl(&k);
                let st = ctx.g.add(Actor::Store, &[addr, v], &ctrl);
                ctx.note_barrier(&k, st);
                Ok(())
            }
            Process::Output(c, e) => {
                let v = self.expr(ctx, e)?;
                let cv = self.chan_value(ctx, c)?;
                let ctrl = ctx.barrier_ctrl(K_IO);
                let s = ctx.g.add(Actor::Send(ChanRef::Value), &[cv, v], &ctrl);
                ctx.link_io(s);
                ctx.note_barrier(K_IO, s);
                Ok(())
            }
            Process::Input(c, lv) => {
                let cv = self.chan_value(ctx, c)?;
                let ctrl = ctx.barrier_ctrl(K_IO);
                let r = ctx.g.add(Actor::Recv(ChanRef::Value), &[cv], &ctrl);
                ctx.link_io(r);
                ctx.note_barrier(K_IO, r);
                match lv {
                    Lvalue::Var(x) => ctx.bind(x, ValueRef::of(r)),
                    Lvalue::Index(a, idx) => {
                        let addr = self.addr_value(ctx, a, idx)?;
                        let k = k_arr(a);
                        let sctrl = ctx.barrier_ctrl(&k);
                        let st = ctx.g.add(Actor::Store, &[addr, ValueRef::of(r)], &sctrl);
                        ctx.note_barrier(&k, st);
                    }
                }
                Ok(())
            }
            Process::Wait(e) => {
                let v = self.expr(ctx, e)?;
                let ctrl = ctx.barrier_ctrl(K_IO);
                let w = ctx.g.add(Actor::Wait, &[v], &ctrl);
                ctx.link_io(w);
                ctx.note_barrier(K_IO, w);
                Ok(())
            }
            Process::Scope(decls, _, body) => {
                for d in decls {
                    match d {
                        Decl::Scalar(n) => {
                            let z = self.const_node(ctx, 0);
                            ctx.bind(n, z);
                        }
                        Decl::Chan(n) => {
                            let c = ctx.g.add(Actor::ChanNew, &[], &[]);
                            ctx.bind(n, ValueRef::of(c));
                        }
                        Decl::Array(..) => {}
                    }
                }
                self.stmt(ctx, body, live_after)
            }
            Process::Seq(None, ps) => self.stmts(ctx, ps, live_after),
            Process::Seq(Some(rep), ps) => self.gen_replicated_seq(ctx, rep, ps, live_after),
            Process::Par(None, ps) => self.gen_par(ctx, ps, live_after),
            Process::Par(Some(rep), ps) => self.gen_replicated_par(ctx, rep, ps, live_after),
            Process::If(branches) => self.gen_if(ctx, branches, live_after),
            Process::While(cond, body) => self.gen_while(ctx, cond, body, live_after),
            Process::Call(name, args) => self.gen_call(ctx, name, args, live_after),
        }
    }

    // ------------------------------------------------------------------
    // Constructs
    // ------------------------------------------------------------------

    /// Shared loop machinery (Fig. 4.6): returns after wiring the parent's
    /// rfork/sends/recvs. `l` must be sorted and contain every name the
    /// condition and body touch; `outs ⊆ l` flows back to the parent.
    #[allow(clippy::too_many_arguments)]
    fn gen_loop(
        &mut self,
        ctx: &mut Ctx,
        l: &[String],
        outs: &[String],
        cond: impl FnOnce(&mut Self, &mut Ctx) -> Result<ValueRef, CodegenError>,
        body: impl FnOnce(&mut Self, &mut Ctx) -> Result<(), CodegenError>,
    ) -> Result<(), CodegenError> {
        let test_l = self.fresh_label("test");
        let body_l = self.fresh_label("body");
        let term_l = self.fresh_label("term");
        // Terminator: echo the live-outs to the inherited out channel.
        self.build_context(term_l.clone(), l, Some(outs), false, |_, _| Ok(()))?;
        // Body: compute, then ifork the test and forward L.
        {
            let test_l = test_l.clone();
            let l_vec = l.to_vec();
            self.build_context(body_l.clone(), l, None, false, move |c, bctx| {
                body(c, bctx)?;
                let lbl = bctx.g.add(Actor::Label(test_l), &[], &[]);
                let plan = ChildPlan { label: String::new(), inputs: l_vec, outputs: Vec::new() };
                c.splice(
                    bctx,
                    ValueRef::of(lbl),
                    &plan,
                    true,
                    true,
                    &HashMap::new(),
                    &HashMap::new(),
                    true,
                )
            })?;
        }
        // Test: evaluate the condition, select body/terminator, ifork it.
        {
            let body_l = body_l.clone();
            let term_l = term_l.clone();
            let l_vec = l.to_vec();
            self.build_context(test_l.clone(), l, None, false, move |c, tctx| {
                let cv = cond(c, tctx)?;
                let bl = ValueRef::of(tctx.g.add(Actor::Label(body_l), &[], &[]));
                let tl = ValueRef::of(tctx.g.add(Actor::Label(term_l), &[], &[]));
                let target = c.sel(tctx, cv, bl, tl);
                let plan = ChildPlan { label: String::new(), inputs: l_vec, outputs: Vec::new() };
                c.splice(tctx, target, &plan, true, true, &HashMap::new(), &HashMap::new(), true)
            })?;
        }
        // Parent: rfork the test, send L, receive the outs.
        let lbl = ctx.g.add(Actor::Label(test_l.clone()), &[], &[]);
        let plan = ChildPlan { label: test_l, inputs: l.to_vec(), outputs: outs.to_vec() };
        self.splice(
            ctx,
            ValueRef::of(lbl),
            &plan,
            false,
            true,
            &HashMap::new(),
            &HashMap::new(),
            false,
        )
    }

    fn loop_sets(
        &mut self,
        ctx: &Ctx,
        uses: &BTreeSet<String>,
        defs: &BTreeSet<String>,
        live_after: &BTreeSet<String>,
        extra: &[String],
    ) -> (Vec<String>, Vec<String>) {
        let mut l: BTreeSet<String> = uses.clone();
        if self.opts.live_value_analysis {
            for d in defs {
                if live_after.contains(d) || uses.contains(d) {
                    l.insert(d.clone());
                }
            }
        } else {
            // No live-value analysis: ship the whole bound environment
            // across the interface (the unoptimized baseline of §4.4).
            l.extend(defs.iter().cloned());
            l.extend(ctx.bindings.keys().cloned());
        }
        l.extend(extra.iter().cloned());
        let mut outs: BTreeSet<String> = if self.opts.live_value_analysis {
            defs.iter().filter(|d| live_after.contains(*d)).cloned().collect()
        } else {
            defs.iter().cloned().collect()
        };
        // Control tokens always round-trip: a construct that only *reads*
        // an array must still hand its token back, or the parent's next
        // write races with the construct's reads.
        outs.extend(uses.iter().chain(defs.iter()).filter(|n| is_k(n)).cloned());
        for o in &outs {
            l.insert(o.clone());
        }
        (l.into_iter().collect(), outs.into_iter().collect())
    }

    fn gen_while(
        &mut self,
        ctx: &mut Ctx,
        cond: &Expr,
        body: &Process,
        live_after: &BTreeSet<String>,
    ) -> Result<(), CodegenError> {
        let (mut u, d) = self.uses_defs(body);
        let mut cu = BTreeSet::new();
        self.expr_uses(cond, &mut cu);
        u.extend(cu);
        let (l, outs) = self.loop_sets(ctx, &u, &d, live_after, &[]);
        let cond = cond.clone();
        let body = body.clone();
        let l_set: BTreeSet<String> = l.iter().cloned().collect();
        self.gen_loop(
            ctx,
            &l,
            &outs,
            move |c, tctx| c.expr(tctx, &cond),
            move |c, bctx| c.stmt(bctx, &body, &l_set),
        )
    }

    /// Is `seq i = [c0 for c1] ps` small and primitive enough to expand
    /// in place? Returns the constant bounds when it is.
    fn unrollable(&self, rep: &Replicator, ps: &[Process]) -> Option<(i32, i32)> {
        if !self.opts.loop_unrolling {
            return None;
        }
        let (Expr::Const(start), Expr::Const(count)) = (&rep.start, &rep.count) else {
            return None;
        };
        if !(0..=16).contains(count) {
            return None;
        }
        fn primitive_cost(p: &Process) -> Option<usize> {
            match p {
                Process::Skip => Some(0),
                Process::Assign(..) => Some(1),
                Process::Seq(None, ps) => ps.iter().map(primitive_cost).sum::<Option<usize>>(),
                _ => None, // constructs, I/O and declarations stay loops
            }
        }
        let cost: usize = ps.iter().map(primitive_cost).sum::<Option<usize>>()?;
        #[allow(clippy::cast_sign_loss)]
        if cost * (*count as usize) > 48 {
            return None;
        }
        Some((*start, *count))
    }

    fn gen_replicated_seq(
        &mut self,
        ctx: &mut Ctx,
        rep: &Replicator,
        ps: &[Process],
        live_after: &BTreeSet<String>,
    ) -> Result<(), CodegenError> {
        if let Some((start, count)) = self.unrollable(rep, ps) {
            // Expand in place: the body joins this context's acyclic
            // graph with the index bound to a constant (§4.3's trade-off,
            // biased toward larger graphs per context).
            for v in start..start.wrapping_add(count) {
                let c = self.const_node(ctx, v);
                ctx.bind(&rep.var, c);
                for p in ps {
                    self.stmt(ctx, p, live_after)?;
                }
            }
            return Ok(());
        }
        let i_name = rep.var.clone();
        let lim = self.fresh_name("lim");
        let start_v = self.expr(ctx, &rep.start)?;
        let count_v = self.expr(ctx, &rep.count)?;
        let lim_v = ctx.g.add(Actor::Bin(Opcode::Plus), &[start_v, count_v], &[]);
        ctx.bind(&i_name, start_v);
        ctx.bind(&lim, ValueRef::of(lim_v));
        let body = Process::Seq(None, ps.to_vec());
        let (u, mut d) = self.uses_defs(&body);
        d.insert(i_name.clone());
        let (l, outs) = self.loop_sets(ctx, &u, &d, live_after, &[i_name.clone(), lim.clone()]);
        let l_set: BTreeSet<String> = l.iter().cloned().collect();
        let in2 = i_name.clone();
        let lim2 = lim.clone();
        self.gen_loop(
            ctx,
            &l,
            &outs,
            move |c, tctx| {
                let iv = tctx.value(&i_name)?;
                let lv = tctx.value(&lim)?;
                let _ = c;
                Ok(ValueRef::of(tctx.g.add(Actor::Bin(Opcode::Lt), &[iv, lv], &[])))
            },
            move |c, bctx| {
                c.stmt(bctx, &body, &l_set)?;
                let iv = bctx.value(&in2)?;
                let one = c.const_node(bctx, 1);
                let next = bctx.g.add(Actor::Bin(Opcode::Plus), &[iv, one], &[]);
                bctx.bind(&in2, ValueRef::of(next));
                let _ = &lim2;
                Ok(())
            },
        )
    }

    fn gen_if(
        &mut self,
        ctx: &mut Ctx,
        branches: &[(Expr, Process)],
        live_after: &BTreeSet<String>,
    ) -> Result<(), CodegenError> {
        let mut all_u = BTreeSet::new();
        let mut all_d = BTreeSet::new();
        for (_, p) in branches {
            let (u, d) = self.uses_defs(p);
            all_u.extend(u);
            all_d.extend(d);
        }
        let outs: Vec<String> = {
            let mut o: BTreeSet<String> = if self.opts.live_value_analysis {
                all_d.iter().filter(|d| live_after.contains(*d)).cloned().collect()
            } else {
                all_d.iter().cloned().collect()
            };
            o.extend(all_u.iter().chain(all_d.iter()).filter(|n| is_k(n)).cloned());
            o.into_iter().collect()
        };
        let ins: Vec<String> = {
            let mut s = all_u;
            s.extend(outs.iter().cloned());
            if !self.opts.live_value_analysis {
                s.extend(ctx.bindings.keys().cloned());
            }
            s.into_iter().collect()
        };
        let out_set: BTreeSet<String> = outs.iter().cloned().collect();
        // Branch contexts (echo semantics for values they don't write).
        let mut labels = Vec::new();
        for (bi, (_, p)) in branches.iter().enumerate() {
            let label = self.fresh_label(&format!("ifb{bi}"));
            let p = p.clone();
            let out_set = out_set.clone();
            self.build_context(label.clone(), &ins, Some(&outs), false, move |c, bctx| {
                c.stmt(bctx, &p, &out_set)
            })?;
            labels.push(label);
        }
        let skip_l = self.fresh_label("ifskip");
        self.build_context(skip_l.clone(), &ins, Some(&outs), false, |_, _| Ok(()))?;
        // Parent: evaluate guards, select the branch address, splice.
        let mut target = ValueRef::of(ctx.g.add(Actor::Label(skip_l), &[], &[]));
        for ((cond, _), label) in branches.iter().zip(&labels).rev() {
            let cv = self.expr(ctx, cond)?;
            let bl = ValueRef::of(ctx.g.add(Actor::Label(label.clone()), &[], &[]));
            target = self.sel(ctx, cv, bl, target);
        }
        let plan = ChildPlan { label: String::new(), inputs: ins, outputs: outs };
        self.splice(ctx, target, &plan, false, true, &HashMap::new(), &HashMap::new(), false)
    }

    fn gen_par(
        &mut self,
        ctx: &mut Ctx,
        ps: &[Process],
        live_after: &BTreeSet<String>,
    ) -> Result<(), CodegenError> {
        // Build every branch context first.
        let mut plans = Vec::new();
        let mut branch_writes: Vec<BTreeSet<String>> = Vec::new();
        for (bi, p) in ps.iter().enumerate() {
            let (u, d) = self.uses_defs(p);
            branch_writes.push(d.iter().filter(|n| is_k(n)).cloned().collect());
            let outs: Vec<String> = {
                let mut o: BTreeSet<String> = if self.opts.live_value_analysis {
                    d.iter().filter(|x| live_after.contains(*x) || is_k(x)).cloned().collect()
                } else {
                    d.iter().cloned().collect()
                };
                o.extend(u.iter().filter(|n| is_k(n)).cloned());
                o.into_iter().collect()
            };
            let ins: Vec<String> = {
                let mut s = u;
                // Echo semantics: a branch's defs are may-defs (a
                // replication can run zero times), so every output value
                // must also arrive as an input to echo back.
                s.extend(outs.iter().cloned());
                if !self.opts.live_value_analysis {
                    s.extend(ctx.bindings.keys().cloned());
                }
                s.into_iter().collect()
            };
            let out_set: BTreeSet<String> = outs.iter().cloned().collect();
            let label = self.fresh_label(&format!("parb{bi}"));
            let p = p.clone();
            let plan = self.build_context(label, &ins, Some(&outs), true, move |c, bctx| {
                c.stmt(bctx, &p, &out_set)
            })?;
            plans.push(plan);
        }
        // Parent: fork + send everything first…
        let mut forks = Vec::new();
        let mut last_sends = Vec::new();
        for (plan, writes) in plans.iter().zip(&branch_writes) {
            let lbl = ctx.g.add(Actor::Label(plan.label.clone()), &[], &[]);
            let fork = ctx.g.add(
                Actor::Fork { iterative: false, local: false },
                &[ValueRef::of(lbl)],
                &[],
            );
            let c_in = ValueRef { node: fork, out: 0 };
            let mut last: Option<NodeId> = None;
            for name in &plan.inputs {
                let v = ctx.value(name)?;
                let mut ctrl = Vec::new();
                let write_handoff = is_k(name) && writes.contains(name);
                if write_handoff {
                    // The branch will write under this token: it must
                    // observe every earlier read too (write barrier).
                    ctrl.extend(ctx.barrier_ctrl(name));
                } else if is_k(name) {
                    // Read-only replicated token handoff.
                    ctrl.extend(ctx.read_ctrl(name));
                }
                let s = ctx.g.add(Actor::Send(ChanRef::Value), &[c_in, v], &ctrl);
                ctx.link_io(s);
                for c in ctx.chan_ctrl(c_in, s) {
                    ctx.g.add_ctrl(c, s);
                }
                if write_handoff {
                    ctx.note_barrier(name, s);
                } else if is_k(name) {
                    ctx.note_read(name, s);
                }
                last = Some(s);
            }
            forks.push(fork);
            last_sends.push(last);
        }
        // …then receive every branch's outputs; merge control tokens.
        let mut k_recvs: HashMap<String, Vec<NodeId>> = HashMap::new();
        for ((plan, fork), last) in plans.iter().zip(&forks).zip(&last_sends) {
            let c_out = ValueRef { node: *fork, out: 1 };
            let mut first = true;
            for name in &plan.outputs {
                // Deadlock avoidance: drain this branch's sends first.
                let ctrl: Vec<NodeId> = if first {
                    first = false;
                    last.iter().copied().collect()
                } else {
                    Vec::new()
                };
                let r = ctx.g.add(Actor::Recv(ChanRef::Value), &[c_out], &ctrl);
                ctx.link_io(r);
                for c in ctx.chan_ctrl(c_out, r) {
                    ctx.g.add_ctrl(c, r);
                }
                ctx.bind(name, ValueRef::of(r));
                if is_k(name) {
                    k_recvs.entry(name.clone()).or_default().push(r);
                }
            }
        }
        for (name, recvs) in k_recvs {
            let t = ctx.tail(&name);
            t.barrier = recvs;
            t.reads.clear();
        }
        Ok(())
    }

    fn gen_replicated_par(
        &mut self,
        ctx: &mut Ctx,
        rep: &Replicator,
        ps: &[Process],
        live_after: &BTreeSet<String>,
    ) -> Result<(), CodegenError> {
        let body = Process::Seq(None, ps.to_vec());
        let (u, d) = self.uses_defs(&body);
        let mut u = u;
        u.remove(&rep.var);
        // Control tokens the instances need copies of / the parent must
        // resynchronise after the join.
        let k_names: Vec<String> = u.iter().chain(d.iter()).filter(|n| is_k(n)).cloned().collect();
        let done = self.fresh_name("done");
        let cnum = ctx.g.add(Actor::ChanNew, &[], &[]);
        ctx.bind(&done, ValueRef::of(cnum));
        // Instance context: receives (i, done, ins…), computes, reports.
        let mut ins: BTreeSet<String> = u.clone();
        ins.insert(rep.var.clone());
        ins.insert(done.clone());
        ins.extend(k_names.iter().cloned());
        let ins: Vec<String> = ins.into_iter().collect();
        let inst_l = self.fresh_label("parn");
        let inst_plan = {
            let body = body.clone();
            let done = done.clone();
            // Control tokens stay live through the instance body so nested
            // constructs hand them back — the done token must follow every
            // store, including those made inside nested loop contexts.
            let body_live_after: BTreeSet<String> = k_names.iter().cloned().collect();
            self.build_context(inst_l, &ins, None, true, move |c, bctx| {
                c.stmt(bctx, &body, &body_live_after)?;
                // Completion token, after every side effect in here.
                let dv = bctx.value(&done)?;
                let one = c.const_node(bctx, 1);
                let mut ctrl: Vec<NodeId> = Vec::new();
                let tails: Vec<String> = bctx.tails.keys().cloned().collect();
                for t in tails {
                    ctrl.extend(bctx.barrier_ctrl(&t));
                }
                ctrl.sort_unstable();
                ctrl.dedup();
                let done_send = bctx.g.add(Actor::Send(ChanRef::Value), &[dv, one], &ctrl);
                bctx.link_io(done_send);
                Ok(())
            })?
        };
        // Constant instance count: inline the spawner and collector —
        // the parent forks every instance and gathers every completion
        // token straight from its own acyclic graph.
        if let (Expr::Const(start), Expr::Const(count), true) =
            (&rep.start, &rep.count, self.opts.loop_unrolling)
        {
            if (0..=16).contains(count) {
                let (start, count) = (*start, *count);
                for v in start..start.wrapping_add(count) {
                    let c = self.const_node(ctx, v);
                    ctx.bind(&rep.var, c);
                    let lbl = ctx.g.add(Actor::Label(inst_plan.label.clone()), &[], &[]);
                    self.splice(
                        ctx,
                        ValueRef::of(lbl),
                        &inst_plan,
                        false,
                        false,
                        &HashMap::new(),
                        &HashMap::new(),
                        true, // spawn only
                    )?;
                }
                let done_v = ctx.value(&done)?;
                let mut recvs = Vec::new();
                for _ in 0..count {
                    let r = ctx.g.add(Actor::Recv(ChanRef::Value), &[done_v], &[]);
                    ctx.link_io(r);
                    for c in ctx.chan_ctrl(done_v, r) {
                        ctx.g.add_ctrl(c, r);
                    }
                    recvs.push(r);
                }
                if !recvs.is_empty() {
                    // Zero instances leave the prior ordering in force.
                    for name in &k_names {
                        let t = ctx.tail(name);
                        t.barrier.clone_from(&recvs);
                        t.reads.clear();
                    }
                }
                let _ = live_after;
                return Ok(());
            }
        }
        // Spawner loop: rfork one instance per index value.
        let i_name = rep.var.clone();
        let lim = self.fresh_name("lim");
        let cnt = self.fresh_name("cnt");
        let start_v = self.expr(ctx, &rep.start)?;
        let count_v = self.expr(ctx, &rep.count)?;
        let lim_v = ctx.g.add(Actor::Bin(Opcode::Plus), &[start_v, count_v], &[]);
        ctx.bind(&i_name, start_v);
        ctx.bind(&cnt, count_v);
        ctx.bind(&lim, ValueRef::of(lim_v));
        let mut l1: BTreeSet<String> = u.clone();
        l1.insert(i_name.clone());
        l1.insert(lim.clone());
        l1.insert(done.clone());
        l1.extend(k_names.iter().cloned());
        let l1: Vec<String> = l1.into_iter().collect();
        {
            let i2 = i_name.clone();
            let lim2 = lim.clone();
            let plan = inst_plan.clone();
            self.gen_loop(
                ctx,
                &l1,
                &[],
                move |_c, tctx| {
                    let iv = tctx.value(&i2)?;
                    let lv = tctx.value(&lim2)?;
                    Ok(ValueRef::of(tctx.g.add(Actor::Bin(Opcode::Lt), &[iv, lv], &[])))
                },
                move |c, bctx| {
                    let lbl = bctx.g.add(Actor::Label(plan.label.clone()), &[], &[]);
                    c.splice(
                        bctx,
                        ValueRef::of(lbl),
                        &plan,
                        false,
                        false, // true parallelism: spread over PEs
                        &HashMap::new(),
                        &HashMap::new(),
                        true, // spawn only
                    )?;
                    let iv = bctx.value(&i_name)?;
                    let one = c.const_node(bctx, 1);
                    let next = bctx.g.add(Actor::Bin(Opcode::Plus), &[iv, one], &[]);
                    bctx.bind(&i_name, ValueRef::of(next));
                    Ok(())
                },
            )?;
        }
        // Collector loop: one completion token per instance.
        let j = self.fresh_name("j");
        let sync = self.fresh_name("sync");
        let zero = self.const_node(ctx, 0);
        ctx.bind(&j, zero);
        ctx.bind(&sync, zero);
        let l2: Vec<String> = {
            let mut s = BTreeSet::new();
            s.insert(j.clone());
            s.insert(cnt.clone());
            s.insert(done.clone());
            s.insert(sync.clone());
            s.into_iter().collect()
        };
        {
            let j2 = j.clone();
            let cnt2 = cnt.clone();
            let done2 = done.clone();
            let sync2 = sync.clone();
            self.gen_loop(
                ctx,
                &l2,
                std::slice::from_ref(&sync),
                move |_c, tctx| {
                    let jv = tctx.value(&j2)?;
                    let cv = tctx.value(&cnt2)?;
                    Ok(ValueRef::of(tctx.g.add(Actor::Bin(Opcode::Lt), &[jv, cv], &[])))
                },
                move |c, bctx| {
                    let dv = bctx.value(&done2)?;
                    let r = bctx.g.add(Actor::Recv(ChanRef::Value), &[dv], &[]);
                    bctx.link_io(r);
                    bctx.bind(&sync2, ValueRef::of(r));
                    let jv = bctx.value(&j)?;
                    let one = c.const_node(bctx, 1);
                    let next = bctx.g.add(Actor::Bin(Opcode::Plus), &[jv, one], &[]);
                    bctx.bind(&j, ValueRef::of(next));
                    Ok(())
                },
            )?;
        }
        // Re-establish every control token after the join.
        let sync_node = ctx.value(&sync)?.node;
        for name in &k_names {
            let t = ctx.tail(name);
            t.barrier = vec![sync_node];
            t.reads.clear();
        }
        let _ = live_after;
        Ok(())
    }

    fn gen_call(
        &mut self,
        ctx: &mut Ctx,
        name: &str,
        args: &[Expr],
        _live_after: &BTreeSet<String>,
    ) -> Result<(), CodegenError> {
        let Some(SymKind::Proc { index }) = self.kind(name) else {
            return Err(CodegenError { msg: format!("{name} is not a procedure") });
        };
        let index = *index;
        let plan = self.proc_plan(index)?;
        let params = self.r.procs[index].params.clone();
        if params.len() != args.len() {
            return Err(CodegenError {
                msg: format!("{name}: {} arguments for {} parameters", args.len(), params.len()),
            });
        }
        // Child-name → parent-name translation + explicit input values.
        let mut map: HashMap<String, String> = HashMap::new();
        map.insert(K_IO.into(), K_IO.into());
        let mut in_vals: HashMap<String, ValueRef> = HashMap::new();
        let mut out_binds: HashMap<String, String> = HashMap::new();
        for (param, arg) in params.iter().zip(args) {
            let pname = param.name().to_string();
            match self.r.syms[&pname].clone() {
                SymKind::ValueParam => {
                    let v = self.expr(ctx, arg)?;
                    in_vals.insert(pname, v);
                }
                SymKind::VarParam => {
                    let Expr::Var(argname) = arg else {
                        return Err(CodegenError {
                            msg: format!("{name}: var parameter {pname} needs a scalar variable"),
                        });
                    };
                    let v = ctx.value(argname)?;
                    in_vals.insert(pname.clone(), v);
                    out_binds.insert(pname, argname.clone());
                }
                SymKind::ArrayParam => {
                    let Expr::Var(argname) = arg else {
                        return Err(CodegenError {
                            msg: format!("{name}: array parameter {pname} needs an array name"),
                        });
                    };
                    let v = self.expr(ctx, arg)?;
                    in_vals.insert(pname.clone(), v);
                    map.insert(k_arr(&pname), k_arr(argname));
                }
                other => {
                    return Err(CodegenError {
                        msg: format!("parameter {pname} has unexpected kind {other:?}"),
                    })
                }
            }
        }
        for (child, parent) in out_binds {
            map.insert(child, parent);
        }
        let lbl = ctx.g.add(Actor::Label(plan.label.clone()), &[], &[]);
        self.splice(ctx, ValueRef::of(lbl), &plan, false, false, &map, &in_vals, false)
    }

    fn proc_plan(&mut self, index: usize) -> Result<ChildPlan, CodegenError> {
        let pname = self.r.procs[index].name.clone();
        if let Some(plan) = self.proc_plans.get(&pname) {
            return Ok(plan.clone());
        }
        let rp = self.r.procs[index].clone();
        // Fixed interface order (recursion-safe): params, then K tokens.
        let mut ins: Vec<String> = rp.params.iter().map(|p| p.name().to_string()).collect();
        let mut k_ins: Vec<String> = rp
            .params
            .iter()
            .filter(|p| self.r.syms[p.name()] == SymKind::ArrayParam)
            .map(|p| k_arr(p.name()))
            .collect();
        k_ins.push(K_IO.into());
        k_ins.sort();
        ins.extend(k_ins.clone());
        let mut outs: Vec<String> = rp
            .params
            .iter()
            .filter(|p| matches!(p, Param::Var(_)))
            .filter(|p| self.r.syms[p.name()] == SymKind::VarParam)
            .map(|p| p.name().to_string())
            .collect();
        outs.extend(k_ins);
        let label = self.fresh_label(&format!("proc_{}", sanitize(&pname)));
        let plan = ChildPlan { label: label.clone(), inputs: ins.clone(), outputs: outs.clone() };
        self.proc_plans.insert(pname, plan.clone());
        let out_set: BTreeSet<String> = outs.iter().cloned().collect();
        let body = rp.body.clone();
        self.build_context(label, &ins, Some(&outs), false, move |c, bctx| {
            c.stmt(bctx, &body, &out_set)
        })?;
        Ok(plan)
    }

    // ------------------------------------------------------------------
    // Use/def analysis (drives context interfaces)
    // ------------------------------------------------------------------

    fn expr_uses(&self, e: &Expr, u: &mut BTreeSet<String>) {
        match e {
            Expr::Const(_) => {}
            Expr::Now => {
                u.insert(K_IO.into());
            }
            Expr::Var(n) => match self.kind(n) {
                Some(
                    SymKind::Array { .. } | SymKind::Chan { host: true } | SymKind::Proc { .. },
                )
                | None => {}
                _ => {
                    u.insert(n.clone());
                }
            },
            Expr::Index(n, i) => {
                if self.kind(n) == Some(&SymKind::ArrayParam) {
                    u.insert(n.clone());
                }
                if self.k_needed(n) {
                    u.insert(k_arr(n));
                }
                self.expr_uses(i, u);
            }
            Expr::Neg(x) | Expr::Not(x) => self.expr_uses(x, u),
            Expr::Bin(_, a, b) => {
                self.expr_uses(a, u);
                self.expr_uses(b, u);
            }
        }
    }

    fn chan_uses(&self, c: &str, u: &mut BTreeSet<String>) {
        if self.kind(c) != Some(&SymKind::Chan { host: true }) {
            u.insert(c.to_string());
        }
        u.insert(K_IO.into());
    }

    /// Names `p` definitely assigns on every execution path (the only
    /// safe liveness kills). `if`/`while`/replications may run zero
    /// branches/iterations, so they never kill.
    fn must_defs(&self, p: &Process) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        match p {
            Process::Assign(Lvalue::Var(x), _) | Process::Input(_, Lvalue::Var(x)) => {
                out.insert(x.clone());
            }
            Process::Seq(None, ps) | Process::Par(None, ps) => {
                for q in ps {
                    out.extend(self.must_defs(q));
                }
            }
            Process::Scope(decls, _, body) => {
                out = self.must_defs(body);
                for d in decls {
                    if let Decl::Scalar(n) | Decl::Chan(n) = d {
                        out.remove(n);
                    }
                }
            }
            Process::Call(name, args) => {
                if let Some(SymKind::Proc { index }) = self.kind(name) {
                    for (param, arg) in self.r.procs[*index].params.iter().zip(args) {
                        if self.r.syms.get(param.name()) == Some(&SymKind::VarParam) {
                            if let Expr::Var(an) = arg {
                                out.insert(an.clone());
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        out
    }

    /// `(uses, defs)` over scalars, channels and control tokens, with
    /// locally-declared names removed.
    fn uses_defs(&self, p: &Process) -> (BTreeSet<String>, BTreeSet<String>) {
        let mut u = BTreeSet::new();
        let mut d = BTreeSet::new();
        self.uses_defs_into(p, &mut u, &mut d);
        (u, d)
    }

    fn uses_defs_into(&self, p: &Process, u: &mut BTreeSet<String>, d: &mut BTreeSet<String>) {
        match p {
            Process::Skip => {}
            Process::Assign(Lvalue::Var(x), e) => {
                self.expr_uses(e, u);
                d.insert(x.clone());
            }
            Process::Assign(Lvalue::Index(a, i), e) => {
                self.expr_uses(e, u);
                self.expr_uses(i, u);
                if self.kind(a) == Some(&SymKind::ArrayParam) {
                    u.insert(a.clone());
                }
                u.insert(k_arr(a));
                d.insert(k_arr(a));
            }
            Process::Output(c, e) => {
                self.expr_uses(e, u);
                self.chan_uses(c, u);
                d.insert(K_IO.into());
            }
            Process::Input(c, lv) => {
                self.chan_uses(c, u);
                d.insert(K_IO.into());
                match lv {
                    Lvalue::Var(x) => {
                        d.insert(x.clone());
                    }
                    Lvalue::Index(a, i) => {
                        self.expr_uses(i, u);
                        if self.kind(a) == Some(&SymKind::ArrayParam) {
                            u.insert(a.clone());
                        }
                        u.insert(k_arr(a));
                        d.insert(k_arr(a));
                    }
                }
            }
            Process::Wait(e) => {
                self.expr_uses(e, u);
                u.insert(K_IO.into());
                d.insert(K_IO.into());
            }
            Process::Seq(rep, ps) | Process::Par(rep, ps) => {
                if let Some(r) = rep {
                    self.expr_uses(&r.start, u);
                    self.expr_uses(&r.count, u);
                }
                let mut iu = BTreeSet::new();
                let mut id = BTreeSet::new();
                for p in ps {
                    self.uses_defs_into(p, &mut iu, &mut id);
                }
                if let Some(r) = rep {
                    iu.remove(&r.var);
                    id.remove(&r.var);
                }
                u.extend(iu);
                d.extend(id);
            }
            Process::If(branches) => {
                for (c, p) in branches {
                    self.expr_uses(c, u);
                    self.uses_defs_into(p, u, d);
                }
            }
            Process::While(c, p) => {
                self.expr_uses(c, u);
                self.uses_defs_into(p, u, d);
            }
            Process::Scope(decls, _, body) => {
                let mut iu = BTreeSet::new();
                let mut id = BTreeSet::new();
                self.uses_defs_into(body, &mut iu, &mut id);
                for decl in decls {
                    match decl {
                        Decl::Scalar(n) | Decl::Chan(n) => {
                            iu.remove(n);
                            id.remove(n);
                        }
                        Decl::Array(n, _) => {
                            iu.remove(&k_arr(n));
                            id.remove(&k_arr(n));
                        }
                    }
                }
                u.extend(iu);
                d.extend(id);
            }
            Process::Call(name, args) => {
                for a in args {
                    self.expr_uses(a, u);
                }
                u.insert(K_IO.into());
                d.insert(K_IO.into());
                if let Some(SymKind::Proc { index }) = self.kind(name) {
                    let params = &self.r.procs[*index].params;
                    for (param, arg) in params.iter().zip(args) {
                        match self.r.syms.get(param.name()) {
                            Some(SymKind::VarParam) => {
                                if let Expr::Var(an) = arg {
                                    u.insert(an.clone());
                                    d.insert(an.clone());
                                }
                            }
                            Some(SymKind::ArrayParam) => {
                                if let Expr::Var(an) = arg {
                                    if self.k_needed(an) {
                                        u.insert(k_arr(an));
                                        d.insert(k_arr(an));
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }
}

/// Arrays (by unique name) that some statement writes, including writes
/// through procedure array parameters (propagated to call-site arguments
/// by fixpoint).
fn written_arrays(r: &Resolved) -> BTreeSet<String> {
    let mut param_writes: Vec<BTreeSet<String>> = r.procs.iter().map(|_| BTreeSet::new()).collect();
    loop {
        let mut changed = false;
        for i in 0..r.procs.len() {
            let mut w = BTreeSet::new();
            collect_writes(&r.procs[i].body, r, &param_writes, &mut w);
            if w != param_writes[i] {
                param_writes[i] = w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut written = BTreeSet::new();
    collect_writes(&r.main, r, &param_writes, &mut written);
    for p in &r.procs {
        collect_writes(&p.body, r, &param_writes, &mut written);
    }
    written
}

fn collect_writes(
    p: &Process,
    r: &Resolved,
    param_writes: &[BTreeSet<String>],
    out: &mut BTreeSet<String>,
) {
    match p {
        Process::Assign(Lvalue::Index(a, _), _) | Process::Input(_, Lvalue::Index(a, _)) => {
            out.insert(a.clone());
        }
        Process::Assign(..)
        | Process::Input(..)
        | Process::Output(..)
        | Process::Skip
        | Process::Wait(_) => {}
        Process::Seq(_, ps) | Process::Par(_, ps) => {
            for q in ps {
                collect_writes(q, r, param_writes, out);
            }
        }
        Process::If(branches) => {
            for (_, q) in branches {
                collect_writes(q, r, param_writes, out);
            }
        }
        Process::While(_, q) | Process::Scope(_, _, q) => {
            collect_writes(q, r, param_writes, out);
        }
        Process::Call(name, args) => {
            let Some(SymKind::Proc { index }) = r.syms.get(name) else { return };
            for (param, arg) in r.procs[*index].params.iter().zip(args) {
                if param_writes[*index].contains(param.name()) {
                    if let Expr::Var(an) = arg {
                        out.insert(an.clone());
                    }
                }
            }
        }
    }
}

fn binop_opcode(op: BinOp) -> Opcode {
    match op {
        BinOp::Add => Opcode::Plus,
        BinOp::Sub => Opcode::Minus,
        BinOp::Mul => Opcode::Mul,
        BinOp::Div => Opcode::Div,
        BinOp::Mod => Opcode::Mod,
        BinOp::And => Opcode::And,
        BinOp::Or => Opcode::Or,
        BinOp::Shl => Opcode::Lshift,
        BinOp::Shr => Opcode::Rshift,
        BinOp::Eq => Opcode::Eq,
        BinOp::Ne => Opcode::Ne,
        BinOp::Lt => Opcode::Lt,
        BinOp::Gt => Opcode::Gt,
        BinOp::Le => Opcode::Le,
        BinOp::Ge => Opcode::Ge,
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}
