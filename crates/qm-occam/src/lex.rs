//! Lexer for the OCCAM subset (thesis §4.3).
//!
//! OCCAM structure is indentation-based: the lexer emits `Newline`,
//! `Indent` and `Dedent` tokens from leading whitespace, like the original
//! INMOS tooling. Comments run from `--` to end of line.

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (variable, channel, procedure name, keyword candidates
    /// are resolved by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `:=`
    Assign,
    /// `!`
    Bang,
    /// `?`
    Query,
    /// `(` / `)`
    LParen,
    RParen,
    /// `[` / `]`
    LBracket,
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<` `>` `<=` `>=`
    Lt,
    Gt,
    Le,
    Ge,
    /// `+` `-` `*` `/` `\`
    Plus,
    Minus,
    Star,
    Slash,
    Backslash,
    /// `/\` (bitwise and), `\/` (bitwise or)
    Amp,
    Pipe,
    /// `<<` `>>`
    Shl,
    Shr,
    /// Line structure.
    Newline,
    Indent,
    Dedent,
    /// End of input.
    Eof,
}

/// A token plus its 1-based source line (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Source line.
    pub line: usize,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Source line.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize an OCCAM source text.
///
/// # Errors
///
/// [`LexError`] on malformed input (bad characters, inconsistent
/// indentation that does not return to an enclosing level).
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let mut out: Vec<SpannedTok> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let without_comment = match raw.find("--") {
            Some(i) => &raw[..i],
            None => raw,
        };
        if without_comment.trim().is_empty() {
            continue; // blank lines and pure comments do not affect layout
        }
        let indent = without_comment.len() - without_comment.trim_start().len();
        if raw[..indent].contains('\t') {
            return Err(LexError { line, msg: "tabs are not allowed in indentation".into() });
        }
        let current = *indents.last().expect("stack never empty");
        match indent.cmp(&current) {
            std::cmp::Ordering::Greater => {
                indents.push(indent);
                out.push(SpannedTok { tok: Tok::Indent, line });
            }
            std::cmp::Ordering::Less => {
                while *indents.last().expect("stack never empty") > indent {
                    indents.pop();
                    out.push(SpannedTok { tok: Tok::Dedent, line });
                }
                if *indents.last().expect("stack never empty") != indent {
                    return Err(LexError {
                        line,
                        msg: format!("indentation {indent} does not match any open block"),
                    });
                }
            }
            std::cmp::Ordering::Equal => {}
        }
        lex_line(without_comment.trim_start(), line, &mut out)?;
        out.push(SpannedTok { tok: Tok::Newline, line });
    }
    let last_line = src.lines().count();
    while indents.len() > 1 {
        indents.pop();
        out.push(SpannedTok { tok: Tok::Dedent, line: last_line });
    }
    out.push(SpannedTok { tok: Tok::Eof, line: last_line });
    Ok(out)
}

fn lex_line(text: &str, line: usize, out: &mut Vec<SpannedTok>) -> Result<(), LexError> {
    let mut chars = text.chars().peekable();
    let mut push = |tok: Tok| out.push(SpannedTok { tok, line });
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '0'..='9' => {
                let mut n: i64 = 0;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(i64::from(d)))
                        .ok_or_else(|| LexError { line, msg: "integer overflow".into() })?;
                    chars.next();
                }
                push(Tok::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                push(Tok::Ident(s));
            }
            ':' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push(Tok::Assign);
                } else {
                    push(Tok::Colon);
                }
            }
            '!' => {
                chars.next();
                push(Tok::Bang);
            }
            '?' => {
                chars.next();
                push(Tok::Query);
            }
            '(' => {
                chars.next();
                push(Tok::LParen);
            }
            ')' => {
                chars.next();
                push(Tok::RParen);
            }
            '[' => {
                chars.next();
                push(Tok::LBracket);
            }
            ']' => {
                chars.next();
                push(Tok::RBracket);
            }
            ',' => {
                chars.next();
                push(Tok::Comma);
            }
            '=' => {
                chars.next();
                push(Tok::Eq);
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        push(Tok::Ne);
                    }
                    Some('=') => {
                        chars.next();
                        push(Tok::Le);
                    }
                    Some('<') => {
                        chars.next();
                        push(Tok::Shl);
                    }
                    _ => push(Tok::Lt),
                }
            }
            '>' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        push(Tok::Ge);
                    }
                    Some('>') => {
                        chars.next();
                        push(Tok::Shr);
                    }
                    _ => push(Tok::Gt),
                }
            }
            '+' => {
                chars.next();
                push(Tok::Plus);
            }
            '-' => {
                chars.next();
                push(Tok::Minus);
            }
            '*' => {
                chars.next();
                push(Tok::Star);
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'\\') {
                    chars.next();
                    push(Tok::Amp);
                } else {
                    push(Tok::Slash);
                }
            }
            '\\' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    chars.next();
                    push(Tok::Pipe);
                } else {
                    push(Tok::Backslash);
                }
            }
            other => {
                return Err(LexError { line, msg: format!("unexpected character {other:?}") });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            toks("x := y + 1"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("y".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn channel_operators() {
        assert_eq!(
            toks("c ! x\nc ? y"),
            vec![
                Tok::Ident("c".into()),
                Tok::Bang,
                Tok::Ident("x".into()),
                Tok::Newline,
                Tok::Ident("c".into()),
                Tok::Query,
                Tok::Ident("y".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let t = toks("seq\n  x := 1\n  y := 2\nz := 3");
        assert_eq!(
            t,
            vec![
                Tok::Ident("seq".into()),
                Tok::Newline,
                Tok::Indent,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Newline,
                Tok::Ident("y".into()),
                Tok::Assign,
                Tok::Int(2),
                Tok::Newline,
                Tok::Dedent,
                Tok::Ident("z".into()),
                Tok::Assign,
                Tok::Int(3),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn nested_dedents_unwind() {
        let t = toks("a\n  b\n    c\nd");
        let dedents = t.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = toks("x := 1 -- set x\n\n-- whole line\ny := 2");
        assert_eq!(t.iter().filter(|t| **t == Tok::Newline).count(), 2);
    }

    #[test]
    fn comparison_and_logic_tokens() {
        assert_eq!(
            toks("a <> b /\\ c \\/ d << 2"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ne,
                Tok::Ident("b".into()),
                Tok::Amp,
                Tok::Ident("c".into()),
                Tok::Pipe,
                Tok::Ident("d".into()),
                Tok::Shl,
                Tok::Int(2),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn replicator_brackets() {
        assert_eq!(
            toks("seq i = [1 for 10]"),
            vec![
                Tok::Ident("seq".into()),
                Tok::Ident("i".into()),
                Tok::Eq,
                Tok::LBracket,
                Tok::Int(1),
                Tok::Ident("for".into()),
                Tok::Int(10),
                Tok::RBracket,
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn bad_character_reports_line() {
        let e = lex("x := 1\ny := $2").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn inconsistent_dedent_is_error() {
        assert!(lex("a\n    b\n  c").is_err());
    }
}
