//! The Intermediate Form Table (thesis §4.4, Tables 4.1–4.3).
//!
//! Each IFT entry describes one program fragment with an input value set
//! `I`, an output value set `O`, and (for interface entries) the ordered
//! component sets `E`. Non-interface entries correspond to OCCAM
//! primitives, conditions and replicators (Table 4.1); interface entries
//! to `seq`/`par`/`if`/`while`/replication (Table 4.2). The pseudo-value
//! `K` is the control token carried by side-effecting primitives.
//!
//! [`use_and_def`] links definitions to uses (Fig. 4.11) and
//! [`live_analyze`] tags each output with whether it has a later use
//! (Fig. 4.12) — the information the code generator's live-value
//! optimization depends on.

use std::collections::BTreeSet;

use crate::ast::{Expr, Lvalue, Process};

/// The control-token pseudo-value name.
pub const K: &str = "K";

/// Entry kinds (first column of Tables 4.1–4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// `x := e`
    Assignment,
    /// `c ? x`
    Input,
    /// `c ! e`
    Output,
    /// `wait now after e`
    Wait,
    /// `skip`
    Skip,
    /// A guard expression of `if`/`while`.
    Condition,
    /// A replicator `i = [a for n]`.
    Replicator,
    /// `seq` interface.
    Seq,
    /// `par` interface.
    Par,
    /// `if` interface.
    If,
    /// `while` interface (a loop).
    While,
    /// Replicated `seq` (a loop).
    RepSeq,
    /// Replicated `par`.
    RepPar,
    /// Procedure call (treated as a primitive using its arguments).
    Call,
}

impl EntryKind {
    /// Loops iterate their bodies (affects liveness rule 2).
    #[must_use]
    pub fn is_loop(self) -> bool {
        matches!(self, EntryKind::While | EntryKind::RepSeq)
    }
}

/// One value in an `I` or `O` set, with its use/def chains and liveness
/// tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValInfo {
    /// Value (variable) name; `K` for the control token.
    pub name: String,
    /// `D` — entries defining the value this occurrence consumes.
    pub defs: BTreeSet<usize>,
    /// `U` — entries using the value this occurrence produces.
    pub uses: BTreeSet<usize>,
    /// Liveness tag (outputs only; set by [`live_analyze`]).
    pub live: bool,
}

impl ValInfo {
    fn new(name: &str) -> Self {
        ValInfo {
            name: name.to_string(),
            defs: BTreeSet::new(),
            uses: BTreeSet::new(),
            live: false,
        }
    }
}

/// One IFT entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Entry kind.
    pub kind: EntryKind,
    /// Input value set `I`.
    pub inputs: Vec<ValInfo>,
    /// Output value set `O`.
    pub outputs: Vec<ValInfo>,
    /// Ordered component sets `E` (empty for non-interface entries).
    pub e_sets: Vec<Vec<usize>>,
}

impl Entry {
    fn input_names(&self) -> BTreeSet<String> {
        self.inputs.iter().map(|v| v.name.clone()).collect()
    }

    fn output_names(&self) -> BTreeSet<String> {
        self.outputs.iter().map(|v| v.name.clone()).collect()
    }
}

/// The Intermediate Form Table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ift {
    /// All entries; the last one is the program root.
    pub entries: Vec<Entry>,
}

impl Ift {
    /// Index of the root entry.
    #[must_use]
    pub fn root(&self) -> usize {
        self.entries.len() - 1
    }

    /// Build the IFT for a process tree (names should already be unique;
    /// run [`crate::sema::analyse`] first for real programs).
    #[must_use]
    pub fn build(p: &Process) -> Self {
        let mut ift = Ift::default();
        ift.entry(p);
        ift
    }

    fn push(
        &mut self,
        kind: EntryKind,
        i: BTreeSet<String>,
        o: BTreeSet<String>,
        e: Vec<Vec<usize>>,
    ) -> usize {
        self.entries.push(Entry {
            kind,
            inputs: i.iter().map(|n| ValInfo::new(n)).collect(),
            outputs: o.iter().map(|n| ValInfo::new(n)).collect(),
            e_sets: e,
        });
        self.entries.len() - 1
    }

    fn entry(&mut self, p: &Process) -> usize {
        match p {
            Process::Assign(lv, e) => {
                let mut i = expr_reads(e);
                let mut o = BTreeSet::new();
                match lv {
                    Lvalue::Var(x) => {
                        o.insert(x.clone());
                    }
                    Lvalue::Index(_, idx) => {
                        i.extend(expr_reads(idx));
                        i.insert(K.into());
                        o.insert(K.into());
                    }
                }
                self.push(EntryKind::Assignment, i, o, Vec::new())
            }
            Process::Input(c, lv) => {
                let mut i: BTreeSet<String> = [K.to_string(), c.clone()].into();
                let mut o: BTreeSet<String> = [K.to_string()].into();
                match lv {
                    Lvalue::Var(x) => {
                        o.insert(x.clone());
                    }
                    Lvalue::Index(_, idx) => {
                        i.extend(expr_reads(idx));
                    }
                }
                self.push(EntryKind::Input, i, o, Vec::new())
            }
            Process::Output(c, e) => {
                let mut i = expr_reads(e);
                i.insert(K.into());
                i.insert(c.clone());
                self.push(EntryKind::Output, i, [K.to_string()].into(), Vec::new())
            }
            Process::Wait(e) => {
                let mut i = expr_reads(e);
                i.insert(K.into());
                self.push(EntryKind::Wait, i, [K.to_string()].into(), Vec::new())
            }
            Process::Skip => {
                self.push(EntryKind::Skip, BTreeSet::new(), BTreeSet::new(), Vec::new())
            }
            Process::Call(_, args) => {
                let mut i: BTreeSet<String> = args.iter().flat_map(expr_reads).collect();
                i.insert(K.into());
                self.push(EntryKind::Call, i, [K.to_string()].into(), Vec::new())
            }
            Process::Seq(None, ps) => {
                let children: Vec<usize> = ps.iter().map(|p| self.entry(p)).collect();
                let (i, o) = self.seq_io(&children);
                self.push(EntryKind::Seq, i, o, vec![children])
            }
            Process::Par(None, ps) => {
                let children: Vec<usize> = ps.iter().map(|p| self.entry(p)).collect();
                let mut i = BTreeSet::new();
                let mut o = BTreeSet::new();
                for &c in &children {
                    i.extend(self.entries[c].input_names());
                    o.extend(self.entries[c].output_names());
                }
                let e = children.iter().map(|&c| vec![c]).collect();
                self.push(EntryKind::Par, i, o, e)
            }
            Process::If(branches) => {
                let mut i = BTreeSet::new();
                let mut o = BTreeSet::new();
                let mut e = Vec::new();
                for (cond, body) in branches {
                    let gamma = self.push(
                        EntryKind::Condition,
                        expr_reads(cond),
                        BTreeSet::new(),
                        Vec::new(),
                    );
                    let rho = self.entry(body);
                    let gi = self.entries[gamma].input_names();
                    let go = self.entries[gamma].output_names();
                    let pi = self.entries[rho].input_names();
                    i.extend(gi);
                    i.extend(pi.difference(&go).cloned());
                    o.extend(self.entries[gamma].output_names());
                    o.extend(self.entries[rho].output_names());
                    e.push(vec![gamma, rho]);
                }
                self.push(EntryKind::If, i, o, e)
            }
            Process::While(cond, body) => {
                let gamma =
                    self.push(EntryKind::Condition, expr_reads(cond), BTreeSet::new(), Vec::new());
                let rho = self.entry(body);
                let gi = self.entries[gamma].input_names();
                let go = self.entries[gamma].output_names();
                let pi = self.entries[rho].input_names();
                let mut i = gi;
                i.extend(pi.difference(&go).cloned());
                let mut o = self.entries[gamma].output_names();
                o.extend(self.entries[rho].output_names());
                self.push(EntryKind::While, i, o, vec![vec![gamma, rho]])
            }
            Process::Seq(Some(rep), ps) | Process::Par(Some(rep), ps) => {
                let kind = if matches!(p, Process::Seq(..)) {
                    EntryKind::RepSeq
                } else {
                    EntryKind::RepPar
                };
                let mut ri = expr_reads(&rep.start);
                ri.extend(expr_reads(&rep.count));
                let r1 = self.push(EntryKind::Replicator, ri, [rep.var.clone()].into(), Vec::new());
                let inner = Process::Seq(None, ps.to_vec());
                let rho = self.entry(&inner);
                let ro = self.entries[r1].output_names();
                let pi = self.entries[rho].input_names();
                let mut i = self.entries[r1].input_names();
                i.extend(pi.difference(&ro).cloned());
                let o = self.entries[rho].output_names();
                self.push(kind, i, o, vec![vec![r1, rho]])
            }
            Process::Scope(_, _, body) => self.entry(body),
        }
    }

    fn seq_io(&self, children: &[usize]) -> (BTreeSet<String>, BTreeSet<String>) {
        let mut i = BTreeSet::new();
        let mut defined = BTreeSet::new();
        let mut o = BTreeSet::new();
        for &c in children {
            for name in self.entries[c].input_names() {
                if !defined.contains(&name) {
                    i.insert(name);
                }
            }
            let outs = self.entries[c].output_names();
            defined.extend(outs.iter().cloned());
            o.extend(outs);
        }
        (i, o)
    }
}

fn expr_reads(e: &Expr) -> BTreeSet<String> {
    let mut scalars = Vec::new();
    e.scalar_reads(&mut scalars);
    let mut set: BTreeSet<String> = scalars.into_iter().collect();
    let mut arrays = Vec::new();
    e.array_reads(&mut arrays);
    if !arrays.is_empty() || matches!(e, Expr::Now) {
        set.insert(K.into());
    }
    set
}

/// The `UseAndDef` procedure of Fig. 4.11: thread `D` (definition) and
/// `U` (use) chains through the table, starting at entry `h`.
pub fn use_and_def(ift: &mut Ift, h: usize) {
    let e_sets = ift.entries[h].e_sets.clone();
    for e_i in e_sets {
        let mut p: Vec<usize> = Vec::new(); // most recent first
        for h_j in e_i {
            let names: Vec<String> =
                ift.entries[h_j].inputs.iter().map(|v| v.name.clone()).collect();
            for x in names {
                find_def(ift, &x, h_j, h, &p, true);
            }
            use_and_def(ift, h_j);
            p.insert(0, h_j);
        }
        let out_names: Vec<String> =
            ift.entries[h].outputs.iter().map(|v| v.name.clone()).collect();
        for x in out_names {
            find_def(ift, &x, h, h, &p, false);
        }
    }
}

/// The `FindDef` procedure of Fig. 4.11. `into_input` selects whether the
/// consumer's `D` set lives in its inputs (normal case) or outputs (the
/// interface's own output scan).
fn find_def(ift: &mut Ift, x: &str, h_j: usize, h: usize, p: &[usize], into_input: bool) {
    for &h_k in p {
        if ift.entries[h_k].outputs.iter().any(|v| v.name == x) {
            let v =
                ift.entries[h_k].outputs.iter_mut().find(|v| v.name == x).expect("just checked");
            v.uses.insert(h_j);
            record_def(ift, h_j, x, h_k, into_input);
            return;
        }
    }
    if ift.entries[h].inputs.iter().any(|v| v.name == x) && h != h_j {
        let v = ift.entries[h].inputs.iter_mut().find(|v| v.name == x).expect("just checked");
        v.uses.insert(h_j);
        record_def(ift, h_j, x, h, into_input);
    }
}

fn record_def(ift: &mut Ift, h_j: usize, x: &str, def: usize, into_input: bool) {
    let entry = &mut ift.entries[h_j];
    let list = if into_input { &mut entry.inputs } else { &mut entry.outputs };
    if let Some(v) = list.iter_mut().find(|v| v.name == x) {
        v.defs.insert(def);
    }
}

/// The `LiveAnalyze` procedure of Fig. 4.12. Root outputs marked live by
/// the caller propagate inwards; loop-carried values stay live.
pub fn live_analyze(ift: &mut Ift, h: usize) {
    let e_sets = ift.entries[h].e_sets.clone();
    let h_kind = ift.entries[h].kind;
    let h_inputs = ift.entries[h].input_names();
    for e_i in e_sets {
        for h_j in e_i {
            for oi in 0..ift.entries[h_j].outputs.len() {
                let (name, uses) = {
                    let v = &ift.entries[h_j].outputs[oi];
                    (v.name.clone(), v.uses.clone())
                };
                let live = if !uses.is_empty() {
                    if uses.iter().any(|&u| u != h) {
                        // Rule 1: a real later use.
                        true
                    } else if h_kind.is_loop() && h_inputs.contains(&name) {
                        // Rule 2: loop-carried.
                        true
                    } else {
                        // Inherit from the enclosing scope's output.
                        ift.entries[h]
                            .outputs
                            .iter()
                            .find(|v| v.name == name)
                            .is_some_and(|v| v.live)
                    }
                } else {
                    false // Rule 3 (var formals handled by the caller).
                };
                ift.entries[h_j].outputs[oi].live = live;
            }
            live_analyze(ift, h_j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Lvalue, Process};

    /// Table 4.3's fragment: `seq { x := x + 1; y := x }`.
    fn table_4_3() -> Process {
        Process::Seq(
            None,
            vec![
                Process::Assign(
                    Lvalue::Var("x".into()),
                    Expr::bin(BinOp::Add, Expr::Var("x".into()), Expr::Const(1)),
                ),
                Process::Assign(Lvalue::Var("y".into()), Expr::Var("x".into())),
            ],
        )
    }

    #[test]
    fn table_4_3_io_sets() {
        let ift = Ift::build(&table_4_3());
        assert_eq!(ift.entries.len(), 3);
        let e1 = &ift.entries[0];
        assert_eq!(e1.input_names(), ["x".to_string()].into());
        assert_eq!(e1.output_names(), ["x".to_string()].into());
        let e2 = &ift.entries[1];
        assert_eq!(e2.input_names(), ["x".to_string()].into());
        assert_eq!(e2.output_names(), ["y".to_string()].into());
        let seq = &ift.entries[2];
        assert_eq!(seq.kind, EntryKind::Seq);
        assert_eq!(seq.input_names(), ["x".to_string()].into());
        assert_eq!(seq.output_names(), ["x".to_string(), "y".to_string()].into());
    }

    #[test]
    fn use_def_chains_link_producer_to_consumer() {
        let mut ift = Ift::build(&table_4_3());
        let root = ift.root();
        use_and_def(&mut ift, root);
        // x read by entry 0 is defined by the seq's own input.
        let e0_in = &ift.entries[0].inputs[0];
        assert_eq!(e0_in.defs, [root].into());
        // x read by entry 1 is defined by entry 0.
        let e1_in = &ift.entries[1].inputs[0];
        assert_eq!(e1_in.defs, [0].into());
        // x produced by entry 0 is used by entry 1 (and the seq output).
        let e0_out = &ift.entries[0].outputs[0];
        assert!(e0_out.uses.contains(&1));
        // y produced by entry 1 is used by the seq output scan.
        let e1_out = &ift.entries[1].outputs[0];
        assert_eq!(e1_out.uses, [root].into());
    }

    #[test]
    fn liveness_distinguishes_internal_and_external_uses() {
        let mut ift = Ift::build(&table_4_3());
        let root = ift.root();
        use_and_def(&mut ift, root);
        // Externally, only y matters.
        for v in &mut ift.entries[root].outputs {
            v.live = v.name == "y";
        }
        live_analyze(&mut ift, root);
        assert!(ift.entries[0].outputs[0].live, "x has an internal later use");
        assert!(ift.entries[1].outputs[0].live, "y is externally live");

        // Flip: only x external.
        for v in &mut ift.entries[root].outputs {
            v.live = v.name == "x";
        }
        live_analyze(&mut ift, root);
        assert!(!ift.entries[1].outputs[0].live, "y has no external use and no internal one");
    }

    #[test]
    fn loop_carried_values_stay_live() {
        // while (i < 10) { i := i + 1 }
        let p = Process::While(
            Expr::bin(BinOp::Lt, Expr::Var("i".into()), Expr::Const(10)),
            Box::new(Process::Assign(
                Lvalue::Var("i".into()),
                Expr::bin(BinOp::Add, Expr::Var("i".into()), Expr::Const(1)),
            )),
        );
        let mut ift = Ift::build(&p);
        let root = ift.root();
        assert_eq!(ift.entries[root].kind, EntryKind::While);
        use_and_def(&mut ift, root);
        live_analyze(&mut ift, root);
        // The assignment's output i is loop-carried → live even with no
        // external use.
        let body = ift.entries[root].e_sets[0][1];
        let i_out = ift.entries[body].outputs.iter().find(|v| v.name == "i").unwrap();
        assert!(i_out.live);
    }

    #[test]
    fn side_effect_primitives_carry_control_tokens() {
        let p = Process::Output("c".into(), Expr::Var("x".into()));
        let ift = Ift::build(&p);
        let e = &ift.entries[0];
        assert!(e.input_names().contains(K));
        assert!(e.output_names().contains(K));
        assert_eq!(e.kind, EntryKind::Output);
    }

    #[test]
    fn seq_input_rule_masks_defined_values() {
        // seq { x := 1; y := x } — x is defined before use, so the seq's
        // I set must not contain it.
        let p = Process::Seq(
            None,
            vec![
                Process::Assign(Lvalue::Var("x".into()), Expr::Const(1)),
                Process::Assign(Lvalue::Var("y".into()), Expr::Var("x".into())),
            ],
        );
        let ift = Ift::build(&p);
        let root = ift.root();
        assert!(ift.entries[root].input_names().is_empty());
    }

    #[test]
    fn par_unions_component_interfaces() {
        let p = Process::Par(
            None,
            vec![
                Process::Assign(Lvalue::Var("a".into()), Expr::Var("x".into())),
                Process::Assign(Lvalue::Var("b".into()), Expr::Var("y".into())),
            ],
        );
        let ift = Ift::build(&p);
        let root = ift.root();
        assert_eq!(ift.entries[root].e_sets.len(), 2, "par: one E set per branch");
        assert_eq!(ift.entries[root].input_names(), ["x".to_string(), "y".to_string()].into());
    }
}
