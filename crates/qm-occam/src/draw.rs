//! Graphviz export of data-flow graphs — the thesis's `draw`/`drawpic`
//! utilities (§4.8, Fig. 4.21) re-imagined for DOT.
//!
//! Value edges are solid and labelled with their operand slot; control
//! token arcs (§4.6) are dashed — matching the thesis's figures where
//! control arcs are drawn distinctly from data arcs.

use std::fmt::Write as _;

use crate::graph::{Actor, ChanRef, ContextGraph};

/// Render one context graph as a DOT digraph named `label`.
#[must_use]
pub fn to_dot(label: &str, graph: &ContextGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{label}\" {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=ellipse, fontname=\"Helvetica\"];");
    for id in 0..graph.len() {
        let node = graph.node(id);
        let (text, shape) = describe(&node.actor);
        let _ = writeln!(out, "  n{id} [label=\"{text}\", shape={shape}];");
    }
    for id in 0..graph.len() {
        let node = graph.node(id);
        for (slot, v) in node.vins.iter().enumerate() {
            let tail = if graph.node(v.node).actor.value_outs() > 1 {
                format!(" taillabel=\"{}\"", v.out)
            } else {
                String::new()
            };
            let _ = writeln!(out, "  n{} -> n{id} [label=\"{slot}\"{tail}];", v.node);
        }
        for &c in &node.ctrl {
            let _ = writeln!(out, "  n{c} -> n{id} [style=dashed, color=gray50];");
        }
    }
    out.push_str("}\n");
    out
}

fn describe(actor: &Actor) -> (String, &'static str) {
    match actor {
        Actor::Const(v) => (v.to_string(), "plaintext"),
        Actor::Label(l) => (format!("&{l}"), "plaintext"),
        Actor::Copy => ("copy".into(), "ellipse"),
        Actor::Neg => ("−".into(), "circle"),
        Actor::Not => ("~".into(), "circle"),
        Actor::Bin(op) => (op.mnemonic().to_string(), "circle"),
        Actor::Fetch => ("mem?".into(), "box"),
        Actor::Store => ("mem!".into(), "box"),
        Actor::Recv(cr) => (format!("?{}", chan_suffix(*cr)), "box"),
        Actor::Send(cr) => (format!("!{}", chan_suffix(*cr)), "box"),
        Actor::Fork { iterative: true, .. } => ("ifork".into(), "diamond"),
        Actor::Fork { iterative: false, .. } => ("rfork".into(), "diamond"),
        Actor::ChanNew => ("chan".into(), "diamond"),
        Actor::Now => ("now".into(), "box"),
        Actor::Wait => ("wait".into(), "box"),
        Actor::End => ("end".into(), "doublecircle"),
    }
}

fn chan_suffix(cr: ChanRef) -> &'static str {
    match cr {
        ChanRef::InReg => "in",
        ChanRef::OutReg => "out",
        ChanRef::Value => "",
    }
}

/// Compile a program and render every context as DOT, concatenated (one
/// digraph per context).
///
/// # Errors
///
/// Any [`crate::CompileError`] from compilation.
pub fn program_to_dot(src: &str, opts: &crate::Options) -> Result<String, crate::CompileError> {
    let ast = crate::parse::parse(src).map_err(|e| crate::CompileError::Parse(e.to_string()))?;
    let resolved =
        crate::sema::analyse(&ast).map_err(|e| crate::CompileError::Sema(e.to_string()))?;
    let graphs = crate::codegen::context_graphs(&resolved, opts)
        .map_err(|e| crate::CompileError::Codegen(e.to_string()))?;
    let mut out = String::new();
    for (label, g) in &graphs {
        out.push_str(&to_dot(label, g));
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Actor, ContextGraph, ValueRef};
    use qm_isa::Opcode;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = ContextGraph::new();
        let a = g.add(Actor::Const(1), &[], &[]);
        let b = g.add(Actor::Const(2), &[], &[]);
        let s = g.add(Actor::Bin(Opcode::Plus), &[ValueRef::of(a), ValueRef::of(b)], &[]);
        let _e = g.add(Actor::End, &[], &[s]);
        let dot = to_dot("t", &g);
        assert!(dot.starts_with("digraph \"t\""));
        assert!(dot.contains("n0 -> n2"));
        assert!(dot.contains("style=dashed"), "control arcs are dashed");
        assert!(dot.contains("plus"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn whole_programs_render() {
        let src = "\
var x:
seq
  x := 0
  while x < 3
    x := x + 1
  screen ! x
";
        let dot = program_to_dot(src, &crate::Options::default()).unwrap();
        assert!(dot.matches("digraph").count() >= 4, "main + loop contexts");
        assert!(dot.contains("rfork") || dot.contains("ifork"));
    }
}
