//! Assembly emission: context graph → queue machine instructions.
//!
//! Implements the §3.6 queue-position construction: instruction `i`
//! consumes its operands at absolute queue positions `o_i … o_i+A−1`
//! where `o_i = Σ_{j<i} A(v_j)`, and every producer stores its result at
//! its consumers' operand positions (relative to the post-consumption
//! queue front). Up to two small offsets ride in the instruction's
//! destination fields; further (or large) offsets are written by `dup`
//! instructions; the two results of `rfork` are staged through the
//! scratch globals `r19`/`r20`.

use std::collections::BTreeSet;

use crate::graph::{Actor, ChanRef, ContextGraph, NodeId};

/// Emission failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmitError {
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "emit error: {}", self.msg)
    }
}

impl std::error::Error for EmitError {}

/// Maximum queue offset a result can be stored at (queue page size − 1).
pub const MAX_OFFSET: usize = 255;

/// Emit one context as assembly text, starting with `label:` and ending
/// with the context-terminating `trap #2,#0`.
///
/// `priorities` selects the Fig. 4.20 scheduling heuristic; plain
/// topological order otherwise (the Table 6.6 ablation).
///
/// # Errors
///
/// [`EmitError`] if a result offset exceeds the queue page.
pub fn emit_context(
    label: &str,
    graph: &ContextGraph,
    priorities: bool,
) -> Result<String, EmitError> {
    // --- Dead code elimination: drop pure producers nobody reads. ---
    let n = graph.len();
    let mut dead = vec![false; n];
    loop {
        let mut changed = false;
        for id in 0..n {
            if dead[id] {
                continue;
            }
            let droppable = matches!(
                graph.node(id).actor,
                Actor::Const(_)
                    | Actor::Label(_)
                    | Actor::Copy
                    | Actor::Neg
                    | Actor::Not
                    | Actor::Bin(_)
                    | Actor::Fetch
            );
            if !droppable {
                continue;
            }
            let has_value_consumer = (0..graph.node(id).actor.value_outs())
                .any(|out| graph.consumers(id, out).iter().any(|&(c, _)| !dead[c]));
            let has_ctrl_succ = (0..n).any(|c| !dead[c] && graph.node(c).ctrl.contains(&id));
            if !has_value_consumer && !has_ctrl_succ {
                dead[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let live: Vec<NodeId> = (0..n).filter(|&i| !dead[i]).collect();

    // --- Schedule live nodes; keep End last. ---
    let full_order = graph.schedule(priorities);
    let mut order: Vec<NodeId> = full_order.into_iter().filter(|&i| !dead[i]).collect();
    if let Some(end_pos) = order.iter().position(|&i| graph.node(i).actor == Actor::End) {
        let end = order.remove(end_pos);
        order.push(end);
    }
    debug_assert_eq!(order.len(), live.len());

    // --- Queue positions. ---
    let mut sched_pos = vec![usize::MAX; n];
    for (k, &id) in order.iter().enumerate() {
        sched_pos[id] = k;
    }
    let mut operand_base = vec![0usize; order.len()];
    let mut acc = 0usize;
    for (k, &id) in order.iter().enumerate() {
        operand_base[k] = acc;
        acc += graph.node(id).actor.value_ins();
    }

    // Result offsets per (node, out), relative to the node's
    // post-consumption front.
    let rel_offsets = |id: NodeId, out: u8| -> Result<Vec<usize>, EmitError> {
        let front = operand_base[sched_pos[id]] + graph.node(id).actor.value_ins();
        let mut offs: Vec<usize> = graph
            .consumers(id, out)
            .into_iter()
            .filter(|&(c, _)| !dead[c])
            .map(|(c, slot)| operand_base[sched_pos[c]] + slot - front)
            .collect();
        offs.sort_unstable();
        offs.dedup();
        if let Some(&max) = offs.last() {
            if max > MAX_OFFSET {
                return Err(EmitError {
                    msg: format!(
                        "context {label} too large: result offset {max} exceeds the queue page"
                    ),
                });
            }
        }
        Ok(offs)
    };

    let mut lines: Vec<String> = Vec::new();
    let mut first = true;
    let mut push = |lines: &mut Vec<String>, text: String| {
        if first {
            lines.push(format!("{label}: {text}"));
            first = false;
        } else {
            lines.push(format!("    {text}"));
        }
    };

    for &id in &order {
        let node = graph.node(id);
        let a = node.actor.value_ins();
        let qp = if a > 0 { format!("+{a}") } else { String::new() };
        match &node.actor {
            Actor::Const(v) => {
                emit_value(&mut lines, &mut push, &format!("plus #{v},#0"), &rel_offsets(id, 0)?);
            }
            Actor::Label(l) => {
                emit_value(&mut lines, &mut push, &format!("plus #{l},#0"), &rel_offsets(id, 0)?);
            }
            Actor::Copy => {
                emit_value(&mut lines, &mut push, "plus+1 r0,#0", &rel_offsets(id, 0)?);
            }
            Actor::Neg => {
                emit_value(&mut lines, &mut push, "minus+1 #0,r0", &rel_offsets(id, 0)?);
            }
            Actor::Not => {
                emit_value(&mut lines, &mut push, "xor+1 r0,#-1", &rel_offsets(id, 0)?);
            }
            Actor::Bin(op) => {
                emit_value(
                    &mut lines,
                    &mut push,
                    &format!("{}+2 r0,r1", op.mnemonic()),
                    &rel_offsets(id, 0)?,
                );
            }
            Actor::Fetch => {
                emit_value(&mut lines, &mut push, "fetch+1 r0,#0", &rel_offsets(id, 0)?);
            }
            Actor::Store => push(&mut lines, "store+2 r0,r1".into()),
            Actor::Recv(cr) => {
                let base = match cr {
                    ChanRef::InReg => "recv r17,#0".to_string(),
                    ChanRef::OutReg => "recv r18,#0".to_string(),
                    ChanRef::Value => "recv+1 r0,#0".to_string(),
                };
                emit_value(&mut lines, &mut push, &base, &rel_offsets(id, 0)?);
            }
            Actor::Send(cr) => {
                let text = match cr {
                    ChanRef::InReg => "send+1 r17,r0".to_string(),
                    ChanRef::OutReg => "send+1 r18,r0".to_string(),
                    ChanRef::Value => "send+2 r0,r1".to_string(),
                };
                push(&mut lines, text);
            }
            Actor::Fork { iterative, local } => {
                let offs0 = rel_offsets(id, 0)?;
                if *iterative {
                    push(&mut lines, format!("trap{qp} #1,r0 :r19"));
                    if !offs0.is_empty() {
                        emit_value(&mut lines, &mut push, "plus r19,#0", &offs0);
                    }
                } else {
                    let entry = if *local { 7 } else { 0 };
                    let offs1 = rel_offsets(id, 1)?;
                    push(&mut lines, format!("trap{qp} #{entry},r0 :r19,r20"));
                    if !offs0.is_empty() {
                        emit_value(&mut lines, &mut push, "plus r19,#0", &offs0);
                    }
                    if !offs1.is_empty() {
                        emit_value(&mut lines, &mut push, "plus r20,#0", &offs1);
                    }
                }
            }
            Actor::ChanNew | Actor::Now => {
                let entry = if node.actor == Actor::ChanNew { 6 } else { 4 };
                let offs = rel_offsets(id, 0)?;
                match offs.as_slice() {
                    [] => push(&mut lines, format!("trap #{entry},#0")),
                    [single] if *single < 16 => {
                        push(&mut lines, format!("trap #{entry},#0 :r{single}"));
                    }
                    _ => {
                        push(&mut lines, format!("trap #{entry},#0 :r19"));
                        emit_value(&mut lines, &mut push, "plus r19,#0", &offs);
                    }
                }
            }
            Actor::Wait => push(&mut lines, format!("trap{qp} #5,r0")),
            Actor::End => push(&mut lines, format!("trap{qp} #2,#0")),
        }
    }
    let mut text = lines.join("\n");
    text.push('\n');
    Ok(text)
}

/// Emit a value-producing instruction plus the `dup`s distributing its
/// result to every offset. Up to two offsets < 16 ride in the
/// destination fields; the rest go through `dup1`/`dup2` with the
/// continue flag linking the group.
fn emit_value(
    lines: &mut Vec<String>,
    push: &mut impl FnMut(&mut Vec<String>, String),
    base: &str,
    offsets: &[usize],
) {
    let direct: Vec<usize> = offsets.iter().copied().filter(|&o| o < 16).take(2).collect();
    let rest: Vec<usize> = offsets.iter().copied().filter(|&o| !direct.contains(&o)).collect();
    let dst = match direct.as_slice() {
        [] => String::new(),
        [a] => format!(" :r{a}"),
        [a, b] => format!(" :r{a},r{b}"),
        _ => unreachable!("take(2)"),
    };
    let cont = if rest.is_empty() { "" } else { " >" };
    push(lines, format!("{base}{dst}{cont}"));
    let mut chunks = rest.chunks(2).peekable();
    while let Some(chunk) = chunks.next() {
        let more = if chunks.peek().is_some() { " >" } else { "" };
        match chunk {
            [a] => push(lines, format!("dup1 :r{a}{more}")),
            [a, b] => push(lines, format!("dup2 :r{a},r{b}{more}")),
            _ => unreachable!("chunks(2)"),
        }
    }
}

/// Wire every sink (no value consumer, no control successor) into the
/// `End` node so the context terminates only after all side effects.
/// Call once, after the graph is complete; `end` must be the last node.
pub fn wire_end(graph: &mut ContextGraph, end: NodeId) {
    let n = graph.len();
    let mut has_succ = vec![false; n];
    for id in 0..n {
        for v in &graph.node(id).vins {
            has_succ[v.node] = true;
        }
        for &c in &graph.node(id).ctrl {
            has_succ[c] = true;
        }
    }
    // Pure producers that nobody reads are dead code, not side effects:
    // leaving them unwired lets the emitter's DCE drop them.
    let pure = |id: NodeId| {
        matches!(
            graph.node(id).actor,
            Actor::Const(_)
                | Actor::Label(_)
                | Actor::Copy
                | Actor::Neg
                | Actor::Not
                | Actor::Bin(_)
                | Actor::Fetch
        )
    };
    let sinks: BTreeSet<NodeId> =
        (0..n).filter(|&i| i != end && !has_succ[i] && !pure(i)).collect();
    for s in sinks {
        graph.add_ctrl(s, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Actor, ChanRef, ContextGraph, ValueRef};
    use qm_isa::Opcode;

    fn finish(mut g: ContextGraph) -> ContextGraph {
        let end = g.add(Actor::End, &[], &[]);
        wire_end(&mut g, end);
        g
    }

    #[test]
    fn straight_line_emission() {
        let mut g = ContextGraph::new();
        let a = g.add(Actor::Const(2), &[], &[]);
        let b = g.add(Actor::Const(3), &[], &[]);
        let s = g.add(Actor::Bin(Opcode::Plus), &[ValueRef::of(a), ValueRef::of(b)], &[]);
        let _ = g.add(Actor::Send(ChanRef::OutReg), &[ValueRef::of(s)], &[]);
        let asm = emit_context("t", &finish(g), true).unwrap();
        assert!(asm.starts_with("t: "), "{asm}");
        assert!(asm.contains("plus+2 r0,r1"), "{asm}");
        assert!(asm.contains("send+1 r18,r0"), "{asm}");
        assert!(asm.trim_end().ends_with("trap #2,#0"), "{asm}");
        // It must assemble.
        qm_isa::asm::assemble(&asm).unwrap();
    }

    #[test]
    fn dead_constants_are_dropped() {
        let mut g = ContextGraph::new();
        let _unused = g.add(Actor::Const(42), &[], &[]);
        let asm = emit_context("t", &finish(g), true).unwrap();
        assert!(!asm.contains("#42"), "{asm}");
    }

    #[test]
    fn fanout_uses_dst_fields_then_dups() {
        // A value consumed by many sends lands in several queue slots.
        let mut g = ContextGraph::new();
        let v = g.add(Actor::Const(7), &[], &[]);
        let c = g.add(Actor::Const(1), &[], &[]);
        // 4 sends each consuming (chan, value): offsets spread out.
        let mut prev = None;
        for _ in 0..4 {
            let ctrl: Vec<_> = prev.into_iter().collect();
            prev = Some(g.add(
                Actor::Send(ChanRef::Value),
                &[ValueRef::of(c), ValueRef::of(v)],
                &ctrl,
            ));
        }
        let asm = emit_context("t", &finish(g), true).unwrap();
        qm_isa::asm::assemble(&asm).unwrap();
        assert!(asm.contains("dup"), "wide fanout needs dups: {asm}");
    }

    #[test]
    fn rfork_stages_through_scratch() {
        let mut g = ContextGraph::new();
        let l = g.add(Actor::Label("child".into()), &[], &[]);
        let f = g.add(Actor::Fork { iterative: false, local: false }, &[ValueRef::of(l)], &[]);
        let arg = g.add(Actor::Const(5), &[], &[]);
        let _s = g.add(
            Actor::Send(ChanRef::Value),
            &[ValueRef { node: f, out: 0 }, ValueRef::of(arg)],
            &[],
        );
        let _r = g.add(Actor::Recv(ChanRef::Value), &[ValueRef { node: f, out: 1 }], &[]);
        let g = finish(g);
        // Dummy child label target so assembly resolves.
        let end = g.len();
        let _ = end;
        let asm = emit_context("t", &g, true).unwrap();
        assert!(asm.contains("trap+1 #0,r0 :r19,r20"), "{asm}");
        assert!(asm.contains("plus r19,#0"), "{asm}");
        assert!(asm.contains("plus r20,#0"), "{asm}");
        let full = format!("{asm}child: trap #2,#0\n");
        qm_isa::asm::assemble(&full).unwrap();
    }

    #[test]
    fn offsets_beyond_page_are_rejected() {
        // 200 sends of one constant: consumer slots span past 255.
        let mut g = ContextGraph::new();
        let v = g.add(Actor::Const(9), &[], &[]);
        let c = g.add(Actor::Const(1), &[], &[]);
        let mut prev = None;
        for _ in 0..200 {
            let ctrl: Vec<_> = prev.into_iter().collect();
            prev = Some(g.add(
                Actor::Send(ChanRef::Value),
                &[ValueRef::of(c), ValueRef::of(v)],
                &ctrl,
            ));
        }
        assert!(emit_context("t", &finish(g), true).is_err());
    }

    #[test]
    fn end_waits_for_stores() {
        let mut g = ContextGraph::new();
        let addr = g.add(Actor::Const(0x0010_0000), &[], &[]);
        let v = g.add(Actor::Const(1), &[], &[]);
        let _st = g.add(Actor::Store, &[ValueRef::of(addr), ValueRef::of(v)], &[]);
        let asm = emit_context("t", &finish(g), true).unwrap();
        let store_line = asm.lines().position(|l| l.contains("store")).unwrap();
        let end_line = asm.lines().position(|l| l.contains("trap")).unwrap();
        assert!(store_line < end_line, "{asm}");
    }
}
