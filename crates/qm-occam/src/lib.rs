//! OCCAM compiler for the indexed queue machine (thesis Chapter 4).
//!
//! The compiler mirrors the thesis's pass structure (Fig. 4.21):
//!
//! * [`lex`] / [`parse`] — *scanparse*: OCCAM text → syntax tree.
//! * [`sema`] — *semantic*: scope checking, renaming, array layout.
//! * [`ift`] — *dataflow*: the Intermediate Form Table with I/O/E sets,
//!   use/definition chains and live-value analysis (Tables 4.1–4.3,
//!   Figs 4.11–4.12).
//! * [`graph`] — *grapher*: per-context acyclic data-flow graphs with
//!   control-token sequencing for side effects (§4.6).
//! * [`codegen`] — *sequencer* + *coder*: the Fig. 4.20 priority
//!   scheduling heuristic, queue-position assignment (§3.6), and assembly
//!   emission, including the dynamic graph-splicing protocol
//!   (`rfork`/`ifork`/channel sends) for `while`, `if`, `par`,
//!   replication and procedure calls (§4.2).
//!
//! The output is queue-machine assembly accepted by [`qm_isa::asm`] and
//! runnable on [`qm_sim`](../qm_sim/index.html).
//!
//! # Example
//!
//! ```
//! let src = "\
//! var sum:
//! seq
//!   sum := 0
//!   seq k = [1 for 10]
//!     sum := sum + k
//!   screen ! sum
//! ";
//! let compiled = qm_occam::compile(src, &qm_occam::Options::default())?;
//! assert!(compiled.asm.contains("send")); // reports on the host channel
//! # Ok::<(), qm_occam::CompileError>(())
//! ```

pub mod ast;
pub mod codegen;
pub mod draw;
pub mod emit;
pub mod graph;
pub mod ift;
pub mod interp;
pub mod lex;
pub mod parse;
pub mod pretty;
pub mod sema;

/// Compiler options (the Table 6.6 optimization toggles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Live-value analysis: prune context interfaces down to live values
    /// (off = transmit every scalar in scope).
    pub live_value_analysis: bool,
    /// Input sequencing: order context inputs by the `π_I` weights of
    /// §4.5 (off = declaration order).
    pub input_sequencing: bool,
    /// Instruction scheduling: the Fig. 4.20 actor-priority heuristic
    /// (off = plain topological order).
    pub priority_scheduling: bool,
    /// Unroll small constant-bound `seq` replications of primitive
    /// statements into their enclosing context — the §4.3 context-size
    /// trade-off, biased toward larger acyclic graphs.
    pub loop_unrolling: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            live_value_analysis: true,
            input_sequencing: true,
            priority_scheduling: true,
            loop_unrolling: true,
        }
    }
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Queue machine assembly text (one context per label).
    pub asm: String,
    /// Assembled object code.
    pub object: qm_isa::asm::Object,
    /// Number of contexts (code-generating graph partitions).
    pub context_count: usize,
    /// Bytes of global data allocated to arrays.
    pub data_bytes: u32,
    /// Resolved symbol table (array addresses etc.).
    pub syms: std::collections::HashMap<String, sema::SymKind>,
}

/// Compilation failure from any pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(String),
    /// Semantic analysis failed.
    Sema(String),
    /// Code generation failed.
    Codegen(String),
    /// The emitted assembly failed to assemble (compiler bug).
    Assemble(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(m) => write!(f, "parse: {m}"),
            CompileError::Sema(m) => write!(f, "sema: {m}"),
            CompileError::Codegen(m) => write!(f, "codegen: {m}"),
            CompileError::Assemble(m) => write!(f, "assemble: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile OCCAM source to queue-machine object code.
///
/// # Errors
///
/// [`CompileError`] naming the failing pass.
pub fn compile(src: &str, options: &Options) -> Result<Compiled, CompileError> {
    let ast = parse::parse(src).map_err(|e| CompileError::Parse(e.to_string()))?;
    let resolved = sema::analyse(&ast).map_err(|e| CompileError::Sema(e.to_string()))?;
    let asm =
        codegen::generate(&resolved, options).map_err(|e| CompileError::Codegen(e.to_string()))?;
    let object = qm_isa::asm::assemble(&asm).map_err(|e| CompileError::Assemble(e.to_string()))?;
    let context_count = asm.matches("trap #2,#0").count();
    Ok(Compiled {
        asm,
        object,
        context_count,
        data_bytes: resolved.data_bytes,
        syms: resolved.syms,
    })
}
