//! Semantic analysis: scope checking, alpha-renaming, array layout.
//!
//! Produces a *resolved* program in which every identifier is globally
//! unique, every use is classified (scalar, array, channel, parameter,
//! replicator index, procedure), and every array has a static address in
//! the shared data segment. The predefined channels `screen` and
//! `keyboard` name the host channel (id 0).

use std::collections::HashMap;

use crate::ast::{Decl, Expr, Lvalue, Param, ProcDef, Process, Replicator};

/// Classified symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymKind {
    /// Local scalar variable.
    Scalar,
    /// Replicator index (read-only in its body).
    ReplIndex,
    /// Word array at a static global address.
    Array {
        /// Base byte address in the global data segment.
        addr: u32,
        /// Length in words.
        len: u32,
    },
    /// Channel declared by `chan`; `host` channels are the predefined
    /// `screen`/`keyboard` (runtime id 0).
    Chan {
        /// True for the host channels.
        host: bool,
    },
    /// Procedure value parameter.
    ValueParam,
    /// Procedure value-result parameter.
    VarParam,
    /// Procedure parameter used as an array (receives a base address).
    ArrayParam,
    /// Procedure name.
    Proc {
        /// Index into [`Resolved::procs`].
        index: usize,
    },
}

/// A resolved procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedProc {
    /// Unique name.
    pub name: String,
    /// Renamed parameters in declaration order.
    pub params: Vec<Param>,
    /// Renamed body.
    pub body: Process,
}

/// Result of semantic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolved {
    /// The renamed main process.
    pub main: Process,
    /// All procedures (bodies renamed), topologically collected.
    pub procs: Vec<ResolvedProc>,
    /// Symbol table over unique names.
    pub syms: HashMap<String, SymKind>,
    /// Bytes of global data allocated to arrays.
    pub data_bytes: u32,
}

/// Semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// Description (includes the offending name).
    pub msg: String,
}

impl std::fmt::Display for SemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "semantic error: {}", self.msg)
    }
}

impl std::error::Error for SemaError {}

/// Base address of compiler-allocated arrays (start of the shared data
/// segment).
pub const DATA_BASE: u32 = qm_isa::mem::GLOBAL_BASE;

/// Analyse and rename a parsed program.
///
/// # Errors
///
/// [`SemaError`] for undeclared names, kind mismatches (e.g. sending on a
/// scalar), duplicate declarations in one scope, or bad call arity.
pub fn analyse(program: &Process) -> Result<Resolved, SemaError> {
    let mut cx = Cx {
        env: vec![HashMap::new()],
        syms: HashMap::new(),
        procs: Vec::new(),
        proc_arity: Vec::new(),
        next_id: 0,
        next_addr: DATA_BASE,
    };
    cx.declare_predefined();
    let main = cx.process(program)?;
    Ok(Resolved { main, procs: cx.procs, syms: cx.syms, data_bytes: cx.next_addr - DATA_BASE })
}

struct Cx {
    env: Vec<HashMap<String, String>>,
    syms: HashMap<String, SymKind>,
    procs: Vec<ResolvedProc>,
    /// Arity per procedure; `None` while the body is still being
    /// analysed (recursive calls skip the check until a post-pass).
    proc_arity: Vec<Option<usize>>,
    next_id: u32,
    next_addr: u32,
}

impl Cx {
    fn declare_predefined(&mut self) {
        for host in ["screen", "keyboard"] {
            let unique = host.to_string();
            self.env[0].insert(host.to_string(), unique.clone());
            self.syms.insert(unique, SymKind::Chan { host: true });
        }
    }

    fn err<T>(msg: impl Into<String>) -> Result<T, SemaError> {
        Err(SemaError { msg: msg.into() })
    }

    fn fresh(&mut self, base: &str) -> String {
        let id = self.next_id;
        self.next_id += 1;
        format!("{base}.{id}")
    }

    fn declare(&mut self, name: &str, kind: SymKind) -> Result<String, SemaError> {
        if self.env.last().expect("scope stack never empty").contains_key(name) {
            return Self::err(format!("duplicate declaration of {name} in one scope"));
        }
        let unique = self.fresh(name);
        self.env
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), unique.clone());
        self.syms.insert(unique.clone(), kind);
        Ok(unique)
    }

    fn lookup(&self, name: &str) -> Result<(String, &SymKind), SemaError> {
        for scope in self.env.iter().rev() {
            if let Some(unique) = scope.get(name) {
                return Ok((unique.clone(), &self.syms[unique]));
            }
        }
        Self::err(format!("undeclared identifier {name}"))
    }

    fn expr(&mut self, e: &Expr) -> Result<Expr, SemaError> {
        Ok(match e {
            Expr::Const(v) => Expr::Const(*v),
            Expr::Now => Expr::Now,
            Expr::Var(name) => {
                let (unique, kind) = self.lookup(name)?;
                match kind {
                    SymKind::Scalar
                    | SymKind::ReplIndex
                    | SymKind::ValueParam
                    | SymKind::VarParam => Expr::Var(unique),
                    // A bare array name denotes its base address (used to
                    // pass arrays to procedures).
                    SymKind::Array { .. } | SymKind::ArrayParam => Expr::Var(unique),
                    SymKind::Chan { .. } => {
                        // A channel used as a value (e.g. passed to a proc)
                        // is its identifier word.
                        Expr::Var(unique)
                    }
                    SymKind::Proc { .. } => {
                        return Self::err(format!("procedure {name} used as a value"))
                    }
                }
            }
            Expr::Index(name, idx) => {
                let (unique, kind) = self.lookup(name)?;
                match kind {
                    SymKind::Array { .. } | SymKind::ArrayParam => {}
                    other => {
                        return Self::err(format!("{name} indexed but is {other:?}"));
                    }
                }
                let idx = self.expr(idx)?;
                Expr::Index(unique, Box::new(idx))
            }
            Expr::Neg(x) => Expr::Neg(Box::new(self.expr(x)?)),
            Expr::Not(x) => Expr::Not(Box::new(self.expr(x)?)),
            Expr::Bin(op, a, b) => Expr::bin(*op, self.expr(a)?, self.expr(b)?),
        })
    }

    fn lvalue(&mut self, lv: &Lvalue) -> Result<Lvalue, SemaError> {
        Ok(match lv {
            Lvalue::Var(name) => {
                let (unique, kind) = self.lookup(name)?;
                match kind {
                    SymKind::Scalar | SymKind::VarParam | SymKind::ValueParam => {
                        Lvalue::Var(unique)
                    }
                    SymKind::ReplIndex => {
                        return Self::err(format!("replicator index {name} is read-only"))
                    }
                    other => return Self::err(format!("cannot assign to {name} ({other:?})")),
                }
            }
            Lvalue::Index(name, idx) => {
                let (unique, kind) = self.lookup(name)?;
                if !matches!(kind, SymKind::Array { .. } | SymKind::ArrayParam) {
                    return Self::err(format!("{name} indexed but is {kind:?}"));
                }
                let idx = self.expr(idx)?;
                Lvalue::Index(unique, Box::new(idx))
            }
        })
    }

    fn channel(&mut self, name: &str) -> Result<String, SemaError> {
        let (unique, kind) = self.lookup(name)?;
        match kind {
            SymKind::Chan { .. } => Ok(unique),
            // Channel identifiers received as procedure parameters are
            // plain words.
            SymKind::ValueParam | SymKind::VarParam => Ok(unique),
            other => Self::err(format!("{name} used as a channel but is {other:?}")),
        }
    }

    fn replicator(&mut self, rep: &Replicator) -> Result<(Replicator, String), SemaError> {
        // Bounds are evaluated in the enclosing scope.
        let start = self.expr(&rep.start)?;
        let count = self.expr(&rep.count)?;
        let unique = self.declare(&rep.var, SymKind::ReplIndex)?;
        Ok((Replicator { var: unique.clone(), start, count }, unique))
    }

    fn process(&mut self, p: &Process) -> Result<Process, SemaError> {
        Ok(match p {
            Process::Skip => Process::Skip,
            Process::Wait(e) => Process::Wait(self.expr(e)?),
            Process::Assign(lv, e) => {
                let e = self.expr(e)?;
                let lv = self.lvalue(lv)?;
                Process::Assign(lv, e)
            }
            Process::Output(c, e) => {
                let e = self.expr(e)?;
                let c = self.channel(c)?;
                Process::Output(c, e)
            }
            Process::Input(c, lv) => {
                let c = self.channel(c)?;
                let lv = self.lvalue(lv)?;
                Process::Input(c, lv)
            }
            Process::Seq(rep, ps) => {
                self.env.push(HashMap::new());
                let rep = match rep {
                    Some(r) => Some(self.replicator(r)?.0),
                    None => None,
                };
                let ps = ps.iter().map(|p| self.process(p)).collect::<Result<_, _>>()?;
                self.env.pop();
                Process::Seq(rep, ps)
            }
            Process::Par(rep, ps) => {
                self.env.push(HashMap::new());
                let rep = match rep {
                    Some(r) => Some(self.replicator(r)?.0),
                    None => None,
                };
                let ps = ps.iter().map(|p| self.process(p)).collect::<Result<_, _>>()?;
                self.env.pop();
                Process::Par(rep, ps)
            }
            Process::If(branches) => {
                let branches = branches
                    .iter()
                    .map(|(c, p)| Ok((self.expr(c)?, self.process(p)?)))
                    .collect::<Result<_, SemaError>>()?;
                Process::If(branches)
            }
            Process::While(c, body) => {
                let c = self.expr(c)?;
                let body = self.process(body)?;
                Process::While(c, Box::new(body))
            }
            Process::Scope(decls, procs, body) => {
                self.env.push(HashMap::new());
                let mut rdecls = Vec::with_capacity(decls.len());
                for d in decls {
                    let rd = match d {
                        Decl::Scalar(n) => Decl::Scalar(self.declare(n, SymKind::Scalar)?),
                        Decl::Array(n, len) => {
                            let addr = self.next_addr;
                            self.next_addr += 4 * *len;
                            Decl::Array(self.declare(n, SymKind::Array { addr, len: *len })?, *len)
                        }
                        Decl::Chan(n) => {
                            Decl::Chan(self.declare(n, SymKind::Chan { host: false })?)
                        }
                    };
                    rdecls.push(rd);
                }
                for pd in procs {
                    let index = self.procs.len();
                    let unique = self.declare(&pd.name, SymKind::Proc { index })?;
                    // Reserve the slot so recursive calls resolve.
                    self.procs.push(ResolvedProc {
                        name: unique.clone(),
                        params: Vec::new(),
                        body: Process::Skip,
                    });
                    self.proc_arity.push(None);
                    let resolved = self.proc_def(pd)?;
                    self.proc_arity[index] = Some(resolved.params.len());
                    self.procs[index] = ResolvedProc { name: unique, ..resolved };
                }
                let body = self.process(body)?;
                self.env.pop();
                Process::Scope(rdecls, Vec::new(), Box::new(body))
            }
            Process::Call(name, args) => {
                let (unique, kind) = self.lookup(name)?;
                let SymKind::Proc { index } = kind else {
                    return Self::err(format!("{name} called but is {kind:?}"));
                };
                let index = *index;
                let args: Vec<Expr> =
                    args.iter().map(|a| self.expr(a)).collect::<Result<_, _>>()?;
                if let Some(arity) = self.proc_arity[index] {
                    if args.len() != arity {
                        return Self::err(format!(
                            "{name} called with {} arguments, expects {arity}",
                            args.len()
                        ));
                    }
                }
                Process::Call(unique, args)
            }
        })
    }

    fn proc_def(&mut self, pd: &ProcDef) -> Result<ResolvedProc, SemaError> {
        self.env.push(HashMap::new());
        // Classify parameters: a parameter indexed anywhere in the body is
        // an array(base-address) parameter.
        let mut indexed = Vec::new();
        collect_indexed(&pd.body, &mut indexed);
        let mut params = Vec::with_capacity(pd.params.len());
        for p in &pd.params {
            let name = p.name();
            let kind = if indexed.iter().any(|n| n == name) {
                SymKind::ArrayParam
            } else {
                match p {
                    Param::Value(_) => SymKind::ValueParam,
                    Param::Var(_) => SymKind::VarParam,
                }
            };
            let is_array = kind == SymKind::ArrayParam;
            let unique = self.declare(name, kind)?;
            params.push(match (p, is_array) {
                (_, true) | (Param::Value(_), _) => Param::Value(unique),
                (Param::Var(_), _) => Param::Var(unique),
            });
        }
        let body = self.process(&pd.body)?;
        self.env.pop();
        Ok(ResolvedProc { name: String::new(), params, body })
    }
}

fn collect_indexed(p: &Process, out: &mut Vec<String>) {
    fn expr(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Index(n, i) => {
                out.push(n.clone());
                expr(i, out);
            }
            Expr::Neg(x) | Expr::Not(x) => expr(x, out),
            Expr::Bin(_, a, b) => {
                expr(a, out);
                expr(b, out);
            }
            Expr::Const(_) | Expr::Var(_) | Expr::Now => {}
        }
    }
    match p {
        Process::Assign(lv, e) => {
            if let Lvalue::Index(n, i) = lv {
                out.push(n.clone());
                expr(i, out);
            }
            expr(e, out);
        }
        Process::Input(_, lv) => {
            if let Lvalue::Index(n, i) = lv {
                out.push(n.clone());
                expr(i, out);
            }
        }
        Process::Output(_, e) | Process::Wait(e) => expr(e, out),
        Process::Skip => {}
        Process::Seq(rep, ps) | Process::Par(rep, ps) => {
            if let Some(r) = rep {
                expr(&r.start, out);
                expr(&r.count, out);
            }
            for p in ps {
                collect_indexed(p, out);
            }
        }
        Process::If(branches) => {
            for (c, p) in branches {
                expr(c, out);
                collect_indexed(p, out);
            }
        }
        Process::While(c, p) => {
            expr(c, out);
            collect_indexed(p, out);
        }
        Process::Scope(_, procs, p) => {
            for pd in procs {
                collect_indexed(&pd.body, out);
            }
            collect_indexed(p, out);
        }
        Process::Call(_, args) => {
            for a in args {
                expr(a, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn resolve(src: &str) -> Resolved {
        analyse(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn arrays_get_distinct_addresses() {
        let r = resolve("var a[4], b[8], x:\nx := a[0] + b[0]\n");
        let addrs: Vec<u32> = r
            .syms
            .values()
            .filter_map(|k| match k {
                SymKind::Array { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        assert_eq!(addrs.len(), 2);
        assert_ne!(addrs[0], addrs[1]);
        assert_eq!(r.data_bytes, 48);
    }

    #[test]
    fn shadowing_renames() {
        let r = resolve("var x:\nseq\n  x := 1\n  var x:\n  x := 2\n");
        // Two distinct scalars named x.* exist.
        let xs = r.syms.keys().filter(|k| k.starts_with("x.")).count();
        assert_eq!(xs, 2);
    }

    #[test]
    fn undeclared_variable_rejected() {
        assert!(analyse(&parse("x := 1\n").unwrap()).is_err());
    }

    #[test]
    fn duplicate_in_scope_rejected() {
        assert!(analyse(&parse("var x, x:\nx := 1\n").unwrap()).is_err());
    }

    #[test]
    fn replicator_index_is_read_only() {
        let bad = "var s:\nseq i = [0 for 4]\n  i := 1\n";
        assert!(analyse(&parse(bad).unwrap()).is_err());
    }

    #[test]
    fn screen_is_predefined_host_channel() {
        let r = resolve("screen ! 42\n");
        assert_eq!(r.syms["screen"], SymKind::Chan { host: true });
    }

    #[test]
    fn channel_kind_checked() {
        assert!(analyse(&parse("var x:\nx ! 1\n").unwrap()).is_err());
    }

    #[test]
    fn proc_params_classified() {
        let r =
            resolve("proc f(value n, var acc, v) =\n  acc := n + v[0]\nvar a, b[4]:\nf(1, a, b)\n");
        assert_eq!(r.procs.len(), 1);
        let p = &r.procs[0];
        assert_eq!(p.params.len(), 3);
        let kinds: Vec<&SymKind> = p.params.iter().map(|p| &r.syms[p.name()]).collect();
        assert_eq!(kinds[0], &SymKind::ValueParam);
        assert_eq!(kinds[1], &SymKind::VarParam);
        assert_eq!(kinds[2], &SymKind::ArrayParam, "indexed param is an array");
    }

    #[test]
    fn call_arity_checked() {
        let bad = "proc f(value n) =\n  skip\nf(1, 2)\n";
        assert!(analyse(&parse(bad).unwrap()).is_err());
    }

    #[test]
    fn bare_array_name_is_address_value() {
        let r = resolve("proc f(v) =\n  v[0] := 1\nvar a[4]:\nf(a)\n");
        assert_eq!(r.procs.len(), 1);
    }
}
