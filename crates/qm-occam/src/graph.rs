//! Per-context acyclic data-flow graphs (thesis §4.5–4.7).
//!
//! A [`ContextGraph`] holds the actors of one context: nodes carry
//! *value* inputs (which become queue operands) and *control*
//! dependencies (the control-token arcs of §4.6 — they sequence side
//! effects but "do not appear in the queue machine instruction sequence").
//! Nodes may produce up to two distinct values (`rfork` yields both the
//! in and out channel of the new context).

use qm_core::dfg::schedule::ActorClass;
use qm_isa::Opcode;

/// Node index within a [`ContextGraph`].
pub type NodeId = usize;

/// A reference to one output value of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueRef {
    /// Producing node.
    pub node: NodeId,
    /// Output index (0 or 1).
    pub out: u8,
}

impl ValueRef {
    /// Output 0 of `node`.
    #[must_use]
    pub fn of(node: NodeId) -> Self {
        ValueRef { node, out: 0 }
    }
}

/// How a channel operation names its channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanRef {
    /// The context's own *in* channel (global register `r17`).
    InReg,
    /// The context's own *out* channel (global register `r18`).
    OutReg,
    /// A run-time channel identifier consumed as the first queue operand.
    Value,
}

/// Data-flow actors of the code generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Actor {
    /// Integer constant.
    Const(i32),
    /// Address of a labelled context body.
    Label(String),
    /// Identity (used to fan out single-consumer values such as fork
    /// channels).
    Copy,
    /// Arithmetic negation (lowered to `minus #0,r0`).
    Neg,
    /// Bitwise complement (lowered to `xor r0,#-1`).
    Not,
    /// Two-operand ALU/compare operation.
    Bin(Opcode),
    /// Memory read; value input = address.
    Fetch,
    /// Memory write; value inputs = address, value. No result.
    Store,
    /// Channel receive.
    Recv(ChanRef),
    /// Channel send; value inputs = optional channel id, then the value.
    /// No result.
    Send(ChanRef),
    /// Context creation; value input = code address. `rfork` produces
    /// (in, out); `ifork` produces (in).
    Fork {
        /// `ifork` (inherits the caller's out channel).
        iterative: bool,
        /// Pin the child to the forking PE (continuation contexts the
        /// parent immediately blocks on).
        local: bool,
    },
    /// Allocate a fresh program channel (kernel entry 6).
    ChanNew,
    /// Read the clock (kernel entry 4).
    Now,
    /// Suspend until the clock reaches the operand (kernel entry 5).
    Wait,
    /// Terminate the context (kernel entry 2). Always scheduled last.
    End,
}

impl Actor {
    /// Number of queue operands consumed.
    #[must_use]
    pub fn value_ins(&self) -> usize {
        match self {
            Actor::Const(_)
            | Actor::Label(_)
            | Actor::ChanNew
            | Actor::Now
            | Actor::End
            | Actor::Recv(ChanRef::InReg | ChanRef::OutReg) => 0,
            Actor::Copy
            | Actor::Neg
            | Actor::Not
            | Actor::Fetch
            | Actor::Recv(ChanRef::Value)
            | Actor::Send(ChanRef::InReg | ChanRef::OutReg)
            | Actor::Fork { .. }
            | Actor::Wait => 1,
            Actor::Bin(_) | Actor::Store | Actor::Send(ChanRef::Value) => 2,
        }
    }

    /// Number of values produced.
    #[must_use]
    pub fn value_outs(&self) -> u8 {
        match self {
            Actor::Store | Actor::Send(_) | Actor::Wait | Actor::End => 0,
            Actor::Fork { iterative: false, .. } => 2,
            _ => 1,
        }
    }

    /// Scheduling class (§4.7 priorities).
    #[must_use]
    pub fn class(&self) -> ActorClass {
        match self {
            Actor::Fork { .. } => ActorClass::Fork,
            Actor::Send(_) => ActorClass::Send,
            Actor::Store => ActorClass::Store,
            Actor::Fetch => ActorClass::Fetch,
            Actor::Recv(_) => ActorClass::Receive,
            Actor::Wait => ActorClass::Wait,
            _ => ActorClass::Other,
        }
    }
}

/// A node: actor + ordered value inputs + control dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GNode {
    /// The actor.
    pub actor: Actor,
    /// Ordered operand producers.
    pub vins: Vec<ValueRef>,
    /// Control-token predecessors (order-only constraints).
    pub ctrl: Vec<NodeId>,
}

/// The data-flow graph of one context.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContextGraph {
    nodes: Vec<GNode>,
}

impl ContextGraph {
    /// Empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node.
    ///
    /// # Panics
    ///
    /// Panics if operand count or output indices don't match the actor,
    /// or if an input refers to a node that does not exist yet.
    pub fn add(&mut self, actor: Actor, vins: &[ValueRef], ctrl: &[NodeId]) -> NodeId {
        let id = self.nodes.len();
        assert_eq!(vins.len(), actor.value_ins(), "operand count for {actor:?}");
        for v in vins {
            assert!(v.node < id, "value input {v:?} does not exist yet");
            assert!(v.out < self.nodes[v.node].actor.value_outs(), "bad output index {v:?}");
        }
        for &c in ctrl {
            assert!(c < id, "control input {c} does not exist yet");
        }
        self.nodes.push(GNode { actor, vins: vins.to_vec(), ctrl: ctrl.to_vec() });
        id
    }

    /// Add a control edge `from → to` after construction. Unlike value
    /// edges, control edges may point "backwards" in id order (the §4.5
    /// input sequencing reorders prologue receives); [`Self::schedule`]
    /// checks overall acyclicity.
    ///
    /// # Panics
    ///
    /// Panics on a self-edge.
    pub fn add_ctrl(&mut self, from: NodeId, to: NodeId) {
        assert_ne!(from, to, "control self-edge");
        if !self.nodes[to].ctrl.contains(&from) {
            self.nodes[to].ctrl.push(from);
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `id`.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &GNode {
        &self.nodes[id]
    }

    /// All `(consumer, slot)` pairs reading output `out` of `node`.
    #[must_use]
    pub fn consumers(&self, node: NodeId, out: u8) -> Vec<(NodeId, usize)> {
        let mut out_list = Vec::new();
        for (c, n) in self.nodes.iter().enumerate() {
            for (slot, v) in n.vins.iter().enumerate() {
                if v.node == node && v.out == out {
                    out_list.push((c, slot));
                }
            }
        }
        out_list
    }

    /// Schedule the nodes: Kahn's algorithm over value+control edges,
    /// selecting by the §4.7 actor priorities when `priorities` is true
    /// (plain FIFO topological order otherwise).
    ///
    /// # Panics
    ///
    /// Never — ids are topological by construction, so a complete order
    /// always exists.
    #[must_use]
    pub fn schedule(&self, priorities: bool) -> Vec<NodeId> {
        let mut remaining: Vec<usize> = self
            .nodes
            .iter()
            .map(|n| {
                let mut preds: Vec<NodeId> = n.vins.iter().map(|v| v.node).collect();
                preds.extend(&n.ctrl);
                preds.sort_unstable();
                preds.dedup();
                preds.len()
            })
            .collect();
        // Successor lists (deduplicated).
        let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            let mut preds: Vec<NodeId> = n.vins.iter().map(|v| v.node).collect();
            preds.extend(&n.ctrl);
            preds.sort_unstable();
            preds.dedup();
            for p in preds {
                succs[p].push(i);
            }
        }
        let mut ready: Vec<NodeId> = (0..self.nodes.len()).filter(|&i| remaining[i] == 0).collect();
        let mut out = Vec::with_capacity(self.nodes.len());
        while !ready.is_empty() {
            let pick = if priorities {
                ready
                    .iter()
                    .enumerate()
                    .max_by(|(ia, &a), (ib, &b)| {
                        self.nodes[a]
                            .actor
                            .class()
                            .priority()
                            .cmp(&self.nodes[b].actor.class().priority())
                            .then(ib.cmp(ia))
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty")
            } else {
                0
            };
            let v = ready.remove(pick);
            out.push(v);
            for &s in &succs[v] {
                remaining[s] -= 1;
                if remaining[s] == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert_eq!(out.len(), self.nodes.len(), "graph must be acyclic");
        out
    }

    /// The input-sequencing weights `W(v)` of §4.5 for the given input
    /// nodes: `W(v) = Σ_{u : v ∈ I*(u)} C(u)` with `C(u) = |P*(u)|` over
    /// value+control predecessors. Returns the inputs sorted by
    /// descending weight (ties by original position).
    #[must_use]
    pub fn input_order(&self, inputs: &[NodeId]) -> Vec<NodeId> {
        let n = self.nodes.len();
        // P* and I* via forward pass (ids are topological).
        let mut pstar: Vec<std::collections::BTreeSet<NodeId>> = Vec::with_capacity(n);
        let mut istar: Vec<std::collections::BTreeSet<NodeId>> = Vec::with_capacity(n);
        for (i, node) in self.nodes.iter().enumerate() {
            let mut p = std::collections::BTreeSet::new();
            let mut s = std::collections::BTreeSet::new();
            p.insert(i);
            if inputs.contains(&i) {
                s.insert(i);
            }
            // Backward control edges (added by later passes) cannot exist
            // yet when this runs; guard anyway.
            for pred in node.vins.iter().map(|v| v.node).chain(node.ctrl.iter().copied()) {
                if pred < i {
                    p.extend(pstar[pred].iter().copied());
                    s.extend(istar[pred].iter().copied());
                }
            }
            pstar.push(p);
            istar.push(s);
        }
        let mut weighted: Vec<(usize, NodeId, usize)> = inputs
            .iter()
            .enumerate()
            .map(|(pos, &v)| {
                let w: usize =
                    (0..n).filter(|&u| istar[u].contains(&v)).map(|u| pstar[u].len()).sum();
                (pos, v, w)
            })
            .collect();
        weighted.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        weighted.into_iter().map(|(_, v, _)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_arities() {
        assert_eq!(Actor::Const(1).value_ins(), 0);
        assert_eq!(Actor::Bin(Opcode::Plus).value_ins(), 2);
        assert_eq!(Actor::Send(ChanRef::Value).value_ins(), 2);
        assert_eq!(Actor::Send(ChanRef::OutReg).value_ins(), 1);
        assert_eq!(Actor::Fork { iterative: false, local: false }.value_outs(), 2);
        assert_eq!(Actor::Fork { iterative: true, local: true }.value_outs(), 1);
        assert_eq!(Actor::Store.value_outs(), 0);
    }

    #[test]
    fn schedule_respects_dependencies() {
        let mut g = ContextGraph::new();
        let a = g.add(Actor::Const(1), &[], &[]);
        let b = g.add(Actor::Const(2), &[], &[]);
        let sum = g.add(Actor::Bin(Opcode::Plus), &[ValueRef::of(a), ValueRef::of(b)], &[]);
        let end = g.add(Actor::End, &[], &[sum]);
        for priorities in [false, true] {
            let order = g.schedule(priorities);
            let pos = |x: NodeId| order.iter().position(|&v| v == x).unwrap();
            assert!(pos(a) < pos(sum));
            assert!(pos(b) < pos(sum));
            assert!(pos(sum) < pos(end));
        }
    }

    #[test]
    fn priorities_front_load_forks() {
        let mut g = ContextGraph::new();
        let r = g.add(Actor::Recv(ChanRef::InReg), &[], &[]);
        let lbl = g.add(Actor::Label("x".into()), &[], &[]);
        let f = g.add(Actor::Fork { iterative: false, local: false }, &[ValueRef::of(lbl)], &[]);
        let order = g.schedule(true);
        let pos = |x: NodeId| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(f) < pos(r), "fork path beats the receive");
        let _ = (r, f);
    }

    #[test]
    fn control_edges_constrain_order() {
        let mut g = ContextGraph::new();
        let addr = g.add(Actor::Const(0x0010_0000), &[], &[]);
        let v = g.add(Actor::Const(7), &[], &[]);
        let store = g.add(Actor::Store, &[ValueRef::of(addr), ValueRef::of(v)], &[]);
        let addr2 = g.add(Actor::Const(0x0010_0000), &[], &[]);
        let fetch = g.add(Actor::Fetch, &[ValueRef::of(addr2)], &[store]);
        let order = g.schedule(true);
        let pos = |x: NodeId| order.iter().position(|&n| n == x).unwrap();
        assert!(pos(store) < pos(fetch), "fetch is control-sequenced after the store");
    }

    #[test]
    fn consumers_finds_all_uses() {
        let mut g = ContextGraph::new();
        let a = g.add(Actor::Const(1), &[], &[]);
        let _n1 = g.add(Actor::Neg, &[ValueRef::of(a)], &[]);
        let _n2 = g.add(Actor::Copy, &[ValueRef::of(a)], &[]);
        assert_eq!(g.consumers(a, 0).len(), 2);
    }

    #[test]
    fn input_order_matches_table_4_5_shape() {
        // Rebuild Fig. 4.14: e ← ((a+b) × (−c)) ÷ d with recv inputs.
        let mut g = ContextGraph::new();
        let a = g.add(Actor::Recv(ChanRef::InReg), &[], &[]);
        let b = g.add(Actor::Recv(ChanRef::InReg), &[], &[]);
        let c = g.add(Actor::Recv(ChanRef::InReg), &[], &[]);
        let d = g.add(Actor::Recv(ChanRef::InReg), &[], &[]);
        let sum = g.add(Actor::Bin(Opcode::Plus), &[ValueRef::of(a), ValueRef::of(b)], &[]);
        let neg = g.add(Actor::Neg, &[ValueRef::of(c)], &[]);
        let mul = g.add(Actor::Bin(Opcode::Mul), &[ValueRef::of(sum), ValueRef::of(neg)], &[]);
        let div = g.add(Actor::Bin(Opcode::Div), &[ValueRef::of(mul), ValueRef::of(d)], &[]);
        let _e = g.add(Actor::Send(ChanRef::OutReg), &[ValueRef::of(div)], &[]);
        let order = g.input_order(&[a, b, c, d]);
        // Table 4.5: W(a)=W(b) > W(c) > W(d) → order a, b, c, d.
        assert_eq!(order, vec![a, b, c, d]);
    }

    #[test]
    #[should_panic(expected = "operand count")]
    fn arity_mismatch_is_rejected() {
        let mut g = ContextGraph::new();
        let a = g.add(Actor::Const(1), &[], &[]);
        let _ = g.add(Actor::Bin(Opcode::Plus), &[ValueRef::of(a)], &[]);
    }
}
