//! Abstract syntax of the OCCAM subset.
//!
//! The five primitive processes (assignment, input, output, wait, skip) and
//! the constructors (`seq`, `par`, `if`, `while`, replication, procedure
//! instantiation) follow thesis §4.3. Declarations (`var`, `chan`,
//! `proc`) prefix the process they scope over.

/// Binary operators in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `\` (remainder)
    Mod,
    /// `/\` bitwise and
    And,
    /// `\/` bitwise or
    Or,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i32),
    /// Scalar variable (or replicator index, or value parameter).
    Var(String),
    /// Array element `name[index]`.
    Index(String, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Bitwise complement (`not`).
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// The current clock (`now`), a real-time side-effect actor.
    Now,
}

impl Expr {
    /// Convenience constructor for binary nodes.
    #[must_use]
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// All scalar variable names read by this expression.
    pub fn scalar_reads(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) | Expr::Now => {}
            Expr::Var(n) => out.push(n.clone()),
            Expr::Index(_, i) => i.scalar_reads(out),
            Expr::Neg(e) | Expr::Not(e) => e.scalar_reads(out),
            Expr::Bin(_, a, b) => {
                a.scalar_reads(out);
                b.scalar_reads(out);
            }
        }
    }

    /// All array names read by this expression.
    pub fn array_reads(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Now => {}
            Expr::Index(n, i) => {
                out.push(n.clone());
                i.array_reads(out);
            }
            Expr::Neg(e) | Expr::Not(e) => e.array_reads(out),
            Expr::Bin(_, a, b) => {
                a.array_reads(out);
                b.array_reads(out);
            }
        }
    }
}

/// Assignment / input targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lvalue {
    /// Scalar variable.
    Var(String),
    /// Array element.
    Index(String, Box<Expr>),
}

/// A replicator `i = [start for count]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replicator {
    /// Index variable name.
    pub var: String,
    /// First value.
    pub start: Expr,
    /// Number of instances.
    pub count: Expr,
}

/// One declaration introduced by `var` / `chan`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decl {
    /// Scalar variable.
    Scalar(String),
    /// Word array with a compile-time length.
    Array(String, u32),
    /// Channel.
    Chan(String),
}

/// Procedure parameter modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Param {
    /// Pass by value (scalars; array *base addresses* may also be passed
    /// this way).
    Value(String),
    /// Pass by value-result: the final value flows back to the caller.
    Var(String),
}

impl Param {
    /// The parameter's name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Param::Value(n) | Param::Var(n) => n,
        }
    }
}

/// A procedure definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcDef {
    /// Procedure name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Body process.
    pub body: Process,
}

/// A process (OCCAM's unit of behaviour).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Process {
    /// `lv := e`
    Assign(Lvalue, Expr),
    /// `c ? lv`
    Input(String, Lvalue),
    /// `c ! e`
    Output(String, Expr),
    /// `skip`
    Skip,
    /// `wait now after e`
    Wait(Expr),
    /// `seq` (optionally replicated).
    Seq(Option<Replicator>, Vec<Process>),
    /// `par` (optionally replicated).
    Par(Option<Replicator>, Vec<Process>),
    /// `if` with guarded branches, first true guard wins.
    If(Vec<(Expr, Process)>),
    /// `while cond` body.
    While(Expr, Box<Process>),
    /// Declarations scoping over a process.
    Scope(Vec<Decl>, Vec<ProcDef>, Box<Process>),
    /// Procedure instantiation `name(args)`.
    Call(String, Vec<Expr>),
}

impl Process {
    /// Count the primitive processes in this tree (used for statistics).
    #[must_use]
    pub fn primitive_count(&self) -> usize {
        match self {
            Process::Assign(..)
            | Process::Input(..)
            | Process::Output(..)
            | Process::Skip
            | Process::Wait(_)
            | Process::Call(..) => 1,
            Process::Seq(_, ps) | Process::Par(_, ps) => {
                ps.iter().map(Process::primitive_count).sum()
            }
            Process::If(branches) => branches.iter().map(|(_, p)| p.primitive_count()).sum(),
            Process::While(_, p) => p.primitive_count(),
            Process::Scope(_, procs, p) => {
                procs.iter().map(|d| d.body.primitive_count()).sum::<usize>() + p.primitive_count()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reads_collects_all() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Var("a".into()),
            Expr::Index("v".into(), Box::new(Expr::Var("i".into()))),
        );
        let mut reads = Vec::new();
        e.scalar_reads(&mut reads);
        assert_eq!(reads, vec!["a", "i"]);
        let mut arrays = Vec::new();
        e.array_reads(&mut arrays);
        assert_eq!(arrays, vec!["v"]);
    }

    #[test]
    fn primitive_count_recurses() {
        let p = Process::Seq(
            None,
            vec![
                Process::Assign(Lvalue::Var("x".into()), Expr::Const(1)),
                Process::Par(
                    None,
                    vec![Process::Skip, Process::Output("c".into(), Expr::Const(2))],
                ),
            ],
        );
        assert_eq!(p.primitive_count(), 3);
    }
}
