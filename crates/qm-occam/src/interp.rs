//! Reference interpreter for the OCCAM subset.
//!
//! Executes a *resolved* program (see [`crate::sema`]) directly over the
//! AST with the machine's exact arithmetic (wrapping two's complement,
//! division by zero yields zero, Booleans are all-ones/all-zeroes). Used
//! as the differential-testing oracle for the full compile-and-simulate
//! pipeline and as a debugging aid.
//!
//! Concurrency is interpreted *sequentially*: `par` branches run in
//! order, and channels are unbounded FIFO buffers. This matches OCCAM's
//! observable behaviour exactly for programs whose `par` branches are
//! independent or communicate producer-before-consumer; programs that
//! need true rendezvous interleaving (e.g. a later branch feeding an
//! earlier one) are reported as [`InterpError::ChannelEmpty`].

use std::collections::{HashMap, VecDeque};

use crate::ast::{BinOp, Decl, Expr, Lvalue, Param, Process, Replicator};
use crate::sema::{Resolved, SymKind};

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A channel read found no buffered value (the program needs true
    /// rendezvous concurrency, which this oracle does not model).
    ChannelEmpty(String),
    /// Array index out of bounds.
    Bounds {
        /// Array name.
        array: String,
        /// Offending index.
        index: i32,
    },
    /// A `while` loop exceeded the iteration budget.
    Diverged,
    /// Malformed program reached the interpreter (compiler-checked cases).
    Malformed(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::ChannelEmpty(c) => write!(f, "read from empty channel {c}"),
            InterpError::Bounds { array, index } => {
                write!(f, "index {index} out of bounds for {array}")
            }
            InterpError::Diverged => write!(f, "while loop exceeded the iteration budget"),
            InterpError::Malformed(m) => write!(f, "malformed program: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Final state of an interpreted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpOutcome {
    /// Values sent to `screen`.
    pub output: Vec<i32>,
    /// Final contents of every array, by unique name.
    pub arrays: HashMap<String, Vec<i32>>,
}

/// The interpreter.
pub struct Interp<'a> {
    r: &'a Resolved,
    vars: HashMap<String, i32>,
    arrays: HashMap<String, Vec<i32>>,
    /// Array-parameter name → array it is bound to (call-time aliasing).
    aliases: HashMap<String, String>,
    channels: HashMap<String, VecDeque<i32>>,
    output: Vec<i32>,
    input: VecDeque<i32>,
    clock: i64,
    budget: u64,
}

const BOOL_TRUE: i32 = -1;
const BOOL_FALSE: i32 = 0;

impl<'a> Interp<'a> {
    /// New interpreter over a resolved program, with optional host input
    /// for `keyboard`.
    #[must_use]
    pub fn new(r: &'a Resolved, input: Vec<i32>) -> Self {
        let mut arrays = HashMap::new();
        for (name, kind) in &r.syms {
            if let SymKind::Array { len, .. } = kind {
                arrays.insert(name.clone(), vec![0i32; *len as usize]);
            }
        }
        Interp {
            r,
            vars: HashMap::new(),
            aliases: HashMap::new(),
            arrays,
            channels: HashMap::new(),
            output: Vec::new(),
            input: input.into(),
            clock: 0,
            budget: 10_000_000,
        }
    }

    /// Pre-load an array (mirrors the host initialisation the simulator
    /// runner performs).
    pub fn poke_array(&mut self, unique_name: &str, values: &[i32]) {
        self.arrays.insert(unique_name.to_string(), values.to_vec());
    }

    /// Run the program to completion.
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn run(mut self) -> Result<InterpOutcome, InterpError> {
        let main = self.r.main.clone();
        self.process(&main)?;
        Ok(InterpOutcome { output: self.output, arrays: self.arrays })
    }

    fn spend(&mut self) -> Result<(), InterpError> {
        self.budget = self.budget.checked_sub(1).ok_or(InterpError::Diverged)?;
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<i32, InterpError> {
        Ok(match e {
            Expr::Const(v) => *v,
            Expr::Now => {
                self.clock += 1;
                #[allow(clippy::cast_possible_truncation)]
                {
                    self.clock as i32
                }
            }
            Expr::Var(name) => match self.r.syms.get(name) {
                Some(SymKind::Array { addr, .. }) => {
                    #[allow(clippy::cast_possible_wrap)]
                    {
                        *addr as i32
                    }
                }
                Some(SymKind::Chan { host: true }) => 0,
                _ => self.vars.get(name).copied().unwrap_or(0),
            },
            Expr::Index(name, idx) => {
                let i = self.expr(idx)?;
                self.array_read(name, i)?
            }
            Expr::Neg(x) => self.expr(x)?.wrapping_neg(),
            Expr::Not(x) => !self.expr(x)?,
            Expr::Bin(op, a, b) => {
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                binop(*op, a, b)
            }
        })
    }

    fn resolve_array(&self, name: &str) -> Result<String, InterpError> {
        if self.arrays.contains_key(name) {
            Ok(name.to_string())
        } else {
            Err(InterpError::Malformed(format!("unknown array {name}")))
        }
    }

    fn array_read(&mut self, name: &str, index: i32) -> Result<i32, InterpError> {
        let name = self.alias_of(name);
        let key = self.resolve_array(&name)?;
        let arr = &self.arrays[&key];
        let Ok(i) = usize::try_from(index) else {
            return Err(InterpError::Bounds { array: key, index });
        };
        arr.get(i).copied().ok_or(InterpError::Bounds { array: key, index })
    }

    fn array_write(&mut self, name: &str, index: i32, value: i32) -> Result<(), InterpError> {
        let name = self.alias_of(name);
        let key = self.resolve_array(&name)?;
        let len = self.arrays[&key].len();
        let idx = usize::try_from(index).ok().filter(|&i| i < len);
        match idx {
            Some(i) => {
                self.arrays.get_mut(&key).expect("resolved")[i] = value;
                Ok(())
            }
            None => Err(InterpError::Bounds { array: key, index }),
        }
    }

    /// Array parameters alias their argument arrays; aliases live in a
    /// string-valued side map encoded in `vars` as interned ids.
    fn alias_of(&self, name: &str) -> String {
        let mut current = name.to_string();
        let mut hops = 0;
        while let Some(next) = self.aliases.get(&current) {
            current.clone_from(next);
            hops += 1;
            if hops > 32 {
                break;
            }
        }
        current
    }

    fn lvalue(&mut self, lv: &Lvalue, value: i32) -> Result<(), InterpError> {
        match lv {
            Lvalue::Var(x) => {
                self.vars.insert(x.clone(), value);
                Ok(())
            }
            Lvalue::Index(a, idx) => {
                let i = self.expr(idx)?;
                self.array_write(a, i, value)
            }
        }
    }

    fn chan_key(&mut self, name: &str) -> String {
        match self.r.syms.get(name) {
            Some(SymKind::Chan { host: true }) => "host".into(),
            Some(SymKind::Chan { host: false }) => name.to_string(),
            // Channel id received through a parameter: its *value*
            // identifies the channel.
            _ => format!("#{}", self.vars.get(name).copied().unwrap_or(0)),
        }
    }

    fn process(&mut self, p: &Process) -> Result<(), InterpError> {
        self.spend()?;
        match p {
            Process::Skip => Ok(()),
            Process::Wait(e) => {
                let t = i64::from(self.expr(e)?);
                self.clock = self.clock.max(t);
                Ok(())
            }
            Process::Assign(lv, e) => {
                let v = self.expr(e)?;
                self.lvalue(lv, v)
            }
            Process::Output(c, e) => {
                let v = self.expr(e)?;
                let key = self.chan_key(c);
                if key == "host" {
                    self.output.push(v);
                } else {
                    self.channels.entry(key).or_default().push_back(v);
                }
                Ok(())
            }
            Process::Input(c, lv) => {
                let key = self.chan_key(c);
                let v = if key == "host" {
                    self.input.pop_front().ok_or(InterpError::ChannelEmpty(key))?
                } else {
                    self.channels
                        .get_mut(&key)
                        .and_then(VecDeque::pop_front)
                        .ok_or(InterpError::ChannelEmpty(key))?
                };
                self.lvalue(lv, v)
            }
            Process::Seq(rep, ps) | Process::Par(rep, ps) => match rep {
                Some(r) => self.replicated(r, ps),
                None => {
                    for q in ps {
                        self.process(q)?;
                    }
                    Ok(())
                }
            },
            Process::If(branches) => {
                for (cond, body) in branches {
                    if self.expr(cond)? != 0 {
                        return self.process(body);
                    }
                }
                Ok(())
            }
            Process::While(cond, body) => {
                while self.expr(cond)? != 0 {
                    self.spend()?;
                    self.process(body)?;
                }
                Ok(())
            }
            Process::Scope(decls, _, body) => {
                for d in decls {
                    match d {
                        Decl::Scalar(n) => {
                            self.vars.insert(n.clone(), 0);
                        }
                        Decl::Chan(n) => {
                            self.channels.entry(n.clone()).or_default();
                        }
                        Decl::Array(..) => {}
                    }
                }
                self.process(body)
            }
            Process::Call(name, args) => self.call(name, args),
        }
    }

    fn replicated(&mut self, rep: &Replicator, ps: &[Process]) -> Result<(), InterpError> {
        let start = self.expr(&rep.start)?;
        let count = self.expr(&rep.count)?;
        for v in 0..count.max(0) {
            self.vars.insert(rep.var.clone(), start.wrapping_add(v));
            for q in ps {
                self.process(q)?;
            }
        }
        Ok(())
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<(), InterpError> {
        let Some(SymKind::Proc { index }) = self.r.syms.get(name) else {
            return Err(InterpError::Malformed(format!("{name} is not a procedure")));
        };
        let proc = self.r.procs[*index].clone();
        // Evaluate arguments, bind parameters (names are unique, so no
        // save/restore is needed; recursion shadows by design since each
        // level re-binds before body entry — value snapshots below keep
        // recursive frames separate).
        let mut saved_vars = Vec::new();
        let mut saved_aliases = Vec::new();
        let mut var_backbinds = Vec::new();
        for (param, arg) in proc.params.iter().zip(args) {
            let pname = param.name().to_string();
            match self.r.syms.get(&pname) {
                Some(SymKind::ArrayParam) => {
                    let Expr::Var(an) = arg else {
                        return Err(InterpError::Malformed(format!(
                            "array parameter {pname} needs an array name"
                        )));
                    };
                    saved_aliases.push((pname.clone(), self.aliases.get(&pname).cloned()));
                    let target = self.alias_of(an);
                    self.aliases.insert(pname, target);
                }
                _ => {
                    let v = self.expr(arg)?;
                    saved_vars.push((pname.clone(), self.vars.get(&pname).copied()));
                    self.vars.insert(pname.clone(), v);
                    if matches!(param, Param::Var(_)) {
                        if let Expr::Var(an) = arg {
                            var_backbinds.push((pname, an.clone()));
                        }
                    }
                }
            }
        }
        self.process(&proc.body)?;
        for (pname, an) in var_backbinds {
            let v = self.vars.get(&pname).copied().unwrap_or(0);
            self.vars.insert(an, v);
        }
        for (pname, old) in saved_vars {
            match old {
                Some(v) => self.vars.insert(pname, v),
                None => self.vars.remove(&pname),
            };
        }
        for (pname, old) in saved_aliases {
            match old {
                Some(v) => self.aliases.insert(pname, v),
                None => self.aliases.remove(&pname),
            };
        }
        Ok(())
    }
}

fn binop(op: BinOp, a: i32, b: i32) -> i32 {
    let boolean = |v: bool| if v { BOOL_TRUE } else { BOOL_FALSE };
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Mod => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Shl => a.wrapping_shl(b.rem_euclid(32) as u32),
        BinOp::Shr => a.wrapping_shr(b.rem_euclid(32) as u32),
        BinOp::Eq => boolean(a == b),
        BinOp::Ne => boolean(a != b),
        BinOp::Lt => boolean(a < b),
        BinOp::Gt => boolean(a > b),
        BinOp::Le => boolean(a <= b),
        BinOp::Ge => boolean(a >= b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::sema::analyse;

    fn run_src(src: &str) -> InterpOutcome {
        let r = analyse(&parse(src).unwrap()).unwrap();
        Interp::new(&r, vec![]).run().unwrap()
    }

    #[test]
    fn sum_loop() {
        let out = run_src(
            "var sum:\nseq\n  sum := 0\n  seq k = [1 for 10]\n    sum := sum + k\n  screen ! sum\n",
        );
        assert_eq!(out.output, vec![55]);
    }

    #[test]
    fn arrays_and_if() {
        let out = run_src(
            "\
var v[4], i, best:
seq
  seq i = [0 for 4]
    v[i] := (i * 7) \\ 5
  best := 0
  seq i = [0 for 4]
    if
      v[i] > best
        best := v[i]
  screen ! best
",
        );
        assert_eq!(out.output, vec![4]);
    }

    #[test]
    fn channels_buffer_within_par() {
        let out = run_src(
            "\
chan c:
var x:
seq
  par
    c ! 41
    seq
      c ? x
      screen ! x + 1
",
        );
        assert_eq!(out.output, vec![42]);
    }

    #[test]
    fn procedures_and_recursion() {
        let out = run_src(
            "\
proc fact(value n, var r) =
  if
    n <= 1
      r := 1
    true
      var sub:
      seq
        fact(n - 1, sub)
        r := n * sub
var f:
seq
  fact(6, f)
  screen ! f
",
        );
        assert_eq!(out.output, vec![720]);
    }

    #[test]
    fn array_params_alias() {
        let out = run_src(
            "\
proc fill(v, value n) =
  var i:
  seq i = [0 for n]
    v[i] := i + 1
var d[5], s, i:
seq
  fill(d, 5)
  s := 0
  seq i = [0 for 5]
    s := s + d[i]
  screen ! s
",
        );
        assert_eq!(out.output, vec![15]);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let r = analyse(&parse("var v[2], x:\nx := v[5]\n").unwrap()).unwrap();
        assert!(matches!(Interp::new(&r, vec![]).run(), Err(InterpError::Bounds { .. })));
    }

    #[test]
    fn divergent_loop_is_cut_off() {
        let r = analyse(&parse("var x:\nwhile true\n  x := x + 1\n").unwrap()).unwrap();
        let mut i = Interp::new(&r, vec![]);
        i.budget = 1000;
        assert_eq!(i.run(), Err(InterpError::Diverged));
    }
}
