//! Acyclic data-flow graphs and their queue-machine interpretation
//! (thesis §3.6 and §4.5–4.7).
//!
//! * [`Dag`] — a generic directed acyclic graph with *ordered* inputs per
//!   node (the labelled edges `(v, w, l)` of the thesis definition).
//! * `π_G` — the path-induced partial order; any linearisation respecting
//!   it is a valid instruction order ([`Dag::topo_order`],
//!   [`Dag::respects_partial_order`]).
//! * [`analysis`] — `P*(v)`, `I*(v)`, `C(v)`, the depth-first list of
//!   Fig. 4.13, and the input-sequencing weights `W(v)` of Fig. 4.16.
//! * [`schedule`] — the ready-set scheduling heuristic of Fig. 4.20 with
//!   caller-supplied actor priorities.
//! * [`to_indexed_program`](Dag::to_indexed_program) — the §3.6
//!   construction turning a DAG + linearisation into a valid indexed queue
//!   machine instruction sequence.

use std::collections::BTreeSet;

use crate::expr::Op;
use crate::indexed::{IndexedInstruction, IndexedProgram};
use crate::{ModelError, Result, Word};

/// Identifier of a node within a [`Dag`].
pub type NodeId = usize;

/// A directed acyclic graph whose nodes carry a payload and an *ordered*
/// list of input edges (operand positions `l = 0, 1, …`).
///
/// Acyclicity is guaranteed by construction: a node's inputs must already
/// exist when the node is added.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag<N> {
    payloads: Vec<N>,
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<(NodeId, usize)>>,
}

impl<N> Default for Dag<N> {
    fn default() -> Self {
        Dag { payloads: Vec::new(), preds: Vec::new(), succs: Vec::new() }
    }
}

impl<N> Dag<N> {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with the given payload and ordered operand producers.
    ///
    /// # Panics
    ///
    /// Panics if any input refers to a node that does not exist yet (this
    /// is what makes cycles unrepresentable).
    pub fn add_node(&mut self, payload: N, inputs: &[NodeId]) -> NodeId {
        let id = self.payloads.len();
        for (slot, &p) in inputs.iter().enumerate() {
            assert!(p < id, "input {p} of new node {id} does not exist yet");
            self.succs[p].push((id, slot));
        }
        self.payloads.push(payload);
        self.preds.push(inputs.to_vec());
        self.succs.push(Vec::new());
        id
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Payload of node `v`.
    #[must_use]
    pub fn payload(&self, v: NodeId) -> &N {
        &self.payloads[v]
    }

    /// Mutable payload of node `v`.
    pub fn payload_mut(&mut self, v: NodeId) -> &mut N {
        &mut self.payloads[v]
    }

    /// The set of immediate predecessors `P(v)` — the ordered operand
    /// producers of `v`.
    #[must_use]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        &self.preds[v]
    }

    /// The immediate successors `S(v)` as `(consumer, operand slot)` pairs.
    #[must_use]
    pub fn succs(&self, v: NodeId) -> &[(NodeId, usize)] {
        &self.succs[v]
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.payloads.len()
    }

    /// Iterate over every labelled edge `(producer, consumer, slot)` —
    /// the `(v, w, l)` triples of the thesis definition. Export hook for
    /// external structural checks (e.g. `qm-verify`'s valid-sequence
    /// pass), which can cross-check a linearisation against the edge
    /// set without re-deriving it from `preds`/`succs`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, usize)> + '_ {
        self.succs.iter().enumerate().flat_map(|(v, ss)| ss.iter().map(move |&(w, l)| (v, w, l)))
    }

    /// `v π_G w` — true when `v = w` or a path leads from `v` to `w`.
    #[must_use]
    pub fn precedes(&self, v: NodeId, w: NodeId) -> bool {
        if v == w {
            return true;
        }
        // Ids are topologically consistent (inputs < node), so search only
        // forward.
        let mut stack = vec![v];
        let mut seen = vec![false; self.len()];
        while let Some(n) = stack.pop() {
            if n == w {
                return true;
            }
            if seen[n] || n > w {
                continue;
            }
            seen[n] = true;
            for &(s, _) in &self.succs[n] {
                stack.push(s);
            }
        }
        false
    }

    /// A canonical topological order (node ids are already topological by
    /// construction, so this is the identity order).
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        self.node_ids().collect()
    }

    /// Check that `order` contains every node exactly once and never
    /// places a node before one of its predecessors — i.e. it satisfies
    /// `∀ i < j: ¬(v_j π_G v_i)`.
    #[must_use]
    pub fn respects_partial_order(&self, order: &[NodeId]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut position = vec![usize::MAX; self.len()];
        for (i, &v) in order.iter().enumerate() {
            if v >= self.len() || position[v] != usize::MAX {
                return false;
            }
            position[v] = i;
        }
        self.node_ids().all(|v| self.preds[v].iter().all(|&p| position[p] < position[v]))
    }

    /// The ready-set scheduling heuristic of Fig. 4.20: repeatedly emit
    /// the highest-priority ready node (larger priority value = emitted
    /// first; ties broken by insertion order, i.e. FIFO among equals).
    ///
    /// Returns a linearisation that satisfies `π_G` by construction.
    pub fn schedule_by<F>(&self, mut priority: F) -> Vec<NodeId>
    where
        F: FnMut(&N) -> i32,
    {
        let mut remaining: Vec<usize> = self.node_ids().map(|v| self.preds[v].len()).collect();
        let mut ready: Vec<NodeId> = self.node_ids().filter(|&v| remaining[v] == 0).collect();
        let mut out = Vec::with_capacity(self.len());
        while !ready.is_empty() {
            // Select the ready node with the highest priority (FIFO among
            // equal priorities: pick the earliest-queued maximal element).
            let best = ready
                .iter()
                .enumerate()
                .max_by(|(ia, &a), (ib, &b)| {
                    priority(&self.payloads[a]).cmp(&priority(&self.payloads[b])).then(ib.cmp(ia))
                })
                .map(|(i, _)| i)
                .expect("ready not empty");
            let v = ready.remove(best);
            out.push(v);
            for &(s, _) in &self.succs[v] {
                remaining[s] -= 1;
                if remaining[s] == 0 {
                    ready.push(s);
                }
            }
        }
        out
    }
}

impl Dag<Op> {
    /// Evaluate the graph directly: every node computes once; node values
    /// fan out along edges. The unique sink's value is returned.
    ///
    /// # Errors
    ///
    /// * [`ModelError::MalformedGraph`] if the graph does not have exactly
    ///   one sink (node without consumers) or an arity mismatch;
    /// * [`ModelError::DivideByZero`] from arithmetic.
    pub fn evaluate(&self, env: &dyn Fn(&str) -> Word) -> Result<Word> {
        let mut values: Vec<Option<Word>> = vec![None; self.len()];
        for v in self.node_ids() {
            let op = &self.payloads[v];
            if self.preds[v].len() != op.arity().operands() {
                return Err(ModelError::MalformedGraph(format!(
                    "node {v} ({op}) has {} inputs, arity needs {}",
                    self.preds[v].len(),
                    op.arity().operands()
                )));
            }
            let args: Vec<Word> =
                self.preds[v].iter().map(|&p| values[p].expect("topological ids")).collect();
            values[v] = Some(op.apply(&args, env)?);
        }
        let sinks: Vec<NodeId> = self.node_ids().filter(|&v| self.succs[v].is_empty()).collect();
        match sinks.as_slice() {
            [s] => Ok(values[*s].expect("computed")),
            _ => Err(ModelError::MalformedGraph(format!(
                "expected exactly one sink, found {}",
                sinks.len()
            ))),
        }
    }

    /// The §3.6 construction: turn a linearisation of this graph into a
    /// valid indexed queue machine instruction sequence.
    ///
    /// For instruction `i` in the order, operands occupy absolute queue
    /// positions `o_i … o_i + A(v_i) − 1` where `o_i = Σ_{j<i} A(v_j)`;
    /// each edge `(v_i, v_j, l)` contributes the absolute index `o_j + l`
    /// (stored relative to the post-consumption front). The unique sink's
    /// result is placed at the final front so evaluation terminates with
    /// the result at the head of the queue.
    ///
    /// # Errors
    ///
    /// [`ModelError::MalformedGraph`] if `order` violates `π_G`, if
    /// arities mismatch, or if the graph does not have exactly one sink.
    pub fn to_indexed_program(&self, order: &[NodeId]) -> Result<IndexedProgram> {
        if !self.respects_partial_order(order) {
            return Err(ModelError::MalformedGraph(
                "instruction order violates the graph partial order".into(),
            ));
        }
        for v in self.node_ids() {
            if self.preds[v].len() != self.payloads[v].arity().operands() {
                return Err(ModelError::MalformedGraph(format!("node {v} arity mismatch")));
            }
        }
        let sinks: Vec<NodeId> = self.node_ids().filter(|&v| self.succs[v].is_empty()).collect();
        let [sink] = sinks.as_slice() else {
            return Err(ModelError::MalformedGraph(format!(
                "expected exactly one sink, found {}",
                sinks.len()
            )));
        };

        // o[k] = absolute queue index of the first operand of order[k].
        let mut offset_of_position = Vec::with_capacity(order.len());
        let mut acc = 0usize;
        let mut position = vec![0usize; self.len()];
        for (k, &v) in order.iter().enumerate() {
            position[v] = k;
            offset_of_position.push(acc);
            acc += self.payloads[v].arity().operands();
        }
        let final_front = acc;

        let instructions = order
            .iter()
            .map(|&v| {
                // Front after this instruction consumes its operands:
                let front = offset_of_position[position[v]] + self.payloads[v].arity().operands();
                let mut offsets: Vec<usize> = self.succs[v]
                    .iter()
                    .map(|&(consumer, slot)| offset_of_position[position[consumer]] + slot - front)
                    .collect();
                if v == *sink {
                    offsets.push(final_front - front);
                }
                offsets.sort_unstable();
                IndexedInstruction::new(self.payloads[v].clone(), offsets)
            })
            .collect();
        Ok(IndexedProgram::new(instructions))
    }

    /// Build the data-flow graph of a [`crate::expr::ParseTree`],
    /// combining *identical subtrees* into shared nodes (the Fig. 3.6
    /// transformation from parse tree to DAG).
    #[must_use]
    pub fn from_parse_tree(tree: &crate::expr::ParseTree) -> Self {
        use std::collections::HashMap;
        let mut dag = Dag::new();
        let mut memo: HashMap<String, NodeId> = HashMap::new();
        fn go(
            t: &crate::expr::ParseTree,
            dag: &mut Dag<Op>,
            memo: &mut HashMap<String, NodeId>,
        ) -> NodeId {
            let key = t.to_string();
            if let Some(&id) = memo.get(&key) {
                return id;
            }
            let mut inputs = Vec::new();
            if let Some(l) = t.left() {
                inputs.push(go(l, dag, memo));
            }
            if let Some(r) = t.right() {
                inputs.push(go(r, dag, memo));
            }
            let id = dag.add_node(t.op().clone(), &inputs);
            memo.insert(key, id);
            id
        }
        go(tree, &mut dag, &mut memo);
        dag
    }
}

pub mod analysis {
    //! Predecessor/input-set analysis and input sequencing (thesis §4.5).

    use super::{Dag, NodeId};
    use std::collections::BTreeSet;

    /// Results of the Fig. 4.15 computation for one node.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct NodeAnalysis {
        /// `P*(v)` — all predecessors of `v`, including `v` itself.
        pub predecessors: BTreeSet<NodeId>,
        /// `I*(v)` — the required input set of `v`.
        pub required_inputs: BTreeSet<NodeId>,
        /// `C(v) = |P*(v)|` — the cost of computing `v`.
        pub cost: usize,
    }

    /// The depth-first list of Fig. 4.13: all successors of a node precede
    /// it in the list; all predecessors follow it.
    ///
    /// Unmarked start nodes are chosen in ascending id order, matching the
    /// thesis's worked example (Fig. 4.14).
    #[must_use]
    pub fn depth_first_list<N>(dag: &Dag<N>) -> Vec<NodeId> {
        let mut marked = vec![false; dag.len()];
        let mut list = Vec::with_capacity(dag.len());
        fn search<N>(n: NodeId, dag: &Dag<N>, marked: &mut [bool], list: &mut Vec<NodeId>) {
            marked[n] = true;
            for &(m, _) in dag.succs(n) {
                if !marked[m] {
                    search(m, dag, marked, list);
                }
            }
            list.push(n);
        }
        for v in dag.node_ids() {
            if !marked[v] {
                search(v, dag, &mut marked, &mut list);
            }
        }
        list
    }

    /// Compute `P*(v)`, `I*(v)` and `C(v)` for every node (Fig. 4.15).
    ///
    /// `is_input(payload)` classifies nodes as graph inputs (the set `I`
    /// of the §4.5 DAG definition).
    pub fn analyse<N, F>(dag: &Dag<N>, mut is_input: F) -> Vec<NodeAnalysis>
    where
        F: FnMut(&N) -> bool,
    {
        let list = depth_first_list(dag);
        let mut out: Vec<NodeAnalysis> = (0..dag.len())
            .map(|_| NodeAnalysis {
                predecessors: BTreeSet::new(),
                required_inputs: BTreeSet::new(),
                cost: 0,
            })
            .collect();
        // Walk the depth-first list from the end: predecessors of a node
        // follow it in the list, so they are processed first.
        for &v in list.iter().rev() {
            let mut preds: BTreeSet<NodeId> = BTreeSet::new();
            preds.insert(v);
            let mut inputs: BTreeSet<NodeId> = BTreeSet::new();
            if is_input(dag.payload(v)) {
                inputs.insert(v);
            }
            for &m in dag.preds(v) {
                preds.extend(out[m].predecessors.iter().copied());
                inputs.extend(out[m].required_inputs.iter().copied());
            }
            out[v].cost = preds.len();
            out[v].predecessors = preds;
            out[v].required_inputs = inputs;
        }
        out
    }

    /// The input weights `W(v) = Σ_{u : v ∈ I*(u)} C(u)` and the input
    /// sequence sorted by descending weight (Fig. 4.16) — the heuristic
    /// order maximising work possible before the context must wait for
    /// its next input.
    ///
    /// Ties keep ascending node-id order, making the result deterministic.
    pub fn input_sequence<N, F>(dag: &Dag<N>, mut is_input: F) -> Vec<(NodeId, usize)>
    where
        F: FnMut(&N) -> bool,
    {
        let info = analyse(dag, &mut is_input);
        let mut weights: Vec<(NodeId, usize)> = dag
            .node_ids()
            .filter(|&v| is_input(dag.payload(v)))
            .map(|v| {
                let w = dag
                    .node_ids()
                    .filter(|&u| info[u].required_inputs.contains(&v))
                    .map(|u| info[u].cost)
                    .sum();
                (v, w)
            })
            .collect();
        weights.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        weights
    }
}

pub mod schedule {
    //! Actor priorities for the Fig. 4.20 instruction-sequencing heuristic.

    /// The priority classes of §4.7, highest first: forks, sends, stores,
    /// ordinary operators, fetches, receives, waits.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub enum ActorClass {
        /// `wait` — may suspend the context (lowest priority).
        Wait,
        /// `receive` — may block the context.
        Receive,
        /// `fetch`/`fetchb` — grows the queue.
        Fetch,
        /// Everything not explicitly mentioned.
        Other,
        /// `store`/`storeb` — shrinks the queue.
        Store,
        /// `send` — enables a child context to proceed.
        Send,
        /// `rfork`/`ifork` — creates parallelism (highest priority).
        Fork,
    }

    impl ActorClass {
        /// Numeric priority: larger = emitted earlier.
        #[must_use]
        pub fn priority(self) -> i32 {
            match self {
                ActorClass::Wait => 0,
                ActorClass::Receive => 1,
                ActorClass::Fetch => 2,
                ActorClass::Other => 3,
                ActorClass::Store => 4,
                ActorClass::Send => 5,
                ActorClass::Fork => 6,
            }
        }
    }
}

/// Convenience: all linearisations of a small DAG (used by property tests
/// to check that *every* valid order yields a correct indexed program).
///
/// # Panics
///
/// Panics if the graph has more than 10 nodes (factorial blow-up guard).
#[must_use]
pub fn all_linearisations<N>(dag: &Dag<N>) -> Vec<Vec<NodeId>> {
    assert!(dag.len() <= 10, "too many nodes to enumerate linearisations");
    let mut out = Vec::new();
    let mut remaining: Vec<usize> = dag.node_ids().map(|v| dag.preds(v).len()).collect();
    let mut ready: BTreeSet<NodeId> = dag.node_ids().filter(|&v| remaining[v] == 0).collect();
    let mut prefix = Vec::new();
    fn rec<N>(
        dag: &Dag<N>,
        remaining: &mut Vec<usize>,
        ready: &mut BTreeSet<NodeId>,
        prefix: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if prefix.len() == dag.len() {
            out.push(prefix.clone());
            return;
        }
        let choices: Vec<NodeId> = ready.iter().copied().collect();
        for v in choices {
            ready.remove(&v);
            prefix.push(v);
            let mut enabled = Vec::new();
            for &(s, _) in dag.succs(v) {
                remaining[s] -= 1;
                if remaining[s] == 0 {
                    ready.insert(s);
                    enabled.push(s);
                }
            }
            rec(dag, remaining, ready, prefix, out);
            for &(s, _) in dag.succs(v) {
                remaining[s] += 1;
            }
            for e in enabled {
                ready.remove(&e);
            }
            prefix.pop();
            ready.insert(v);
        }
    }
    rec(dag, &mut remaining, &mut ready, &mut prefix, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ParseTree;

    fn env(n: &str) -> Word {
        match n {
            "a" => 12,
            "b" => 4,
            "c" => 3,
            "d" => 5,
            _ => 0,
        }
    }

    /// The Fig. 3.6(b) graph for `d ← a/(a+b) + (a+b)·c`.
    fn fig_3_6_graph() -> Dag<Op> {
        let mut g = Dag::new();
        let a = g.add_node(Op::Fetch("a".into()), &[]);
        let b = g.add_node(Op::Fetch("b".into()), &[]);
        let c = g.add_node(Op::Fetch("c".into()), &[]);
        let sum = g.add_node(Op::Add, &[a, b]);
        let div = g.add_node(Op::Div, &[a, sum]);
        let mul = g.add_node(Op::Mul, &[sum, c]);
        let _root = g.add_node(Op::Add, &[div, mul]);
        g
    }

    #[test]
    fn graph_evaluation_matches_expression() {
        let g = fig_3_6_graph();
        #[allow(clippy::identity_op)]
        let expected = (12 / 16) + 16 * 3; // a/(a+b) truncates to 0
        assert_eq!(g.evaluate(&env).unwrap(), expected);
    }

    #[test]
    fn partial_order_properties() {
        let g = fig_3_6_graph();
        // Reflexive.
        for v in g.node_ids() {
            assert!(g.precedes(v, v));
        }
        // a π_G div, a π_G root; c does not precede div.
        assert!(g.precedes(0, 4));
        assert!(g.precedes(0, 6));
        assert!(!g.precedes(2, 4));
        // Antisymmetric: no two distinct nodes precede each other.
        for v in g.node_ids() {
            for w in g.node_ids() {
                if v != w && g.precedes(v, w) {
                    assert!(!g.precedes(w, v));
                }
            }
        }
    }

    #[test]
    fn indexed_program_from_graph_matches_table_3_4() {
        let g = fig_3_6_graph();
        let program = g.to_indexed_program(&g.topo_order()).unwrap();
        assert_eq!(program, crate::indexed::table_3_4_program());
    }

    #[test]
    fn every_linearisation_evaluates_correctly() {
        let g = fig_3_6_graph();
        let expected = g.evaluate(&env).unwrap();
        let linearisations = all_linearisations(&g);
        assert!(linearisations.len() > 1);
        for order in linearisations {
            let p = g.to_indexed_program(&order).unwrap();
            assert_eq!(p.evaluate(&env).unwrap(), expected, "order {order:?}");
        }
    }

    #[test]
    fn invalid_order_is_rejected() {
        let g = fig_3_6_graph();
        let mut order = g.topo_order();
        order.swap(0, 3); // puts add before its operand fetch
        assert!(g.to_indexed_program(&order).is_err());
    }

    #[test]
    fn from_parse_tree_shares_common_subexpressions() {
        let tree = ParseTree::parse_infix("a/(a+b) + (a+b)*c").unwrap();
        assert_eq!(tree.node_count(), 11);
        let dag = Dag::from_parse_tree(&tree);
        assert_eq!(dag.len(), 7, "a and a+b are shared");
        assert_eq!(dag.evaluate(&env).unwrap(), tree.evaluate(&env).unwrap());
    }

    #[test]
    fn depth_first_list_of_fig_4_14() {
        // e ← ((a+b) × (−c)) ÷ d, nodes added a,b,+,c,−,×,d,÷,e.
        let mut g: Dag<&str> = Dag::new();
        let a = g.add_node("a", &[]);
        let b = g.add_node("b", &[]);
        let plus = g.add_node("+", &[a, b]);
        let c = g.add_node("c", &[]);
        let neg = g.add_node("-", &[c]);
        let mul = g.add_node("*", &[plus, neg]);
        let d = g.add_node("d", &[]);
        let div = g.add_node("/", &[mul, d]);
        let e = g.add_node("e", &[div]);
        let list = depth_first_names(&g);
        assert_eq!(list, vec!["e", "/", "*", "+", "a", "b", "-", "c", "d"]);
        let _ = (mul, e);
    }

    fn depth_first_names(g: &Dag<&str>) -> Vec<String> {
        analysis::depth_first_list(g).iter().map(|&v| (*g.payload(v)).to_string()).collect()
    }

    #[test]
    fn table_4_4_costs_and_input_sets() {
        let mut g: Dag<&str> = Dag::new();
        let a = g.add_node("a", &[]);
        let b = g.add_node("b", &[]);
        let plus = g.add_node("+", &[a, b]);
        let c = g.add_node("c", &[]);
        let neg = g.add_node("-", &[c]);
        let mul = g.add_node("*", &[plus, neg]);
        let d = g.add_node("d", &[]);
        let div = g.add_node("/", &[mul, d]);
        let e = g.add_node("e", &[div]);
        let is_input = |p: &&str| ["a", "b", "c", "d"].contains(p);
        let info = analysis::analyse(&g, is_input);
        // Table 4.4 costs.
        assert_eq!(info[a].cost, 1);
        assert_eq!(info[plus].cost, 3);
        assert_eq!(info[neg].cost, 2);
        assert_eq!(info[mul].cost, 6);
        assert_eq!(info[div].cost, 8);
        assert_eq!(info[e].cost, 9);
        // Table 4.4 input sets.
        assert_eq!(info[mul].required_inputs, [a, b, c].into_iter().collect());
        assert_eq!(info[e].required_inputs, [a, b, c, d].into_iter().collect());
        // Table 4.5 weights.
        let seq = analysis::input_sequence(&g, is_input);
        let weights: Vec<(&str, usize)> = seq.iter().map(|&(v, w)| (*g.payload(v), w)).collect();
        assert_eq!(weights, vec![("a", 27), ("b", 27), ("c", 26), ("d", 18)]);
    }

    #[test]
    fn schedule_respects_partial_order_and_priorities() {
        use schedule::ActorClass;
        // Fork and receive both ready: fork must come first.
        let mut g: Dag<ActorClass> = Dag::new();
        let recv = g.add_node(ActorClass::Receive, &[]);
        let fork = g.add_node(ActorClass::Fork, &[]);
        let other = g.add_node(ActorClass::Other, &[recv]);
        let order = g.schedule_by(|c| c.priority());
        assert!(g.respects_partial_order(&order));
        assert_eq!(order[0], fork, "fork outranks receive");
        let _ = other;
    }

    #[test]
    fn schedule_emits_all_nodes_once() {
        let g = fig_3_6_graph();
        let order = g.schedule_by(|_| 0);
        assert!(g.respects_partial_order(&order));
    }

    #[test]
    fn evaluate_detects_multiple_sinks() {
        let mut g: Dag<Op> = Dag::new();
        g.add_node(Op::Literal(1), &[]);
        g.add_node(Op::Literal(2), &[]);
        assert!(matches!(g.evaluate(&|_| 0), Err(ModelError::MalformedGraph(_))));
    }
}
