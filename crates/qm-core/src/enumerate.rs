//! Exhaustive enumeration of binary expression parse-tree shapes.
//!
//! The Table 3.2/3.3 studies average the pipelined-ALU speed-up over *all*
//! parse trees with a given number of nodes. A parse-tree *shape* here is a
//! unary–binary tree: every node is a leaf, has a single child (unary
//! operator), or has two children (binary operator). The number of shapes
//! with `n` nodes is the Motzkin number `M(n-1)`:
//! 1, 1, 2, 4, 9, 21, 51, 127, 323, 835, 2188, …
//!
//! The thesis reports slightly different counts from `n = 6` on
//! (20, 45, 101, 227, 510, 1146 — its enumeration was adapted from Solomon
//! 1980 and the precise class is not recoverable from the text); the
//! averaged speed-ups are insensitive to this difference. Both counts are
//! tabulated in `EXPERIMENTS.md`.

use crate::expr::{Op, ParseTree};

/// Enumerate every parse-tree shape with exactly `n` nodes.
///
/// Leaves are labelled `fetch x0, x1, …` left-to-right; unary nodes are
/// [`Op::Neg`]; binary nodes are [`Op::Add`]. Only the shape matters to the
/// cycle models, but the labels keep the trees valid, evaluable expression
/// trees.
///
/// # Panics
///
/// Panics if `n == 0` (the empty tree is not a parse tree).
#[must_use]
pub fn all_trees(n: usize) -> Vec<ParseTree> {
    assert!(n > 0, "parse trees have at least one node");
    let shapes = shapes(n);
    shapes
        .into_iter()
        .map(|s| {
            let mut next_leaf = 0;
            to_parse_tree(&s, &mut next_leaf)
        })
        .collect()
}

/// Number of parse-tree shapes with `n` nodes (`M(n-1)`, the Motzkin
/// numbers), computed without materialising the trees.
#[must_use]
pub fn tree_count(n: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    // t(n) = t(n-1) + Σ_{i=1}^{n-2} t(i) t(n-1-i), t(1) = 1.
    let mut t = vec![0u64; n + 1];
    t[1] = 1;
    for m in 2..=n {
        let mut total = t[m - 1];
        for i in 1..=m.saturating_sub(2) {
            total += t[i] * t[m - 1 - i];
        }
        t[m] = total;
    }
    t[n]
}

#[derive(Debug, Clone)]
enum Shape {
    Leaf,
    Unary(Box<Shape>),
    Binary(Box<Shape>, Box<Shape>),
}

fn shapes(n: usize) -> Vec<Shape> {
    if n == 1 {
        return vec![Shape::Leaf];
    }
    let mut out = Vec::new();
    // Unary root over any (n-1)-node shape.
    for child in shapes(n - 1) {
        out.push(Shape::Unary(Box::new(child)));
    }
    // Binary root splitting the remaining n-1 nodes.
    for left_n in 1..=n.saturating_sub(2) {
        let right_n = n - 1 - left_n;
        let lefts = shapes(left_n);
        let rights = shapes(right_n);
        for l in &lefts {
            for r in &rights {
                out.push(Shape::Binary(Box::new(l.clone()), Box::new(r.clone())));
            }
        }
    }
    out
}

fn to_parse_tree(shape: &Shape, next_leaf: &mut usize) -> ParseTree {
    match shape {
        Shape::Leaf => {
            let name = format!("x{next_leaf}");
            *next_leaf += 1;
            ParseTree::var(&name)
        }
        Shape::Unary(c) => ParseTree::unary(Op::Neg, to_parse_tree(c, next_leaf)),
        Shape::Binary(l, r) => {
            let left = to_parse_tree(l, next_leaf);
            let right = to_parse_tree(r, next_leaf);
            ParseTree::binary(Op::Add, left, right)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motzkin_counts() {
        let expected = [1u64, 1, 2, 4, 9, 21, 51, 127, 323, 835, 2188];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(tree_count(i + 1), want, "n = {}", i + 1);
        }
    }

    #[test]
    fn materialised_trees_match_count() {
        for n in 1..=8 {
            let trees = all_trees(n);
            assert_eq!(trees.len() as u64, tree_count(n), "n = {n}");
            for t in &trees {
                assert_eq!(t.node_count(), n);
            }
        }
    }

    #[test]
    fn four_node_trees_match_figure_3_5() {
        // Fig. 3.5: the four 4-node shapes are −(−(−x)), −(x ⊕ y),
        // (−x) ⊕ y, x ⊕ (−y).
        let trees = all_trees(4);
        let printed: Vec<String> = trees.iter().map(ToString::to_string).collect();
        assert_eq!(trees.len(), 4);
        assert!(printed.contains(&"-(-(-(x0)))".to_string()), "{printed:?}");
        assert!(printed.contains(&"-((x0 + x1))".to_string()), "{printed:?}");
        assert!(printed.contains(&"(-(x0) + x1)".to_string()), "{printed:?}");
        assert!(printed.contains(&"(x0 + -(x1))".to_string()), "{printed:?}");
    }

    #[test]
    fn all_trees_are_distinct() {
        let trees = all_trees(7);
        for i in 0..trees.len() {
            for j in i + 1..trees.len() {
                assert_ne!(trees[i], trees[j]);
            }
        }
    }

    #[test]
    fn enumerated_trees_are_evaluable() {
        // Every enumerated tree is a well-formed expression: both machine
        // models evaluate it to the same value as direct recursion.
        let env = |name: &str| name.trim_start_matches('x').parse::<i32>().unwrap_or(0) + 1;
        for tree in all_trees(6) {
            let direct = tree.evaluate(&env).unwrap();
            assert_eq!(crate::simple::evaluate_tree(&tree, &env).unwrap(), direct);
            assert_eq!(crate::stack::evaluate_tree(&tree, &env).unwrap(), direct);
        }
    }
}
