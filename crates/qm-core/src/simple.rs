//! The simple queue machine execution model (thesis §3.2).
//!
//! A simple queue machine manipulates a FIFO *operand queue*: every
//! instruction removes its operands from the **front** of the queue and
//! appends its result to the **rear**. The evaluation `E(I)` of an operator
//! sequence is the sequence of `(remaining input, queue contents)` states.

use std::collections::VecDeque;

use crate::expr::{Op, ParseTree};
use crate::level_order::level_order_sequence;
use crate::{ModelError, Result, Word};

/// One state `S_i = (I_i, Q_i)` in the evaluation of an operator sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Index into the instruction sequence of the next operator.
    pub next: usize,
    /// The queue contents *before* the next operator executes.
    pub queue: Vec<Word>,
}

/// Trace of a full evaluation: every intermediate state plus the result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// `S_1 … S_f` — one entry per instruction, plus the final state.
    pub states: Vec<State>,
    /// The single value left in the queue at `S_f`.
    pub result: Word,
}

/// Evaluate an operator sequence on the simple queue machine.
///
/// # Errors
///
/// * [`ModelError::OperandUnderflow`] if an operator needs more operands
///   than the queue holds (the sequence was not a valid queue program);
/// * [`ModelError::ResidualOperands`] if the queue does not hold exactly
///   one value at the end;
/// * [`ModelError::DivideByZero`] from the arithmetic itself.
pub fn evaluate(ops: &[Op], env: &dyn Fn(&str) -> Word) -> Result<Word> {
    Ok(trace(ops, env)?.result)
}

/// Evaluate an operator sequence, recording every machine state.
///
/// # Errors
///
/// See [`evaluate`].
pub fn trace(ops: &[Op], env: &dyn Fn(&str) -> Word) -> Result<Trace> {
    let mut queue: VecDeque<Word> = VecDeque::new();
    let mut states = Vec::with_capacity(ops.len() + 1);
    for (i, op) in ops.iter().enumerate() {
        states.push(State { next: i, queue: queue.iter().copied().collect() });
        let needed = op.arity().operands();
        if queue.len() < needed {
            return Err(ModelError::OperandUnderflow { at: i, needed, available: queue.len() });
        }
        let mut args = Vec::with_capacity(needed);
        for _ in 0..needed {
            args.push(queue.pop_front().expect("length checked"));
        }
        queue.push_back(op.apply(&args, env)?);
    }
    states.push(State { next: ops.len(), queue: queue.iter().copied().collect() });
    if queue.len() != 1 {
        return Err(ModelError::ResidualOperands { left: queue.len() });
    }
    Ok(Trace { states, result: queue[0] })
}

/// Compile a parse tree to its queue program (level-order traversal) and
/// evaluate it.
///
/// # Errors
///
/// See [`evaluate`].
pub fn evaluate_tree(tree: &ParseTree, env: &dyn Fn(&str) -> Word) -> Result<Word> {
    evaluate(&level_order_sequence(tree), env)
}

/// Maximum queue occupancy observed while evaluating `ops`.
///
/// This is the queue-page size the program needs; used by the PE sizing
/// discussion in thesis §5.2.
///
/// # Errors
///
/// See [`evaluate`].
pub fn max_queue_depth(ops: &[Op], env: &dyn Fn(&str) -> Word) -> Result<usize> {
    let t = trace(ops, env)?;
    Ok(t.states.iter().map(|s| s.queue.len()).max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ParseTree;

    fn env(n: &str) -> Word {
        match n {
            "a" => 2,
            "b" => 3,
            "c" => 20,
            "d" => 6,
            "e" => 7,
            _ => 0,
        }
    }

    #[test]
    fn table_3_1_queue_evaluation() {
        let tree = ParseTree::parse_infix("a*b + (c-d)/e").unwrap();
        let result = evaluate_tree(&tree, &env).unwrap();
        assert_eq!(result, 2 * 3 + (20 - 6) / 7);
    }

    #[test]
    fn table_3_1_intermediate_queue_states() {
        // Queue contents from Table 3.1:
        //   c | c,d | c,d,a | c,d,a,b | a,b,c-d | a,b,c-d,e | c-d,e,ab | ab,(c-d)/e | result
        let tree = ParseTree::parse_infix("a*b + (c-d)/e").unwrap();
        let ops = level_order_sequence(&tree);
        let t = trace(&ops, &env).unwrap();
        let queues: Vec<Vec<Word>> = t.states.iter().map(|s| s.queue.clone()).collect();
        assert_eq!(
            queues,
            vec![
                vec![],
                vec![20],
                vec![20, 6],
                vec![20, 6, 2],
                vec![20, 6, 2, 3],
                vec![2, 3, 14],
                vec![2, 3, 14, 7],
                vec![14, 7, 6],
                vec![6, 2],
                vec![8],
            ]
        );
        assert_eq!(t.result, 8);
    }

    #[test]
    fn underflow_is_detected() {
        let err = evaluate(&[Op::Add], &|_| 0).unwrap_err();
        assert_eq!(err, ModelError::OperandUnderflow { at: 0, needed: 2, available: 0 });
    }

    #[test]
    fn residual_operands_are_detected() {
        let ops = [Op::Literal(1), Op::Literal(2)];
        let err = evaluate(&ops, &|_| 0).unwrap_err();
        assert_eq!(err, ModelError::ResidualOperands { left: 2 });
    }

    #[test]
    fn max_queue_depth_of_balanced_tree() {
        // A balanced tree of 4 leaves holds all 4 fetched values at once.
        let tree = ParseTree::parse_infix("(a+b)*(c-d)").unwrap();
        let ops = level_order_sequence(&tree);
        assert_eq!(max_queue_depth(&ops, &env).unwrap(), 4);
    }

    #[test]
    fn queue_depth_of_left_chain_is_constant() {
        // A fully sequential chain keeps the queue at depth ≤ 2.
        let tree = ParseTree::parse_infix("((a+b)+c)+d").unwrap();
        let ops = level_order_sequence(&tree);
        assert!(max_queue_depth(&ops, &env).unwrap() <= 3);
    }
}
