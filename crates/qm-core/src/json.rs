//! Minimal JSON support shared by the whole workspace: a writer with the
//! workspace's canonical formatting conventions, a small recursive-descent
//! parser (for `qm-serve` request bodies), and the versioned `qm-api/v1`
//! report envelope every serialisable report renders into.
//!
//! The workspace deliberately has no external dependencies, so this is
//! not a general-purpose JSON library — it is the *one* place the
//! hand-rolled escaping and float-formatting rules live, replacing the
//! per-crate copies that used to drift (`qm-verify` escaped `\n`
//! specially, `qm-bench` did not; wall-clock floats were formatted with
//! `{:.3}` in some emitters and free-form in others).
//!
//! # The `qm-api/v1` envelope
//!
//! Every report type with a stable wire format serialises as
//!
//! ```json
//! {"schema":"qm-api/v1","kind":"<kind>","data":{…}}
//! ```
//!
//! built through [`Envelope`]. The envelope is versioned as a whole:
//! adding a field to some `data` body is backwards-compatible and keeps
//! `qm-api/v1`; renaming, removing or retyping one requires `qm-api/v2`.
//! `docs/API.md` specifies each body; golden-file tests in `qm-bench`
//! pin the exact bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The versioned envelope schema identifier every report serialises
/// under.
pub const API_SCHEMA: &str = "qm-api/v1";

/// Escape `s` for inclusion in a JSON string literal (quotes, backslash
/// and control characters; everything else passes through verbatim).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The workspace's canonical rendering of wall-clock-derived floats:
/// three decimal places, no exponent (`0.000`, `12.345`). Every
/// `*_wall_ms` / `speedup` / `points_per_sec` field in every emitter
/// goes through this, so the formatting cannot drift between files.
#[must_use]
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// A JSON writer: a thin, allocation-conscious builder over a `String`
/// that handles commas and nesting so callers only state structure.
///
/// ```
/// use qm_core::json::JsonBuf;
///
/// let mut j = JsonBuf::new();
/// j.begin_obj();
/// j.str_field("name", "matmul");
/// j.u64_field("cycles", 1234);
/// j.bool_field("correct", true);
/// j.end_obj();
/// assert_eq!(j.finish(), r#"{"name":"matmul","cycles":1234,"correct":true}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// Whether the current aggregate already has a member (one flag per
    /// open nesting level).
    has_member: Vec<bool>,
}

impl JsonBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The rendered text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }

    fn comma(&mut self) {
        if let Some(has) = self.has_member.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Open an object value (`{`).
    pub fn begin_obj(&mut self) {
        self.comma();
        self.out.push('{');
        self.has_member.push(false);
    }

    /// Close the innermost object (`}`).
    pub fn end_obj(&mut self) {
        self.has_member.pop();
        self.out.push('}');
    }

    /// Open an array value (`[`).
    pub fn begin_arr(&mut self) {
        self.comma();
        self.out.push('[');
        self.has_member.push(false);
    }

    /// Close the innermost array (`]`).
    pub fn end_arr(&mut self) {
        self.has_member.pop();
        self.out.push(']');
    }

    /// Write a member key; the next value written becomes its value.
    pub fn key(&mut self, k: &str) {
        self.comma();
        let _ = write!(self.out, "\"{}\":", escape(k));
        // The value that follows must not emit its own comma.
        if let Some(has) = self.has_member.last_mut() {
            *has = false;
        }
    }

    /// Write a raw, pre-rendered JSON value (trusted — not escaped).
    pub fn raw(&mut self, v: &str) {
        self.comma();
        self.out.push_str(v);
    }

    /// Write a string value.
    pub fn str_val(&mut self, v: &str) {
        self.comma();
        let _ = write!(self.out, "\"{}\"", escape(v));
    }

    /// Write an unsigned integer value.
    pub fn u64_val(&mut self, v: u64) {
        self.comma();
        let _ = write!(self.out, "{v}");
    }

    /// Write a signed integer value.
    pub fn i64_val(&mut self, v: i64) {
        self.comma();
        let _ = write!(self.out, "{v}");
    }

    /// Write a boolean value.
    pub fn bool_val(&mut self, v: bool) {
        self.comma();
        let _ = write!(self.out, "{v}");
    }

    /// Write a `null` value.
    pub fn null_val(&mut self) {
        self.comma();
        self.out.push_str("null");
    }

    /// Write a wall-clock float value in the canonical [`f3`] format.
    pub fn ms_val(&mut self, v: f64) {
        self.comma();
        self.out.push_str(&f3(v));
    }

    /// `key: "string"` member.
    pub fn str_field(&mut self, k: &str, v: &str) {
        self.key(k);
        self.str_val(v);
    }

    /// `key: u64` member.
    pub fn u64_field(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64_val(v);
    }

    /// `key: i64` member.
    pub fn i64_field(&mut self, k: &str, v: i64) {
        self.key(k);
        self.i64_val(v);
    }

    /// `key: bool` member.
    pub fn bool_field(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool_val(v);
    }
}

/// Builder for one `qm-api/v1` envelope: opens the envelope and the
/// `data` object, hands the buffer to the caller for the body, and
/// closes both.
///
/// ```
/// use qm_core::json::Envelope;
///
/// let json = Envelope::render("state_digest", |j| {
///     j.str_field("digest", "0x00000000075bcd15");
/// });
/// assert_eq!(
///     json,
///     r#"{"schema":"qm-api/v1","kind":"state_digest","data":{"digest":"0x00000000075bcd15"}}"#
/// );
/// ```
pub struct Envelope;

impl Envelope {
    /// Render a complete envelope of `kind` whose `data` body is written
    /// by `body`.
    #[must_use]
    pub fn render(kind: &str, body: impl FnOnce(&mut JsonBuf)) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.str_field("schema", API_SCHEMA);
        j.str_field("kind", kind);
        j.key("data");
        j.begin_obj();
        body(&mut j);
        j.end_obj();
        j.end_obj();
        j.finish()
    }
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

/// A parsed JSON value ([`parse`]). Objects keep their members in a
/// `BTreeMap` — key order is irrelevant to every consumer in this
/// workspace, and sorted iteration keeps behaviour deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; the grammar this workspace accepts
    /// never needs more than 53 bits of integer precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member `key`, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parse error: a message and the byte offset it was raised at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// [`JsonError`] with the offending byte offset. Inputs deeper than 64
/// nesting levels are rejected (hostile-input guard, in the same spirit
/// as the snapshot decoder's length checks).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(arr));
        }
        loop {
            self.skip_ws();
            arr.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(arr));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired; this parser only
                            // needs the BMP subset our own writer emits.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError { message: format!("bad number {text:?}"), at: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn f3_is_three_decimals() {
        assert_eq!(f3(0.0), "0.000");
        assert_eq!(f3(12.3456), "12.346");
    }

    #[test]
    fn writer_nests_and_commas() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("a");
        j.begin_arr();
        j.u64_val(1);
        j.u64_val(2);
        j.begin_obj();
        j.str_field("k", "v");
        j.end_obj();
        j.end_arr();
        j.bool_field("ok", false);
        j.key("none");
        j.null_val();
        j.end_obj();
        assert_eq!(j.finish(), r#"{"a":[1,2,{"k":"v"}],"ok":false,"none":null}"#);
    }

    #[test]
    fn envelope_shape_is_pinned() {
        let json = Envelope::render("x", |j| j.u64_field("n", 7));
        assert_eq!(json, r#"{"schema":"qm-api/v1","kind":"x","data":{"n":7}}"#);
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.str_field("name", "say \"hi\"\n");
        j.i64_field("neg", -3);
        j.key("arr");
        j.begin_arr();
        j.u64_val(1);
        j.bool_val(true);
        j.null_val();
        j.end_arr();
        j.end_obj();
        let v = parse(&j.finish()).expect("parses");
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("say \"hi\"\n"));
        assert_eq!(v.get("neg"), Some(&JsonValue::Num(-3.0)));
        assert_eq!(
            v.get("arr"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Bool(true),
                JsonValue::Null
            ]))
        );
    }

    #[test]
    fn parser_rejects_malformed_inputs() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "{} trailing", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth guard.
        let deep = "[".repeat(65) + &"]".repeat(65);
        assert!(parse(&deep).is_err(), "65 levels deep should fail");
        let ok = "[".repeat(63) + &"]".repeat(63);
        assert!(parse(&ok).is_ok(), "63 levels is fine");
    }

    #[test]
    fn numbers_parse_as_u64_when_integral() {
        let v = parse("{\"n\": 18446744073709551615}").unwrap();
        // 2^64-1 is not exactly representable; what matters is that
        // ordinary counters survive.
        let v2 = parse("{\"n\": 123456789}").unwrap();
        assert_eq!(v2.get("n").and_then(JsonValue::as_u64), Some(123_456_789));
        assert!(v.get("n").is_some());
        assert_eq!(parse("-1.5").unwrap().as_u64(), None);
    }
}
