//! The stack machine comparator (thesis §3.2, Table 3.1).
//!
//! A stack machine pops its operands from the top of an operand stack and
//! pushes the result back. Its program for an expression is the post-order
//! traversal of the parse tree. Used throughout Chapter 3 as the baseline
//! the queue machine is compared against.

use crate::expr::{Op, ParseTree};
use crate::{ModelError, Result, Word};

/// One state in a stack machine evaluation (mirror of
/// [`crate::simple::State`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Index of the next operator.
    pub next: usize,
    /// Stack contents, bottom first (top of stack is the last element).
    pub stack: Vec<Word>,
}

/// Trace of a stack machine evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Every machine state, including the final one.
    pub states: Vec<State>,
    /// Final result.
    pub result: Word,
}

/// Evaluate an operator sequence on the stack machine.
///
/// For binary operators the *first* popped value is the right operand (it
/// was pushed last), matching the usual post-order convention.
///
/// # Errors
///
/// Same failure modes as [`crate::simple::evaluate`].
pub fn evaluate(ops: &[Op], env: &dyn Fn(&str) -> Word) -> Result<Word> {
    Ok(trace(ops, env)?.result)
}

/// Evaluate an operator sequence, recording every machine state.
///
/// # Errors
///
/// Same failure modes as [`crate::simple::evaluate`].
pub fn trace(ops: &[Op], env: &dyn Fn(&str) -> Word) -> Result<Trace> {
    let mut stack: Vec<Word> = Vec::new();
    let mut states = Vec::with_capacity(ops.len() + 1);
    for (i, op) in ops.iter().enumerate() {
        states.push(State { next: i, stack: stack.clone() });
        let needed = op.arity().operands();
        if stack.len() < needed {
            return Err(ModelError::OperandUnderflow { at: i, needed, available: stack.len() });
        }
        let split = stack.len() - needed;
        let args: Vec<Word> = stack.split_off(split);
        stack.push(op.apply(&args, env)?);
    }
    states.push(State { next: ops.len(), stack: stack.clone() });
    if stack.len() != 1 {
        return Err(ModelError::ResidualOperands { left: stack.len() });
    }
    Ok(Trace { states, result: stack[0] })
}

/// Compile a parse tree to its stack program (post-order traversal) and
/// evaluate it.
///
/// # Errors
///
/// Same failure modes as [`crate::simple::evaluate`].
pub fn evaluate_tree(tree: &ParseTree, env: &dyn Fn(&str) -> Word) -> Result<Word> {
    evaluate(&tree.post_order(), env)
}

/// Maximum stack depth needed to evaluate `ops`.
///
/// # Errors
///
/// Same failure modes as [`crate::simple::evaluate`].
pub fn max_stack_depth(ops: &[Op], env: &dyn Fn(&str) -> Word) -> Result<usize> {
    let t = trace(ops, env)?;
    Ok(t.states.iter().map(|s| s.stack.len()).max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ParseTree;

    fn env(n: &str) -> Word {
        match n {
            "a" => 2,
            "b" => 3,
            "c" => 20,
            "d" => 6,
            "e" => 7,
            _ => 0,
        }
    }

    #[test]
    fn table_3_1_stack_evaluation() {
        let tree = ParseTree::parse_infix("a*b + (c-d)/e").unwrap();
        assert_eq!(evaluate_tree(&tree, &env).unwrap(), 2 * 3 + (20 - 6) / 7);
    }

    #[test]
    fn subtraction_operand_order() {
        let tree = ParseTree::parse_infix("c-d").unwrap();
        assert_eq!(evaluate_tree(&tree, &env).unwrap(), 14);
    }

    #[test]
    fn stack_and_queue_agree_on_examples() {
        for src in ["a", "-a", "a-b", "a*b+c", "a/(a+b)+(a+b)*c", "((a+b)*(-c))/d"] {
            let tree = ParseTree::parse_infix(src).unwrap();
            let direct = tree.evaluate(&env).unwrap();
            assert_eq!(evaluate_tree(&tree, &env).unwrap(), direct, "stack vs direct for {src}");
            assert_eq!(
                crate::simple::evaluate_tree(&tree, &env).unwrap(),
                direct,
                "queue vs direct for {src}"
            );
        }
    }

    #[test]
    fn table_3_1_intermediate_stack_states() {
        // Stack contents from Table 3.1 (top of stack printed first there;
        // we store bottom-first): a | b,a | ab | c,ab | …
        let tree = ParseTree::parse_infix("a*b + (c-d)/e").unwrap();
        let t = trace(&tree.post_order(), &env).unwrap();
        let stacks: Vec<Vec<Word>> = t.states.iter().map(|s| s.stack.clone()).collect();
        assert_eq!(
            stacks,
            vec![
                vec![],
                vec![2],
                vec![2, 3],
                vec![6],
                vec![6, 20],
                vec![6, 20, 6],
                vec![6, 14],
                vec![6, 14, 7],
                vec![6, 2],
                vec![8],
            ]
        );
    }

    #[test]
    fn underflow_detected() {
        assert!(evaluate(&[Op::Neg], &|_| 0).is_err());
    }

    #[test]
    fn stack_depth_of_right_chain_grows() {
        // a + (b + (c + d)) needs 4 stack slots but the equivalent left
        // chain needs only 2: classic stack-machine asymmetry.
        let right = ParseTree::parse_infix("a+(b+(c+d))").unwrap();
        let left = ParseTree::parse_infix("((a+b)+c)+d").unwrap();
        assert_eq!(max_stack_depth(&right.post_order(), &env).unwrap(), 4);
        assert_eq!(max_stack_depth(&left.post_order(), &env).unwrap(), 2);
    }
}
