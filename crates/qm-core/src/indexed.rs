//! The indexed queue machine execution model (thesis §3.5).
//!
//! An indexed queue machine still consumes operands only from the **front**
//! of the operand queue, but each instruction carries a set of *result
//! indices*: offsets (from the front of the queue after the instruction's
//! operands have been removed) at which copies of the result are stored.
//! This lets common subexpressions fan out without re-computation, which is
//! exactly what evaluating an acyclic *data-flow graph* (rather than a
//! tree) requires.

use crate::expr::Op;
use crate::{ModelError, Result, Word};

/// An indexed queue machine instruction: an operator plus the offsets
/// (relative to the post-consumption queue front) where its result is
/// stored.
///
/// An empty `result_offsets` set is allowed — the result is discarded —
/// matching the formal definition's "possibly empty set of non-negative
/// integers".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexedInstruction {
    /// The operator to apply.
    pub op: Op,
    /// Offsets from the queue front (after operand removal) receiving
    /// copies of the result.
    pub result_offsets: Vec<usize>,
}

impl IndexedInstruction {
    /// Construct an instruction.
    #[must_use]
    pub fn new(op: Op, result_offsets: Vec<usize>) -> Self {
        IndexedInstruction { op, result_offsets }
    }
}

impl std::fmt::Display for IndexedInstruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.op.mnemonic())?;
        if !self.result_offsets.is_empty() {
            let offs: Vec<String> = self.result_offsets.iter().map(ToString::to_string).collect();
            write!(f, " :{}", offs.join(","))?;
        }
        Ok(())
    }
}

/// A complete indexed queue machine program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IndexedProgram {
    /// The instructions, in execution order.
    pub instructions: Vec<IndexedInstruction>,
}

/// One state in the evaluation of an indexed program: the queue is a sparse
/// array of slots (`None` = the ε "hole" of the formal model) plus the
/// index of the current front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Index of the next instruction.
    pub next: usize,
    /// Queue slots from the current front onwards (`None` = hole).
    pub queue: Vec<Option<Word>>,
    /// Absolute index of the queue front (`r_i` in the thesis).
    pub front: usize,
}

/// Trace of an indexed program evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// All machine states including the final one.
    pub states: Vec<State>,
    /// The result left at the front of the queue.
    pub result: Word,
}

impl IndexedProgram {
    /// Create a program from instructions.
    #[must_use]
    pub fn new(instructions: Vec<IndexedInstruction>) -> Self {
        IndexedProgram { instructions }
    }

    /// Evaluate the program.
    ///
    /// # Errors
    ///
    /// * [`ModelError::HoleAtFront`] if an operand slot was never written;
    /// * [`ModelError::Overwrite`] if a result lands on a live slot (the
    ///   "must not overwrite" rule of §3.5);
    /// * [`ModelError::ResidualOperands`] if more than one live value
    ///   remains at the end;
    /// * [`ModelError::DivideByZero`] from arithmetic.
    pub fn evaluate(&self, env: &dyn Fn(&str) -> Word) -> Result<Word> {
        Ok(self.trace(env)?.result)
    }

    /// Evaluate the program, recording every state.
    ///
    /// # Errors
    ///
    /// See [`IndexedProgram::evaluate`].
    pub fn trace(&self, env: &dyn Fn(&str) -> Word) -> Result<Trace> {
        let mut queue: Vec<Option<Word>> = Vec::new();
        let mut front = 0usize;
        let mut states = Vec::with_capacity(self.instructions.len() + 1);
        let snapshot = |queue: &Vec<Option<Word>>, front: usize, next: usize| State {
            next,
            queue: queue[front.min(queue.len())..].to_vec(),
            front,
        };
        for (i, instr) in self.instructions.iter().enumerate() {
            states.push(snapshot(&queue, front, i));
            let needed = instr.op.arity().operands();
            let mut args = Vec::with_capacity(needed);
            for k in 0..needed {
                let idx = front + k;
                match queue.get(idx).copied().flatten() {
                    Some(v) => args.push(v),
                    None => return Err(ModelError::HoleAtFront { at: i, index: idx }),
                }
            }
            front += needed;
            let value = instr.op.apply(&args, env)?;
            for &off in &instr.result_offsets {
                let idx = front + off;
                if queue.len() <= idx {
                    queue.resize(idx + 1, None);
                }
                if queue[idx].is_some() {
                    return Err(ModelError::Overwrite { at: i, index: idx });
                }
                queue[idx] = Some(value);
            }
        }
        states.push(snapshot(&queue, front, self.instructions.len()));
        // Exactly one live value, at the front.
        let live: Vec<usize> =
            (0..queue.len()).filter(|&i| i >= front && queue[i].is_some()).collect();
        if live.len() != 1 || live[0] != front {
            return Err(ModelError::ResidualOperands { left: live.len() });
        }
        Ok(Trace { states, result: queue[front].expect("checked live") })
    }

    /// Maximum number of simultaneously live queue slots (the queue page
    /// size this program needs on the real PE).
    ///
    /// # Errors
    ///
    /// See [`IndexedProgram::evaluate`].
    pub fn max_live_slots(&self, env: &dyn Fn(&str) -> Word) -> Result<usize> {
        let t = self.trace(env)?;
        Ok(t.states
            .iter()
            .map(|s| s.queue.iter().filter(|v| v.is_some()).count())
            .max()
            .unwrap_or(0))
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }
}

impl std::fmt::Display for IndexedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for instr in &self.instructions {
            writeln!(f, "{instr}")?;
        }
        Ok(())
    }
}

/// Build the Table 3.4 program for `d ← a/(a+b) + (a+b)·c` directly.
///
/// This is the worked example of §3.5: seven instructions instead of the
/// eleven a simple queue machine would need, because `a + b` is computed
/// once and fanned out by result indices.
#[must_use]
pub fn table_3_4_program() -> IndexedProgram {
    IndexedProgram::new(vec![
        IndexedInstruction::new(Op::Fetch("a".into()), vec![0, 2]),
        IndexedInstruction::new(Op::Fetch("b".into()), vec![1]),
        IndexedInstruction::new(Op::Fetch("c".into()), vec![5]),
        IndexedInstruction::new(Op::Add, vec![1, 2]),
        IndexedInstruction::new(Op::Div, vec![2]),
        IndexedInstruction::new(Op::Mul, vec![1]),
        IndexedInstruction::new(Op::Add, vec![0]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(n: &str) -> Word {
        match n {
            "a" => 12,
            "b" => 4,
            "c" => 3,
            _ => 0,
        }
    }

    #[test]
    fn table_3_4_evaluates_correctly() {
        // d ← a/(a+b) + (a+b)c with a=12, b=4, c=3:
        //   12/16 + 16*3 = 0 + 48 = 48 (integer division).
        let p = table_3_4_program();
        #[allow(clippy::identity_op)]
        let expected = (12 / 16) + 16 * 3; // a/(a+b) truncates to 0
        assert_eq!(p.evaluate(&env).unwrap(), expected);
    }

    #[test]
    fn table_3_4_uses_seven_instructions() {
        assert_eq!(table_3_4_program().len(), 7);
    }

    #[test]
    fn simple_queue_is_a_special_case() {
        // A simple-queue program is an indexed program where every result
        // goes to the first free slot past the live region. Rebuild the
        // Table 3.1 program in indexed form.
        let p = IndexedProgram::new(vec![
            IndexedInstruction::new(Op::Fetch("c".into()), vec![0]),
            IndexedInstruction::new(Op::Fetch("d".into()), vec![1]),
            IndexedInstruction::new(Op::Fetch("a".into()), vec![2]),
            IndexedInstruction::new(Op::Fetch("b".into()), vec![3]),
            IndexedInstruction::new(Op::Sub, vec![2]),
            IndexedInstruction::new(Op::Fetch("e".into()), vec![3]),
            IndexedInstruction::new(Op::Mul, vec![2]),
            IndexedInstruction::new(Op::Div, vec![1]),
            IndexedInstruction::new(Op::Add, vec![0]),
        ]);
        let env = |n: &str| match n {
            "a" => 2,
            "b" => 3,
            "c" => 20,
            "d" => 6,
            "e" => 7,
            _ => 0,
        };
        assert_eq!(p.evaluate(&env).unwrap(), 8);
    }

    #[test]
    fn hole_at_front_is_detected() {
        // add consumes two slots but only slot 1 was written.
        let p = IndexedProgram::new(vec![
            IndexedInstruction::new(Op::Fetch("a".into()), vec![1]),
            IndexedInstruction::new(Op::Fetch("b".into()), vec![2]),
            IndexedInstruction::new(Op::Add, vec![0]),
        ]);
        assert!(matches!(p.evaluate(&env), Err(ModelError::HoleAtFront { at: 2, index: 0 })));
    }

    #[test]
    fn overwrite_is_detected() {
        let p = IndexedProgram::new(vec![
            IndexedInstruction::new(Op::Fetch("a".into()), vec![0]),
            IndexedInstruction::new(Op::Fetch("b".into()), vec![0]),
        ]);
        assert!(matches!(p.evaluate(&env), Err(ModelError::Overwrite { at: 1, index: 0 })));
    }

    #[test]
    fn discarded_results_are_allowed() {
        let p = IndexedProgram::new(vec![
            IndexedInstruction::new(Op::Fetch("a".into()), vec![]),
            IndexedInstruction::new(Op::Fetch("b".into()), vec![0]),
        ]);
        assert_eq!(p.evaluate(&env).unwrap(), 4);
    }

    #[test]
    fn display_formats_offsets() {
        let i = IndexedInstruction::new(Op::Add, vec![1, 2]);
        assert_eq!(i.to_string(), "add :1,2");
    }

    #[test]
    fn max_live_slots_of_table_3_4() {
        // Queue occupancy peaks at 4 live values (a, b, a, c before add).
        let p = table_3_4_program();
        assert_eq!(p.max_live_slots(&env).unwrap(), 4);
    }
}
