//! Pipelined-ALU cycle models for queue vs. stack execution (thesis §3.4).
//!
//! Both machines issue at most one instruction per cycle, in program order.
//! An instruction cannot issue until its operands are available at the top
//! of the stack / front of the queue, i.e. until every producing
//! instruction has *completed*. ALU operations occupy a `k`-stage pipeline
//! (result available `k` cycles after issue); fetches take one cycle.
//!
//! The two fetch policies of the thesis:
//!
//! * **Case 1** (non-overlapped fetch/execute): a fetch cannot issue until
//!   the ALU pipeline is idle (no ALU operation in flight).
//! * **Case 2** (overlapped fetch/execute): a fetch issues immediately.
//!
//! The stack machine runs the post-order program, so each ALU operation
//! consumes the result of the immediately preceding instruction and the
//! pipeline never overlaps dependent operations. The queue machine runs
//! the level-order program, where a whole level's operations are mutually
//! independent and stream through the pipeline back to back.

use crate::expr::{Arity, ParseTree};

/// Fetch issue policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchPolicy {
    /// Case 1: fetch waits for the ALU pipeline to drain.
    NonOverlapped,
    /// Case 2: fetch issues immediately.
    Overlapped,
}

/// One instruction of a dependency-annotated linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instr {
    /// `true` for operand fetches (leaves), `false` for ALU operations.
    pub is_fetch: bool,
    /// Indices (into the program) of the instructions producing this
    /// instruction's operands.
    pub producers: Vec<usize>,
}

/// A linear program with explicit data dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
}

#[derive(Debug)]
struct Flat {
    is_leaf: Vec<bool>,
    left: Vec<Option<usize>>,
    right: Vec<Option<usize>>,
    level: Vec<usize>,
    in_order: Vec<usize>,
    root: usize,
}

fn flatten(tree: &ParseTree) -> Flat {
    let mut flat = Flat {
        is_leaf: Vec::new(),
        left: Vec::new(),
        right: Vec::new(),
        level: Vec::new(),
        in_order: Vec::new(),
        root: 0,
    };
    fn walk(t: &ParseTree, level: usize, flat: &mut Flat) -> usize {
        let id = flat.is_leaf.len();
        flat.is_leaf.push(t.op().arity() == Arity::Nullary);
        flat.left.push(None);
        flat.right.push(None);
        flat.level.push(level);
        let l = t.left().map(|c| walk(c, level + 1, flat));
        let r = t.right().map(|c| walk(c, level + 1, flat));
        flat.left[id] = l;
        flat.right[id] = r;
        id
    }
    flat.root = walk(tree, 0, &mut flat);
    fn in_order_walk(t: usize, flat: &Flat, out: &mut Vec<usize>) {
        if let Some(l) = flat.left[t] {
            in_order_walk(l, flat, out);
        }
        out.push(t);
        if let Some(r) = flat.right[t] {
            in_order_walk(r, flat, out);
        }
    }
    let mut order = Vec::with_capacity(flat.is_leaf.len());
    in_order_walk(flat.root, &flat, &mut order);
    flat.in_order = order;
    flat
}

impl Program {
    /// The queue machine program for `tree`: level-order sequence.
    #[must_use]
    pub fn queue_program(tree: &ParseTree) -> Self {
        let flat = flatten(tree);
        // Rank of each node in the in-order walk (left-to-right position).
        let mut rank = vec![0usize; flat.is_leaf.len()];
        for (r, &node) in flat.in_order.iter().enumerate() {
            rank[node] = r;
        }
        let mut ids: Vec<usize> = (0..flat.is_leaf.len()).collect();
        ids.sort_by(|&a, &b| flat.level[b].cmp(&flat.level[a]).then(rank[a].cmp(&rank[b])));
        Self::from_node_order(&flat, &ids)
    }

    /// The stack machine program for `tree`: post-order sequence.
    #[must_use]
    pub fn stack_program(tree: &ParseTree) -> Self {
        let flat = flatten(tree);
        let mut ids = Vec::with_capacity(flat.is_leaf.len());
        fn post(t: usize, flat: &Flat, out: &mut Vec<usize>) {
            if let Some(l) = flat.left[t] {
                post(l, flat, out);
            }
            if let Some(r) = flat.right[t] {
                post(r, flat, out);
            }
            out.push(t);
        }
        post(flat.root, &flat, &mut ids);
        Self::from_node_order(&flat, &ids)
    }

    fn from_node_order(flat: &Flat, ids: &[usize]) -> Self {
        let mut position = vec![0usize; flat.is_leaf.len()];
        for (i, &id) in ids.iter().enumerate() {
            position[id] = i;
        }
        let instrs = ids
            .iter()
            .map(|&id| {
                let mut producers = Vec::new();
                if let Some(l) = flat.left[id] {
                    producers.push(position[l]);
                }
                if let Some(r) = flat.right[id] {
                    producers.push(position[r]);
                }
                Instr { is_fetch: flat.is_leaf[id], producers }
            })
            .collect();
        Program { instrs }
    }

    /// The instructions in program order.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Total cycles to execute the program on a `stages`-stage pipelined
    /// ALU under the given fetch policy.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0`.
    #[must_use]
    pub fn cycles(&self, stages: usize, policy: FetchPolicy) -> u64 {
        assert!(stages > 0, "pipeline needs at least one stage");
        let stages = stages as u64;
        let mut complete = vec![0u64; self.instrs.len()];
        let mut prev_issue: Option<u64> = None;
        let mut alu_drain: u64 = 0; // completion time of the last ALU op issued
        let mut last_complete = 0u64;
        for (i, instr) in self.instrs.iter().enumerate() {
            let mut issue = prev_issue.map_or(0, |p| p + 1);
            for &p in &instr.producers {
                issue = issue.max(complete[p]);
            }
            if instr.is_fetch && policy == FetchPolicy::NonOverlapped {
                issue = issue.max(alu_drain);
            }
            let latency = if instr.is_fetch { 1 } else { stages };
            complete[i] = issue + latency;
            if !instr.is_fetch {
                alu_drain = alu_drain.max(complete[i]);
            }
            last_complete = last_complete.max(complete[i]);
            prev_issue = Some(issue);
        }
        last_complete
    }
}

/// Speed-up of the queue machine over the stack machine for one tree.
#[must_use]
pub fn speedup(tree: &ParseTree, stages: usize, policy: FetchPolicy) -> f64 {
    let stack = Program::stack_program(tree).cycles(stages, policy);
    let queue = Program::queue_program(tree).cycles(stages, policy);
    #[allow(clippy::cast_precision_loss)]
    {
        stack as f64 / queue as f64
    }
}

/// One row of Table 3.2 / 3.3: aggregate speed-up over all trees with a
/// given node count.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRow {
    /// Number of nodes in the parse trees averaged over.
    pub nodes: usize,
    /// Number of distinct tree shapes.
    pub tree_count: u64,
    /// Total stack cycles / total queue cycles under case 1.
    pub case1: f64,
    /// Total stack cycles / total queue cycles under case 2.
    pub case2: f64,
}

/// Compute the aggregate queue-over-stack speed-up for all trees with
/// `nodes` nodes on a `stages`-stage pipeline (one row of Table 3.2, or —
/// varying `stages` at fixed `nodes` — one row of Table 3.3).
///
/// The aggregate is the ratio of summed execution times, i.e. the mean
/// execution time ratio weighted by tree frequency, matching the thesis's
/// "average execution time required to evaluate all possible parse trees".
#[must_use]
pub fn speedup_row(nodes: usize, stages: usize) -> SpeedupRow {
    let trees = crate::enumerate::all_trees(nodes);
    let mut totals = [[0u64; 2]; 2]; // [case][machine: 0 stack, 1 queue]
    for tree in &trees {
        let stack = Program::stack_program(tree);
        let queue = Program::queue_program(tree);
        for (ci, policy) in
            [FetchPolicy::NonOverlapped, FetchPolicy::Overlapped].into_iter().enumerate()
        {
            totals[ci][0] += stack.cycles(stages, policy);
            totals[ci][1] += queue.cycles(stages, policy);
        }
    }
    #[allow(clippy::cast_precision_loss)]
    SpeedupRow {
        nodes,
        tree_count: trees.len() as u64,
        case1: totals[0][0] as f64 / totals[0][1] as f64,
        case2: totals[1][0] as f64 / totals[1][1] as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ParseTree;

    #[test]
    fn queue_program_matches_level_order_length() {
        let tree = ParseTree::parse_infix("a*b + (c-d)/e").unwrap();
        let p = Program::queue_program(&tree);
        assert_eq!(p.instrs().len(), crate::level_order_sequence(&tree).len());
    }

    #[test]
    fn unpipelined_alu_gives_no_speedup() {
        for tree in crate::enumerate::all_trees(7) {
            for policy in [FetchPolicy::NonOverlapped, FetchPolicy::Overlapped] {
                let s = speedup(&tree, 1, policy);
                assert!((s - 1.0).abs() < 1e-12, "1-stage pipeline must tie: {s} for {tree}");
            }
        }
    }

    #[test]
    fn queue_never_loses() {
        // Thesis: "the queue-based execution model always meets or exceeds
        // the performance of the stack-based machine … for all instruction
        // sequences (not just the average)".
        for n in 1..=8 {
            for tree in crate::enumerate::all_trees(n) {
                for stages in [2, 3, 4] {
                    for policy in [FetchPolicy::NonOverlapped, FetchPolicy::Overlapped] {
                        let s = speedup(&tree, stages, policy);
                        assert!(s >= 1.0 - 1e-12, "queue lost on {tree} k={stages} {policy:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn balanced_tree_pipelines_on_queue_machine() {
        // (a+b)+(c+d): queue overlaps the two inner adds; stack cannot.
        let tree = ParseTree::parse_infix("(a+b)+(c+d)").unwrap();
        let stack = Program::stack_program(&tree).cycles(2, FetchPolicy::NonOverlapped);
        let queue = Program::queue_program(&tree).cycles(2, FetchPolicy::NonOverlapped);
        assert!(queue < stack, "queue {queue} vs stack {stack}");
    }

    #[test]
    fn chain_tree_ties() {
        // A pure dependence chain cannot pipeline on either machine.
        let tree = ParseTree::parse_infix("-(-(-(-x)))").unwrap();
        for stages in [2, 4] {
            let stack = Program::stack_program(&tree).cycles(stages, FetchPolicy::NonOverlapped);
            let queue = Program::queue_program(&tree).cycles(stages, FetchPolicy::NonOverlapped);
            assert_eq!(stack, queue);
        }
    }

    #[test]
    fn small_trees_tie_like_table_3_2() {
        // Table 3.2: speed-up is 1.00 for trees of 1..=4 nodes.
        for n in 1..=4 {
            let row = speedup_row(n, 2);
            assert!((row.case1 - 1.0).abs() < 5e-3, "case1 n={n}: {}", row.case1);
            assert!((row.case2 - 1.0).abs() < 5e-3, "case2 n={n}: {}", row.case2);
        }
    }

    #[test]
    fn speedup_grows_with_tree_size() {
        // Table 3.2 shape: monotone non-decreasing speed-up, >1 by n=7.
        let rows: Vec<SpeedupRow> = (5..=9).map(|n| speedup_row(n, 2)).collect();
        for w in rows.windows(2) {
            assert!(w[1].case1 >= w[0].case1 - 1e-9);
        }
        assert!(rows.last().unwrap().case1 > 1.0);
        assert!(rows.last().unwrap().case2 > 1.0);
    }

    #[test]
    fn case2_at_least_matches_case1_for_queue_benefit_at_two_stages() {
        // Table 3.2: case 2 speed-ups ≥ case 1 speed-ups on a 2-stage ALU.
        for n in [8, 9, 10] {
            let row = speedup_row(n, 2);
            assert!(row.case2 >= row.case1 - 1e-9, "n={n}: {row:?}");
        }
    }

    #[test]
    fn case1_benefit_grows_with_pipeline_depth() {
        // Table 3.3 shape (11-node trees): case 1 speed-up increases with
        // the number of pipeline stages.
        let s2 = speedup_row(9, 2).case1;
        let s4 = speedup_row(9, 4).case1;
        let s6 = speedup_row(9, 6).case1;
        assert!(s4 >= s2 - 1e-9, "s2={s2} s4={s4}");
        assert!(s6 >= s4 - 1e-9, "s4={s4} s6={s6}");
    }
}
