//! Binary expression parse trees.
//!
//! The thesis (§3.3) defines a *(binary) expression parse tree* `P` as either
//! empty or `{n, P_l, P_r}` where `n` is an operator whose arity constrains
//! which subtrees are present: nullary operators are leaves, unary operators
//! have a left subtree only, binary operators have both subtrees.
//!
//! Leaves are `fetch` operations (variable or literal loads); internal nodes
//! are arithmetic/logic operators.

use crate::{ModelError, Result, Word};

/// Operator arity, per the thesis's `A(n)` function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Arity {
    /// Nullary — a leaf of the parse tree (`fetch x`, a literal…).
    Nullary,
    /// Unary — one operand (negation, bitwise not…).
    Unary,
    /// Binary — two operands.
    Binary,
}

impl Arity {
    /// Number of operands consumed from the queue/stack.
    #[must_use]
    pub fn operands(self) -> usize {
        match self {
            Arity::Nullary => 0,
            Arity::Unary => 1,
            Arity::Binary => 2,
        }
    }
}

/// An operator labelling a parse-tree node or a data-flow actor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// Fetch a named variable (leaf).
    Fetch(String),
    /// Push a literal constant (leaf).
    Literal(Word),
    /// Unary arithmetic negation.
    Neg,
    /// Unary bitwise complement.
    Not,
    /// Binary addition.
    Add,
    /// Binary subtraction.
    Sub,
    /// Binary multiplication.
    Mul,
    /// Binary (truncating) division.
    Div,
}

impl Op {
    /// The arity `A(n)` of this operator.
    #[must_use]
    pub fn arity(&self) -> Arity {
        match self {
            Op::Fetch(_) | Op::Literal(_) => Arity::Nullary,
            Op::Neg | Op::Not => Arity::Unary,
            Op::Add | Op::Sub | Op::Mul | Op::Div => Arity::Binary,
        }
    }

    /// Apply the operator to its operands.
    ///
    /// `args` must contain exactly `arity().operands()` values; leaves take
    /// their value from `env` (for [`Op::Fetch`]) or from the literal.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DivideByZero`] when dividing by zero.
    pub fn apply(&self, args: &[Word], env: &dyn Fn(&str) -> Word) -> Result<Word> {
        debug_assert_eq!(args.len(), self.arity().operands());
        Ok(match self {
            Op::Fetch(name) => env(name),
            Op::Literal(v) => *v,
            Op::Neg => args[0].wrapping_neg(),
            Op::Not => !args[0],
            Op::Add => args[0].wrapping_add(args[1]),
            Op::Sub => args[0].wrapping_sub(args[1]),
            Op::Mul => args[0].wrapping_mul(args[1]),
            Op::Div => {
                if args[1] == 0 {
                    return Err(ModelError::DivideByZero);
                }
                args[0].wrapping_div(args[1])
            }
        })
    }

    /// Short mnemonic used when printing instruction sequences.
    #[must_use]
    pub fn mnemonic(&self) -> String {
        match self {
            Op::Fetch(name) => format!("fetch {name}"),
            Op::Literal(v) => format!("lit {v}"),
            Op::Neg => "neg".to_string(),
            Op::Not => "not".to_string(),
            Op::Add => "add".to_string(),
            Op::Sub => "sub".to_string(),
            Op::Mul => "mul".to_string(),
            Op::Div => "div".to_string(),
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// A non-empty binary expression parse tree.
///
/// The invariant of the thesis definition — subtree presence matches the
/// root operator's arity — is enforced by the constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTree {
    op: Op,
    left: Option<Box<ParseTree>>,
    right: Option<Box<ParseTree>>,
}

impl ParseTree {
    /// Construct a leaf (nullary operator).
    ///
    /// # Panics
    ///
    /// Panics if `op` is not nullary.
    #[must_use]
    pub fn leaf(op: Op) -> Self {
        assert_eq!(op.arity(), Arity::Nullary, "leaf requires a nullary operator");
        ParseTree { op, left: None, right: None }
    }

    /// Construct a unary node.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not unary.
    #[must_use]
    pub fn unary(op: Op, child: ParseTree) -> Self {
        assert_eq!(op.arity(), Arity::Unary, "unary node requires a unary operator");
        ParseTree { op, left: Some(Box::new(child)), right: None }
    }

    /// Construct a binary node.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not binary.
    #[must_use]
    pub fn binary(op: Op, left: ParseTree, right: ParseTree) -> Self {
        assert_eq!(op.arity(), Arity::Binary, "binary node requires a binary operator");
        ParseTree { op, left: Some(Box::new(left)), right: Some(Box::new(right)) }
    }

    /// Convenience: a variable fetch leaf.
    #[must_use]
    pub fn var(name: &str) -> Self {
        ParseTree::leaf(Op::Fetch(name.to_string()))
    }

    /// Convenience: a literal leaf.
    #[must_use]
    pub fn lit(value: Word) -> Self {
        ParseTree::leaf(Op::Literal(value))
    }

    /// The operator at the root.
    #[must_use]
    pub fn op(&self) -> &Op {
        &self.op
    }

    /// Left subtree (present for unary and binary roots).
    #[must_use]
    pub fn left(&self) -> Option<&ParseTree> {
        self.left.as_deref()
    }

    /// Right subtree (present for binary roots).
    #[must_use]
    pub fn right(&self) -> Option<&ParseTree> {
        self.right.as_deref()
    }

    /// `|N(T)|` — the number of nodes in the tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        1 + self.left.as_ref().map_or(0, |t| t.node_count())
            + self.right.as_ref().map_or(0, |t| t.node_count())
    }

    /// Height of the tree (a single node has height 1).
    #[must_use]
    pub fn height(&self) -> usize {
        1 + self
            .left
            .as_ref()
            .map_or(0, |t| t.height())
            .max(self.right.as_ref().map_or(0, |t| t.height()))
    }

    /// Direct evaluation by recursive descent (the semantic reference all
    /// machine models are tested against).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::DivideByZero`].
    pub fn evaluate(&self, env: &dyn Fn(&str) -> Word) -> Result<Word> {
        let mut args = Vec::with_capacity(2);
        if let Some(l) = &self.left {
            args.push(l.evaluate(env)?);
        }
        if let Some(r) = &self.right {
            args.push(r.evaluate(env)?);
        }
        self.op.apply(&args, env)
    }

    /// Post-order traversal of the operators (the stack machine program).
    #[must_use]
    pub fn post_order(&self) -> Vec<Op> {
        let mut out = Vec::with_capacity(self.node_count());
        self.post_order_into(&mut out);
        out
    }

    fn post_order_into(&self, out: &mut Vec<Op>) {
        if let Some(l) = &self.left {
            l.post_order_into(out);
        }
        if let Some(r) = &self.right {
            r.post_order_into(out);
        }
        out.push(self.op.clone());
    }

    /// Parse an infix expression into a parse tree.
    ///
    /// Grammar (usual precedence, `~` is bitwise complement):
    ///
    /// ```text
    /// expr   := term (('+'|'-') term)*
    /// term   := factor (('*'|'/') factor)*
    /// factor := '-' factor | '~' factor | '(' expr ')' | ident | number
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Parse`] on malformed input.
    pub fn parse_infix(src: &str) -> Result<Self> {
        let tokens = tokenize(src)?;
        let mut parser = InfixParser { tokens, pos: 0 };
        let tree = parser.expr()?;
        if parser.pos != parser.tokens.len() {
            return Err(ModelError::Parse(format!("trailing input at token {}", parser.pos)));
        }
        Ok(tree)
    }
}

impl std::fmt::Display for ParseTree {
    /// Prints the fully-parenthesised infix form.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.op.arity() {
            Arity::Nullary => match &self.op {
                Op::Fetch(name) => write!(f, "{name}"),
                Op::Literal(v) => write!(f, "{v}"),
                _ => unreachable!(),
            },
            Arity::Unary => {
                let sym = if self.op == Op::Neg { "-" } else { "~" };
                write!(f, "{sym}({})", self.left.as_ref().unwrap())
            }
            Arity::Binary => {
                let sym = match self.op {
                    Op::Add => "+",
                    Op::Sub => "-",
                    Op::Mul => "*",
                    Op::Div => "/",
                    _ => unreachable!(),
                };
                write!(
                    f,
                    "({} {sym} {})",
                    self.left.as_ref().unwrap(),
                    self.right.as_ref().unwrap()
                )
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(Word),
    Plus,
    Minus,
    Star,
    Slash,
    Tilde,
    LParen,
    RParen,
}

fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '+' => {
                chars.next();
                out.push(Token::Plus);
            }
            '-' => {
                chars.next();
                out.push(Token::Minus);
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            '/' => {
                chars.next();
                out.push(Token::Slash);
            }
            '~' => {
                chars.next();
                out.push(Token::Tilde);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '0'..='9' => {
                let mut n: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n * 10 + i64::from(v);
                        if n > i64::from(Word::MAX) {
                            return Err(ModelError::Parse("integer literal overflow".into()));
                        }
                        chars.next();
                    } else {
                        break;
                    }
                }
                #[allow(clippy::cast_possible_truncation)]
                out.push(Token::Number(n as Word));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        name.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(name));
            }
            other => {
                return Err(ModelError::Parse(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

struct InfixParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl InfixParser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expr(&mut self) -> Result<ParseTree> {
        let mut lhs = self.term()?;
        while let Some(tok) = self.peek() {
            let op = match tok {
                Token::Plus => Op::Add,
                Token::Minus => Op::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = ParseTree::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<ParseTree> {
        let mut lhs = self.factor()?;
        while let Some(tok) = self.peek() {
            let op = match tok {
                Token::Star => Op::Mul,
                Token::Slash => Op::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = ParseTree::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<ParseTree> {
        match self.bump() {
            Some(Token::Minus) => Ok(ParseTree::unary(Op::Neg, self.factor()?)),
            Some(Token::Tilde) => Ok(ParseTree::unary(Op::Not, self.factor()?)),
            Some(Token::LParen) => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(ModelError::Parse("expected ')'".into())),
                }
            }
            Some(Token::Ident(name)) => Ok(ParseTree::var(&name)),
            Some(Token::Number(n)) => Ok(ParseTree::lit(n)),
            other => Err(ModelError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_of_operators() {
        assert_eq!(Op::Fetch("x".into()).arity(), Arity::Nullary);
        assert_eq!(Op::Literal(7).arity(), Arity::Nullary);
        assert_eq!(Op::Neg.arity(), Arity::Unary);
        assert_eq!(Op::Not.arity(), Arity::Unary);
        assert_eq!(Op::Add.arity(), Arity::Binary);
        assert_eq!(Op::Div.arity(), Arity::Binary);
        assert_eq!(Arity::Nullary.operands(), 0);
        assert_eq!(Arity::Unary.operands(), 1);
        assert_eq!(Arity::Binary.operands(), 2);
    }

    #[test]
    fn parse_and_evaluate_thesis_expression() {
        // f ← ab + (c − d)/e, Table 3.1.
        let tree = ParseTree::parse_infix("a*b + (c-d)/e").unwrap();
        assert_eq!(tree.node_count(), 9);
        let env = |n: &str| match n {
            "a" => 2,
            "b" => 3,
            "c" => 20,
            "d" => 6,
            "e" => 7,
            _ => 0,
        };
        assert_eq!(tree.evaluate(&env).unwrap(), 2 * 3 + (20 - 6) / 7);
    }

    #[test]
    fn parse_respects_precedence() {
        let t = ParseTree::parse_infix("1 + 2 * 3").unwrap();
        assert_eq!(t.evaluate(&|_| 0).unwrap(), 7);
        let t = ParseTree::parse_infix("(1 + 2) * 3").unwrap();
        assert_eq!(t.evaluate(&|_| 0).unwrap(), 9);
    }

    #[test]
    fn parse_unary_operators() {
        let t = ParseTree::parse_infix("-x * y").unwrap();
        let env = |n: &str| if n == "x" { 5 } else { 3 };
        assert_eq!(t.evaluate(&env).unwrap(), -15);
        let t = ParseTree::parse_infix("~0").unwrap();
        assert_eq!(t.evaluate(&|_| 0).unwrap(), -1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ParseTree::parse_infix("a +").is_err());
        assert!(ParseTree::parse_infix("(a").is_err());
        assert!(ParseTree::parse_infix("a b").is_err());
        assert!(ParseTree::parse_infix("@").is_err());
        assert!(ParseTree::parse_infix("99999999999").is_err());
    }

    #[test]
    fn division_by_zero_is_reported() {
        let t = ParseTree::parse_infix("1/0").unwrap();
        assert_eq!(t.evaluate(&|_| 0), Err(ModelError::DivideByZero));
    }

    #[test]
    fn display_round_trips_through_parser() {
        let t = ParseTree::parse_infix("a*b + (c-d)/e").unwrap();
        let printed = t.to_string();
        let reparsed = ParseTree::parse_infix(&printed).unwrap();
        assert_eq!(t, reparsed);
    }

    #[test]
    fn post_order_is_stack_program() {
        let t = ParseTree::parse_infix("a + b*c").unwrap();
        let seq: Vec<String> = t.post_order().iter().map(Op::mnemonic).collect();
        assert_eq!(seq, vec!["fetch a", "fetch b", "fetch c", "mul", "add"]);
    }

    #[test]
    fn node_count_and_height() {
        let t = ParseTree::parse_infix("-(a+b)").unwrap();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.height(), 3);
    }

    #[test]
    #[should_panic(expected = "unary node requires")]
    fn unary_constructor_validates_arity() {
        let _ = ParseTree::unary(Op::Add, ParseTree::var("x"));
    }
}
