//! Queue machine execution models.
//!
//! This crate implements the theory of Chapters 3 and 4 of Preiss,
//! *Data Flow on a Queue Machine*:
//!
//! * [`expr`] — binary expression parse trees (nullary / unary / binary
//!   operators) and a tiny infix expression parser for building them.
//! * [`level_order`] — the level-order precedence relation `π_T`, the
//!   *level-order conjugate tree*, and the linear-time level-order traversal
//!   obtained by an in-order walk of the conjugate (thesis Fig. 3.3).
//! * [`simple`] — the simple queue machine execution model `E(I)`: operands
//!   are taken from the **front** of a FIFO operand queue and results are
//!   appended at the **rear**.
//! * [`stack`] — the classical stack machine comparator (post-order
//!   traversal), used as the baseline throughout Chapter 3.
//! * [`enumerate`] — exhaustive enumeration of all unary–binary parse-tree
//!   shapes with a given node count (used by the Table 3.2/3.3 studies).
//! * [`pipeline`] — cycle models for `n`-stage pipelined ALUs under the
//!   thesis's case 1 (non-overlapped fetch) and case 2 (overlapped fetch)
//!   assumptions.
//! * [`indexed`] — the indexed queue machine: results may be stored at any
//!   offset from the front of the queue, operands are still consumed from
//!   the front only.
//! * [`dfg`] — acyclic data-flow graphs: the partial order `π_G`, generation
//!   of valid indexed-queue-machine instruction sequences, the input
//!   sequencing relation `π_I` (with `P*`, `I*`, `C(v)`, `W(v)`), and the
//!   priority-based instruction scheduling heuristic of Fig. 4.20.
//! * [`json`] — infrastructure, not thesis theory: the workspace's shared
//!   JSON writer/parser and the versioned `qm-api/v1` report envelope
//!   (it lives here, at the bottom of the crate graph, so every crate's
//!   renderer uses the same escaping and float formatting).
//!
//! # Quick example
//!
//! Evaluate `f ← a·b + (c − d)/e` on both machines and observe that the
//! queue machine sequence is a permutation of the stack machine sequence:
//!
//! ```
//! use qm_core::expr::ParseTree;
//! use qm_core::{simple, stack};
//!
//! let tree = ParseTree::parse_infix("a*b + (c-d)/e").unwrap();
//! let env = |name: &str| match name {
//!     "a" => 2, "b" => 3, "c" => 20, "d" => 6, "e" => 7, _ => 0,
//! };
//! let queue_result = simple::evaluate_tree(&tree, &env).unwrap();
//! let stack_result = stack::evaluate_tree(&tree, &env).unwrap();
//! assert_eq!(queue_result, 2 * 3 + (20 - 6) / 7);
//! assert_eq!(queue_result, stack_result);
//! ```

pub mod dfg;
pub mod enumerate;
pub mod expr;
pub mod indexed;
pub mod json;
pub mod level_order;
pub mod pipeline;
pub mod simple;
pub mod stack;

pub use expr::{Arity, Op, ParseTree};
pub use indexed::{IndexedInstruction, IndexedProgram};
pub use level_order::level_order_sequence;

/// Machine word used by every execution model in this workspace.
///
/// The thesis machine is a 32-bit two's-complement word machine; all
/// arithmetic in the models wraps exactly like the hardware would.
pub type Word = i32;

/// Errors produced by the execution models in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An instruction required more operands than the queue/stack held.
    OperandUnderflow {
        /// Instruction index in the sequence being evaluated.
        at: usize,
        /// Operands required by the instruction.
        needed: usize,
        /// Operands actually available.
        available: usize,
    },
    /// Evaluation finished with a queue/stack that did not hold exactly the
    /// single result value.
    ResidualOperands {
        /// Number of values left over.
        left: usize,
    },
    /// An indexed-queue instruction read a queue slot that was never
    /// written (a "hole" reached the front of the queue).
    HoleAtFront {
        /// Instruction index in the sequence being evaluated.
        at: usize,
        /// Absolute queue index of the hole.
        index: usize,
    },
    /// An indexed-queue instruction attempted to overwrite a slot that was
    /// already written and not yet consumed.
    Overwrite {
        /// Instruction index in the sequence being evaluated.
        at: usize,
        /// Absolute queue index of the collision.
        index: usize,
    },
    /// An indexed-queue instruction stored a result at an index before the
    /// current front of the queue.
    StoreBehindFront {
        /// Instruction index in the sequence being evaluated.
        at: usize,
        /// Absolute queue index of the attempted store.
        index: usize,
        /// Absolute index of the queue front at that time.
        front: usize,
    },
    /// An expression failed to parse.
    Parse(String),
    /// Division by zero during evaluation.
    DivideByZero,
    /// A data-flow graph was malformed (see message).
    MalformedGraph(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::OperandUnderflow { at, needed, available } => write!(
                f,
                "instruction {at} needed {needed} operand(s) but only {available} available"
            ),
            ModelError::ResidualOperands { left } => {
                write!(f, "evaluation left {left} residual operand(s)")
            }
            ModelError::HoleAtFront { at, index } => {
                write!(f, "instruction {at} read unwritten queue slot {index}")
            }
            ModelError::Overwrite { at, index } => {
                write!(f, "instruction {at} overwrote live queue slot {index}")
            }
            ModelError::StoreBehindFront { at, index, front } => {
                write!(f, "instruction {at} stored at index {index} behind queue front {front}")
            }
            ModelError::Parse(msg) => write!(f, "parse error: {msg}"),
            ModelError::DivideByZero => write!(f, "division by zero"),
            ModelError::MalformedGraph(msg) => write!(f, "malformed data-flow graph: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
