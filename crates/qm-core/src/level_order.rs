//! Level-order traversal and the level-order conjugate tree.
//!
//! A *level-order traversal* (thesis §3.3) visits the nodes of a binary
//! tree from the **deepest to the shallowest** level, left-to-right within
//! each level. Evaluating that sequence on a simple queue machine computes
//! the expression the tree denotes (thesis lemma + corollaries 1–2 of
//! §3.3); this module provides two independent implementations plus the
//! precedence relation `π_T` they both linearise:
//!
//! * [`level_order_naive`] — sort the nodes by `(depth desc, left-to-right)`.
//! * [`level_order_sequence`] — the thesis's linear-time algorithm
//!   (Fig. 3.3): build the *level-order conjugate tree* by a reverse
//!   post-order walk, then emit it with an in-order walk.

use crate::expr::{Op, ParseTree};

/// A node of the level-order conjugate tree: a *tree of right-only trees*.
///
/// `left` descends one level deeper in the original tree; `right` chains
/// together nodes that share a level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjugateTree {
    /// Operator carried over from the original parse-tree node.
    pub op: Op,
    /// Subtree holding all strictly deeper levels.
    pub left: Option<Box<ConjugateTree>>,
    /// Right-only chain of the remaining same-level nodes, left-to-right.
    pub right: Option<Box<ConjugateTree>>,
}

/// Build the level-order conjugate tree `δ(T)` of a parse tree.
///
/// This is a direct transliteration of the thesis's `BuildConjugate`
/// procedure (Fig. 3.3): the parse tree is walked in **reverse post-order**
/// (root, right subtree, left subtree) and each visited node is pushed onto
/// the front of the same-level chain one level below the current conjugate
/// position.
#[must_use]
pub fn conjugate_tree(tree: &ParseTree) -> ConjugateTree {
    // Sentinel root; its `left` ends up holding δ(T).
    let mut sentinel = ConjugateTree { op: Op::Literal(0), left: None, right: None };
    build_conjugate(&mut sentinel, tree);
    *sentinel.left.expect("non-empty parse tree yields non-empty conjugate")
}

fn build_conjugate(conj: &mut ConjugateTree, parse: &ParseTree) {
    match conj.left.take() {
        None => {
            conj.left =
                Some(Box::new(ConjugateTree { op: parse.op().clone(), left: None, right: None }));
        }
        Some(mut old) => {
            // Push `parse`'s operator in front of the existing chain head:
            // the old head's contents move into a fresh node spliced onto
            // the chain, and the head takes the new contents.
            let tmp = ConjugateTree { op: old.op.clone(), left: None, right: old.right.take() };
            old.right = Some(Box::new(tmp));
            old.op = parse.op().clone();
            conj.left = Some(old);
        }
    }
    let down = conj.left.as_mut().expect("just installed");
    if let Some(r) = parse.right() {
        build_conjugate(down, r);
    }
    if let Some(l) = parse.left() {
        build_conjugate(down, l);
    }
}

/// In-order traversal `ι(T)` of a conjugate tree.
#[must_use]
pub fn in_order(conj: &ConjugateTree) -> Vec<Op> {
    let mut out = Vec::new();
    in_order_into(conj, &mut out);
    out
}

fn in_order_into(conj: &ConjugateTree, out: &mut Vec<Op>) {
    if let Some(l) = &conj.left {
        in_order_into(l, out);
    }
    out.push(conj.op.clone());
    if let Some(r) = &conj.right {
        in_order_into(r, out);
    }
}

/// The level-order traversal `Π(T)` via the conjugate tree —
/// `ι(δ(T)) = Π(T)` (thesis lemma, §3.3).
///
/// The returned operator sequence is a valid simple-queue-machine program
/// for the expression `tree` denotes.
#[must_use]
pub fn level_order_sequence(tree: &ParseTree) -> Vec<Op> {
    in_order(&conjugate_tree(tree))
}

/// Reference implementation of `Π(T)`: explicitly collect `(level,
/// left-to-right rank)` pairs and sort by the level-order relation `π_T`.
#[must_use]
pub fn level_order_naive(tree: &ParseTree) -> Vec<Op> {
    let mut nodes: Vec<(usize, usize, Op)> = Vec::with_capacity(tree.node_count());
    let mut rank = 0usize;
    collect(tree, 0, &mut rank, &mut nodes);
    // Deeper levels first; stable left-to-right rank within a level.
    nodes.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    nodes.into_iter().map(|(_, _, op)| op).collect()
}

fn collect(tree: &ParseTree, level: usize, rank: &mut usize, out: &mut Vec<(usize, usize, Op)>) {
    // In-order ranking gives the left-to-right order within every level.
    if let Some(l) = tree.left() {
        collect(l, level + 1, rank, out);
    }
    out.push((level, *rank, tree.op().clone()));
    *rank += 1;
    if let Some(r) = tree.right() {
        collect(r, level + 1, rank, out);
    }
}

/// The level `Γ_T(n)` of every node, in in-order visitation order.
///
/// Exposed for tests and for the pipelined-ALU study, which needs per-level
/// operand counts.
#[must_use]
pub fn levels_in_order(tree: &ParseTree) -> Vec<usize> {
    let mut nodes = Vec::new();
    let mut rank = 0;
    collect(tree, 0, &mut rank, &mut nodes);
    nodes.into_iter().map(|(lvl, _, _)| lvl).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ParseTree;

    fn mnemonics(ops: &[Op]) -> Vec<String> {
        ops.iter().map(Op::mnemonic).collect()
    }

    #[test]
    fn thesis_figure_3_1_level_order() {
        // f ← ab + (c − d)/e: level order is c d a b sub e mul div add
        // (Table 3.1 queue machine column).
        let tree = ParseTree::parse_infix("a*b + (c-d)/e").unwrap();
        let seq = level_order_sequence(&tree);
        assert_eq!(
            mnemonics(&seq),
            vec!["fetch c", "fetch d", "fetch a", "fetch b", "sub", "fetch e", "mul", "div", "add"]
        );
    }

    #[test]
    fn conjugate_agrees_with_naive_on_examples() {
        for src in [
            "a",
            "-a",
            "a+b",
            "a*b+c",
            "-(a-b)",
            "(-a)*b",
            "a*(-b)",
            "a/(a+b) + (a+b)*c",
            "((a+b)*(-c))/d",
            "-(-(-(a)))",
            "(a+b)*(c+d) - (e/f)*(g-h)",
        ] {
            let tree = ParseTree::parse_infix(src).unwrap();
            assert_eq!(level_order_sequence(&tree), level_order_naive(&tree), "mismatch for {src}");
        }
    }

    #[test]
    fn single_node_tree() {
        let tree = ParseTree::var("x");
        assert_eq!(mnemonics(&level_order_sequence(&tree)), vec!["fetch x"]);
    }

    #[test]
    fn unary_chain_is_reversed_depth_order() {
        let tree = ParseTree::parse_infix("-(-(-x))").unwrap();
        assert_eq!(mnemonics(&level_order_sequence(&tree)), vec!["fetch x", "neg", "neg", "neg"]);
    }

    #[test]
    fn levels_match_definition() {
        let tree = ParseTree::parse_infix("a*b + (c-d)/e").unwrap();
        // In-order: a * b + c - d / e  → levels 2 1 2 0 3 2 3 1 2
        assert_eq!(levels_in_order(&tree), vec![2, 1, 2, 0, 3, 2, 3, 1, 2]);
    }

    #[test]
    fn sequence_length_equals_node_count() {
        let tree = ParseTree::parse_infix("(a+b)*(c+d) - e").unwrap();
        assert_eq!(level_order_sequence(&tree).len(), tree.node_count());
    }
}
