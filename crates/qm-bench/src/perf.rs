//! Continuous performance gate: measure the simulator's per-cycle host
//! cost on a fixed point set and compare against a committed baseline
//! (`BENCH_baseline.json`, schema `qm-bench-perf/v1`).
//!
//! Raw wall times are useless across machines — and on shared CI
//! runners even across *minutes* — so the gated statistic is
//! normalised twice:
//!
//! 1. **Per simulated cycle.** Simulation work scales with cycles, and
//!    cycles are deterministic (pinned bit-exactly by the gate), so
//!    `ns/cycle` is the machine-dependent residual. Only the
//!    simulation loop is timed; compiling the workload is untimed
//!    setup.
//! 2. **By an interleaved calibration run.** A fixed channel
//!    ping-pong — raw assembly, no compiler in the loop — measures
//!    what the host pays per cycle on the simulator's hot path
//!    *immediately before each timed run*. The gated figure is the
//!    dimensionless ratio `point ns/cycle ÷ calibration ns/cycle`
//!    (`rel_cost`): host speed, CPU throttling and noisy neighbours
//!    multiply both halves of a pair and cancel, so the same baseline
//!    gates on fast laptops and oversubscribed CI containers alike.
//!
//! What remains is a genuine change in simulator work per cycle
//! relative to the hot path — exactly what the scheduler-scan
//! regression this gate was built against would show (it was ~8× on
//! `perf/cholesky/1pe`, vs the 5% default tolerance). Each figure is
//! the minimum over [`RUNS`] pairs, the standard robust estimator for
//! "how fast can this code go" under scheduler noise.
//!
//! The gate also pins every point's cycle count bit-exactly: a cycles
//! mismatch means the simulation itself changed, which is a different
//! failure (and a louder one) than a slowdown.

use std::time::Instant;

use qm_sim::config::SystemConfig;
use qm_sim::system::System;
use qm_verify::VerifyLevel;

use crate::sweep::{f3, json_escape, run_point, SweepPoint};

/// Measurement pairs per figure; the minimum is kept.
pub const RUNS: usize = 5;

/// Default relative tolerance of the gate (fail above +5%).
pub const TOLERANCE: f64 = 0.05;

/// The calibration program: one echo child, 40 000 ping-pongs through a
/// channel pair. Every iteration crosses the whole steady-state path —
/// blocking send, context switch with window rollout, rendezvous wake,
/// scheduler re-plant, dispatch with window restore — and nothing else,
/// so its ns/cycle tracks host and build speed on exactly the code the
/// gated points spend their time in.
const CALIBRATION: &str = "
main:   trap #0,#child :r0,r1
        plus r0,#0 :r19
        plus r1,#0 :r20
        plus #40000,#0 :r17
loop:   send r19,#5
        recv r20,#0 :r2
        plus r2,#0 :r21
        minus r17,#1 :r17
        bne r17,@loop
        send r19,#0
        recv r20,#0 :r2
        plus r2,#0 :r21
        trap #2,#0
child:  plus r17,#0 :r25
        plus r18,#0 :r26
cl:     recv r25,#0 :r2
        plus r2,#0 :r27
        send r26,r27
        bne r27,@cl
        trap #2,#0
";

/// One gated figure: a point's deterministic cycle count and its
/// measured per-cycle host cost.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// The grid point's id, e.g. `perf/cholesky/1pe`.
    pub id: String,
    /// Simulated cycles — deterministic, compared bit-exactly.
    pub cycles: u64,
    /// Host nanoseconds per simulated cycle (minimum over [`RUNS`];
    /// informative only — raw wall time is not gated).
    pub ns_per_cycle: f64,
    /// The gated figure: this point's ns/cycle divided by the
    /// interleaved calibration run's ns/cycle (minimum over [`RUNS`]
    /// pairs). Dimensionless and host-independent.
    pub rel_cost: f64,
}

/// A full measurement: the calibration figure plus every gated point.
/// Both the committed baseline and a fresh gate run have this shape.
#[derive(Debug, Clone)]
pub struct PerfBaseline {
    /// Calibration ns/cycle on the host that produced this measurement
    /// (minimum over all pairs; informative only — `rel_cost` already
    /// embeds its own per-pair calibration).
    pub calibration_ns_per_cycle: f64,
    /// Gated points, in grid order.
    pub points: Vec<PerfPoint>,
}

/// The points the gate times: the 1-PE regime the scheduler fix
/// targets (densest context switching — where the superlinear scan
/// lived), its multi-PE counterparts, and one point per remaining
/// thesis workload family — each once on the interpreter and once on
/// the translated backend (`…/translated` ids), so the gate pins both
/// backends' per-cycle cost and their bit-identical cycle counts.
/// Deliberately small: the whole gate (with [`RUNS`] repeats and
/// calibration) is a few seconds of wall time.
#[must_use]
pub fn gate_grid() -> Vec<SweepPoint> {
    let mk = |family: &str, w: qm_workloads::Workload, pes: usize| {
        SweepPoint::new(format!("perf/{family}/{pes}pe"), w, SystemConfig::with_pes(pes))
    };
    let mut all = vec![
        mk("cholesky", qm_workloads::cholesky(8), 1),
        mk("cholesky", qm_workloads::cholesky(8), 2),
        mk("matmul8", qm_workloads::matmul(8), 1),
        mk("matmul8", qm_workloads::matmul(8), 8),
        mk("congruence", qm_workloads::congruence(8), 1),
        mk("reduction", qm_workloads::reduction(64), 1),
        mk("fft", qm_workloads::fft(16), 8),
    ];
    let translated: Vec<SweepPoint> = all
        .iter()
        .map(|p| {
            let mut q = p.clone();
            q.id = format!("{}/translated", p.id);
            q.backend = qm_sim::Backend::Translated;
            q
        })
        .collect();
    all.extend(translated);
    all
}

#[allow(clippy::cast_precision_loss)]
fn per_cycle(ns: u128, cycles: u64) -> f64 {
    ns as f64 / (cycles.max(1) as f64)
}

/// Run the calibration program once and return `(wall ns, cycles)`.
///
/// # Panics
///
/// Panics if the fixed calibration program fails to build or run —
/// a harness bug by construction.
fn calibration_run() -> (u128, u64) {
    let mut sys = System::builder()
        .config(SystemConfig::with_pes(1))
        .assembly(CALIBRATION)
        .verify(VerifyLevel::Off)
        .build()
        .expect("calibration program builds");
    let t = Instant::now();
    let out = sys.run().expect("calibration program runs");
    (t.elapsed().as_nanos(), out.elapsed_cycles)
}

/// Run one gate point with only the simulation loop timed (compilation
/// and memory initialisation are untimed setup): `(wall ns, cycles)`.
///
/// # Panics
///
/// Panics if the fixed workload fails to build or run.
fn timed_point(p: &SweepPoint) -> (u128, u64) {
    let run =
        qm_workloads::WorkloadRun::new().config(p.cfg.clone()).options(p.opts).backend(p.backend);
    let (mut sys, _) = run.prepare(&p.workload).unwrap_or_else(|e| panic!("{}: {e}", p.id));
    let t = Instant::now();
    let out = sys.run().unwrap_or_else(|e| panic!("{}: {e}", p.id));
    (t.elapsed().as_nanos(), out.elapsed_cycles)
}

/// Measure every gate point: one untimed correctness run, then `runs`
/// interleaved (calibration, point) timing pairs, keeping per-figure
/// minima.
///
/// # Panics
///
/// Panics if any fixed workload fails to run or verifies incorrect, or
/// if a point's cycle count varies between runs (determinism is a
/// prerequisite of the schema).
#[must_use]
pub fn measure(runs: usize) -> PerfBaseline {
    let runs = runs.max(1);
    let mut calib_best = f64::INFINITY;
    let points = gate_grid()
        .iter()
        .map(|p| {
            // Correctness and the pinned cycle count come from a full
            // verified run, outside the timing pairs.
            let r = run_point(p);
            assert!(r.metrics.correct, "{}: result incorrect", p.id);
            let cycles = r.metrics.cycles;

            // Minima are taken independently over the point's own
            // interleaved calibration runs, then divided: each side
            // only has to dodge a noise burst once in `runs` attempts,
            // where a min-of-ratios would need one *pair* with both
            // sides clean simultaneously.
            let mut best_ns = f64::INFINITY;
            let mut best_calib = f64::INFINITY;
            for _ in 0..runs {
                let (calib_ns, calib_cycles) = calibration_run();
                best_calib = best_calib.min(per_cycle(calib_ns, calib_cycles));
                let (ns, timed_cycles) = timed_point(p);
                assert_eq!(timed_cycles, cycles, "{}: cycle count varies between runs", p.id);
                best_ns = best_ns.min(per_cycle(ns, cycles));
            }
            calib_best = calib_best.min(best_calib);
            PerfPoint {
                id: p.id.clone(),
                cycles,
                ns_per_cycle: best_ns,
                rel_cost: best_ns / best_calib,
            }
        })
        .collect();
    PerfBaseline { calibration_ns_per_cycle: calib_best, points }
}

impl PerfBaseline {
    /// Serialise as `BENCH_baseline.json` (schema `qm-bench-perf/v1`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"qm-bench-perf/v1\",\n");
        out.push_str(&format!(
            "  \"calibration_ns_per_cycle\": {},\n",
            f3(self.calibration_ns_per_cycle)
        ));
        out.push_str("  \"points\": [\n");
        let rows: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"id\": \"{}\", \"cycles\": {}, \"ns_per_cycle\": {}, \
                     \"rel_cost\": {:.4}}}",
                    json_escape(&p.id),
                    p.cycles,
                    f3(p.ns_per_cycle),
                    p.rel_cost
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a `qm-bench-perf/v1` file (the exact shape
    /// [`to_json`](Self::to_json) writes; this is a schema reader, not
    /// a general JSON parser).
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn parse(text: &str) -> Result<PerfBaseline, String> {
        if !text.contains("\"schema\": \"qm-bench-perf/v1\"") {
            return Err("not a qm-bench-perf/v1 file".into());
        }
        let calibration_ns_per_cycle = field_f64(text, "calibration_ns_per_cycle")
            .ok_or("missing calibration_ns_per_cycle")?;
        let mut points = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if !line.starts_with('{') || !line.contains("\"id\"") {
                continue;
            }
            let id = field_str(line, "id").ok_or_else(|| format!("point without id: {line}"))?;
            let cycles =
                field_f64(line, "cycles").ok_or_else(|| format!("{id}: missing cycles"))?;
            let ns_per_cycle = field_f64(line, "ns_per_cycle")
                .ok_or_else(|| format!("{id}: missing ns_per_cycle"))?;
            let rel_cost =
                field_f64(line, "rel_cost").ok_or_else(|| format!("{id}: missing rel_cost"))?;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            points.push(PerfPoint { id, cycles: cycles as u64, ns_per_cycle, rel_cost });
        }
        if points.is_empty() {
            return Err("no points in baseline".into());
        }
        Ok(PerfBaseline { calibration_ns_per_cycle, points })
    }
}

fn field_f64(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &text[text.find(&pat)? + pat.len()..];
    let rest = rest.trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn field_str(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let rest = &text[text.find(&pat)? + pat.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Fold measurement `b` into `a`, keeping per-figure minima (matched
/// by point id; points only in one input are kept as-is). Used by the
/// gate's retry pass: re-measuring and merging gives transient host
/// noise a second chance to get out of the way, while a genuine
/// regression survives every merge.
pub fn merge_min(a: &mut PerfBaseline, b: &PerfBaseline) {
    a.calibration_ns_per_cycle = a.calibration_ns_per_cycle.min(b.calibration_ns_per_cycle);
    for p in &mut a.points {
        if let Some(q) = b.points.iter().find(|q| q.id == p.id) {
            p.ns_per_cycle = p.ns_per_cycle.min(q.ns_per_cycle);
            p.rel_cost = p.rel_cost.min(q.rel_cost);
        }
    }
}

/// One gate comparison line: the point, its slowdown ratio
/// (`> 1 + tolerance` fails), and whether it passed.
#[derive(Debug, Clone)]
pub struct GateLine {
    /// Point id.
    pub id: String,
    /// `rel_cost now / rel_cost baseline` — 1.0 means unchanged.
    pub ratio: f64,
    /// Human-readable verdict for the report.
    pub detail: String,
    /// Whether this point is within tolerance (and cycles match).
    pub ok: bool,
}

/// Compare a fresh measurement against the committed baseline on the
/// calibration-relative `rel_cost` figures. `tolerance` is relative
/// (0.05 = fail above +5% relative cost).
#[must_use]
pub fn gate(now: &PerfBaseline, baseline: &PerfBaseline, tolerance: f64) -> Vec<GateLine> {
    now.points
        .iter()
        .map(|p| {
            let Some(b) = baseline.points.iter().find(|b| b.id == p.id) else {
                return GateLine {
                    id: p.id.clone(),
                    ratio: f64::NAN,
                    detail: "not in baseline — refresh BENCH_baseline.json".into(),
                    ok: false,
                };
            };
            if b.cycles != p.cycles {
                return GateLine {
                    id: p.id.clone(),
                    ratio: f64::NAN,
                    detail: format!(
                        "cycle count changed: {} baseline vs {} now — the simulation \
                         itself changed; refresh the baseline if intended",
                        b.cycles, p.cycles
                    ),
                    ok: false,
                };
            }
            let ratio = p.rel_cost / b.rel_cost;
            let ok = ratio <= 1.0 + tolerance;
            GateLine {
                id: p.id.clone(),
                ratio,
                detail: format!(
                    "rel cost {:.2} vs {:.2} baseline ({:.1} ns/cycle raw)",
                    p.rel_cost, b.rel_cost, p.ns_per_cycle
                ),
                ok,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfBaseline {
        PerfBaseline {
            calibration_ns_per_cycle: 100.0,
            points: vec![
                PerfPoint {
                    id: "perf/a/1pe".into(),
                    cycles: 1000,
                    ns_per_cycle: 50.0,
                    rel_cost: 0.5,
                },
                PerfPoint {
                    id: "perf/b/2pe".into(),
                    cycles: 2000,
                    ns_per_cycle: 80.0,
                    rel_cost: 0.8,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        let parsed = PerfBaseline::parse(&b.to_json()).expect("parses");
        assert_eq!(parsed.points.len(), 2);
        assert_eq!(parsed.points[0].id, "perf/a/1pe");
        assert_eq!(parsed.points[0].cycles, 1000);
        assert!((parsed.calibration_ns_per_cycle - 100.0).abs() < 1e-9);
        assert!((parsed.points[1].ns_per_cycle - 80.0).abs() < 1e-9);
        assert!((parsed.points[1].rel_cost - 0.8).abs() < 1e-9);
    }

    #[test]
    fn gate_ignores_host_speed_and_catches_relative_regressions() {
        let base = sample();
        // A slower host moves raw ns/cycle but not rel_cost: passes.
        let mut now = sample();
        now.calibration_ns_per_cycle = 200.0;
        for p in &mut now.points {
            p.ns_per_cycle *= 2.0;
        }
        assert!(gate(&now, &base, TOLERANCE).iter().all(|l| l.ok));

        // A genuine 50% relative regression fails only that point.
        now.points[0].rel_cost *= 1.5;
        let lines = gate(&now, &base, TOLERANCE);
        assert!(!lines[0].ok && lines[0].ratio > 1.4);
        assert!(lines[1].ok);
    }

    #[test]
    fn gate_pins_cycles_bit_exactly() {
        let base = sample();
        let mut now = sample();
        now.points[1].cycles += 1;
        let lines = gate(&now, &base, TOLERANCE);
        assert!(lines[0].ok);
        assert!(!lines[1].ok && lines[1].detail.contains("cycle count changed"));
    }

    #[test]
    fn gate_flags_points_missing_from_the_baseline() {
        let base = sample();
        let mut now = sample();
        now.points[0].id = "perf/new/1pe".into();
        let lines = gate(&now, &base, TOLERANCE);
        assert!(!lines[0].ok && lines[0].detail.contains("not in baseline"));
    }

    #[test]
    fn calibration_program_is_deterministic() {
        let (_, c1) = calibration_run();
        let (_, c2) = calibration_run();
        assert_eq!(c1, c2, "calibration cycles are deterministic");
        assert!(c1 > 100_000, "calibration runs long enough to time: {c1}");
    }

    #[test]
    fn grid_ids_are_unique_and_prefixed() {
        let grid = gate_grid();
        let mut ids: Vec<&str> = grid.iter().map(|p| p.id.as_str()).collect();
        assert!(ids.iter().all(|i| i.starts_with("perf/")));
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), grid.len());
    }

    #[test]
    fn grid_pins_both_backends_pairwise() {
        let grid = gate_grid();
        let (interp, translated): (Vec<_>, Vec<_>) =
            grid.iter().partition(|p| p.backend == qm_sim::Backend::Interp);
        assert_eq!(interp.len(), translated.len(), "every point has a translated twin");
        for (a, b) in interp.iter().zip(&translated) {
            assert_eq!(format!("{}/translated", a.id), b.id);
        }
        // The twins retire bit-identical cycle counts (spot-check one
        // pair; the full grid is pinned against the baseline by the
        // gate itself and by the sweep's `identical` flag).
        let a = run_point(interp[0]);
        let b = run_point(translated[0]);
        assert_eq!(a.metrics, b.metrics, "backend changed the simulation");
    }
}
