//! Shared helpers for the table/figure regeneration harness.
//!
//! Each `bin/` target regenerates one table or figure of the thesis
//! evaluation (see `DESIGN.md` for the index); this crate provides the
//! common text-table formatting, the standard benchmark set and the
//! [`sweep`] runner the bins are built on.

pub mod checkpoint;
pub mod fault_sweep;
pub mod perf;
pub mod replay;
pub mod sweep;

use qm_occam::Options;
use qm_workloads::{Workload, WorkloadRun};

/// Render rows as a fixed-width text table with a header rule.
#[must_use]
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    let mut out = fmt_row(&head);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// The four thesis workloads at their benchmark sizes (8×8 matrices,
/// 16-point FFT).
#[must_use]
pub fn thesis_workloads() -> Vec<Workload> {
    vec![
        qm_workloads::matmul(8),
        qm_workloads::fft(16),
        qm_workloads::cholesky(8),
        qm_workloads::congruence(8),
    ]
}

/// PE counts simulated throughout Chapter 6.
pub const PE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Default compiler options (all optimizations on).
#[must_use]
pub fn default_options() -> Options {
    Options::default()
}

/// Run one workload over [`PE_COUNTS`] and print its statistics table
/// (Tables 6.2–6.5 format) followed by the throughput-ratio curve
/// (Figs 6.8/6.10–6.12 format).
///
/// # Panics
///
/// Panics if any run fails or verifies incorrect.
pub fn report_workload(w: &Workload, table_name: &str, fig_name: &str) {
    println!("{table_name} — statistics for the {} program\n", w.name);
    let mut stat_rows = Vec::new();
    let mut curve_rows = Vec::new();
    let mut base: Option<u64> = None;
    for &pes in &PE_COUNTS {
        let r = WorkloadRun::with_pes(pes).run(w).expect("benchmark run");
        assert!(r.correct, "{} on {pes} PEs: {:?}", w.name, r.mismatches);
        let o = &r.outcome;
        stat_rows.push(vec![
            pes.to_string(),
            o.elapsed_cycles.to_string(),
            o.instructions.to_string(),
            o.contexts_created.to_string(),
            o.peak_live_contexts.to_string(),
            o.channel_transfers.to_string(),
            o.pes.iter().map(|p| p.stats.context_switches).sum::<u64>().to_string(),
            o.mem.remote_accesses.to_string(),
        ]);
        let b = *base.get_or_insert(o.elapsed_cycles);
        #[allow(clippy::cast_precision_loss)]
        let ratio = b as f64 / o.elapsed_cycles as f64;
        curve_rows.push(vec![pes.to_string(), o.elapsed_cycles.to_string(), format!("{ratio:.2}")]);
    }
    println!(
        "{}",
        text_table(
            &[
                "PEs",
                "cycles",
                "instrs",
                "contexts",
                "peak live",
                "transfers",
                "switches",
                "remote mem"
            ],
            &stat_rows
        )
    );
    println!("{fig_name} — system throughput ratio vs number of processors\n");
    println!("{}", text_table(&["PEs", "cycles", "throughput ratio"], &curve_rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns_columns() {
        let t = text_table(
            &["n", "value"],
            &[vec!["1".into(), "10".into()], vec!["100".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n'));
        assert!(lines[1].starts_with('-'));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn workload_set_is_complete() {
        let names: Vec<String> = thesis_workloads().into_iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 4);
        assert!(names[0].contains("matmul"));
        assert!(names[1].contains("fft"));
        assert!(names[2].contains("cholesky"));
        assert!(names[3].contains("congruence"));
    }
}
