//! Fault-injection sweep: how gracefully does the simulated machine
//! degrade as transfers start failing?
//!
//! The grid crosses the three context-placement policies with a ramp of
//! fault rates (send losses, bus drops and trap delays scaled together)
//! on the 6×6 matrix multiplication at 4 PEs, all driven from one fixed
//! seed so every run — serial or parallel, today or in CI — produces the
//! identical fault stream. The first rate on the ramp is zero: that
//! column doubles as a live check of the empty-plan identity (its
//! metrics must match a plan-free run bit for bit, which the
//! `fault_sweep_determinism` integration test pins).
//!
//! `bin/fault_sweep.rs` regenerates `BENCH_fault_sweep.json` from this
//! grid (schema `qm-bench-fault/v1`, documented in `EXPERIMENTS.md`),
//! running the grid twice — serially and across worker threads — and
//! recording whether the two passes were bit-identical.

use std::time::Duration;

use qm_sim::config::{Placement, SystemConfig};
use qm_sim::fault::FaultPlan;

use crate::sweep::{f3, json_escape, ms, PointResult, SweepPoint};

/// The one seed every fault-sweep point derives its fault stream from.
pub const FAULT_SEED: u64 = 0x5EED_FA17;

/// Send-loss rates (parts per million) of the full ramp; bus drops ride
/// at half and trap delays at a quarter of each rate.
pub const FAULT_RATES_PPM: [u32; 4] = [0, 50_000, 200_000, 500_000];

/// Extra cycles charged per delayed kernel trap.
pub const TRAP_DELAY_CYCLES: u64 = 12;

/// The fault plan at one rate of the ramp. Rate 0 yields an *empty* plan
/// (seed set, nothing enabled), which the simulator treats as no plan at
/// all — the zero column of the sweep is a fault-free run.
#[must_use]
pub fn plan_at(rate_ppm: u32) -> FaultPlan {
    FaultPlan::seeded(FAULT_SEED)
        .with_send_loss(rate_ppm)
        .with_bus_drops(rate_ppm / 2)
        .with_trap_delays(rate_ppm / 4, TRAP_DELAY_CYCLES)
}

fn grid_for(n: usize, rates: &[u32]) -> Vec<SweepPoint> {
    let w = qm_workloads::matmul(n);
    let mut points = Vec::new();
    for (tag, placement) in [
        ("local", Placement::Local),
        ("round-robin", Placement::RoundRobin),
        ("least-loaded", Placement::LeastLoaded),
    ] {
        for &rate in rates {
            let cfg = SystemConfig { placement, ..SystemConfig::with_pes(4) };
            points.push(
                SweepPoint::new(format!("faults/{tag}/{rate}ppm"), w.clone(), cfg)
                    .with_config(format!("placement={tag} loss={rate}ppm"))
                    .with_faults(plan_at(rate)),
            );
        }
    }
    points
}

/// The full fault grid: placement policies × [`FAULT_RATES_PPM`] on the
/// 6×6 matmul at 4 PEs.
#[must_use]
pub fn fault_grid() -> Vec<SweepPoint> {
    grid_for(6, &FAULT_RATES_PPM)
}

/// A reduced grid for CI smoke runs: the 4×4 matmul at the two rate
/// extremes only.
#[must_use]
pub fn smoke_grid() -> Vec<SweepPoint> {
    grid_for(4, &[0, 500_000])
}

/// A completed serial-vs-parallel fault sweep, serialisable to the
/// `BENCH_fault_sweep.json` schema (`qm-bench-fault/v1`, see
/// `EXPERIMENTS.md`).
#[derive(Debug, Clone)]
pub struct FaultSweepReport {
    /// Worker threads used for the parallel pass.
    pub threads: usize,
    /// Wall time of the serial pass.
    pub serial_wall: Duration,
    /// Wall time of the parallel pass.
    pub parallel_wall: Duration,
    /// Whether serial and parallel metrics (including every degradation
    /// counter) were bit-identical.
    pub identical: bool,
    /// Per-point results (from the parallel pass).
    pub points: Vec<PointResult>,
}

impl FaultSweepReport {
    /// Build a report from a serial and a parallel pass over the same
    /// grid.
    #[must_use]
    pub fn new(
        threads: usize,
        serial: &[PointResult],
        serial_wall: Duration,
        parallel: Vec<PointResult>,
        parallel_wall: Duration,
    ) -> Self {
        FaultSweepReport {
            threads,
            serial_wall,
            parallel_wall,
            identical: crate::sweep::same_metrics(serial, &parallel),
            points: parallel,
        }
    }

    /// Serialise as `BENCH_fault_sweep.json` (schema `qm-bench-fault/v1`).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.render(false)
    }

    /// As [`to_json`](Self::to_json) with every wall-clock field rendered
    /// as `0.000`, so interrupted-and-resumed and uninterrupted sweeps
    /// produce byte-identical files.
    #[must_use]
    pub fn to_json_deterministic(&self) -> String {
        self.render(true)
    }

    fn render(&self, deterministic: bool) -> String {
        let time = |v: f64| if deterministic { 0.0 } else { v };
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"qm-bench-fault/v1\",\n");
        out.push_str(&format!("  \"seed\": {FAULT_SEED},\n"));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"serial_wall_ms\": {},\n", f3(time(ms(self.serial_wall)))));
        out.push_str(&format!("  \"parallel_wall_ms\": {},\n", f3(time(ms(self.parallel_wall)))));
        out.push_str(&format!("  \"identical\": {},\n", self.identical));
        out.push_str("  \"points\": [\n");
        let rows: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let m = &p.metrics;
                let d = &m.degradation;
                format!(
                    "    {{\"id\": \"{}\", \"config\": \"{}\", \"pes\": {}, \"cycles\": {}, \
                     \"correct\": {}, \"send_drops\": {}, \"bus_drops\": {}, \
                     \"trap_delays\": {}, \"retries\": {}, \"recovered_transfers\": {}, \
                     \"backoff_cycles\": {}, \"delay_cycles\": {}, \"wall_ms\": {}}}",
                    json_escape(&p.id),
                    json_escape(&p.config),
                    p.pes,
                    m.cycles,
                    m.correct,
                    d.send_drops,
                    d.bus_drops,
                    d.trap_delays,
                    d.retries,
                    d.recovered_transfers,
                    d.backoff_cycles,
                    d.delay_cycles,
                    f3(time(ms(p.wall))),
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_parallel, run_serial, same_metrics};

    #[test]
    fn zero_rate_plans_are_empty_and_nonzero_ones_are_not() {
        assert!(plan_at(0).is_empty());
        for &rate in &FAULT_RATES_PPM[1..] {
            assert!(!plan_at(rate).is_empty(), "{rate} ppm");
        }
    }

    #[test]
    fn grids_cover_every_placement_and_rate_once() {
        let full = fault_grid();
        assert_eq!(full.len(), 3 * FAULT_RATES_PPM.len());
        let mut ids: Vec<&str> = full.iter().map(|p| p.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), full.len(), "point ids are unique");
        assert_eq!(smoke_grid().len(), 6);
    }

    #[test]
    fn smoke_grid_runs_identically_serial_and_parallel() {
        let grid = smoke_grid();
        let serial = run_serial(&grid);
        let parallel = run_parallel(&grid, 3);
        assert!(same_metrics(&serial, &parallel));
        assert!(serial.iter().all(|p| p.metrics.correct), "faults never corrupt results");
        // The zero-rate points are clean; the 50%-loss points are not.
        for p in &serial {
            let faulty = !p.id.ends_with("/0ppm");
            assert_eq!(!p.metrics.degradation.is_clean(), faulty, "{}", p.id);
        }
    }

    #[test]
    fn report_serialises_to_the_fault_v1_schema() {
        let grid = smoke_grid();
        let t0 = std::time::Instant::now();
        let serial = run_serial(&grid);
        let serial_wall = t0.elapsed();
        let t1 = std::time::Instant::now();
        let parallel = run_parallel(&grid, 2);
        let parallel_wall = t1.elapsed();
        let report = FaultSweepReport::new(2, &serial, serial_wall, parallel, parallel_wall);
        assert!(report.identical);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"qm-bench-fault/v1\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"send_drops\":"));
        assert!(json.contains("\"id\": \"faults/local/0ppm\""));
    }
}
