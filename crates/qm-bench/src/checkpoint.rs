//! Point-granularity sweep checkpoints: the persistence layer behind
//! `--resume`.
//!
//! A sweep is a grid of independent points, so the natural checkpoint
//! unit is one completed [`PointResult`]: after every point the runner
//! rewrites the checkpoint file, and a resumed run simply skips every
//! point id the file already holds. Nothing about a half-finished
//! *simulation* is stored here — mid-run machine state is the snapshot
//! subsystem's job (`qm_sim::snapshot`); this file only remembers which
//! grid points are done and what they produced.
//!
//! The container reuses the snapshot wire primitives
//! ([`qm_sim::snapshot::wire`]) and error type under its own magic:
//!
//! ```text
//! "qm-chkpt" | u32 version = 3 | u64 grid hash | u32 count
//!   count × { id, workload, config, pes, shards, backend name,
//!             8 metric u64s, correct, 9 degradation u64s, wall nanos }
//! u64 checksum (over everything above)
//! ```
//!
//! The grid hash — a [`qm_sim::rng::checksum`] over the newline-joined
//! point ids — pins a checkpoint to the exact grid that produced it, so
//! resuming a `BENCH_sweep.json` run against the fault grid (or a grid
//! from an older binary with different points) fails loudly instead of
//! silently merging unrelated results. Decoding validates magic,
//! version, checksum and framing the same way snapshot decoding does:
//! corrupt or truncated files surface as structured
//! [`SnapshotError`]s, never panics.

use std::path::Path;

use qm_sim::fault::DegradationReport;
use qm_sim::snapshot::wire::{Reader, Writer};
use qm_sim::snapshot::SnapshotError;

use crate::sweep::{PointMetrics, PointResult, SweepPoint};

/// File magic: 8 bytes, deliberately different from the machine
/// snapshot's `qm-snap\0`.
const MAGIC: [u8; 8] = *b"qm-chkpt";

/// Checkpoint container version. Bump on any layout change; old files
/// are rejected, not migrated (they are cheap to regenerate).
pub const VERSION: u32 = 3;

/// Completed results of a (possibly interrupted) sweep over one grid.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    grid_hash: u64,
    completed: Vec<PointResult>,
}

/// The identity of a grid: a checksum over its point ids, in order.
#[must_use]
pub fn grid_hash(points: &[SweepPoint]) -> u64 {
    let ids: Vec<&str> = points.iter().map(|p| p.id.as_str()).collect();
    qm_sim::rng::checksum(ids.join("\n").as_bytes())
}

impl Checkpoint {
    /// An empty checkpoint pinned to `points`.
    #[must_use]
    pub fn for_grid(points: &[SweepPoint]) -> Checkpoint {
        Checkpoint { grid_hash: grid_hash(points), completed: Vec::new() }
    }

    /// Number of completed points recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether no point has completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Whether the point with this id has already completed.
    #[must_use]
    pub fn contains(&self, id: &str) -> bool {
        self.completed.iter().any(|r| r.id == id)
    }

    /// Record one completed point.
    pub fn record(&mut self, r: PointResult) {
        self.completed.push(r);
    }

    /// Fail unless this checkpoint was produced by exactly `points`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a grid-hash mismatch.
    pub fn check_grid(&self, points: &[SweepPoint]) -> Result<(), SnapshotError> {
        if self.grid_hash == grid_hash(points) {
            Ok(())
        } else {
            Err(SnapshotError::Malformed(
                "checkpoint was produced by a different sweep grid".into(),
            ))
        }
    }

    /// The results reordered to match `points` — `None` while any grid
    /// point is still missing (completion order in the file reflects the
    /// schedule that ran, which a parallel pass does not preserve).
    #[must_use]
    pub fn in_grid_order(&self, points: &[SweepPoint]) -> Option<Vec<PointResult>> {
        points.iter().map(|p| self.completed.iter().find(|r| r.id == p.id).cloned()).collect()
    }

    /// Serialise to the `qm-chkpt` container.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.grid_hash);
        #[allow(clippy::cast_possible_truncation)]
        w.u32(self.completed.len() as u32);
        for r in &self.completed {
            w.str(&r.id);
            w.str(&r.workload);
            w.str(&r.config);
            w.usize(r.pes);
            w.usize(r.shards);
            w.str(r.backend.as_str());
            let m = &r.metrics;
            w.u64(m.cycles);
            w.u64(m.instructions);
            w.u64(m.contexts);
            w.u64(m.peak_live);
            w.u64(m.transfers);
            w.u64(m.switches);
            w.u64(m.remote_accesses);
            w.u64(m.bus_cycles);
            w.bool(m.correct);
            let d = &m.degradation;
            for v in [
                d.send_drops,
                d.bus_drops,
                d.pe_stalls,
                d.trap_delays,
                d.retries,
                d.recovered_transfers,
                d.stall_cycles,
                d.backoff_cycles,
                d.delay_cycles,
            ] {
                w.u64(v);
            }
            w.u64(u64::try_from(r.wall.as_nanos()).unwrap_or(u64::MAX));
        }
        let mut out = Vec::with_capacity(MAGIC.len() + 4 + w.as_bytes().len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(w.as_bytes());
        let sum = qm_sim::rng::checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode a `qm-chkpt` container, validating magic, version,
    /// trailing checksum and framing.
    ///
    /// # Errors
    ///
    /// Structured [`SnapshotError`]s on any corruption — wrong magic,
    /// unknown version, bit flips, truncation, trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(SnapshotError::Truncated("checkpoint header"));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if qm_sim::rng::checksum(body) != stored {
            return Err(SnapshotError::ChecksumMismatch { section: 0 });
        }
        let mut r = Reader::new(&body[MAGIC.len()..]);
        let version = r.u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnknownVersion(version));
        }
        let grid = r.u64()?;
        let count = r.u32()?;
        let mut completed = Vec::with_capacity(count.min(4096) as usize);
        for _ in 0..count {
            let id = r.str()?;
            let workload = r.str()?;
            let config = r.str()?;
            let pes = r.usize()?;
            let shards = r.usize()?;
            let backend_name = r.str()?;
            let backend = qm_sim::Backend::parse(&backend_name).ok_or_else(|| {
                SnapshotError::Malformed(format!("unknown checkpoint backend {backend_name:?}"))
            })?;
            let mut m = [0u64; 8];
            for v in &mut m {
                *v = r.u64()?;
            }
            let correct = r.bool()?;
            let mut d = [0u64; 9];
            for v in &mut d {
                *v = r.u64()?;
            }
            let wall_nanos = r.u64()?;
            completed.push(PointResult {
                id,
                workload,
                config,
                pes,
                shards,
                backend,
                metrics: PointMetrics {
                    cycles: m[0],
                    instructions: m[1],
                    contexts: m[2],
                    peak_live: m[3],
                    transfers: m[4],
                    switches: m[5],
                    remote_accesses: m[6],
                    bus_cycles: m[7],
                    correct,
                    degradation: DegradationReport {
                        send_drops: d[0],
                        bus_drops: d[1],
                        pe_stalls: d[2],
                        trap_delays: d[3],
                        retries: d[4],
                        recovered_transfers: d[5],
                        stall_cycles: d[6],
                        backoff_cycles: d[7],
                        delay_cycles: d[8],
                    },
                },
                wall: std::time::Duration::from_nanos(wall_nanos),
            });
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after the last checkpoint record",
                r.remaining()
            )));
        }
        Ok(Checkpoint { grid_hash: grid, completed })
    }

    /// Write the checkpoint to `path` (whole-file rewrite — sweep
    /// checkpoints are a few KB, so atomicity games are not worth it).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        std::fs::write(path, self.encode())
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))
    }

    /// Read a checkpoint back from `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures, otherwise as
    /// [`decode`](Self::decode).
    pub fn load(path: &Path) -> Result<Checkpoint, SnapshotError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
        Checkpoint::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_point;
    use qm_sim::config::SystemConfig;

    fn grid() -> Vec<SweepPoint> {
        vec![
            SweepPoint::new("ck/a", qm_workloads::matmul(3), SystemConfig::with_pes(1)),
            SweepPoint::new("ck/b", qm_workloads::matmul(3), SystemConfig::with_pes(2))
                .with_config("pes=2"),
        ]
    }

    #[test]
    fn encode_decode_round_trips_results_exactly() {
        let points = grid();
        let mut ck = Checkpoint::for_grid(&points);
        assert!(ck.is_empty());
        for p in &points {
            ck.record(run_point(p));
        }
        let back = Checkpoint::decode(&ck.encode()).expect("decodes");
        back.check_grid(&points).expect("same grid");
        assert_eq!(back.len(), 2);
        let ordered = back.in_grid_order(&points).expect("complete");
        for (orig, round) in ck.completed.iter().zip(&ordered) {
            assert_eq!(orig.id, round.id);
            assert_eq!(orig.workload, round.workload);
            assert_eq!(orig.config, round.config);
            assert_eq!(orig.pes, round.pes);
            assert_eq!(orig.backend, round.backend);
            assert_eq!(orig.metrics, round.metrics);
            assert_eq!(orig.wall, round.wall);
        }
    }

    #[test]
    fn partial_checkpoints_report_missing_points() {
        let points = grid();
        let mut ck = Checkpoint::for_grid(&points);
        ck.record(run_point(&points[1]));
        assert!(ck.contains("ck/b") && !ck.contains("ck/a"));
        assert!(ck.in_grid_order(&points).is_none(), "a is still missing");
    }

    #[test]
    fn grid_hash_pins_the_checkpoint_to_its_grid() {
        let points = grid();
        let ck = Checkpoint::for_grid(&points);
        ck.check_grid(&points).expect("own grid passes");
        let other = vec![points[0].clone()];
        assert!(matches!(ck.check_grid(&other), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn corruption_is_rejected_with_structured_errors() {
        let points = grid();
        let mut ck = Checkpoint::for_grid(&points);
        ck.record(run_point(&points[0]));
        let bytes = ck.encode();

        assert!(matches!(Checkpoint::decode(b"shrt"), Err(SnapshotError::Truncated(_))));
        let mut magic = bytes.clone();
        magic[0] ^= 0xFF;
        assert!(matches!(Checkpoint::decode(&magic), Err(SnapshotError::BadMagic)));
        for i in (8..bytes.len()).step_by(11) {
            let mut flip = bytes.clone();
            flip[i] ^= 0x10;
            assert!(Checkpoint::decode(&flip).is_err(), "flip at byte {i} went undetected");
        }
        assert!(Checkpoint::decode(&bytes[..bytes.len() - 3]).is_err(), "truncation");
    }
}
