//! Deterministic replay and divergence bisection on top of
//! `qm_sim::snapshot`.
//!
//! Because a snapshot restores bit-identically and every run is
//! deterministic, two configuration [`Variant`]s launched from the *same*
//! mid-run snapshot either stay digest-identical forever or split at one
//! well-defined cycle. [`bisect`] finds that cycle by binary search: each
//! probe restores both variants fresh from the snapshot, runs them
//! forward to a candidate cycle and compares architectural
//! [state digests](qm_sim::snapshot::Snapshot::state_digest) — O(log n)
//! full replays instead of a lock-step walk. The result is a
//! [`DivergenceReport`]: the first divergent cycle plus each variant's
//! final outcome, degradation tallies and wait-for state at the split,
//! in the same spirit as the deadlock reports.
//!
//! `bin/replay.rs` drives this as a demo (fault-free vs fault-injected
//! matmul from a shared checkpoint) and, with `--smoke`, as the CI
//! round-trip check ([`smoke`]).

use std::fmt;

use qm_sim::config::Placement;
use qm_sim::fault::{DegradationReport, FaultPlan};
use qm_sim::snapshot::{Snapshot, SnapshotError};
use qm_sim::system::{RunOutcome, RunStatus, System};
use qm_workloads::WorkloadRun;

/// One way of continuing a run from a shared snapshot: an optional fault
/// plan and/or placement-policy override applied after restore. Two
/// variants with no overrides are the degenerate (never-diverging) case.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Display name, e.g. `fault-free`.
    pub name: String,
    /// Fault plan armed on the restored system (`None` keeps whatever
    /// the snapshot carried).
    pub fault_plan: Option<FaultPlan>,
    /// Placement-policy override (`None` keeps the snapshot's policy).
    pub placement: Option<Placement>,
    /// Execution backend for the continuation (`None` keeps the
    /// default interpreter). Unlike the other axes this one must
    /// *never* produce a divergence — bisecting an interp variant
    /// against a translated one is exactly how a backend bug would be
    /// pinned to its first divergent cycle.
    pub backend: Option<qm_sim::Backend>,
}

impl Variant {
    /// A variant that continues the snapshot unchanged.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Variant { name: name.into(), fault_plan: None, placement: None, backend: None }
    }

    /// The same variant with a fault plan armed at restore time.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The same variant with a placement-policy override.
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = Some(placement);
        self
    }

    /// The same variant continued on an explicit execution backend.
    #[must_use]
    pub fn with_backend(mut self, backend: qm_sim::Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Restore the snapshot and apply this variant's overrides.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] if the snapshot fails validation.
    pub fn instantiate(&self, snap: &Snapshot) -> Result<System, SnapshotError> {
        let mut sys = System::restore(snap)?;
        if let Some(plan) = &self.fault_plan {
            sys.set_fault_plan(plan);
        }
        if let Some(placement) = self.placement {
            sys.set_placement(placement);
        }
        if let Some(backend) = self.backend {
            sys.set_backend(backend);
        }
        Ok(sys)
    }
}

/// The architectural state digest of `variant` run forward from `snap`
/// to cycle `k`. Runs that die before `k` (fault-injected deadlock or
/// watchdog) die deterministically too, so their digest is a checksum of
/// the structured error — still comparable, so bisection keeps working
/// across the death cycle.
///
/// # Errors
///
/// [`SnapshotError`] if the snapshot fails validation.
pub fn digest_at(snap: &Snapshot, variant: &Variant, k: u64) -> Result<u64, SnapshotError> {
    let mut sys = variant.instantiate(snap)?;
    Ok(match sys.run_until(k) {
        Ok(_) => Snapshot::capture(&sys).state_digest(),
        Err(e) => qm_sim::rng::checksum(e.to_string().as_bytes()),
    })
}

/// One variant's side of a [`DivergenceReport`].
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// The variant's display name.
    pub name: String,
    /// Its final result when run from the snapshot to completion.
    pub outcome: Result<RunOutcome, String>,
    /// Cycles elapsed when the run finished (or died).
    pub final_cycles: u64,
    /// Degradation tallies at the first divergent cycle (at the capture
    /// cycle when the variants never diverge).
    pub degradation_at_split: DegradationReport,
    /// Wait-for lines (blocked contexts) at the first divergent cycle.
    pub wait_for_at_split: Vec<String>,
}

/// The verdict of [`bisect`]: where two variants' executions split, and
/// what each side looked like there and at the end.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Cycle the shared snapshot was captured at.
    pub captured_at: u64,
    /// First cycle at which the variants' architectural digests differ
    /// (`None`: they ran to identical conclusions).
    pub first_divergent_cycle: Option<u64>,
    /// Per-variant detail, in the order passed to [`bisect`].
    pub variants: Vec<VariantReport>,
}

impl DivergenceReport {
    /// Serialise as a `qm-api/v1` `divergence_report` envelope (see
    /// `docs/API.md`): the capture cycle, the first divergent cycle
    /// (`null` when the variants never diverge) and per-variant detail —
    /// outcome (an embedded `run_outcome` body, or the error string for
    /// runs that died), degradation tallies and wait-for state at the
    /// split.
    #[must_use]
    pub fn to_json(&self) -> String {
        use qm_core::json::Envelope;
        Envelope::render("divergence_report", |j| {
            j.u64_field("captured_at", self.captured_at);
            j.key("first_divergent_cycle");
            match self.first_divergent_cycle {
                Some(c) => j.u64_val(c),
                None => j.null_val(),
            }
            j.key("variants");
            j.begin_arr();
            for v in &self.variants {
                j.begin_obj();
                j.str_field("name", &v.name);
                j.u64_field("final_cycles", v.final_cycles);
                match &v.outcome {
                    Ok(o) => {
                        j.key("outcome");
                        j.begin_obj();
                        qm_sim::report::write_run_outcome(j, o);
                        j.end_obj();
                    }
                    Err(e) => j.str_field("error", e),
                }
                j.key("degradation_at_split");
                j.begin_obj();
                qm_sim::report::write_degradation(j, &v.degradation_at_split);
                j.end_obj();
                j.key("wait_for_at_split");
                j.begin_arr();
                for line in &v.wait_for_at_split {
                    j.str_val(line);
                }
                j.end_arr();
                j.end_obj();
            }
            j.end_arr();
        })
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "divergence report — shared snapshot captured at cycle {}", self.captured_at)?;
        match self.first_divergent_cycle {
            Some(c) => writeln!(f, "first divergent cycle: {c}")?,
            None => writeln!(f, "no divergence: both variants ran to identical states")?,
        }
        for v in &self.variants {
            writeln!(f, "variant {:?}:", v.name)?;
            match &v.outcome {
                Ok(o) => writeln!(
                    f,
                    "  finished at cycle {} (output {:?}, {} instructions)",
                    v.final_cycles, o.output, o.instructions
                )?,
                Err(e) => writeln!(f, "  died at cycle {}: {e}", v.final_cycles)?,
            }
            let d = v.degradation_at_split;
            writeln!(
                f,
                "  at split: {} send drops, {} bus drops, {} trap delays, {} retries",
                d.send_drops, d.bus_drops, d.trap_delays, d.retries
            )?;
            if v.wait_for_at_split.is_empty() {
                writeln!(f, "  no contexts blocked on channels at the split")?;
            } else {
                writeln!(f, "  wait-for at split:")?;
                for line in &v.wait_for_at_split {
                    writeln!(f, "    {line}")?;
                }
            }
        }
        Ok(())
    }
}

/// Probe one variant at the first divergent cycle (or the capture cycle)
/// and run it to completion for the report.
fn variant_report(
    snap: &Snapshot,
    variant: &Variant,
    split: u64,
) -> Result<VariantReport, SnapshotError> {
    let mut probe = variant.instantiate(snap)?;
    // A probe that dies before the split is still informative: the
    // degradation and wait-for state below describe the death scene.
    let _ = probe.run_until(split);
    let degradation_at_split = probe.degradation();
    let wait_for_at_split: Vec<String> =
        probe.wait_for_report().iter().map(ToString::to_string).collect();
    let mut full = variant.instantiate(snap)?;
    let outcome = full.run().map_err(|e| e.to_string());
    Ok(VariantReport {
        name: variant.name.clone(),
        final_cycles: full.elapsed_cycles(),
        outcome,
        degradation_at_split,
        wait_for_at_split,
    })
}

/// Binary-search the first cycle at which `a` and `b`, launched from the
/// same snapshot, differ in architectural state.
///
/// The search invariant comes from determinism: digests are equal at the
/// capture cycle by construction, and past the split the executions have
/// materially different histories, so "digest equal at `k`" is monotone
/// in `k` over the searched range.
///
/// # Errors
///
/// [`SnapshotError`] if the snapshot fails validation.
pub fn bisect(
    snap: &Snapshot,
    a: &Variant,
    b: &Variant,
) -> Result<DivergenceReport, SnapshotError> {
    let captured_at = snap.cycle();
    let report_a = variant_report(snap, a, captured_at)?;
    let report_b = variant_report(snap, b, captured_at)?;
    // Probe one cycle past the later finisher: beyond both completions
    // the digests are frozen at their final values.
    let hi = report_a.final_cycles.max(report_b.final_cycles) + 1;
    if digest_at(snap, a, hi)? == digest_at(snap, b, hi)? {
        return Ok(DivergenceReport {
            captured_at,
            first_divergent_cycle: None,
            variants: vec![report_a, report_b],
        });
    }
    let (mut lo, mut hi) = (captured_at, hi);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if digest_at(snap, a, mid)? == digest_at(snap, b, mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(DivergenceReport {
        captured_at,
        first_divergent_cycle: Some(hi),
        variants: vec![variant_report(snap, a, hi)?, variant_report(snap, b, hi)?],
    })
}

/// Prepare a workload, run it to `pause_at` and capture the snapshot the
/// replay demo and smoke test branch from.
///
/// # Errors
///
/// A message if the workload fails to build or finishes before
/// `pause_at` (nothing left to branch).
pub fn capture_workload(
    run: &WorkloadRun,
    w: &qm_workloads::Workload,
    pause_at: u64,
) -> Result<Snapshot, String> {
    let (mut sys, _) = run.prepare(w).map_err(|e| e.to_string())?;
    match sys.run_until(pause_at).map_err(|e| e.to_string())? {
        RunStatus::Paused { .. } => Ok(Snapshot::capture(&sys)),
        RunStatus::Done(_) => {
            Err(format!("{} finished before cycle {pause_at}; nothing to branch", w.name))
        }
    }
}

/// The CI smoke check behind `replay --smoke` (and
/// `offline-build.sh --snapshot`): a full capture → encode → decode →
/// restore → resume round trip must be bit-identical to the
/// uninterrupted run, and a fault-free/fault-injected variant pair from
/// a shared snapshot must bisect to a divergence.
///
/// # Errors
///
/// A description of the first failed invariant.
pub fn smoke() -> Result<(), String> {
    let w = qm_workloads::matmul(4);
    let run = WorkloadRun::with_pes(2);
    let baseline = run.run(&w).map_err(|e| e.to_string())?;
    if !baseline.correct {
        return Err(format!("baseline run verified incorrect: {:?}", baseline.mismatches));
    }

    // Round trip through bytes at a mid-run capture point.
    let snap = capture_workload(&run, &w, baseline.outcome.elapsed_cycles / 2)?;
    let decoded = Snapshot::decode(&snap.encode()).map_err(|e| e.to_string())?;
    if decoded != snap {
        return Err("decode(encode(snapshot)) is not the identity".into());
    }
    let mut resumed = System::restore(&decoded).map_err(|e| e.to_string())?;
    let outcome = resumed.run().map_err(|e| e.to_string())?;
    if outcome != baseline.outcome {
        return Err("resumed outcome differs from the uninterrupted run".into());
    }

    // A faulty continuation must diverge from a clean one, detectably.
    let clean = Variant::new("fault-free");
    let faulty = Variant::new("faulty").with_faults(crate::fault_sweep::plan_at(300_000));
    let report = bisect(&decoded, &clean, &faulty).map_err(|e| e.to_string())?;
    let Some(split) = report.first_divergent_cycle else {
        return Err("30% send loss failed to diverge from the clean run".into());
    };
    if split <= report.captured_at {
        return Err(format!(
            "first divergent cycle {split} not after the capture cycle {}",
            report.captured_at
        ));
    }

    // The backend axis, by contrast, must never diverge: an interpreted
    // and a translated continuation of the same snapshot are
    // bit-identical by the backend contract (`docs/DETERMINISM.md`).
    let interp = Variant::new("interp").with_backend(qm_sim::Backend::Interp);
    let translated = Variant::new("translated").with_backend(qm_sim::Backend::Translated);
    let report = bisect(&decoded, &interp, &translated).map_err(|e| e.to_string())?;
    if let Some(c) = report.first_divergent_cycle {
        return Err(format!("translated backend diverged from the interpreter at cycle {c}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qm_sim::fault::FaultPlan;

    fn shared_snapshot() -> Snapshot {
        let run = WorkloadRun::with_pes(2);
        let w = qm_workloads::matmul(4);
        let full = run.run(&w).expect("baseline").outcome.elapsed_cycles;
        capture_workload(&run, &w, full / 2).expect("captures mid-run")
    }

    #[test]
    fn identical_variants_never_diverge() {
        let snap = shared_snapshot();
        let report = bisect(&snap, &Variant::new("a"), &Variant::new("b")).expect("bisects");
        assert_eq!(report.first_divergent_cycle, None);
        assert_eq!(
            report.variants[0].outcome, report.variants[1].outcome,
            "identical continuations end identically"
        );
    }

    #[test]
    fn fault_injection_diverges_after_the_capture_cycle() {
        let snap = shared_snapshot();
        let clean = Variant::new("clean");
        let faulty = Variant::new("faulty")
            .with_faults(FaultPlan::seeded(0xD1F_F00D).with_send_loss(400_000));
        let report = bisect(&snap, &clean, &faulty).expect("bisects");
        let split = report.first_divergent_cycle.expect("40% send loss diverges");
        assert!(split > report.captured_at, "divergence is after the branch point");
        // Bisection found the *first* divergent cycle: equal one cycle
        // before, different at the split.
        assert_eq!(
            digest_at(&snap, &clean, split - 1).unwrap(),
            digest_at(&snap, &faulty, split - 1).unwrap()
        );
        assert_ne!(
            digest_at(&snap, &clean, split).unwrap(),
            digest_at(&snap, &faulty, split).unwrap()
        );
        let text = report.to_string();
        assert!(text.contains("first divergent cycle"), "{text}");
        assert!(text.contains("variant \"faulty\""), "{text}");
    }

    #[test]
    fn backends_never_diverge_from_a_shared_snapshot() {
        let snap = shared_snapshot();
        let interp = Variant::new("interp").with_backend(qm_sim::Backend::Interp);
        let translated = Variant::new("translated").with_backend(qm_sim::Backend::Translated);
        let report = bisect(&snap, &interp, &translated).expect("bisects");
        assert_eq!(
            report.first_divergent_cycle, None,
            "the translated backend split from the interpreter"
        );
        assert_eq!(report.variants[0].outcome, report.variants[1].outcome);
    }

    #[test]
    fn digest_probes_are_pure() {
        let snap = shared_snapshot();
        let v = Variant::new("probe");
        let k = snap.cycle() + 40;
        assert_eq!(digest_at(&snap, &v, k).unwrap(), digest_at(&snap, &v, k).unwrap());
    }

    #[test]
    fn smoke_passes() {
        smoke().expect("smoke invariants hold");
    }
}
