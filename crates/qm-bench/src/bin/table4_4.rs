//! Tables 4.4–4.5: `P*(v)`, `I*(v)`, `C(v)` and the input weights `W(v)`
//! for the Fig. 4.14 data-flow graph of `e ← ((a+b) × (−c)) ÷ d`, plus
//! the depth-first node list of Fig. 4.13.

use qm_core::dfg::{analysis, Dag};

fn main() {
    let mut g: Dag<&str> = Dag::new();
    let a = g.add_node("a", &[]);
    let b = g.add_node("b", &[]);
    let plus = g.add_node("+", &[a, b]);
    let c = g.add_node("c", &[]);
    let neg = g.add_node("-", &[c]);
    let mul = g.add_node("*", &[plus, neg]);
    let d = g.add_node("d", &[]);
    let div = g.add_node("/", &[mul, d]);
    let _e = g.add_node("e", &[div]);

    let dfl = analysis::depth_first_list(&g);
    let names: Vec<&str> = dfl.iter().map(|&v| *g.payload(v)).collect();
    println!("Fig. 4.13/4.14 — depth-first list: {}\n", names.join(" "));

    let is_input = |p: &&str| ["a", "b", "c", "d"].contains(p);
    let info = analysis::analyse(&g, is_input);
    println!("Table 4.4 — P*(v), I*(v), C(v)\n");
    let set = |s: &std::collections::BTreeSet<usize>| -> String {
        let names: Vec<&str> = s.iter().map(|&v| *g.payload(v)).collect();
        format!("{{{}}}", names.join(","))
    };
    let rows: Vec<Vec<String>> = g
        .node_ids()
        .map(|v| {
            vec![
                (*g.payload(v)).to_string(),
                set(&info[v].predecessors),
                set(&info[v].required_inputs),
                info[v].cost.to_string(),
            ]
        })
        .collect();
    println!("{}", qm_bench::text_table(&["v", "P*(v)", "I*(v)", "C(v)"], &rows));

    println!("Table 4.5 — input weights W(v) (descending = transmission order)\n");
    let seq = analysis::input_sequence(&g, is_input);
    let rows: Vec<Vec<String>> =
        seq.iter().map(|&(v, w)| vec![(*g.payload(v)).to_string(), w.to_string()]).collect();
    println!("{}", qm_bench::text_table(&["v", "W(v)"], &rows));

    // The thesis's published values.
    let by_name: std::collections::HashMap<&str, usize> =
        seq.iter().map(|&(v, w)| (*g.payload(v), w)).collect();
    assert_eq!(by_name["a"], 27);
    assert_eq!(by_name["b"], 27);
    assert_eq!(by_name["c"], 26);
    assert_eq!(by_name["d"], 18);
    println!("matches Table 4.5: W(a)=27 W(b)=27 W(c)=26 W(d)=18");
}
