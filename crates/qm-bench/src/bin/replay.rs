//! Deterministic replay and divergence bisection from a shared snapshot.
//!
//! Default mode is a demonstration: checkpoint the 6×6 matmul mid-run,
//! branch a fault-free and a fault-injected continuation from the same
//! snapshot, binary-search the first cycle their architectural state
//! digests differ and print the structured divergence report (final
//! outcomes, degradation tallies, wait-for state at the split).
//!
//! `replay --json` prints the same report as a `qm-api/v1`
//! `divergence_report` envelope (`docs/API.md`) instead of prose.
//!
//! `replay --backend <interp|translated>` continues both demo variants
//! on the given execution backend — the backend is a config axis like
//! any other, so an interp-vs-translated divergence (there must never
//! be one, see `docs/DETERMINISM.md`) would auto-bisect to its first
//! divergent cycle exactly like a fault plan does.
//!
//! `replay --smoke` instead runs the snapshot subsystem's CI check — a
//! full capture → encode → decode → restore → resume round trip must be
//! bit-identical to the uninterrupted run, the fault variant pair must
//! bisect to a divergence, and the interp/translated pair must not —
//! exiting non-zero on the first broken invariant (the `snapshot-smoke`
//! CI job and `scripts/offline-build.sh --snapshot` both call this).

use qm_bench::fault_sweep::plan_at;
use qm_bench::replay::{bisect, capture_workload, smoke, Variant};
use qm_sim::Backend;
use qm_workloads::WorkloadRun;

fn usage(got: &str) -> ! {
    eprintln!("usage: replay [--smoke|--json] [--backend <interp|translated>]  (got {got:?})");
    std::process::exit(2);
}

fn main() {
    let mut json = false;
    let mut run_smoke = false;
    let mut backend = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--smoke" => run_smoke = true,
            "--backend" => {
                let name = args.next().unwrap_or_else(|| usage("--backend without a name"));
                backend = Some(
                    Backend::parse(&name).unwrap_or_else(|| usage(&format!("--backend {name}"))),
                );
            }
            other => usage(other),
        }
    }

    if run_smoke {
        match smoke() {
            Ok(()) => println!("snapshot smoke OK"),
            Err(msg) => {
                eprintln!("snapshot smoke FAILED: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    demo(json, backend);
}

fn demo(json: bool, backend: Option<Backend>) {
    let w = qm_workloads::matmul(6);
    let run = WorkloadRun::with_pes(4);
    let full = run.run(&w).expect("baseline run").outcome.elapsed_cycles;
    let pause_at = full / 3;
    let snap = capture_workload(&run, &w, pause_at).expect("mid-run capture");
    if !json {
        println!(
            "captured {} on 4 PEs at cycle {} (uninterrupted run: {} cycles)",
            w.name,
            snap.cycle(),
            full
        );
    }

    let mut clean = Variant::new("fault-free");
    let mut faulty = Variant::new("fault-injected").with_faults(plan_at(200_000));
    if let Some(b) = backend {
        clean = clean.with_backend(b);
        faulty = faulty.with_backend(b);
        if !json {
            println!("both continuations on the {b} backend");
        }
    }
    let report = bisect(&snap, &clean, &faulty).expect("bisection");
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    assert!(
        report.first_divergent_cycle.is_some(),
        "a 20% fault ramp must diverge from the clean continuation"
    );
}
