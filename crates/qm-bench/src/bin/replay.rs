//! Deterministic replay and divergence bisection from a shared snapshot.
//!
//! Default mode is a demonstration: checkpoint the 6×6 matmul mid-run,
//! branch a fault-free and a fault-injected continuation from the same
//! snapshot, binary-search the first cycle their architectural state
//! digests differ and print the structured divergence report (final
//! outcomes, degradation tallies, wait-for state at the split).
//!
//! `replay --json` prints the same report as a `qm-api/v1`
//! `divergence_report` envelope (`docs/API.md`) instead of prose.
//!
//! `replay --smoke` instead runs the snapshot subsystem's CI check — a
//! full capture → encode → decode → restore → resume round trip must be
//! bit-identical to the uninterrupted run, and the variant pair above
//! must bisect to a divergence — exiting non-zero on the first broken
//! invariant (the `snapshot-smoke` CI job and
//! `scripts/offline-build.sh --snapshot` both call this).

use qm_bench::fault_sweep::plan_at;
use qm_bench::replay::{bisect, capture_workload, smoke, Variant};
use qm_workloads::WorkloadRun;

fn main() {
    match std::env::args().nth(1).as_deref() {
        None => demo(false),
        Some("--json") => demo(true),
        Some("--smoke") => match smoke() {
            Ok(()) => println!("snapshot smoke OK"),
            Err(msg) => {
                eprintln!("snapshot smoke FAILED: {msg}");
                std::process::exit(1);
            }
        },
        Some(other) => {
            eprintln!("usage: replay [--smoke|--json]  (got {other:?})");
            std::process::exit(2);
        }
    }
}

fn demo(json: bool) {
    let w = qm_workloads::matmul(6);
    let run = WorkloadRun::with_pes(4);
    let full = run.run(&w).expect("baseline run").outcome.elapsed_cycles;
    let pause_at = full / 3;
    let snap = capture_workload(&run, &w, pause_at).expect("mid-run capture");
    if !json {
        println!(
            "captured {} on 4 PEs at cycle {} (uninterrupted run: {} cycles)",
            w.name,
            snap.cycle(),
            full
        );
    }

    let clean = Variant::new("fault-free");
    let faulty = Variant::new("fault-injected").with_faults(plan_at(200_000));
    let report = bisect(&snap, &clean, &faulty).expect("bisection");
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    assert!(
        report.first_divergent_cycle.is_some(),
        "a 20% fault ramp must diverge from the clean continuation"
    );
}
