//! Problem-size scaling study: how throughput ratio at 8 PEs grows with
//! the work per context (the §4.3 granularity argument — bigger acyclic
//! graphs amortise the splicing overhead). A formatter over
//! [`qm_bench::sweep::scaling_grid`].

use qm_bench::sweep::{run_serial, scaling_grid};

fn main() {
    println!("Scaling — matmul problem size vs 8-PE throughput ratio\n");
    let mut rows = Vec::new();
    for (n, pts) in scaling_grid() {
        let rs = run_serial(&pts);
        assert!(rs.iter().all(|r| r.metrics.correct), "matmul {n}: incorrect run");
        let one = rs[0].metrics.cycles;
        let eight = rs[1].metrics.cycles;
        #[allow(clippy::cast_precision_loss)]
        let ratio = one as f64 / eight as f64;
        rows.push(vec![
            format!("{n}x{n}"),
            one.to_string(),
            eight.to_string(),
            format!("{ratio:.2}"),
        ]);
    }
    println!("{}", qm_bench::text_table(&["size", "1-PE cycles", "8-PE cycles", "ratio"], &rows));
    println!("larger problems amortise fork/channel overhead over more work;");
    println!("sizes whose row count is not a multiple of 8 dip (round-robin");
    println!("placement double-loads some PEs — e.g. 10 rows on 8 PEs)");
}
