//! Problem-size scaling study: how throughput ratio at 8 PEs grows with
//! the work per context (the §4.3 granularity argument — bigger acyclic
//! graphs amortise the splicing overhead).

use qm_occam::Options;
use qm_workloads::{matmul, speedup_curve};

fn main() {
    let opts = Options::default();
    println!("Scaling — matmul problem size vs 8-PE throughput ratio\n");
    let mut rows = Vec::new();
    for n in [4usize, 6, 8, 10, 12] {
        let w = matmul(n);
        let pts = speedup_curve(&w, &[1, 8], &opts).expect("runs");
        let one = pts[0].cycles;
        let eight = pts[1].cycles;
        rows.push(vec![
            format!("{n}x{n}"),
            one.to_string(),
            eight.to_string(),
            format!("{:.2}", pts[1].throughput_ratio),
        ]);
    }
    println!("{}", qm_bench::text_table(&["size", "1-PE cycles", "8-PE cycles", "ratio"], &rows));
    println!("larger problems amortise fork/channel overhead over more work;");
    println!("sizes whose row count is not a multiple of 8 dip (round-robin");
    println!("placement double-loads some PEs — e.g. 10 rows on 8 PEs)");
}
