//! Table 3.3: queue-over-stack speed-up for 11-node parse trees as a
//! function of the number of ALU pipeline stages.

use qm_core::pipeline::speedup_row;

fn main() {
    println!("Table 3.3 — speed-up vs pipeline stages (11-node parse trees)\n");
    let rows: Vec<Vec<String>> = (1..=6)
        .map(|stages| {
            let row = speedup_row(11, stages);
            vec![stages.to_string(), format!("{:.2}", row.case1), format!("{:.2}", row.case2)]
        })
        .collect();
    println!("{}", qm_bench::text_table(&["stages", "case 1", "case 2"], &rows));
}
