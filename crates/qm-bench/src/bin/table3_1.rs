//! Table 3.1: queue machine and stack machine instruction sequences for
//! `f ← a·b + (c − d)/e`, with the operand queue/stack contents at every
//! step.

use qm_core::expr::{Op, ParseTree};
use qm_core::level_order::level_order_sequence;
use qm_core::{simple, stack};

fn main() {
    let tree = ParseTree::parse_infix("a*b + (c-d)/e").expect("fixed expression");
    let env = |n: &str| match n {
        "a" => 2,
        "b" => 3,
        "c" => 20,
        "d" => 6,
        "e" => 7,
        _ => 0,
    };
    let queue_ops = level_order_sequence(&tree);
    let stack_ops = tree.post_order();
    let qt = simple::trace(&queue_ops, &env).expect("valid queue program");
    let st = stack::trace(&stack_ops, &env).expect("valid stack program");

    println!("Table 3.1 — f <- a*b + (c-d)/e   (a=2 b=3 c=20 d=6 e=7)\n");
    let rows: Vec<Vec<String>> = (0..queue_ops.len())
        .map(|i| {
            let fmt_q: Vec<String> =
                qt.states[i + 1].queue.iter().map(ToString::to_string).collect();
            let mut s_rev: Vec<String> =
                st.states[i + 1].stack.iter().map(ToString::to_string).collect();
            s_rev.reverse(); // thesis prints top of stack first
            vec![stack_ops[i].mnemonic(), s_rev.join(","), queue_ops[i].mnemonic(), fmt_q.join(",")]
        })
        .collect();
    println!(
        "{}",
        qm_bench::text_table(&["stack instr", "stack after", "queue instr", "queue after"], &rows)
    );
    println!("stack result = {}   queue result = {}", st.result, qt.result);
    assert_eq!(st.result, qt.result);

    // The thesis observation: same multiset of instructions, different order.
    let mut a: Vec<String> = queue_ops.iter().map(Op::mnemonic).collect();
    let mut b: Vec<String> = stack_ops.iter().map(Op::mnemonic).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "queue sequence is a permutation of the stack sequence");
    println!("(queue sequence is a permutation of the stack sequence)");
}
