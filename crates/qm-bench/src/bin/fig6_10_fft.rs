//! Table 6.3 + Fig. 6.10: Fast Fourier Transform statistics and
//! throughput ratio over 1–8 processing elements.

fn main() {
    qm_bench::report_workload(&qm_workloads::fft(16), "Table 6.3", "Fig. 6.10");
}
