//! Ablation: context placement policy (DESIGN.md design-choice study).
//!
//! `Local` degenerates to uniprocessing (every fork stays home);
//! `RoundRobin` spreads blindly; `LeastLoaded` follows PE clocks and
//! queue depth — the kernel default. A formatter over
//! [`qm_bench::sweep::placement_ablation_grid`].

use qm_bench::sweep::{placement_ablation_grid, run_serial};

fn main() {
    println!("Ablation — context placement policy (8 PEs)\n");
    let mut rows = Vec::new();
    for (name, pts) in placement_ablation_grid() {
        let rs = run_serial(&pts);
        assert!(rs.iter().all(|r| r.metrics.correct), "{name}: incorrect run");
        let mut row = vec![name];
        row.extend(rs.iter().map(|r| r.metrics.cycles.to_string()));
        rows.push(row);
    }
    println!(
        "{}",
        qm_bench::text_table(&["program", "local", "round-robin", "least-loaded"], &rows)
    );
    println!("cycles on 8 PEs; lower is better");
}
