//! Ablation: context placement policy (DESIGN.md design-choice study).
//!
//! `Local` degenerates to uniprocessing (every fork stays home);
//! `RoundRobin` spreads blindly; `LeastLoaded` follows PE clocks and
//! queue depth — the kernel default.

use qm_occam::Options;
use qm_sim::config::{Placement, SystemConfig};
use qm_workloads::runner::run_workload_cfg;

fn main() {
    let opts = Options::default();
    let pes = 8;
    println!("Ablation — context placement policy ({pes} PEs)\n");
    let mut rows = Vec::new();
    for w in qm_bench::thesis_workloads() {
        let mut row = vec![w.name.clone()];
        for placement in [Placement::Local, Placement::RoundRobin, Placement::LeastLoaded] {
            let cfg = SystemConfig { placement, ..SystemConfig::with_pes(pes) };
            let r = run_workload_cfg(&w, cfg, &opts).expect("run");
            assert!(r.correct, "{} {placement:?}: {:?}", w.name, r.mismatches);
            row.push(r.outcome.elapsed_cycles.to_string());
        }
        rows.push(row);
    }
    println!(
        "{}",
        qm_bench::text_table(&["program", "local", "round-robin", "least-loaded"], &rows)
    );
    println!("cycles on 8 PEs; lower is better");
}
