//! Continuous performance gate over `BENCH_baseline.json`.
//!
//! ```text
//! perf_gate                      gate against BENCH_baseline.json (exit 1 on fail)
//! perf_gate --refresh            re-measure and rewrite the baseline
//! perf_gate --smoke              single-run measurement, cycles pinned, timing informative
//! perf_gate --baseline <path>    use a different baseline file
//! perf_gate --tolerance <pct>    override the +5% default
//! ```
//!
//! Measurements are calibration-normalised (see `qm_bench::perf`), so a
//! gate run on a slower machine than the one that produced the baseline
//! still passes — only a change in simulator work per cycle fails it.
//! `--smoke` is for environments too noisy to enforce timing (it still
//! hard-fails on cycle-count drift, which is machine-independent).

use std::process::ExitCode;

use qm_bench::perf::{gate, measure, merge_min, PerfBaseline, RUNS, TOLERANCE};

/// Re-measurement passes granted to points that fail on timing alone.
const RETRIES: usize = 2;

fn usage(msg: &str) -> ExitCode {
    eprintln!("perf_gate: {msg}");
    eprintln!("usage: perf_gate [--refresh | --smoke] [--baseline <path>] [--tolerance <pct>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut refresh = false;
    let mut smoke = false;
    let mut baseline_path = String::from("BENCH_baseline.json");
    let mut tolerance = TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--refresh" => refresh = true,
            "--smoke" => smoke = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = p,
                None => return usage("--baseline needs a path"),
            },
            "--tolerance" => match args.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 => tolerance = pct / 100.0,
                _ => return usage("--tolerance needs a positive percentage"),
            },
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }
    if refresh && smoke {
        return usage("--refresh and --smoke are mutually exclusive");
    }

    let runs = if smoke { 1 } else { RUNS };
    eprintln!("perf_gate: measuring {runs} run(s) per point...");
    let mut now = measure(runs);

    if refresh {
        let json = now.to_json();
        if let Err(e) = std::fs::write(&baseline_path, &json) {
            eprintln!("perf_gate: cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("{json}");
        eprintln!("perf_gate: baseline refreshed -> {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "perf_gate: cannot read {baseline_path}: {e}\n\
                 perf_gate: run `perf_gate --refresh` to create it"
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline = match PerfBaseline::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf_gate: {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "calibration: {:.1} ns/cycle now vs {:.1} baseline (informative; the gate \
         compares calibration-relative costs)",
        now.calibration_ns_per_cycle, baseline.calibration_ns_per_cycle
    );

    // Timing-only failures get re-measured and merged (per-figure
    // minima): a host-noise burst has to hit the same point in every
    // pass to produce a false failure, while a genuine regression
    // cannot measure its way back under the bound. Cycle-count drift
    // is deterministic and is never retried.
    if !smoke {
        for retry in 1..=RETRIES {
            let timing_failures =
                gate(&now, &baseline, tolerance).iter().any(|l| !l.ok && l.ratio.is_finite());
            if !timing_failures {
                break;
            }
            eprintln!("perf_gate: timing failure — re-measuring (retry {retry}/{RETRIES})...");
            merge_min(&mut now, &measure(RUNS));
        }
    }

    let mut failed = false;
    for line in gate(&now, &baseline, tolerance) {
        // Timing verdicts are informative under --smoke; cycle-count
        // drift (ratio NaN) always fails.
        let timing_enforced = !smoke || !line.ratio.is_finite();
        let verdict = if line.ok {
            "ok  "
        } else if timing_enforced {
            failed = true;
            "FAIL"
        } else {
            "warn"
        };
        println!("{verdict} {:<22} x{:.2}  {}", line.id, line.ratio, line.detail);
    }
    if failed {
        eprintln!(
            "perf_gate: FAILED (tolerance +{:.0}%) — if the change is intended, \
             refresh the baseline via scripts/refresh-perf-baseline.sh",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("perf_gate: OK (tolerance +{:.0}%)", tolerance * 100.0);
    ExitCode::SUCCESS
}
