//! Ablation: message-cache capacity (DESIGN.md design-choice study).
//!
//! Capacity 0 is the §4.2 pure rendezvous semantics (every send blocks
//! until its receive); larger capacities model the §5.5 message-cache
//! hardware. The study shows why the hardware matters: splice traffic
//! stops costing a context switch per word. A formatter over
//! [`qm_bench::sweep::channel_ablation_grid`].

use qm_bench::sweep::{channel_ablation_grid, run_point};

fn main() {
    let grid = channel_ablation_grid();
    let name = grid[0].1.workload.name.clone();
    println!("Ablation — message-cache capacity ({name}, 4 PEs)\n");
    let mut rows = Vec::new();
    let mut base: Option<u64> = None;
    for (capacity, p) in grid {
        let r = run_point(&p);
        assert!(r.metrics.correct, "capacity {capacity}: incorrect run");
        let cycles = r.metrics.cycles;
        let b = *base.get_or_insert(cycles);
        #[allow(clippy::cast_precision_loss)]
        rows.push(vec![
            capacity.to_string(),
            cycles.to_string(),
            format!("{:.2}", b as f64 / cycles as f64),
            r.metrics.switches.to_string(),
        ]);
    }
    println!(
        "{}",
        qm_bench::text_table(
            &["cache slots", "cycles", "speed-up vs rendezvous", "context switches"],
            &rows
        )
    );
}
