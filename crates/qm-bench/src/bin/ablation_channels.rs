//! Ablation: message-cache capacity (DESIGN.md design-choice study).
//!
//! Capacity 0 is the §4.2 pure rendezvous semantics (every send blocks
//! until its receive); larger capacities model the §5.5 message-cache
//! hardware. The study shows why the hardware matters: splice traffic
//! stops costing a context switch per word.

use qm_occam::Options;
use qm_sim::config::SystemConfig;
use qm_workloads::runner::run_workload_cfg;

fn main() {
    let w = qm_workloads::matmul(6);
    let opts = Options::default();
    let pes = 4;
    println!("Ablation — message-cache capacity ({}, {pes} PEs)\n", w.name);
    let mut rows = Vec::new();
    let mut base: Option<u64> = None;
    for capacity in [0usize, 1, 2, 4, 8, 16] {
        let cfg = SystemConfig { channel_capacity: capacity, ..SystemConfig::with_pes(pes) };
        let r = run_workload_cfg(&w, cfg, &opts).expect("run");
        assert!(r.correct, "capacity {capacity}: {:?}", r.mismatches);
        let cycles = r.outcome.elapsed_cycles;
        let b = *base.get_or_insert(cycles);
        let switches: u64 = r.outcome.pes.iter().map(|p| p.stats.context_switches).sum();
        #[allow(clippy::cast_precision_loss)]
        rows.push(vec![
            capacity.to_string(),
            cycles.to_string(),
            format!("{:.2}", b as f64 / cycles as f64),
            switches.to_string(),
        ]);
    }
    println!(
        "{}",
        qm_bench::text_table(
            &["cache slots", "cycles", "speed-up vs rendezvous", "context switches"],
            &rows
        )
    );
}
