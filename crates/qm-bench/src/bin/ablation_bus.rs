//! Ablation: ring-bus partitioning and remote-access cost (DESIGN.md
//! design-choice study of the §5.6 segmented-bus topology). A formatter
//! over [`qm_bench::sweep::bus_ablation_grid`].

use qm_bench::sweep::{bus_ablation_grid, run_point};

fn main() {
    let (partition_grid, scale_grid) = bus_ablation_grid();
    let name = partition_grid[0].1.workload.name.clone();
    println!("Ablation — bus partitioning ({name}, 8 PEs)\n");
    let mut rows = Vec::new();
    for (partitions, p) in partition_grid {
        let r = run_point(&p);
        assert!(r.metrics.correct);
        rows.push(vec![
            partitions.to_string(),
            r.metrics.cycles.to_string(),
            r.metrics.remote_accesses.to_string(),
            r.metrics.bus_cycles.to_string(),
        ]);
    }
    println!(
        "{}",
        qm_bench::text_table(&["partitions", "cycles", "remote accesses", "bus cycles"], &rows)
    );

    println!("Ablation — remote access cost scaling (4 partitions)\n");
    let mut rows = Vec::new();
    for (scale, p) in scale_grid {
        let r = run_point(&p);
        assert!(r.metrics.correct);
        rows.push(vec![format!("x{scale}"), r.metrics.cycles.to_string()]);
    }
    println!("{}", qm_bench::text_table(&["remote cost", "cycles"], &rows));
}
