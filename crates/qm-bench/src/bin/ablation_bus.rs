//! Ablation: ring-bus partitioning and remote-access cost (DESIGN.md
//! design-choice study of the §5.6 segmented-bus topology).

use qm_occam::Options;
use qm_sim::config::{BusCosts, SystemConfig};
use qm_workloads::runner::run_workload_cfg;

fn main() {
    let w = qm_workloads::matmul(8);
    let opts = Options::default();
    let pes = 8;
    println!("Ablation — bus partitioning ({}, {pes} PEs)\n", w.name);
    let mut rows = Vec::new();
    for partitions in [1usize, 2, 4, 8] {
        let cfg = SystemConfig { partitions, ..SystemConfig::with_pes(pes) };
        let r = run_workload_cfg(&w, cfg, &opts).expect("run");
        assert!(r.correct);
        rows.push(vec![
            partitions.to_string(),
            r.outcome.elapsed_cycles.to_string(),
            r.outcome.mem.remote_accesses.to_string(),
            r.outcome.mem.bus_cycles.to_string(),
        ]);
    }
    println!(
        "{}",
        qm_bench::text_table(&["partitions", "cycles", "remote accesses", "bus cycles"], &rows)
    );

    println!("Ablation — remote access cost scaling (4 partitions)\n");
    let mut rows = Vec::new();
    for scale in [1u64, 2, 4, 8] {
        let bus = BusCosts {
            mem_remote_base: 6 * scale,
            mem_per_segment: 2 * scale,
            chan_remote_base: 10 * scale,
            chan_per_segment: 2 * scale,
            ..BusCosts::default()
        };
        let cfg = SystemConfig { bus, ..SystemConfig::with_pes(pes) };
        let r = run_workload_cfg(&w, cfg, &opts).expect("run");
        assert!(r.correct);
        rows.push(vec![format!("x{scale}"), r.outcome.elapsed_cycles.to_string()]);
    }
    println!("{}", qm_bench::text_table(&["remote cost", "cycles"], &rows));
}
