//! Table 6.4 + Fig. 6.11: Cholesky decomposition statistics and
//! throughput ratio over 1–8 processing elements.

fn main() {
    qm_bench::report_workload(&qm_workloads::cholesky(8), "Table 6.4", "Fig. 6.11");
}
