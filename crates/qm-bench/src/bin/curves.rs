//! Speed-up curves for the five benchmark programs (Figs 6.8/6.10–6.12
//! one-liner format). A formatter over [`qm_bench::sweep::curves_grid`].

use qm_bench::sweep::{curves_grid, run_serial};

fn main() {
    for (name, pts) in curves_grid() {
        let rs = run_serial(&pts);
        assert!(rs.iter().all(|r| r.metrics.correct), "{name}: incorrect run");
        let base = rs[0].metrics.cycles;
        print!("{name:12}");
        for r in &rs {
            #[allow(clippy::cast_precision_loss)]
            let ratio = base as f64 / r.metrics.cycles as f64;
            print!("  {}pe:{} ({ratio:.2}x)", r.pes, r.metrics.cycles);
        }
        println!();
    }
}
