use qm_occam::Options;
use qm_workloads::*;
fn main() {
    let opts = Options::default();
    for (name, w) in [
        ("matmul", matmul(8)),
        ("fft", fft(16)),
        ("cholesky", cholesky(8)),
        ("congruence", congruence(8)),
        ("reduction", reduction(64)),
    ] {
        let pts = speedup_curve(&w, &[1, 2, 4, 8], &opts).unwrap();
        print!("{name:12}");
        for p in &pts {
            print!("  {}pe:{} ({:.2}x)", p.pes, p.cycles, p.throughput_ratio);
        }
        println!();
    }
}
