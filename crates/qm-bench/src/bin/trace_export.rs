//! Export a Chrome trace-event JSON timeline of a workload run.
//!
//! Runs the 8×8 matrix multiplication on 8 PEs (the Fig. 6.8 headline
//! configuration) with the structured trace layer enabled and writes a
//! JSON file loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`: one process lane per PE, one thread lane per
//! context, instants for channel traffic, forks, cache hits/spills, bus
//! transfers and kernel traps. The timestamp unit is one simulated cycle.
//!
//! Usage: `trace_export [OUTPUT.json] [PES]` (defaults:
//! `matmul_8pe_trace.json`, 8).

use qm_sim::config::SystemConfig;
use qm_sim::trace::ChromeTrace;
use qm_workloads::{matmul, WorkloadRun};

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| "matmul_8pe_trace.json".into());
    let pes: usize = match args.next() {
        None => 8,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("usage: trace_export [OUTPUT.json] [PES]  (PES must be 1..=16, got {s:?})");
            std::process::exit(2);
        }),
    };

    let w = matmul(8);
    let (mut sys, _compiled) = WorkloadRun::new()
        .config(SystemConfig::with_pes(pes))
        .prepare(&w)
        .expect("workload compiles");
    let chrome = ChromeTrace::new();
    sys.set_trace_sink(chrome.sink());
    let outcome = sys.run().expect("simulation completes");

    let json = chrome.to_json();
    std::fs::write(&path, &json).expect("trace file writable");
    println!(
        "wrote {path}: {} events over {} cycles ({} PEs, {} contexts)",
        chrome.len(),
        outcome.elapsed_cycles,
        pes,
        outcome.contexts_created,
    );
    println!("load it in https://ui.perfetto.dev or chrome://tracing");
}
