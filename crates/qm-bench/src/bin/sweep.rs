//! Regenerate `BENCH_sweep.json`: run the full evaluation grid three
//! ways — serial interpreter (reference), serial translated, parallel —
//! prove all passes bit-identical, and record wall times to seed the
//! perf trajectory (schema `qm-bench-sweep/v3`, see `EXPERIMENTS.md`).
//!
//! Usage: `sweep [--resume <path>] [--interrupt-after <n>] [--deterministic]
//!               [--shards <n>] [--backend <interp|translated>]`
//!
//! With `--resume` the parallel pass checkpoints every completed point
//! to the given file and a rerun picks up where it left off;
//! `--interrupt-after <n>` stops after `n` newly completed points
//! (simulating being killed mid-sweep). `--deterministic` zeroes every
//! wall-clock field of the JSON so an interrupted-and-resumed sweep
//! emits a file byte-identical to an uninterrupted one. `--shards <n>`
//! forces every grid point to run the simulated machine over `n` host
//! shards; `--backend` picks the measured passes' execution backend
//! (default: `translated`, the fast path). The serial reference pass
//! always uses the serial scheduler and the interpreter, so the
//! report's `identical` flag proves sharded == serial *and*
//! translated == interp for the whole grid (see `docs/DETERMINISM.md`).

use std::time::Instant;

use qm_bench::sweep::{
    full_grid, run_parallel, run_serial, run_serial_backend, PointResult, SweepFlags,
    SweepProgress, SweepReport,
};
use qm_sim::Backend;

fn main() {
    let flags = SweepFlags::parse(std::env::args().skip(1), false).unwrap_or_else(|msg| {
        eprintln!(
            "usage: sweep [--resume <path>] [--interrupt-after <n>] [--deterministic] \
             [--shards <n>] [--backend <interp|translated>]"
        );
        eprintln!("{msg}");
        std::process::exit(2);
    });
    let backend = flags.backend.unwrap_or(Backend::Translated);
    let mut grid = full_grid();
    for p in &mut grid {
        if let Some(n) = flags.shards {
            p.shards = n;
        }
        p.backend = backend;
    }
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("sweep: {} points, {} worker threads, backend {backend}", grid.len(), threads);

    // The "parallel" pass: checkpointed when resuming, plain otherwise.
    let t1 = Instant::now();
    let parallel: Vec<PointResult> = if let Some(path) = &flags.resume {
        let progress = qm_bench::sweep::run_resumable(&grid, threads, path, flags.interrupt_after)
            .unwrap_or_else(|e| {
                eprintln!("checkpoint {}: {e}", path.display());
                std::process::exit(1);
            });
        match progress {
            SweepProgress::Interrupted { completed, total } => {
                println!(
                    "interrupted: {completed}/{total} points checkpointed to {} — rerun to resume",
                    path.display()
                );
                return;
            }
            SweepProgress::Complete(results) => results,
        }
    } else {
        run_parallel(&grid, threads)
    };
    let parallel_wall = t1.elapsed();
    println!("parallel:   {:>9.1} ms", parallel_wall.as_secs_f64() * 1e3);

    // Serial translated pass: same scheduler and grid order as the
    // reference, only the backend differs — the apples-to-apples
    // wall-clock comparison behind `backend_speedup`.
    let tx = Instant::now();
    let translated = run_serial_backend(&grid, Backend::Translated);
    let translated_wall = tx.elapsed();
    println!("translated: {:>9.1} ms (serial)", translated_wall.as_secs_f64() * 1e3);

    // Serial reference pass: besides the usual serial-vs-parallel
    // determinism proof, in resume mode this independently re-derives
    // every metric the checkpoint file persisted.
    let t0 = Instant::now();
    let serial = run_serial(&grid);
    let serial_wall = t0.elapsed();
    println!("serial:     {:>9.1} ms (interp)", serial_wall.as_secs_f64() * 1e3);

    let report = SweepReport::new(
        threads,
        &serial,
        serial_wall,
        &translated,
        translated_wall,
        parallel,
        parallel_wall,
    );
    assert!(report.identical, "a sweep pass diverged from the serial interpreter reference");
    assert!(report.points.iter().all(|p| p.metrics.correct), "a sweep point verified incorrect");
    println!(
        "speed-up: {:>9.2}x parallel, {:.2}x translated   ({:.1} points/s, all {} points \
         bit-identical)",
        report.speedup(),
        report.backend_speedup(),
        report.points_per_sec(),
        report.points.len(),
    );

    let json = if flags.deterministic { report.to_json_deterministic() } else { report.to_json() };
    let path = "BENCH_sweep.json";
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    println!("wrote {path}");
}
