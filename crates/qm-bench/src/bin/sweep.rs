//! Regenerate `BENCH_sweep.json`: run the full evaluation grid serially
//! and in parallel, prove the two passes bit-identical, and record wall
//! times to seed the perf trajectory (schema in `EXPERIMENTS.md`).

use std::time::Instant;

use qm_bench::sweep::{full_grid, run_parallel, run_serial, SweepReport};

fn main() {
    let grid = full_grid();
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("sweep: {} points, {} worker threads", grid.len(), threads);

    let t0 = Instant::now();
    let serial = run_serial(&grid);
    let serial_wall = t0.elapsed();
    println!("serial:   {:>9.1} ms", serial_wall.as_secs_f64() * 1e3);

    let t1 = Instant::now();
    let parallel = run_parallel(&grid, threads);
    let parallel_wall = t1.elapsed();
    println!("parallel: {:>9.1} ms", parallel_wall.as_secs_f64() * 1e3);

    let report = SweepReport::new(threads, &serial, serial_wall, parallel, parallel_wall);
    assert!(report.identical, "parallel sweep diverged from serial run");
    assert!(report.points.iter().all(|p| p.metrics.correct), "a sweep point verified incorrect");
    println!(
        "speed-up: {:>9.2}x   ({:.1} points/s, all {} points bit-identical)",
        report.speedup(),
        report.points_per_sec(),
        report.points.len(),
    );

    let path = "BENCH_sweep.json";
    std::fs::write(path, report.to_json()).expect("write BENCH_sweep.json");
    println!("wrote {path}");
}
