//! Statically verify every bundled workload's compiled object code.
//!
//! Usage: `verify_workloads [--strict] [--json]`
//!
//! Compiles each Chapter-6 workload (several problem sizes) with the
//! OCCAM compiler and runs the `qm-verify` static passes over the
//! object code. With `--strict` any diagnostic at all — warnings
//! included — fails the run; this is the CI `verify-workloads` gate,
//! keeping the compiler's output clean under the verifier's abstract
//! queue-state and channel-wiring models.

use std::process::exit;

use qm_verify::{verify_object, VerifyOptions};
use qm_workloads::{cholesky, congruence, fft, matmul, reduction, Workload};

fn grid() -> Vec<Workload> {
    vec![
        matmul(2),
        matmul(4),
        fft(4),
        fft(8),
        cholesky(3),
        cholesky(4),
        congruence(3),
        congruence(4),
        reduction(4),
        reduction(8),
    ]
}

fn main() {
    let mut strict = false;
    let mut json = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--strict" => strict = true,
            "--json" => json = true,
            other => {
                eprintln!("usage: verify_workloads [--strict] [--json]");
                eprintln!("unknown flag `{other}`");
                exit(2);
            }
        }
    }

    let mut rejected = false;
    for w in grid() {
        let compiled =
            qm_occam::compile(&w.source, &qm_occam::Options::default()).unwrap_or_else(|e| {
                eprintln!("{}: compile failed: {e}", w.name);
                exit(2);
            });
        let report = verify_object(&compiled.object, &VerifyOptions::default());
        if json {
            println!("{}", report.to_json());
        } else if !report.diags.is_empty() {
            print!("{}", report.render());
        }
        let reject = report.has_errors() || (strict && !report.is_clean());
        rejected |= reject;
        println!(
            "{:<16} {} context(s): {} — {}",
            w.name,
            compiled.context_count,
            report.summary(),
            if reject { "REJECTED" } else { "ok" }
        );
    }
    if rejected {
        println!("verify-workloads: FAILED");
        exit(1);
    }
    println!("verify-workloads: all workloads verify clean");
}
