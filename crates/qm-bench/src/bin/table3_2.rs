//! Table 3.2: average queue-over-stack speed-up as a function of parse
//! tree size, for a two-stage pipelined ALU, under case 1 (non-overlapped
//! fetch) and case 2 (overlapped fetch).

use qm_core::pipeline::speedup_row;

fn main() {
    println!("Table 3.2 — speed-up vs parse-tree size (2-stage pipelined ALU)\n");
    let rows: Vec<Vec<String>> = (1..=11)
        .map(|n| {
            let row = speedup_row(n, 2);
            vec![
                n.to_string(),
                row.tree_count.to_string(),
                format!("{:.2}", row.case1),
                format!("{:.2}", row.case2),
            ]
        })
        .collect();
    println!("{}", qm_bench::text_table(&["nodes", "trees", "case 1", "case 2"], &rows));
    println!("note: tree counts are Motzkin numbers (see EXPERIMENTS.md for the");
    println!("comparison against the thesis's enumeration).");
}
