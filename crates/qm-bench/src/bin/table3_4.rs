//! Table 3.4: the indexed queue machine instruction sequence for
//! `d ← a/(a+b) + (a+b)·c`, generated from the Fig. 3.6(b) data-flow
//! graph, with the queue contents at every step.

use qm_core::dfg::Dag;
use qm_core::expr::{Op, ParseTree};

fn main() {
    let tree = ParseTree::parse_infix("a/(a+b) + (a+b)*c").expect("fixed expression");
    let dag = Dag::from_parse_tree(&tree);
    println!(
        "Table 3.4 — d <- a/(a+b) + (a+b)c: parse tree has {} nodes, DAG has {}\n",
        tree.node_count(),
        dag.len()
    );
    let program = dag.to_indexed_program(&dag.topo_order()).expect("single-sink DAG");
    let env = |n: &str| match n {
        "a" => 12,
        "b" => 4,
        "c" => 3,
        _ => 0,
    };
    let trace = program.trace(&env).expect("valid program");
    let rows: Vec<Vec<String>> = program
        .instructions
        .iter()
        .enumerate()
        .map(|(i, instr)| {
            let q: Vec<String> = trace.states[i + 1]
                .queue
                .iter()
                .map(|s| s.map_or("·".to_string(), |v| v.to_string()))
                .collect();
            vec![
                instr.op.mnemonic(),
                instr.result_offsets.iter().map(ToString::to_string).collect::<Vec<_>>().join(","),
                q.join(","),
            ]
        })
        .collect();
    println!("{}", qm_bench::text_table(&["instruction", "result indices", "queue after"], &rows));
    println!("result = {} (a=12 b=4 c=3)", trace.result);
    #[allow(clippy::identity_op)]
    let expected = (12 / 16) + 16 * 3; // a/(a+b) truncates to 0
    assert_eq!(trace.result, expected);
    assert_eq!(program.len(), 7, "7 instructions vs 11 on a simple queue machine");

    // Cross-check against the direct parse-tree evaluation.
    assert_eq!(trace.result, tree.evaluate(&env).expect("evaluable"));
    let _ = Op::Add;
}
