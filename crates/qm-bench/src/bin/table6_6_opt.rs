//! Table 6.6: compiler optimization speed-up factors.
//!
//! Each optimization is disabled in turn (the rest stay on) and every
//! workload re-run on 4 PEs; the reported factor is
//! `cycles(optimization off) / cycles(all on)` — how much the
//! optimization buys.

use qm_occam::Options;
use qm_workloads::WorkloadRun;

fn main() {
    let all_on = Options::default();
    let variants: [(&str, Options); 4] = [
        ("live-value analysis", Options { live_value_analysis: false, ..all_on }),
        ("input sequencing (π_I)", Options { input_sequencing: false, ..all_on }),
        ("priority scheduling", Options { priority_scheduling: false, ..all_on }),
        ("loop unrolling", Options { loop_unrolling: false, ..all_on }),
    ];
    let pes = 4;
    println!("Table 6.6 — compiler optimization speed-up factors ({pes} PEs)\n");
    let mut rows = Vec::new();
    for w in qm_bench::thesis_workloads() {
        let base = WorkloadRun::with_pes(pes).options(all_on).run(&w).expect("baseline run");
        assert!(base.correct, "{}: {:?}", w.name, base.mismatches);
        let mut row = vec![w.name.clone()];
        for (name, opts) in &variants {
            let r = WorkloadRun::with_pes(pes)
                .options(*opts)
                .run(&w)
                .unwrap_or_else(|e| panic!("{} without {name}: {e}", w.name));
            assert!(r.correct, "{} without {name}: {:?}", w.name, r.mismatches);
            #[allow(clippy::cast_precision_loss)]
            let factor = r.outcome.elapsed_cycles as f64 / base.outcome.elapsed_cycles as f64;
            row.push(format!("{factor:.2}"));
        }
        rows.push(row);
    }
    println!(
        "{}",
        qm_bench::text_table(
            &["program", "live-value", "input seq", "priorities", "unrolling"],
            &rows
        )
    );
    println!("factor = cycles with the optimization disabled / cycles with all enabled");
}
