//! Figures 6.6–6.7: Amdahl's law (f = 0.93) and the modified law
//! (f = 0.63, g = 0.3) over 1–8 processors.

use qm_sim::amdahl::thesis_curves;

fn main() {
    println!("Fig. 6.6 / 6.7 — analytic speed-up curves\n");
    let rows: Vec<Vec<String>> = thesis_curves(8)
        .into_iter()
        .map(|p| vec![p.n.to_string(), format!("{:.3}", p.amdahl), format!("{:.3}", p.modified)])
        .collect();
    println!("{}", qm_bench::text_table(&["n", "Amdahl f=0.93", "modified f=0.63 g=0.3"], &rows));
}
