//! CI smoke check for deterministic sharded execution: a small grid of
//! workloads — including one 64-PE big-machine point — is run under the
//! serial scheduler and again at shard counts 2 and 4, and every
//! deterministic metric must be **byte-identical** across all three
//! (the contract of `docs/DETERMINISM.md`). Exits non-zero on the first
//! divergence, printing the offending point and shard count.
//!
//! Usage: `shard_smoke` (no flags; small enough for every CI run).

use qm_bench::sweep::{run_point_sharded, SweepPoint};
use qm_sim::config::{Placement, SystemConfig};

fn grid() -> Vec<SweepPoint> {
    let least_loaded =
        SystemConfig { placement: Placement::LeastLoaded, ..SystemConfig::with_pes(8) };
    vec![
        SweepPoint::new("smoke/matmul6/4pe", qm_workloads::matmul(6), SystemConfig::with_pes(4)),
        SweepPoint::new("smoke/fft16/8pe", qm_workloads::fft(16), SystemConfig::with_pes(8)),
        SweepPoint::new("smoke/cholesky8/8pe-ll", qm_workloads::cholesky(8), least_loaded)
            .with_config("placement=least-loaded"),
        SweepPoint::new(
            "smoke/reduction64/64pe",
            qm_workloads::reduction(64),
            SystemConfig::with_pes(64),
        ),
    ]
}

fn main() {
    let grid = grid();
    let mut failed = false;
    for p in &grid {
        let serial = run_point_sharded(p, 1);
        if !serial.metrics.correct {
            eprintln!("FAIL {}: serial run verified incorrect", p.id);
            failed = true;
            continue;
        }
        for shards in [2usize, 4] {
            let sharded = run_point_sharded(p, shards);
            if sharded.metrics == serial.metrics {
                println!(
                    "ok   {} shards={shards}: {} cycles, {} instructions",
                    p.id, sharded.metrics.cycles, sharded.metrics.instructions
                );
            } else {
                eprintln!(
                    "FAIL {} shards={shards}: metrics diverged from serial\n  \
                     serial:  {:?}\n  sharded: {:?}",
                    p.id, serial.metrics, sharded.metrics
                );
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("shard smoke FAILED");
        std::process::exit(1);
    }
    println!("shard smoke OK: {} points × shards {{2, 4}} bit-identical to serial", grid.len());
}
