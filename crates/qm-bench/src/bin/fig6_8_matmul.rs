//! Table 6.2 + Fig. 6.8: matrix multiplication statistics and throughput
//! ratio over 1–8 processing elements.

fn main() {
    qm_bench::report_workload(&qm_workloads::matmul(8), "Table 6.2", "Fig. 6.8");
}
