//! Regenerate `BENCH_fault_sweep.json`: run the fault-injection grid
//! (placement policies × fault rates, one fixed seed) serially and in
//! parallel, prove the two passes bit-identical — degradation counters
//! included — and record per-point fault/recovery statistics (schema
//! `qm-bench-fault/v1`, documented in `EXPERIMENTS.md`).
//!
//! Usage: `fault_sweep [--smoke]` — `--smoke` runs the reduced CI grid
//! and skips the JSON file.

use std::time::Instant;

use qm_bench::fault_sweep::{fault_grid, smoke_grid, FaultSweepReport};
use qm_bench::sweep::{run_parallel, run_serial};

fn main() {
    let smoke = match std::env::args().nth(1).as_deref() {
        None => false,
        Some("--smoke") => true,
        Some(other) => {
            eprintln!("usage: fault_sweep [--smoke]  (got {other:?})");
            std::process::exit(2);
        }
    };
    let grid = if smoke { smoke_grid() } else { fault_grid() };
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("fault sweep: {} points, {} worker threads", grid.len(), threads);

    let t0 = Instant::now();
    let serial = run_serial(&grid);
    let serial_wall = t0.elapsed();
    println!("serial:   {:>9.1} ms", serial_wall.as_secs_f64() * 1e3);

    let t1 = Instant::now();
    let parallel = run_parallel(&grid, threads);
    let parallel_wall = t1.elapsed();
    println!("parallel: {:>9.1} ms", parallel_wall.as_secs_f64() * 1e3);

    let report = FaultSweepReport::new(threads, &serial, serial_wall, parallel, parallel_wall);
    assert!(report.identical, "parallel fault sweep diverged from serial run");
    assert!(report.points.iter().all(|p| p.metrics.correct), "a faulty run verified incorrect");

    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            let d = &p.metrics.degradation;
            vec![
                p.id.clone(),
                p.metrics.cycles.to_string(),
                d.send_drops.to_string(),
                d.bus_drops.to_string(),
                d.trap_delays.to_string(),
                d.retries.to_string(),
                d.recovered_transfers.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        qm_bench::text_table(
            &["point", "cycles", "send drops", "bus drops", "trap delays", "retries", "recovered"],
            &rows
        )
    );
    println!("all {} points bit-identical across serial and parallel runs", report.points.len());

    if smoke {
        println!("smoke mode: skipping BENCH_fault_sweep.json");
        return;
    }
    let path = "BENCH_fault_sweep.json";
    std::fs::write(path, report.to_json()).expect("write BENCH_fault_sweep.json");
    println!("wrote {path}");
}
