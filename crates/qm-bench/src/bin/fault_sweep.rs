//! Regenerate `BENCH_fault_sweep.json`: run the fault-injection grid
//! (placement policies × fault rates, one fixed seed) serially and in
//! parallel, prove the two passes bit-identical — degradation counters
//! included — and record per-point fault/recovery statistics (schema
//! `qm-bench-fault/v1`, documented in `EXPERIMENTS.md`).
//!
//! Usage: `fault_sweep [--smoke] [--resume <path>] [--interrupt-after <n>]
//! [--deterministic]`
//!
//! `--smoke` runs the reduced CI grid and skips the JSON file. The
//! resume flags work as in `sweep`: `--resume` checkpoints every
//! completed point (fault grids resume too — the counter-keyed fault
//! streams make every point individually deterministic),
//! `--interrupt-after <n>` simulates being killed after `n` new points,
//! and `--deterministic` zeroes the JSON's wall-clock fields.

use std::time::Instant;

use qm_bench::fault_sweep::{fault_grid, smoke_grid, FaultSweepReport};
use qm_bench::sweep::{
    run_parallel, run_resumable, run_serial, PointResult, SweepFlags, SweepProgress,
};

fn main() {
    let flags = SweepFlags::parse(std::env::args().skip(1), true).unwrap_or_else(|msg| {
        eprintln!(
            "usage: fault_sweep [--smoke] [--resume <path>] [--interrupt-after <n>] \
             [--deterministic]"
        );
        eprintln!("{msg}");
        std::process::exit(2);
    });
    let grid = if flags.smoke { smoke_grid() } else { fault_grid() };
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("fault sweep: {} points, {} worker threads", grid.len(), threads);

    let t1 = Instant::now();
    let parallel: Vec<PointResult> = if let Some(path) = &flags.resume {
        let progress =
            run_resumable(&grid, threads, path, flags.interrupt_after).unwrap_or_else(|e| {
                eprintln!("checkpoint {}: {e}", path.display());
                std::process::exit(1);
            });
        match progress {
            SweepProgress::Interrupted { completed, total } => {
                println!(
                    "interrupted: {completed}/{total} points checkpointed to {} — rerun to resume",
                    path.display()
                );
                return;
            }
            SweepProgress::Complete(results) => results,
        }
    } else {
        run_parallel(&grid, threads)
    };
    let parallel_wall = t1.elapsed();
    println!("parallel: {:>9.1} ms", parallel_wall.as_secs_f64() * 1e3);

    let t0 = Instant::now();
    let serial = run_serial(&grid);
    let serial_wall = t0.elapsed();
    println!("serial:   {:>9.1} ms", serial_wall.as_secs_f64() * 1e3);

    let report = FaultSweepReport::new(threads, &serial, serial_wall, parallel, parallel_wall);
    assert!(report.identical, "parallel fault sweep diverged from serial run");
    assert!(report.points.iter().all(|p| p.metrics.correct), "a faulty run verified incorrect");

    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            let d = &p.metrics.degradation;
            vec![
                p.id.clone(),
                p.metrics.cycles.to_string(),
                d.send_drops.to_string(),
                d.bus_drops.to_string(),
                d.trap_delays.to_string(),
                d.retries.to_string(),
                d.recovered_transfers.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        qm_bench::text_table(
            &["point", "cycles", "send drops", "bus drops", "trap delays", "retries", "recovered"],
            &rows
        )
    );
    println!("all {} points bit-identical across serial and parallel runs", report.points.len());

    if flags.smoke {
        println!("smoke mode: skipping BENCH_fault_sweep.json");
        return;
    }
    let json = if flags.deterministic { report.to_json_deterministic() } else { report.to_json() };
    let path = "BENCH_fault_sweep.json";
    std::fs::write(path, json).expect("write BENCH_fault_sweep.json");
    println!("wrote {path}");
}
