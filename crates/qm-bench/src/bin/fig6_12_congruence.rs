//! Table 6.5 + Fig. 6.12: congruence transformation (B = PᵀAP)
//! statistics and throughput ratio over 1–8 processing elements.

fn main() {
    qm_bench::report_workload(&qm_workloads::congruence(8), "Table 6.5", "Fig. 6.12");
}
