//! Criterion bench: the overhead guard for the structured trace layer.
//!
//! Three variants of the same end-to-end simulation (4×4 matmul, 4 PEs):
//!
//! * `untraced` — no sink installed: the dispatcher is a single `Option`
//!   branch and events are never constructed. This must stay within noise
//!   (≤2%) of the pre-trace-layer simulator.
//! * `noop_sink` — a discarding sink: measures event construction and
//!   dispatch alone.
//! * `recorder_sink` — the ring-buffer recorder: the realistic cost of
//!   capturing a run for inspection.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qm_sim::config::SystemConfig;
use qm_sim::trace::{NoopSink, Recorder};
use qm_workloads::{matmul, WorkloadRun};

fn bench(c: &mut Criterion) {
    let w = matmul(4);
    let run = WorkloadRun::new().config(SystemConfig::with_pes(4));

    c.bench_function("trace_overhead_untraced", |b| {
        b.iter(|| {
            let (mut sys, _) = run.prepare(black_box(&w)).expect("run");
            let out = sys.run().expect("completes");
            black_box(out.elapsed_cycles)
        });
    });

    c.bench_function("trace_overhead_noop_sink", |b| {
        b.iter(|| {
            let (mut sys, _) = run.prepare(black_box(&w)).expect("run");
            sys.set_trace_sink(Box::new(NoopSink));
            let out = sys.run().expect("completes");
            black_box(out.elapsed_cycles)
        });
    });

    c.bench_function("trace_overhead_recorder_sink", |b| {
        b.iter(|| {
            let (mut sys, _) = run.prepare(black_box(&w)).expect("run");
            let rec = Recorder::new(1 << 16);
            sys.set_trace_sink(rec.sink());
            let out = sys.run().expect("completes");
            black_box((out.elapsed_cycles, rec.records().len()))
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
