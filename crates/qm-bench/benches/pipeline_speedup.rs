//! Criterion bench for the Table 3.2 computation: exhaustive tree
//! enumeration plus the pipelined-ALU cycle models.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qm_core::enumerate::all_trees;
use qm_core::pipeline::{speedup_row, FetchPolicy, Program};

fn bench(c: &mut Criterion) {
    c.bench_function("table3_2_row_n9", |b| {
        b.iter(|| black_box(speedup_row(black_box(9), 2)));
    });

    let trees = all_trees(11);
    c.bench_function("cycle_model_11_nodes", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for t in &trees {
                total += Program::queue_program(t).cycles(2, FetchPolicy::NonOverlapped);
            }
            black_box(total)
        });
    });

    c.bench_function("enumerate_trees_n10", |b| {
        b.iter(|| black_box(all_trees(black_box(10)).len()));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
