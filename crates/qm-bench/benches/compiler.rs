//! Criterion bench: full OCCAM compilation (parse → sema → graphs →
//! schedule → emit → assemble) of the matmul benchmark source.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qm_occam::{compile, Options};

fn bench(c: &mut Criterion) {
    let w = qm_workloads::matmul(8);
    let opts = Options::default();
    c.bench_function("compile_matmul_8x8", |b| {
        b.iter(|| black_box(compile(black_box(&w.source), &opts).expect("compiles")));
    });

    let cholesky = qm_workloads::cholesky(8);
    c.bench_function("compile_cholesky_8x8", |b| {
        b.iter(|| black_box(compile(black_box(&cholesky.source), &opts).expect("compiles")));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
