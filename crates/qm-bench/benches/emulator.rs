//! Criterion bench: raw PE emulation speed on a register-mode countdown
//! loop (host instructions per simulated instruction).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qm_isa::asm::assemble;
use qm_isa::mem::FlatMemory;
use qm_isa::pe::{NullServices, Pe, StepResult};

fn bench(c: &mut Criterion) {
    let obj = assemble(
        "start: plus #0,#0 :r17\n\
         loop:  plus r17,#1 :r17\n\
                lt r17,#1000 :r18\n\
                bne r18,@loop\n\
                trap #3,#0\n",
    )
    .expect("fixed program");
    c.bench_function("pe_countdown_3k_instructions", |b| {
        b.iter(|| {
            let mut mem = FlatMemory::new();
            mem.load_words(0, obj.words());
            let mut pe = Pe::new(0);
            pe.reset(0, 0x8000_0400);
            let mut svc = NullServices;
            loop {
                match pe.step(&mut mem, &mut svc) {
                    StepResult::Continue => {}
                    StepResult::Trap { .. } => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            black_box(pe.cycles)
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
