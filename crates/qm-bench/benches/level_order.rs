//! Criterion bench: the linear-time level-order conjugate algorithm
//! (Fig. 3.3) vs the sort-based reference, on deep expression trees.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qm_core::expr::{Op, ParseTree};
use qm_core::level_order::{level_order_naive, level_order_sequence};

/// A balanced binary expression tree with `depth` levels.
fn balanced(depth: usize, next: &mut u32) -> ParseTree {
    if depth == 0 {
        *next += 1;
        ParseTree::var(&format!("v{next}"))
    } else {
        let l = balanced(depth - 1, next);
        let r = balanced(depth - 1, next);
        ParseTree::binary(Op::Add, l, r)
    }
}

fn bench(c: &mut Criterion) {
    let mut n = 0;
    let tree = balanced(12, &mut n); // 8191 nodes
    c.bench_function("conjugate_traversal_8k_nodes", |b| {
        b.iter(|| black_box(level_order_sequence(black_box(&tree))));
    });
    c.bench_function("naive_traversal_8k_nodes", |b| {
        b.iter(|| black_box(level_order_naive(black_box(&tree))));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
