//! Criterion bench: end-to-end multiprocessor simulation of a 4×4
//! matrix multiplication on 1 and 4 PEs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qm_occam::Options;
use qm_workloads::{matmul, run_workload};

fn bench(c: &mut Criterion) {
    let w = matmul(4);
    let opts = Options::default();
    for pes in [1usize, 4] {
        c.bench_function(&format!("simulate_matmul_4x4_{pes}pe"), |b| {
            b.iter(|| {
                let r = run_workload(black_box(&w), pes, &opts).expect("run");
                assert!(r.correct);
                black_box(r.outcome.elapsed_cycles)
            });
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
