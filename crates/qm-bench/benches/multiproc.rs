//! Criterion bench: end-to-end multiprocessor simulation of a 4×4
//! matrix multiplication on 1 and 4 PEs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qm_workloads::{matmul, WorkloadRun};

fn bench(c: &mut Criterion) {
    let w = matmul(4);
    for pes in [1usize, 4] {
        let run = WorkloadRun::with_pes(pes);
        c.bench_function(&format!("simulate_matmul_4x4_{pes}pe"), |b| {
            b.iter(|| {
                let r = run.run(black_box(&w)).expect("run");
                assert!(r.correct);
                black_box(r.outcome.elapsed_cycles)
            });
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
