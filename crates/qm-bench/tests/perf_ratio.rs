//! Wall-clock regression pin for the single-PE scheduler fix.
//!
//! Before the lazy-deletion scheduler, `cholesky/1pe` ran ~8× *slower*
//! than 2 PEs despite executing only ~15% more cycles — every step
//! re-scanned an actor heap whose population never shrank, and the scan
//! length grew with accumulated stale hints (superlinear in steps; worst
//! at 1 PE, where context switches are densest). Fixed, the 1-PE run is
//! roughly as fast per cycle as the 2-PE run.
//!
//! This test pins the *ratio* of wall times, not absolute times, so it
//! is robust to machine speed. The bound is generous (3×, vs ~1.1×
//! measured and ~8× regressed) and each configuration takes its best of
//! two runs to discount scheduler noise: a reintroduced superlinear
//! scan overshoots the bound by multiples on every run.

use std::time::Instant;

fn best_wall_ns(pes: usize) -> (u128, u64) {
    let w = qm_workloads::cholesky(8);
    let mut best = u128::MAX;
    let mut cycles = 0;
    for _ in 0..2 {
        let t = Instant::now();
        let r = qm_workloads::WorkloadRun::with_pes(pes).run(&w).expect("cholesky runs");
        best = best.min(t.elapsed().as_nanos());
        assert!(r.correct, "cholesky result stays correct at {pes} PEs");
        cycles = r.outcome.elapsed_cycles;
    }
    (best, cycles)
}

#[test]
fn single_pe_cholesky_is_not_superlinearly_slow() {
    let (wall_1pe, cycles_1pe) = best_wall_ns(1);
    let (wall_2pe, cycles_2pe) = best_wall_ns(2);

    // The 1-PE schedule replays more cycles (every transfer context
    // switches), but only modestly so — pin the regime.
    assert!(
        cycles_1pe < cycles_2pe * 2,
        "1-PE cycle count blew up: {cycles_1pe} vs {cycles_2pe} at 2 PEs"
    );

    // Simulation work scales with cycles; normalize wall time per cycle
    // before comparing. A healthy scheduler keeps the per-cycle cost of
    // the 1-PE run within small constant factors of the 2-PE run; the
    // pre-fix scheduler was ~7× over this bound.
    let ns_per_cycle_1pe = wall_1pe as f64 / cycles_1pe as f64;
    let ns_per_cycle_2pe = wall_2pe as f64 / cycles_2pe as f64;
    let ratio = ns_per_cycle_1pe / ns_per_cycle_2pe;
    assert!(
        ratio <= 3.0,
        "cholesky/1pe per-cycle wall cost regressed: {ns_per_cycle_1pe:.1} ns/cycle \
         vs {ns_per_cycle_2pe:.1} at 2 PEs (ratio {ratio:.2}, bound 3.0)"
    );
}
