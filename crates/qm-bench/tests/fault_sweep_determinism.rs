//! Determinism harness for the fault-injection sweep: the seeded fault
//! grid must replay bit-identically (serially, across worker threads,
//! and against pinned golden values), and its zero-rate column must be
//! indistinguishable from plan-free runs — the empty-plan identity,
//! checked here at the benchmark layer.

use qm_bench::fault_sweep::{fault_grid, plan_at, smoke_grid, FAULT_RATES_PPM};
use qm_bench::sweep::{run_parallel, run_serial, same_metrics, SweepPoint};
use qm_sim::config::{Placement, SystemConfig};

/// Golden values for the seeded fault grid (matmul 6×6 on 4 PEs,
/// `FAULT_SEED`): `(id, cycles, send drops, bus drops, retries,
/// recovered transfers)`. Any drift here means the fault stream or the
/// recovery machinery changed behaviour.
const FAULT_GRID_GOLDEN: [(&str, u64, u64, u64, u64, u64); 12] = [
    ("faults/local/0ppm", 24_698, 0, 0, 0, 0),
    ("faults/local/50000ppm", 26_126, 27, 0, 27, 25),
    ("faults/local/200000ppm", 30_291, 134, 0, 134, 106),
    ("faults/local/500000ppm", 41_012, 528, 0, 528, 276),
    ("faults/round-robin/0ppm", 8_630, 0, 0, 0, 0),
    ("faults/round-robin/50000ppm", 9_204, 27, 0, 27, 24),
    ("faults/round-robin/200000ppm", 10_847, 134, 2, 136, 109),
    ("faults/round-robin/500000ppm", 14_355, 528, 6, 534, 273),
    ("faults/least-loaded/0ppm", 9_285, 0, 0, 0, 0),
    ("faults/least-loaded/50000ppm", 9_935, 27, 0, 27, 24),
    ("faults/least-loaded/200000ppm", 11_308, 134, 3, 137, 115),
    ("faults/least-loaded/500000ppm", 15_086, 528, 9, 537, 270),
];

#[test]
fn fault_grid_matches_pinned_goldens() {
    let serial = run_serial(&fault_grid());
    assert_eq!(serial.len(), FAULT_GRID_GOLDEN.len());
    for (r, &(id, cycles, send_drops, bus_drops, retries, recovered)) in
        serial.iter().zip(&FAULT_GRID_GOLDEN)
    {
        assert_eq!(r.id, id);
        assert!(r.metrics.correct, "{id} verified incorrect");
        assert_eq!(r.metrics.cycles, cycles, "{id}: cycles drifted");
        let d = &r.metrics.degradation;
        assert_eq!(d.send_drops, send_drops, "{id}: send drops drifted");
        assert_eq!(d.bus_drops, bus_drops, "{id}: bus drops drifted");
        assert_eq!(d.retries, retries, "{id}: retries drifted");
        assert_eq!(d.recovered_transfers, recovered, "{id}: recoveries drifted");
    }
}

#[test]
fn fault_grid_is_bit_identical_across_serial_and_parallel_runs() {
    let grid = fault_grid();
    let serial = run_serial(&grid);
    for threads in [2, 4] {
        let parallel = run_parallel(&grid, threads);
        assert!(
            same_metrics(&serial, &parallel),
            "parallel({threads}) fault metrics diverged from serial"
        );
        // Beyond the aggregate check: every degradation counter,
        // field by field.
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.metrics.degradation, p.metrics.degradation, "{}", s.id);
        }
    }
}

#[test]
fn zero_rate_points_equal_plan_free_points() {
    // The rate-0 column of the grid carries a seeded-but-empty plan;
    // strip the plans entirely and the metrics must not move a bit.
    let with_plans: Vec<SweepPoint> =
        fault_grid().into_iter().filter(|p| p.id.ends_with("/0ppm")).collect();
    assert_eq!(with_plans.len(), 3);
    let without_plans: Vec<SweepPoint> = with_plans
        .iter()
        .map(|p| {
            let mut p = p.clone();
            p.fault_plan = None;
            p
        })
        .collect();
    let a = run_serial(&with_plans);
    let b = run_serial(&without_plans);
    assert!(same_metrics(&a, &b), "an empty plan perturbed the benchmark metrics");
    for r in &a {
        assert!(r.metrics.degradation.is_clean(), "{}", r.id);
    }
}

#[test]
fn faulty_points_degrade_monotonically_in_drops() {
    // Within one placement policy, a higher loss rate can only drop more
    // sends — the fault streams are per-event draws against a threshold,
    // so raising the threshold is monotone by construction. Pin that.
    for placement in ["local", "round-robin", "least-loaded"] {
        let golden: Vec<_> =
            FAULT_GRID_GOLDEN.iter().filter(|(id, ..)| id.contains(placement)).collect();
        for pair in golden.windows(2) {
            assert!(pair[0].2 <= pair[1].2, "{placement}: send drops not monotone in rate");
        }
    }
}

#[test]
fn smoke_grid_is_a_subset_shape_of_the_full_grid() {
    // CI runs the smoke grid; make sure it exercises both the empty-plan
    // identity (rate 0) and heavy loss (the top rate) for every policy.
    let grid = smoke_grid();
    assert_eq!(grid.len(), 6);
    assert_eq!(grid.iter().filter(|p| p.id.ends_with("/0ppm")).count(), 3);
    let top = *FAULT_RATES_PPM.last().unwrap();
    assert_eq!(grid.iter().filter(|p| p.id.ends_with(&format!("/{top}ppm"))).count(), 3);
}

#[test]
fn a_single_faulty_point_replays_identically() {
    // The finest-grained replay check: one faulty run, executed twice
    // from scratch, must agree on cycles and every recovery counter.
    let cfg = SystemConfig { placement: Placement::RoundRobin, ..SystemConfig::with_pes(4) };
    let point = SweepPoint::new("replay/matmul6", qm_workloads::matmul(6), cfg)
        .with_faults(plan_at(500_000));
    let a = run_serial(std::slice::from_ref(&point));
    let b = run_serial(std::slice::from_ref(&point));
    assert_eq!(a[0].metrics, b[0].metrics);
    assert!(a[0].metrics.degradation.send_drops > 0);
}
