//! Resumable-sweep determinism: interrupting a checkpointed sweep and
//! resuming it must be invisible in the output — same metrics, and with
//! deterministic rendering the same `BENCH_sweep.json` bytes — whether
//! the passes ran serially or across threads.

use std::path::PathBuf;
use std::time::Duration;

use qm_bench::checkpoint::Checkpoint;
use qm_bench::fault_sweep::plan_at;
use qm_bench::sweep::{
    run_resumable, run_serial, same_metrics, SweepFlags, SweepPoint, SweepProgress, SweepReport,
};
use qm_sim::config::SystemConfig;
use qm_sim::snapshot::SnapshotError;
use qm_workloads::WorkloadRun;

fn tiny_grid() -> Vec<SweepPoint> {
    vec![
        SweepPoint::new("resume/matmul4/1pe", qm_workloads::matmul(4), SystemConfig::with_pes(1)),
        SweepPoint::new("resume/matmul4/2pe", qm_workloads::matmul(4), SystemConfig::with_pes(2)),
        SweepPoint::new(
            "resume/matmul4/faulty",
            qm_workloads::matmul(4),
            SystemConfig::with_pes(2),
        )
        .with_config("loss=200000ppm")
        .with_faults(plan_at(200_000)),
    ]
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qm-resume-{}-{name}.chkpt", std::process::id()))
}

/// Render the grid's deterministic report exactly as the `sweep` bin
/// does in `--resume --deterministic` mode.
fn deterministic_json(grid: &[SweepPoint], results: Vec<qm_bench::sweep::PointResult>) -> String {
    let serial = run_serial(grid);
    let translated = qm_bench::sweep::run_serial_backend(grid, qm_sim::Backend::Translated);
    let report = SweepReport::new(
        2,
        &serial,
        Duration::ZERO,
        &translated,
        Duration::ZERO,
        results,
        Duration::ZERO,
    );
    assert!(report.identical, "checkpointed metrics diverged from a fresh serial pass");
    report.to_json_deterministic()
}

#[test]
fn interrupted_and_resumed_sweep_is_byte_identical_to_uninterrupted() {
    let grid = tiny_grid();

    // Uninterrupted checkpointed run.
    let once = tmp("uninterrupted");
    let _ = std::fs::remove_file(&once);
    let SweepProgress::Complete(full) = run_resumable(&grid, 1, &once, None).unwrap() else {
        panic!("no interrupt requested, sweep must complete");
    };

    // Interrupt after every single point, resuming each time.
    let stepped = tmp("stepped");
    let _ = std::fs::remove_file(&stepped);
    for done in 1..grid.len() {
        match run_resumable(&grid, 1, &stepped, Some(1)).unwrap() {
            SweepProgress::Interrupted { completed, total } => {
                assert_eq!((completed, total), (done, grid.len()));
            }
            SweepProgress::Complete(_) => panic!("interrupt budget of 1 must not finish"),
        }
        // The checkpoint on disk already holds every completed point.
        assert_eq!(Checkpoint::load(&stepped).unwrap().len(), done);
    }
    let SweepProgress::Complete(resumed) = run_resumable(&grid, 1, &stepped, Some(1)).unwrap()
    else {
        panic!("final resume completes the last point");
    };

    assert!(same_metrics(&full, &resumed));
    assert!(same_metrics(&full, &run_serial(&grid)), "checkpointed == fresh");
    assert_eq!(
        deterministic_json(&grid, full),
        deterministic_json(&grid, resumed),
        "interrupted+resumed JSON must be byte-identical to uninterrupted"
    );

    let _ = std::fs::remove_file(&once);
    let _ = std::fs::remove_file(&stepped);
}

#[test]
fn parallel_resumable_matches_serial_resumable() {
    let grid = tiny_grid();
    let serial_path = tmp("serial");
    let parallel_path = tmp("parallel");
    let _ = std::fs::remove_file(&serial_path);
    let _ = std::fs::remove_file(&parallel_path);

    let SweepProgress::Complete(serial) = run_resumable(&grid, 1, &serial_path, None).unwrap()
    else {
        panic!("serial resumable completes");
    };
    // Interrupt the parallel run once mid-flight, then let it finish.
    match run_resumable(&grid, 3, &parallel_path, Some(2)).unwrap() {
        SweepProgress::Interrupted { completed, total } => {
            assert_eq!((completed, total), (2, grid.len()));
        }
        SweepProgress::Complete(_) => panic!("interrupt budget of 2 must not finish"),
    }
    let SweepProgress::Complete(parallel) = run_resumable(&grid, 3, &parallel_path, None).unwrap()
    else {
        panic!("parallel resume completes");
    };
    assert!(same_metrics(&serial, &parallel), "threads must not change resumable results");

    let _ = std::fs::remove_file(&serial_path);
    let _ = std::fs::remove_file(&parallel_path);
}

#[test]
fn checkpointed_runs_are_bit_identical_on_worker_threads() {
    // The snapshot replay guarantee, exercised the way the sweep runner
    // would: capture-at-k + restore + run-to-completion on worker
    // threads, compared against plain single-threaded runs — fault-free
    // and with the fault engine armed.
    let w = qm_workloads::matmul(4);
    let plain_clean = WorkloadRun::with_pes(2).run(&w).unwrap();
    let faulty = || WorkloadRun::with_pes(2).fault_plan(plan_at(200_000));
    let plain_faulty = faulty().run(&w).unwrap();
    assert!(plain_faulty.outcome.degradation.total_injected() > 0, "faults actually fired");

    std::thread::scope(|scope| {
        for worker in 0..3u64 {
            let (w, clean, dirty) = (&w, &plain_clean, &plain_faulty);
            scope.spawn(move || {
                let pause = clean.outcome.elapsed_cycles * (worker + 1) / 4;
                let ck = WorkloadRun::with_pes(2).run_with_checkpoint(w, pause).unwrap();
                assert_eq!(ck.outcome, clean.outcome, "clean, pause {pause}");
                let pause = dirty.outcome.elapsed_cycles * (worker + 1) / 4;
                let ck = faulty().run_with_checkpoint(w, pause).unwrap();
                assert_eq!(ck.outcome, dirty.outcome, "faulty, pause {pause}");
            });
        }
    });
}

#[test]
fn checkpoints_from_another_grid_are_rejected() {
    let grid = tiny_grid();
    let path = tmp("othergrid");
    let _ = std::fs::remove_file(&path);
    match run_resumable(&grid, 1, &path, Some(1)).unwrap() {
        SweepProgress::Interrupted { .. } => {}
        SweepProgress::Complete(_) => panic!("interrupted"),
    }
    let other = vec![grid[0].clone()];
    match run_resumable(&other, 1, &path, None) {
        Err(SnapshotError::Malformed(msg)) => assert!(msg.contains("grid"), "{msg}"),
        other => panic!("expected a grid mismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_checkpoints_error_instead_of_panicking() {
    let grid = tiny_grid();
    let path = tmp("corrupt");
    std::fs::write(&path, b"qm-chkptgarbage that is long enough to parse").unwrap();
    assert!(run_resumable(&grid, 1, &path, None).is_err());
    std::fs::write(&path, b"definitely not a checkpoint file").unwrap();
    assert!(matches!(run_resumable(&grid, 1, &path, None), Err(SnapshotError::BadMagic)));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sweep_flags_parse_and_reject_like_the_bins() {
    let ok = SweepFlags::parse(
        ["--resume", "ck.bin", "--interrupt-after", "3", "--deterministic"]
            .into_iter()
            .map(String::from),
        false,
    )
    .unwrap();
    assert_eq!(ok.resume, Some(PathBuf::from("ck.bin")));
    assert_eq!(ok.interrupt_after, Some(3));
    assert!(ok.deterministic && !ok.smoke);

    assert!(SweepFlags::parse(["--smoke"].into_iter().map(String::from), true).unwrap().smoke);
    for bad in [
        vec!["--smoke"],                // smoke not allowed here
        vec!["--interrupt-after", "2"], // requires --resume
        vec!["--interrupt-after", "two", "--resume", "x"],
        vec!["--resume"], // missing path
        vec!["--frobnicate"],
    ] {
        assert!(
            SweepFlags::parse(bad.iter().map(ToString::to_string), false).is_err(),
            "{bad:?} must be rejected"
        );
    }
}
