//! Determinism harness for the parallel sweep runner: parallel cycle
//! counts must be bit-identical to serial runs, and both must match the
//! pre-optimisation seed's golden values (locking the scheduler rewrite
//! to the old linear-scan semantics).

use qm_bench::sweep::{channel_ablation_grid, run_parallel, run_serial, same_metrics, SweepPoint};
use qm_sim::config::SystemConfig;

/// Fig. 6.8 golden values from the seed simulator: matmul 8×8 cycles at
/// 1/2/4/8 PEs (see `EXPERIMENTS.md`).
const MATMUL8_GOLDEN_CYCLES: [(usize, u64); 4] =
    [(1, 56_108), (2, 28_420), (4, 15_897), (8, 8_477)];

/// Seed golden values for the message-cache ablation (matmul 6×6 on
/// 4 PEs): `(capacity, cycles, context switches)`.
const CHANNEL_ABLATION_GOLDEN: [(usize, u64, u64); 6] = [
    (0, 12_314, 543),
    (1, 11_052, 359),
    (2, 10_638, 276),
    (4, 9_750, 177),
    (8, 8_630, 9),
    (16, 8_630, 9),
];

fn matmul8_grid() -> Vec<SweepPoint> {
    MATMUL8_GOLDEN_CYCLES
        .iter()
        .map(|&(pes, _)| {
            SweepPoint::new(
                format!("golden/matmul8/{pes}pe"),
                qm_workloads::matmul(8),
                SystemConfig::with_pes(pes),
            )
        })
        .collect()
}

#[test]
fn fig6_8_matmul_matches_seed_golden_cycles() {
    let serial = run_serial(&matmul8_grid());
    for (r, &(pes, cycles)) in serial.iter().zip(&MATMUL8_GOLDEN_CYCLES) {
        assert!(r.metrics.correct, "matmul8 on {pes} PEs verified incorrect");
        assert_eq!(r.pes, pes);
        assert_eq!(r.metrics.cycles, cycles, "matmul8 on {pes} PEs drifted from the seed");
    }
}

#[test]
fn parallel_matmul_grid_is_bit_identical_to_serial() {
    let grid = matmul8_grid();
    let serial = run_serial(&grid);
    for threads in [2, 4] {
        let parallel = run_parallel(&grid, threads);
        assert!(
            same_metrics(&serial, &parallel),
            "parallel({threads}) metrics diverged from serial"
        );
        // Beyond cycles: every deterministic metric, field by field.
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.metrics, p.metrics, "{}", s.id);
        }
    }
}

#[test]
fn channel_ablation_grid_matches_seed_and_is_deterministic() {
    let grid: Vec<SweepPoint> = channel_ablation_grid().into_iter().map(|(_, p)| p).collect();
    let serial = run_serial(&grid);
    for (r, &(cap, cycles, switches)) in serial.iter().zip(&CHANNEL_ABLATION_GOLDEN) {
        assert!(r.metrics.correct, "capacity {cap} verified incorrect");
        assert_eq!(r.metrics.cycles, cycles, "capacity {cap} cycles drifted from the seed");
        assert_eq!(r.metrics.switches, switches, "capacity {cap} switches drifted");
    }
    let parallel = run_parallel(&grid, 4);
    assert!(same_metrics(&serial, &parallel), "ablation grid not deterministic under threads");
}
