//! Golden-file tests pinning the exact bytes of every `qm-api/v1`
//! envelope kind.
//!
//! The envelope is a *wire contract*: `qm-serve` clients, sweep-file
//! consumers and the CI smoke jobs all parse these shapes. Field
//! additions are compatible (and require updating the golden files
//! here, consciously); renames, removals or retypes are not — they
//! require bumping to `qm-api/v2`, per `docs/API.md`. If one of these
//! assertions fails, the wire format drifted: decide which of the two
//! outcomes you meant, and either fix the code or update the golden
//! file *and* the API document together.
//!
//! Inputs are fixed structs and static verification (no simulation
//! timing), so the bytes cannot wobble with cost-model tuning.

use qm_bench::replay::{DivergenceReport, VariantReport};
use qm_isa::pe::PeStats;
use qm_sim::fault::DegradationReport;
use qm_sim::memory::MemStats;
use qm_sim::system::{PeReport, RunOutcome};
use qm_verify::{verify_object, VerifyOptions};

/// A fully-populated outcome with recognisable values in every field.
fn fixed_outcome() -> RunOutcome {
    RunOutcome {
        output: vec![7, -3],
        elapsed_cycles: 1234,
        instructions: 567,
        contexts_created: 8,
        peak_live_contexts: 3,
        channel_transfers: 21,
        mem: MemStats { local_accesses: 400, remote_accesses: 50, bus_cycles: 150 },
        degradation: fixed_degradation(),
        pes: vec![PeReport {
            cycles: 1234,
            busy_cycles: 1100,
            stats: PeStats {
                instructions: 567,
                window_hits: 500,
                window_misses: 67,
                mem_reads: 200,
                mem_writes: 100,
                sends: 21,
                recvs: 21,
                traps: 9,
                context_switches: 4,
                rollouts: 2,
            },
        }],
    }
}

fn fixed_degradation() -> DegradationReport {
    DegradationReport {
        send_drops: 1,
        bus_drops: 2,
        pe_stalls: 3,
        trap_delays: 4,
        retries: 5,
        recovered_transfers: 6,
        stall_cycles: 70,
        backoff_cycles: 80,
        delay_cycles: 90,
    }
}

#[test]
fn run_outcome_envelope_is_pinned() {
    assert_eq!(
        fixed_outcome().to_json(),
        include_str!("golden/run_outcome.json").trim_end(),
        "run_outcome wire format drifted — see the module docs before updating the golden file"
    );
}

#[test]
fn degradation_report_envelope_is_pinned() {
    assert_eq!(
        fixed_degradation().to_json(),
        include_str!("golden/degradation_report.json").trim_end(),
        "degradation_report wire format drifted"
    );
}

#[test]
fn verify_report_envelope_is_pinned() {
    // A fixed program with a queue-discipline error (QV0001: consuming
    // two slots that were never produced). Static verification has no
    // timing, so the diagnostic — code, pc, line, notes — is exact.
    let obj = qm_isa::asm::assemble("main: plus+2 #1,#2 :r0\n trap #2,#0\n").expect("assembles");
    let report = verify_object(&obj, &VerifyOptions::default());
    assert!(!report.is_clean(), "the fixture program must produce a diagnostic");
    assert_eq!(
        report.to_json(),
        include_str!("golden/verify_report.json").trim_end(),
        "verify_report wire format drifted"
    );
}

#[test]
fn divergence_report_envelope_is_pinned() {
    let report = DivergenceReport {
        captured_at: 1000,
        first_divergent_cycle: Some(1250),
        variants: vec![
            VariantReport {
                name: "fault-free".to_string(),
                outcome: Ok(fixed_outcome()),
                final_cycles: 2000,
                degradation_at_split: DegradationReport::default(),
                wait_for_at_split: Vec::new(),
            },
            VariantReport {
                name: "fault-injected".to_string(),
                outcome: Err("sim: pe 0 faulted".to_string()),
                final_cycles: 1500,
                degradation_at_split: fixed_degradation(),
                wait_for_at_split: vec!["ctx 3 waits on channel 2".to_string()],
            },
        ],
    };
    assert_eq!(
        report.to_json(),
        include_str!("golden/divergence_report.json").trim_end(),
        "divergence_report wire format drifted"
    );
}

#[test]
fn state_digest_envelope_is_pinned() {
    assert_eq!(
        qm_sim::report::state_digest_json(0x0123_4567_89ab_cdef, 42),
        include_str!("golden/state_digest.json").trim_end(),
        "state_digest wire format drifted"
    );
}
