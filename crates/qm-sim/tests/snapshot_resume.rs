//! The snapshot subsystem's defining invariant, end to end:
//! *restore-then-run is bit-identical to an uninterrupted run* —
//! metrics, trace events and fault draws included. Exercised for a
//! fault-free multi-PE workload and a faulty one whose recovery
//! machinery (retries, backoff, stall windows, trap delays) is mid-
//! flight at the capture point, across every pause boundary, plus the
//! automatic snapshot cadence and the builder's `resume_from` path.
//!
//! (Dependency-free on purpose: this file is part of the offline test
//! gate. The proptest over random capture points lives in
//! `snapshot_proptest.rs`.)

use qm_sim::snapshot::Snapshot;
use qm_sim::system::RunStatus;
use qm_sim::trace::{Recorder, TraceRecord};
use qm_sim::{FaultPlan, RunOutcome, Simulation, System, SystemConfig};

/// Fork–join pipeline: main forks two children and folds their results.
/// Enough cross-PE traffic (sends, forks, context switches) that a
/// mid-run capture lands on interesting state.
const PIPELINE: &str = "
main:   trap #0,#sq :r0,r1
        trap #0,#dbl :r2,r3
        send r0,#5
        send r2,#4
        recv r1,#0 :r4
        recv r3,#0 :r5
        plus+2 r4,r5 :r6
        send+4 #0,r6
        trap #2,#0
sq:     recv r17,#0 :r0
        mul+1 r0,r0 :r0
        send+1 r18,r0
        trap #2,#0
dbl:    recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";

fn faulty_plan() -> FaultPlan {
    FaultPlan::seeded(0xC0FF_EE11)
        .with_send_loss(300_000)
        .with_bus_drops(150_000)
        .with_trap_delays(400_000, 12)
        .with_stall(0, 10, 40)
}

fn build(pes: usize, plan: Option<FaultPlan>, rec: Option<&Recorder>) -> System {
    let mut b = Simulation::builder().config(SystemConfig::with_pes(pes)).assembly(PIPELINE);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    if let Some(rec) = rec {
        b = b.trace(rec.sink());
    }
    b.build().expect("assembles")
}

/// Run to completion, pausing (and round-tripping through bytes) at
/// `pause_at`; returns the stitched outcome and the trace records from
/// both halves.
fn interrupted(
    pes: usize,
    plan: Option<FaultPlan>,
    pause_at: u64,
) -> (RunOutcome, Vec<TraceRecord>) {
    let first = Recorder::new(1 << 16);
    let mut sys = build(pes, plan, Some(&first));
    match sys.run_until(pause_at).expect("first half runs") {
        RunStatus::Done(outcome) => (outcome, first.records()),
        RunStatus::Paused { .. } => {
            let bytes = Snapshot::capture(&sys).encode();
            drop(sys); // the restored system is all that survives
            let snap = Snapshot::decode(&bytes).expect("decodes");
            let mut resumed = System::restore(&snap).expect("restores");
            let second = Recorder::new(1 << 16);
            resumed.set_trace_sink(second.sink());
            let outcome = resumed.run().expect("second half runs");
            let mut records = first.records();
            records.extend(second.records());
            (outcome, records)
        }
    }
}

#[test]
fn fault_free_resume_is_bit_identical_including_traces() {
    let baseline_rec = Recorder::new(1 << 16);
    let baseline = build(4, None, Some(&baseline_rec)).run().expect("baseline runs");
    assert!(!baseline.output.is_empty(), "workload produces output");
    for pause_at in [1, 30, 60, 90, 150, 400] {
        let (outcome, records) = interrupted(4, None, pause_at);
        assert_eq!(outcome, baseline, "outcome at pause {pause_at}");
        assert_eq!(records, baseline_rec.records(), "trace stream at pause {pause_at}");
    }
}

#[test]
fn faulty_resume_replays_the_identical_fault_stream() {
    let baseline_rec = Recorder::new(1 << 16);
    let baseline = build(2, Some(faulty_plan()), Some(&baseline_rec)).run().expect("baseline runs");
    assert!(baseline.degradation.total_injected() > 0, "faults actually fired");
    for pause_at in [1, 25, 55, 120, 300, 700] {
        let (outcome, records) = interrupted(2, Some(faulty_plan()), pause_at);
        assert_eq!(outcome, baseline, "outcome at pause {pause_at}");
        assert_eq!(records, baseline_rec.records(), "trace stream at pause {pause_at}");
    }
}

#[test]
fn every_pause_boundary_resumes_identically() {
    // Exhaustively walk the pause boundaries of the whole (short) run:
    // no cycle k may exist where capture/restore perturbs the future.
    let baseline = build(2, None, None).run().expect("baseline runs");
    let horizon = baseline.elapsed_cycles;
    for pause_at in 0..=horizon {
        let first = build(2, None, None).run_until(pause_at).expect("first half");
        let outcome = match first {
            RunStatus::Done(o) => o,
            RunStatus::Paused { .. } => {
                let mut sys = build(2, None, None);
                sys.run_until(pause_at).expect("repeat pause");
                let snap = Snapshot::capture(&sys);
                System::restore(&snap).expect("restores").run().expect("second half")
            }
        };
        assert_eq!(outcome, baseline, "pause at cycle {pause_at}");
    }
}

#[test]
fn automatic_cadence_writes_resumable_snapshots() {
    let dir = std::env::temp_dir().join(format!("qm-snap-cadence-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = build(2, Some(faulty_plan()), None).run().expect("baseline runs");

    let mut sys = Simulation::builder()
        .config(SystemConfig::with_pes(2))
        .assembly(PIPELINE)
        .fault_plan(faulty_plan())
        .snapshot_every(64)
        .snapshot_dir(dir.to_str().unwrap())
        .build()
        .expect("builds");
    let cadenced = sys.run().expect("cadenced run");
    assert_eq!(cadenced, baseline, "writing snapshots never perturbs the run");

    let mut snaps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "snap"))
        .collect();
    snaps.sort();
    assert!(!snaps.is_empty(), "cadence produced snapshot files");

    for path in &snaps {
        let resumed = Simulation::builder()
            .resume_from(path)
            .build()
            .expect("resumes")
            .run()
            .expect("resumed run");
        assert_eq!(resumed, baseline, "resume from {}", path.display());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_of_a_finished_run_restores_the_outcome() {
    let mut sys = build(2, None, None);
    let outcome = sys.run().expect("runs");
    let snap = Snapshot::capture(&sys);
    let mut restored = System::restore(&snap).expect("restores");
    assert_eq!(restored.run().expect("trivially re-finishes"), outcome);
}
