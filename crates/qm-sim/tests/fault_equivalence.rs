//! Property test: a zero-fault [`FaultPlan`] yields a `RunOutcome`
//! identical to a plan-free run across randomized configurations — the
//! empty-plan bit-identity invariant of the fault subsystem, explored
//! over PE counts, channel capacities, placement policies and seeds.
//!
//! (This file needs the `proptest` dev-dependency; the dependency-free
//! sibling with fixed configs lives in `fault_recovery.rs` so offline
//! builds keep equivalent coverage.)

use proptest::prelude::*;
use qm_sim::config::Placement;
use qm_sim::{FaultPlan, Simulation, SystemConfig};

/// Fork–join kernel: main rforks a doubling child and reports 42. Works
/// (or deadlocks identically) under every configuration below.
const FORK_JOIN: &str = "
main:   trap #0,#child :r0,r1
        send r0,#21
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
child:  recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";

fn placement_strategy() -> impl Strategy<Value = Placement> {
    prop_oneof![Just(Placement::RoundRobin), Just(Placement::LeastLoaded), Just(Placement::Local),]
}

proptest! {
    #[test]
    fn zero_fault_plan_is_bit_identical_to_no_plan(
        pes in 1usize..9,
        capacity in 0usize..9,
        placement in placement_strategy(),
        seed in any::<u64>(),
        queue_page_words in prop_oneof![Just(64u32), Just(128), Just(256)],
    ) {
        let mut cfg = SystemConfig::with_pes(pes);
        cfg.channel_capacity = capacity;
        cfg.placement = placement;
        cfg.queue_page_words = queue_page_words;

        let clean = Simulation::builder()
            .config(cfg.clone())
            .assembly(FORK_JOIN)
            .build()
            .unwrap()
            .run();
        // An empty plan, whatever its seed or recovery tuning, must not
        // perturb a single bit of the outcome (including errors).
        let planned = Simulation::builder()
            .config(cfg)
            .assembly(FORK_JOIN)
            .fault_plan(FaultPlan::seeded(seed))
            .build()
            .unwrap()
            .run();
        prop_assert_eq!(clean, planned);
    }

    #[test]
    fn degenerate_plans_are_also_identity(
        pes in 1usize..5,
        seed in any::<u64>(),
        stall_start in 0u64..10_000,
    ) {
        let cfg = SystemConfig::with_pes(pes);
        let clean = Simulation::builder()
            .config(cfg.clone())
            .assembly(FORK_JOIN)
            .build()
            .unwrap()
            .run();
        // Zero-length stall windows and zero-count/zero-length random
        // stalls inject nothing and must compile to no engine.
        let plan = FaultPlan::seeded(seed)
            .with_stall(0, stall_start, 0)
            .with_random_stalls(0, 100, 1000);
        prop_assert!(plan.is_empty());
        let planned = Simulation::builder()
            .config(cfg)
            .assembly(FORK_JOIN)
            .fault_plan(plan)
            .build()
            .unwrap()
            .run();
        prop_assert_eq!(clean, planned);
    }

    #[test]
    fn fixed_seed_faulty_runs_replay_identically(
        pes in 2usize..5,
        seed in any::<u64>(),
        loss_ppm in 1u32..500_000,
    ) {
        let plan = FaultPlan::seeded(seed).with_send_loss(loss_ppm).with_bus_drops(loss_ppm / 2);
        let run = || {
            Simulation::builder()
                .config(SystemConfig::with_pes(pes))
                .assembly(FORK_JOIN)
                .fault_plan(plan.clone())
                .build()
                .unwrap()
                .run()
        };
        prop_assert_eq!(run(), run());
    }
}
