//! Property test: the heap-backed [`qm_sim::sched::Scheduler`] picks the
//! same PE order as the old linear scan over randomized clock / block /
//! ready states.
//!
//! The reference model is the pre-optimisation `System::next_actor` scan
//! kept verbatim: a PE's next-action time is its clock while a context
//! runs, else the earliest queued `ready_at` clamped to the clock; the
//! minimum wins, with strict `<` so ties go to the lowest PE index.
//! Dispatch picks the ready entry with the smallest `ready_at`, FIFO
//! among equals. The proptest drives both implementations through the
//! same randomized wake/step/block transitions and asserts every
//! scheduling decision — actor choice, action time and dispatched
//! context — is identical.
//!
//! (This file needs the `proptest` dev-dependency; the dependency-free
//! sibling lives in `sched.rs`'s unit tests so offline builds keep
//! equivalent coverage.)

use proptest::prelude::*;
use qm_sim::sched::Scheduler;

/// One transition of the randomized state machine.
#[derive(Debug, Clone)]
enum Op {
    /// A wake/fork lands a context on PE `pe % pes` at time `at`.
    Wake { pe: usize, at: u64 },
    /// The next actor steps: its clock advances by `advance + 1`; it
    /// then keeps running if `keep_running`, else blocks/retires.
    Step { advance: u64, keep_running: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), 0u64..64).prop_map(|(pe, at)| Op::Wake { pe, at }),
        (0u64..8, any::<bool>())
            .prop_map(|(advance, keep_running)| Op::Step { advance, keep_running }),
    ]
}

/// The old linear scan, verbatim.
fn linear_next_actor(
    clocks: &[u64],
    running: &[bool],
    ready: &[Vec<(u64, u64)>],
) -> Option<(usize, u64)> {
    let mut best: Option<(usize, u64)> = None;
    for pe in 0..clocks.len() {
        let t = if running[pe] {
            Some(clocks[pe])
        } else {
            ready[pe].iter().map(|&(at, _)| at).min().map(|r| r.max(clocks[pe]))
        };
        if let Some(t) = t {
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((pe, t));
            }
        }
    }
    best
}

/// The old dispatch choice: earliest `ready_at`, FIFO among equals
/// (`min_by_key` returns the first minimum in queue order).
fn linear_dispatch(ready: &mut Vec<(u64, u64)>) -> u64 {
    let k = (0..ready.len()).min_by_key(|&i| ready[i]).expect("ready work exists");
    ready.remove(k).1
}

proptest! {
    #[test]
    fn scheduler_matches_linear_scan(
        pes in 1usize..9,
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut sched = Scheduler::new(pes);
        let mut clocks = vec![0u64; pes];
        let mut running = vec![false; pes];
        // Reference ready queues: (ready_at, ctx id) in arrival order.
        let mut ready: Vec<Vec<(u64, u64)>> = vec![Vec::new(); pes];
        let mut next_ctx = 0u64;

        for op in ops {
            match op {
                Op::Wake { pe, at } => {
                    let pe = pe % pes;
                    ready[pe].push((at, next_ctx));
                    sched.push_ready(pe, usize::try_from(next_ctx).unwrap(), at);
                    next_ctx += 1;
                }
                Op::Step { advance, keep_running } => {
                    // The heaps must present the same ready heads as the
                    // reference queues before every decision.
                    for pe in 0..pes {
                        prop_assert_eq!(
                            sched.min_ready_at(pe),
                            ready[pe].iter().map(|&(at, _)| at).min(),
                            "ready head diverged on pe {}",
                            pe
                        );
                    }
                    let expect = linear_next_actor(&clocks, &running, &ready);
                    let got = sched.next_actor(|pe, min_ready| {
                        if running[pe] {
                            Some(clocks[pe])
                        } else {
                            min_ready.map(|r| r.max(clocks[pe]))
                        }
                    });
                    prop_assert_eq!(got, expect, "actor choice diverged");
                    let Some((pe, t)) = got else { continue };
                    if !running[pe] {
                        let want = linear_dispatch(&mut ready[pe]);
                        let got_ctx = sched.pop_ready(pe);
                        prop_assert_eq!(
                            got_ctx,
                            Some(usize::try_from(want).unwrap()),
                            "dispatch choice diverged"
                        );
                    }
                    clocks[pe] = t + 1 + advance;
                    running[pe] = keep_running;
                    let time = if keep_running {
                        Some(clocks[pe])
                    } else {
                        ready[pe]
                            .iter()
                            .map(|&(at, _)| at)
                            .min()
                            .map(|r| r.max(clocks[pe]))
                    };
                    sched.refresh(pe, time);
                }
            }
        }

        // Drain to exhaustion: the tail order must also agree.
        loop {
            let expect = linear_next_actor(&clocks, &running, &ready);
            let got = sched.next_actor(|pe, min_ready| {
                if running[pe] {
                    Some(clocks[pe])
                } else {
                    min_ready.map(|r| r.max(clocks[pe]))
                }
            });
            prop_assert_eq!(got, expect, "drain order diverged");
            let Some((pe, t)) = got else { break };
            if !running[pe] {
                let want = linear_dispatch(&mut ready[pe]);
                prop_assert_eq!(sched.pop_ready(pe), Some(usize::try_from(want).unwrap()));
            }
            clocks[pe] = t + 1;
            // Retire: the PE never keeps running in the drain phase.
            running[pe] = false;
            let time =
                ready[pe].iter().map(|&(at, _)| at).min().map(|r| r.max(clocks[pe]));
            sched.refresh(pe, time);
        }
    }
}
