//! Hardening and canonical-bytes tests for the `qm-snap/v1` format via
//! the public API: corrupt inputs yield structured errors (never
//! panics), and capture → encode → decode → restore → capture is
//! byte-identical — including for mid-run states with an armed fault
//! engine, blocked contexts and a retry in flight.
//!
//! (Dependency-free on purpose: part of the offline test gate.)

use qm_sim::snapshot::{Snapshot, SnapshotError};
use qm_sim::system::RunStatus;
use qm_sim::{FaultPlan, Simulation, System, SystemConfig};

/// Fork–join with a child per PE; enough channel traffic to leave
/// blocked contexts at most capture points.
const FORK_JOIN: &str = "
main:   trap #0,#child :r0,r1
        trap #0,#child :r2,r3
        send r0,#20
        send r2,#1
        recv r1,#0 :r4
        recv r3,#0 :r5
        plus+2 r4,r5 :r6
        send+4 #0,r6
        trap #2,#0
child:  recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";

fn paused_faulty_system() -> System {
    let mut sys = Simulation::builder()
        .config(SystemConfig::with_pes(4))
        .assembly(FORK_JOIN)
        .fault_plan(
            FaultPlan::seeded(0x5EED_CAFE)
                .with_send_loss(500_000)
                .with_bus_drops(200_000)
                .with_stall(1, 5, 30),
        )
        .build()
        .expect("assembles");
    let status = sys.run_until(60).expect("partial run");
    assert!(matches!(status, RunStatus::Paused { .. }), "workload outlives the pause point");
    sys
}

#[test]
fn mid_run_capture_round_trips_byte_identically() {
    let sys = paused_faulty_system();
    let snap = Snapshot::capture(&sys);
    assert!(snap.cycle() > 0, "capture is genuinely mid-run");
    let bytes = snap.encode();
    assert_eq!(bytes, snap.encode(), "encode is deterministic");

    let decoded = Snapshot::decode(&bytes).expect("decodes");
    assert_eq!(decoded, snap, "decode inverts encode");

    let restored = System::restore(&decoded).expect("restores");
    let recaptured = Snapshot::capture(&restored);
    assert_eq!(recaptured, snap, "capture after restore reproduces the snapshot");
    assert_eq!(recaptured.encode(), bytes, "… byte for byte");
}

#[test]
fn digests_agree_across_the_round_trip_and_track_progress() {
    let sys = paused_faulty_system();
    let snap = Snapshot::capture(&sys);
    let restored = System::restore(&snap).expect("restores");
    assert_eq!(
        Snapshot::capture(&restored).state_digest(),
        snap.state_digest(),
        "restore preserves the architectural digest"
    );
    let mut advanced = System::restore(&snap).expect("restores");
    advanced.run().expect("finishes");
    assert_ne!(
        Snapshot::capture(&advanced).state_digest(),
        snap.state_digest(),
        "running to completion changes the digest"
    );
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = Snapshot::capture(&paused_faulty_system()).encode();
    bytes[0] = b'X';
    assert_eq!(Snapshot::decode(&bytes), Err(SnapshotError::BadMagic));
    assert_eq!(Snapshot::decode(b"not a snapshot at all..."), Err(SnapshotError::BadMagic));
}

#[test]
fn unknown_versions_are_rejected_with_the_version() {
    let mut bytes = Snapshot::capture(&paused_faulty_system()).encode();
    bytes[8] = 0x2A;
    assert_eq!(Snapshot::decode(&bytes), Err(SnapshotError::UnknownVersion(0x2A)));
}

#[test]
fn every_truncation_point_errors_instead_of_panicking() {
    let bytes = Snapshot::capture(&paused_faulty_system()).encode();
    for len in 0..bytes.len() {
        let err = Snapshot::decode(&bytes[..len]).expect_err("truncated input must not decode");
        assert!(
            matches!(err, SnapshotError::Truncated(_) | SnapshotError::ChecksumMismatch { .. }),
            "truncation to {len} bytes gave {err:?}"
        );
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    let bytes = Snapshot::capture(&paused_faulty_system()).encode();
    // Flipping any payload byte must surface as *some* structured error
    // (usually a checksum mismatch; table/header flips hit the earlier
    // guards). Step a few bytes at a time to keep the test quick.
    for i in (0..bytes.len()).step_by(7) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x40;
        if let Err(e) = Snapshot::decode(&corrupt) {
            let _ = e.to_string(); // Display never panics either
        } else {
            // A flip inside the version/count/table that still decodes
            // would be a hole in the armour — only the magic's case
            // variations could legitimately survive, and they cannot.
            panic!("flip at byte {i} went undetected");
        }
    }
}

#[test]
fn io_errors_are_structured() {
    let err = Snapshot::read_from(std::path::Path::new("/nonexistent/dir/x.snap"))
        .expect_err("missing file");
    assert!(matches!(err, SnapshotError::Io(_)), "got {err:?}");
    let sys = paused_faulty_system();
    let err = Snapshot::capture(&sys)
        .write_to(std::path::Path::new("/nonexistent/dir/x.snap"))
        .expect_err("unwritable path");
    assert!(matches!(err, SnapshotError::Io(_)), "got {err:?}");
}
