//! Deterministic (dependency-free) tests of the fault-injection and
//! recovery subsystem: empty-plan bit-identity on fixed configs, seeded
//! replay, bounded retry, stall windows, trap delays and the watchdog.
//!
//! The randomized-config counterpart of the bit-identity property lives
//! in `fault_equivalence.rs` (which needs the `proptest` dev-dependency);
//! this file is kept dependency-free so offline builds retain coverage.

use qm_sim::config::Placement;
use qm_sim::system::System;
use qm_sim::{FaultPlan, RecoveryConfig, SimError, Simulation, SystemConfig, TraceEvent};

/// Fork–join kernel: main rforks a doubling child and reports 42.
const FORK_JOIN: &str = "
main:   trap #0,#child :r0,r1
        send r0,#21
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
child:  recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";

fn build(cfg: SystemConfig, plan: Option<FaultPlan>) -> System {
    let mut b = Simulation::builder().config(cfg).assembly(FORK_JOIN);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    b.build().expect("assembles")
}

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    for pes in [1usize, 2, 4, 8] {
        for capacity in [0usize, 8] {
            for placement in [Placement::RoundRobin, Placement::LeastLoaded, Placement::Local] {
                let mut cfg = SystemConfig::with_pes(pes);
                cfg.channel_capacity = capacity;
                cfg.placement = placement;
                let clean = build(cfg.clone(), None).run();
                let defaulted = build(cfg.clone(), Some(FaultPlan::default())).run();
                let seeded = build(cfg, Some(FaultPlan::seeded(0xDEAD_BEEF))).run();
                assert_eq!(clean, defaulted, "{pes} PEs, capacity {capacity}, {placement:?}");
                assert_eq!(clean, seeded, "a seed alone must not change anything");
            }
        }
    }
}

#[test]
fn faulty_run_still_computes_the_right_answer() {
    // Trap delays at 100% guarantee at least one injection regardless of
    // seed; the send/bus rates ride along probabilistically.
    let plan = FaultPlan::seeded(7)
        .with_send_loss(300_000)
        .with_bus_drops(200_000)
        .with_trap_delays(1_000_000, 16);
    let out = build(SystemConfig::with_pes(2), Some(plan)).run().expect("recovers");
    assert_eq!(out.output, vec![42], "recovery is transparent to the program");
    let d = out.degradation;
    assert!(d.total_injected() > 0, "the rates are high enough to fire: {d:?}");
    assert!(d.retries >= d.recovered_transfers, "every recovery took at least one retry");
}

#[test]
fn fixed_seed_replays_bit_identically() {
    let plan = FaultPlan::seeded(0x5EED)
        .with_send_loss(250_000)
        .with_bus_drops(100_000)
        .with_trap_delays(250_000, 12)
        .with_random_stalls(2, 40, 400);
    let a = build(SystemConfig::with_pes(4), Some(plan.clone())).run();
    let b = build(SystemConfig::with_pes(4), Some(plan)).run();
    assert_eq!(a, b, "same seed, same everything — cycles, outputs, degradation");
}

#[test]
fn different_seeds_usually_degrade_differently() {
    let run = |seed: u64| {
        let plan = FaultPlan::seeded(seed).with_send_loss(400_000);
        build(SystemConfig::with_pes(2), Some(plan)).run().expect("recovers").degradation
    };
    let reports: Vec<_> = (0..8).map(run).collect();
    assert!(
        reports.iter().any(|r| r != &reports[0]),
        "eight seeds all produced identical fault streams: {reports:?}"
    );
}

#[test]
fn bounded_retry_forces_transfers_through_at_total_loss() {
    // 100% send loss: without the retry bound this program could never
    // finish. With max_retries = 3, every non-host send is dropped
    // exactly 3 times and then forced through.
    let recovery = RecoveryConfig { max_retries: 3, ..RecoveryConfig::default() };
    let plan = FaultPlan::seeded(1).with_send_loss(1_000_000).with_recovery(recovery);
    let out = build(SystemConfig::with_pes(2), Some(plan)).run().expect("the bound saves us");
    assert_eq!(out.output, vec![42]);
    let d = out.degradation;
    assert_eq!(d.recovered_transfers, 2, "two non-host sends in the program");
    assert_eq!(d.send_drops, 6, "each dropped exactly max_retries times");
    assert_eq!(d.retries, d.send_drops + d.bus_drops);
    assert!(d.backoff_cycles > 0);
}

#[test]
fn stall_window_idles_the_pe_and_is_counted() {
    let clean = build(SystemConfig::with_pes(1), None).run().unwrap();
    // PE 0 is stalled from cycle 0: the whole program starts late.
    let plan = FaultPlan::seeded(0).with_stall(0, 0, 500);
    let out = build(SystemConfig::with_pes(1), Some(plan)).run().unwrap();
    assert_eq!(out.output, vec![42]);
    assert!(out.degradation.pe_stalls >= 1);
    assert!(out.degradation.stall_cycles >= 500);
    assert!(
        out.elapsed_cycles >= clean.elapsed_cycles + 500,
        "{} vs clean {}",
        out.elapsed_cycles,
        clean.elapsed_cycles
    );
}

#[test]
fn trap_delays_slow_the_run_down() {
    let clean = build(SystemConfig::with_pes(1), None).run().unwrap();
    let plan = FaultPlan::seeded(0).with_trap_delays(1_000_000, 50);
    let out = build(SystemConfig::with_pes(1), Some(plan)).run().unwrap();
    assert_eq!(out.output, vec![42]);
    assert!(out.degradation.trap_delays >= 2, "every trap is delayed at 100%");
    assert_eq!(out.degradation.delay_cycles, 50 * out.degradation.trap_delays);
    assert!(out.elapsed_cycles > clean.elapsed_cycles);
}

#[test]
fn watchdog_converts_retry_livelock_into_a_structured_report() {
    // 100% loss with an effectively unbounded retry budget: the send can
    // never get through, so the run loop spins on retries. The watchdog
    // must convert that livelock into a report instead of hanging.
    let recovery = RecoveryConfig {
        max_retries: u32::MAX,
        backoff_base: 1,
        backoff_cap: 4,
        watchdog_steps: 50,
    };
    let plan = FaultPlan::seeded(3).with_send_loss(1_000_000).with_recovery(recovery);
    let err = build(SystemConfig::with_pes(2), Some(plan)).run().unwrap_err();
    let SimError::Watchdog { steps, blocked, retrying } = &err else {
        panic!("expected watchdog, got {err:?}");
    };
    assert!(*steps >= 50);
    assert!(!retrying.is_empty(), "the spinning sender is reported");
    assert!(retrying[0].retries > 0);
    let report = err.to_string();
    assert!(report.contains("watchdog: no forward progress"), "report: {report}");
    assert!(report.contains("still retrying"), "report: {report}");
    let _ = blocked;
}

#[test]
fn genuine_deadlock_still_reports_deadlock_not_watchdog() {
    // A receive nobody will ever satisfy: even with faults armed, a true
    // deadlock (no runnable PE at all) must keep its precise report.
    let src = "main: recv #1,#0 :r0\n      trap #2,#0\n";
    let plan = FaultPlan::seeded(0).with_send_loss(100_000);
    let mut sys = Simulation::builder()
        .config(SystemConfig::with_pes(1))
        .assembly(src)
        .fault_plan(plan)
        .build()
        .unwrap();
    assert!(matches!(sys.run().unwrap_err(), SimError::Deadlock { .. }));
}

#[test]
fn faulty_runs_emit_fault_trace_events_and_tracing_stays_pure() {
    let plan = FaultPlan::seeded(11).with_send_loss(400_000).with_trap_delays(400_000, 8);
    let untraced = build(SystemConfig::with_pes(2), Some(plan.clone())).run().unwrap();
    let rec = qm_sim::Recorder::new(8192);
    let mut sys = Simulation::builder()
        .config(SystemConfig::with_pes(2))
        .assembly(FORK_JOIN)
        .fault_plan(plan)
        .trace(rec.sink())
        .build()
        .unwrap();
    let traced = sys.run().unwrap();
    assert_eq!(untraced, traced, "tracing a faulty run is still pure observation");
    let drops = rec.matching(|e| matches!(e, TraceEvent::FaultSendDrop { .. }));
    assert_eq!(drops.len() as u64, traced.degradation.send_drops);
    let recoveries = rec.matching(|e| matches!(e, TraceEvent::FaultRecovered { .. }));
    assert_eq!(recoveries.len() as u64, traced.degradation.recovered_transfers);
    let delays = rec.matching(|e| matches!(e, TraceEvent::FaultTrapDelay { .. }));
    assert_eq!(delays.len() as u64, traced.degradation.trap_delays);
}

#[test]
fn degradation_survives_into_the_outcome_only_when_faults_fire() {
    let clean = build(SystemConfig::with_pes(2), None).run().unwrap();
    assert!(clean.degradation.is_clean());
    let faulty =
        build(SystemConfig::with_pes(2), Some(FaultPlan::seeded(2).with_send_loss(500_000)))
            .run()
            .unwrap();
    assert!(!faulty.degradation.is_clean());
    assert_eq!(faulty.output, clean.output);
}
