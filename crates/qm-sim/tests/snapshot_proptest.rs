//! Property tests for the snapshot subsystem: for *arbitrary* mid-run
//! capture points — across PE counts, fault plans (including active
//! retry/stall state) and pause cycles — the snapshot round-trips
//! byte-identically and the restored system finishes with the exact
//! outcome of the uninterrupted run.
//!
//! (This file needs the `proptest` dev-dependency; the dependency-free
//! siblings with fixed capture points live in `snapshot_roundtrip.rs`
//! and `snapshot_resume.rs` so offline builds keep equivalent
//! coverage.)

use proptest::prelude::*;
use qm_sim::snapshot::Snapshot;
use qm_sim::system::RunStatus;
use qm_sim::{FaultPlan, Simulation, System, SystemConfig};

const PIPELINE: &str = "
main:   trap #0,#sq :r0,r1
        trap #0,#dbl :r2,r3
        send r0,#5
        send r2,#4
        recv r1,#0 :r4
        recv r3,#0 :r5
        plus+2 r4,r5 :r6
        send+4 #0,r6
        trap #2,#0
sq:     recv r17,#0 :r0
        mul+1 r0,r0 :r0
        send+1 r18,r0
        trap #2,#0
dbl:    recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";

fn plan_strategy() -> impl Strategy<Value = Option<FaultPlan>> {
    prop_oneof![
        Just(None),
        (1u64..=u64::MAX, 0u32..400_000, 0u32..200_000, 0u32..400_000).prop_map(
            |(seed, send, bus, trap)| {
                Some(
                    FaultPlan::seeded(seed)
                        .with_send_loss(send)
                        .with_bus_drops(bus)
                        .with_trap_delays(trap, 8)
                        .with_stall(0, 10, 25),
                )
            }
        ),
    ]
}

fn build(pes: usize, plan: Option<&FaultPlan>) -> System {
    let mut b = Simulation::builder().config(SystemConfig::with_pes(pes)).assembly(PIPELINE);
    if let Some(plan) = plan {
        b = b.fault_plan(plan.clone());
    }
    b.build().expect("assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Capture → encode → decode → restore → capture is byte-identical
    /// at arbitrary pause points, and the restored run's final result
    /// matches the uninterrupted run exactly (metrics, degradation,
    /// or — for runs that end in deadlock/watchdog — the identical
    /// structured error).
    #[test]
    fn arbitrary_capture_points_round_trip_and_resume((pes, plan, pause_at) in
        (1usize..=8, plan_strategy(), 0u64..2_000))
    {
        let baseline = build(pes, plan.as_ref()).run();

        let mut sys = build(pes, plan.as_ref());
        match sys.run_until(pause_at) {
            Ok(RunStatus::Done(outcome)) => {
                // Finished before the pause: nothing to capture, but the
                // outcome must still match the baseline.
                prop_assert_eq!(Ok(outcome), baseline);
            }
            Ok(RunStatus::Paused { .. }) => {
                let snap = Snapshot::capture(&sys);
                let bytes = snap.encode();
                let decoded = Snapshot::decode(&bytes).expect("decodes");
                prop_assert_eq!(&decoded, &snap, "decode inverts encode");
                let restored = System::restore(&decoded).expect("restores");
                let recaptured = Snapshot::capture(&restored);
                prop_assert_eq!(recaptured.encode(), bytes, "byte-identical re-capture");

                let mut resumed = System::restore(&decoded).expect("restores again");
                prop_assert_eq!(resumed.run(), baseline, "resumed result matches");
            }
            Err(e) => {
                // The run failed before the pause (fault-injected
                // watchdog/deadlock): the uninterrupted run must fail
                // identically.
                prop_assert_eq!(Err(e), baseline);
            }
        }
    }
}
