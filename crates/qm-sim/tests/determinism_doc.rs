//! Keeps `docs/DETERMINISM.md` honest, the way `isa_doc.rs` does for the
//! ISA reference: the contract document must name the real API surface
//! it describes, and every test file its pinning table cites must exist
//! in the tree — so renaming a test or an entry point fails here until
//! the contract is updated with it.

const DOC: &str = include_str!("../../../docs/DETERMINISM.md");

/// API anchors the contract describes: each must appear backticked (as
/// part of a path or call) so prose drift can't mask a rename.
const API_ANCHORS: [&str; 10] = [
    "qm_sim::rng::mix",
    "qm_sim::rng::draw",
    "qm_sim::rng::checksum",
    "Snapshot::state_digest",
    "Snapshot::capture",
    "System::set_shards",
    ".shards(n)",
    "WorkloadRun::shards",
    "Backend::Translated",
    "WorkloadRun::backend",
];

#[test]
fn the_contract_names_the_real_api_surface() {
    let missing: Vec<&str> = API_ANCHORS.iter().filter(|a| !DOC.contains(**a)).copied().collect();
    assert!(missing.is_empty(), "docs/DETERMINISM.md no longer mentions: {missing:?}");
}

/// The repository root, whether the test runs under cargo (cwd is the
/// crate dir) or the offline harness (cwd is the repo root).
fn repo_root() -> std::path::PathBuf {
    let base = std::path::PathBuf::from(option_env!("CARGO_MANIFEST_DIR").unwrap_or("."));
    for cand in [base.join("../.."), base] {
        if cand.join("docs/DETERMINISM.md").exists() {
            return cand;
        }
    }
    panic!("repository root not found from the test's working directory");
}

#[test]
fn every_cited_test_file_exists() {
    // The pinning table cites repo-relative paths in backticks; check
    // each `crates/...` or `tests/...` citation against the tree.
    let root = repo_root();
    let mut cited = 0;
    for token in DOC.split('`').skip(1).step_by(2) {
        if !(token.starts_with("crates/") || token.starts_with("tests/")) {
            continue;
        }
        cited += 1;
        assert!(
            root.join(token).exists(),
            "docs/DETERMINISM.md cites `{token}`, which does not exist"
        );
    }
    assert!(cited >= 10, "the pinning table shrank to {cited} citations — update the doc test");
}

#[test]
fn the_contract_covers_every_promised_section() {
    for heading in [
        "## What is deterministic",
        "## Random numbers",
        "## The run loop's total order",
        "## `state_digest`",
        "## Snapshots",
        "## Sharded execution",
        "## Translated execution",
        "## How each suite pins the contract",
    ] {
        assert!(DOC.contains(heading), "docs/DETERMINISM.md lost the section {heading:?}");
    }
}

#[test]
fn backend_documented_as_interp_equivalent() {
    // The load-bearing claims of the translated-execution section: the
    // backend is not machine state, and the only unspecified state is
    // behind an instruction-budget abort.
    assert!(DOC.contains("snapshots carry no backend"));
    assert!(DOC.contains("SimError::InstructionBudget"));
}

#[test]
fn shard_api_documented_as_serial_equivalent() {
    // The load-bearing sentence of the sharded section: shards(1) is the
    // serial scheduler, and snapshot bytes carry no shard count.
    assert!(DOC.contains("shard-count-invariant"));
    assert!(DOC.contains("bit-identical"));
    assert!(DOC.contains("consumption barrier"));
}
