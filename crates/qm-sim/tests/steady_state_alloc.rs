//! Proof that the simulator's steady-state path performs **zero heap
//! allocations per step** once warm.
//!
//! The test installs a counting `#[global_allocator]` (this file is its
//! own test binary, so the counter sees nothing but this test and the
//! libtest harness), runs a two-context channel ping-pong long enough
//! for every pool to reach its high-water mark — scheduler heap,
//! channel wait queues, per-context ack/ready slots, memory pages — and
//! then asserts that further simulation windows allocate nothing.
//!
//! The workload deliberately exercises the whole hot path on every
//! iteration: a send that blocks, a context switch (window rollout to
//! the memory queue page), a rendezvous wake, a scheduler re-plant and
//! a dispatch (window restore). A regression anywhere on that path — a
//! per-step `Vec`, a cloned map, a rebuilt report — shows up as a
//! non-zero count in *every* measurement window.
//!
//! This file holds exactly one `#[test]` so no sibling test can
//! allocate concurrently with a measurement window. Harness bookkeeping
//! on other threads is still theoretically possible, so each
//! configuration takes the minimum over three consecutive windows: a
//! real per-step allocation pollutes all three; stray noise cannot.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use qm_sim::config::SystemConfig;
use qm_sim::system::{RunStatus, System};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers to the system allocator; the counter is side-effect-only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Main forks one echo child, then ping-pongs a value through a channel
/// pair tens of thousands of times. Channel ids and the loop counter
/// live in globals (not consumed on read); each received value passes
/// through a window slot so the queue-register path is exercised too.
/// The final iteration sends 0, which the child echoes and treats as
/// its retire signal.
const PING_PONG: &str = "
main:   trap #0,#child :r0,r1
        plus r0,#0 :r19          ; to-child channel
        plus r1,#0 :r20          ; from-child channel
        plus #40000,#0 :r17      ; ping count
loop:   send r19,#5
        recv r20,#0 :r2
        plus r2,#0 :r21          ; drain the window slot
        minus r17,#1 :r17
        bne r17,@loop
        send r19,#0              ; poison pill
        recv r20,#0 :r2
        plus r2,#0 :r21
        trap #2,#0
child:  plus r17,#0 :r25         ; inbound channel
        plus r18,#0 :r26         ; outbound channel
cl:     recv r25,#0 :r2
        plus r2,#0 :r27
        send r26,r27             ; echo
        bne r27,@cl              ; a 0 echo means retire
        trap #2,#0
";

/// Warm the system up, then assert that three consecutive simulation
/// windows of `window` cycles each allocate nothing (minimum over the
/// three, to discount test-harness noise from other threads).
fn assert_zero_steady_state(pes: usize, capacity: usize) {
    let mut cfg = SystemConfig::with_pes(pes);
    cfg.channel_capacity = capacity;
    let mut sys = System::with_assembly(cfg, PING_PONG).expect("assembles");

    let warmup = 60_000;
    let window = 150_000;
    match sys.run_until(warmup).expect("warm-up runs") {
        RunStatus::Paused { .. } => {}
        RunStatus::Done(_) => panic!("workload must outlive the warm-up window"),
    }

    let mut deltas = [0u64; 3];
    for (i, d) in deltas.iter_mut().enumerate() {
        let limit = warmup + window * (i as u64 + 1);
        let before = alloc_count();
        match sys.run_until(limit).expect("measurement window runs") {
            RunStatus::Paused { .. } => {}
            RunStatus::Done(_) => panic!("workload must outlive window {i}"),
        }
        *d = alloc_count() - before;
    }
    let min = *deltas.iter().min().expect("three windows");
    assert_eq!(
        min, 0,
        "steady-state path allocated (pes={pes} capacity={capacity}): \
         window deltas {deltas:?} over {window}-cycle windows"
    );

    // The program still completes correctly after the instrumented
    // windows — the measurement did not wedge the machine.
    match sys.run_until(u64::MAX).expect("completes") {
        RunStatus::Done(out) => assert!(out.output.is_empty()),
        RunStatus::Paused { .. } => unreachable!("u64::MAX cannot pause"),
    }
}

#[test]
fn steady_state_makes_zero_allocations_per_step() {
    // One PE: every transfer context-switches (the cholesky/1pe regime
    // the scheduler fix targets). Two PEs: cross-PE rendezvous and
    // wake-ups. Capacity 0 forces pure rendezvous; capacity 8 exercises
    // the buffered message-cache path.
    for (pes, capacity) in [(1, 0), (1, 8), (2, 0), (2, 8)] {
        assert_zero_steady_state(pes, capacity);
    }
}
