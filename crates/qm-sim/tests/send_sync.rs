//! Thread-mobility audit for the serving layer.
//!
//! `qm-serve` moves work between threads: job specs and snapshots cross
//! worker boundaries, and a preempted job's `System` is dropped on one
//! worker and rebuilt (from its snapshot) on another. That only stays
//! sound if these types keep their auto traits, so this test pins them —
//! losing `Send` on `System` (e.g. by storing an `Rc` or a non-`Send`
//! trait object) becomes a compile failure here, not a runtime surprise
//! in the server.

use qm_sim::fault::FaultPlan;
use qm_sim::snapshot::Snapshot;
use qm_sim::system::{RunOutcome, SimError, System};
use qm_sim::SystemConfig;

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn serving_types_are_thread_mobile() {
    // A System owns a `Box<dyn TraceSink>` (Send, not Sync), so the
    // whole machine is Send — movable into a worker thread — but
    // deliberately not Sync: concurrent shared access to a running
    // simulation is never sound.
    assert_send::<System>();

    // Everything that crosses worker threads by value or by Arc.
    assert_send_sync::<Snapshot>();
    assert_send_sync::<SystemConfig>();
    assert_send_sync::<FaultPlan>();
    assert_send_sync::<RunOutcome>();
    assert_send_sync::<SimError>();
    assert_send_sync::<qm_verify::Report>();
}
