//! Sharded execution: serial equivalence and shard-boundary edge cases.
//!
//! The determinism contract (docs/DETERMINISM.md) promises that a run
//! with `shards = n` is **bit-identical** to the serial scheduler for
//! every observable: the `RunOutcome` (cycles, per-PE statistics, bus
//! traffic), the structured trace stream, fault draws, snapshot bytes
//! and the `state_digest` at every pause boundary. These tests pin the
//! contract on deliberately awkward shapes — one PE with many shards,
//! more shards than PEs, fault stall windows straddling a shard
//! boundary, snapshot cadences and cross-shard-count restore.
//!
//! (Dependency-free on purpose: this file is part of the offline test
//! gate; see `tests/shard_equivalence.rs` for the proptest sibling.)

use qm_sim::config::{Placement, SystemConfig};
use qm_sim::snapshot::Snapshot;
use qm_sim::system::{RunOutcome, RunStatus, System};
use qm_sim::trace::{Recorder, TraceRecord};
use qm_sim::{FaultPlan, Simulation};

/// Fan-out with per-worker compute loops: three workers each run a
/// counted local loop (`plus`/`minus`/`bne` — all shard-local
/// instructions), so the sharded engine's frontiers get long private
/// runs between the channel rendezvous that force serialization.
/// Expected host output: `3·(40 + 25 + 13) = 234`.
const COMPUTE_FAN_OUT: &str = "
main:   trap #0,#w :r0,r1
        trap #0,#w :r2,r3
        trap #0,#w :r4,r5
        send r0,#40
        send r2,#25
        send r4,#13
        recv r1,#0 :r6
        recv r3,#0 :r7
        recv r5,#0 :r8
        plus r6,r7 :r9
        plus r9,r8 :r10
        send #0,r10
        trap #2,#0
w:      plus r17,#0 :r25         ; inbound channel
        plus r18,#0 :r26         ; outbound channel
        recv r25,#0 :r2
        plus r2,#0 :r27          ; loop counter n
        plus #0,#0 :r28          ; accumulator
wl:     plus r28,#3 :r28
        minus r27,#1 :r27
        bne r27,@wl
        send r26,r28             ; 3·n
        trap #2,#0
";

fn build(pes: usize, shards: usize, plan: Option<FaultPlan>, rec: Option<&Recorder>) -> System {
    let mut b = Simulation::builder()
        .config(SystemConfig::with_pes(pes))
        .assembly(COMPUTE_FAN_OUT)
        .shards(shards);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    if let Some(rec) = rec {
        b = b.trace(rec.sink());
    }
    b.build().expect("assembles")
}

fn run_traced(pes: usize, shards: usize) -> (RunOutcome, Vec<TraceRecord>, u64) {
    let rec = Recorder::new(1 << 16);
    let mut sys = build(pes, shards, None, Some(&rec));
    let out = sys.run().expect("runs");
    let digest = Snapshot::capture(&sys).state_digest();
    (out, rec.records(), digest)
}

#[test]
fn sharded_run_is_bit_identical_to_serial() {
    for pes in [1, 2, 4, 8] {
        let (baseline, base_records, base_digest) = run_traced(pes, 1);
        assert_eq!(baseline.output, vec![234], "{pes} PEs");
        for shards in [2, 3, 4, 8] {
            let (out, records, digest) = run_traced(pes, shards);
            assert_eq!(out, baseline, "outcome, pes={pes} shards={shards}");
            assert_eq!(records, base_records, "trace, pes={pes} shards={shards}");
            assert_eq!(digest, base_digest, "digest, pes={pes} shards={shards}");
        }
    }
}

#[test]
fn shard_count_far_exceeding_pes_is_clamped_not_rejected() {
    let (baseline, _, base_digest) = run_traced(2, 1);
    let (out, _, digest) = run_traced(2, 1024);
    assert_eq!(out, baseline);
    assert_eq!(digest, base_digest);
}

#[test]
fn set_shards_zero_normalizes_to_one() {
    let mut sys = build(2, 1, None, None);
    sys.set_shards(0);
    assert_eq!(sys.shards(), 1, "0 means serial, not a panic");
    sys.set_shards(7);
    assert_eq!(sys.shards(), 7);
}

#[test]
fn least_loaded_placement_stays_equivalent_under_sharding() {
    // LeastLoaded breaks placement ties on PE clocks, which the sharded
    // engine must present at their *serial* values (pending frontier
    // steps excluded) or forks land on different PEs.
    let mk = |shards: usize| {
        let mut cfg = SystemConfig::with_pes(4);
        cfg.placement = Placement::LeastLoaded;
        let mut sys = Simulation::builder()
            .config(cfg)
            .assembly(COMPUTE_FAN_OUT)
            .shards(shards)
            .build()
            .expect("assembles");
        let out = sys.run().expect("runs");
        (out, Snapshot::capture(&sys).state_digest())
    };
    let (baseline, base_digest) = mk(1);
    assert_eq!(baseline.output, vec![234]);
    for shards in [2, 4] {
        let (out, digest) = mk(shards);
        assert_eq!(out, baseline, "shards={shards}");
        assert_eq!(digest, base_digest, "shards={shards}");
    }
}

#[test]
fn fault_windows_across_shard_boundaries_replay_identically() {
    // pes=4, shards=2 splits PEs 0–1 | 2–3; the stall windows cover the
    // boundary pair (1, 2) so fault draws interleave with frontier
    // rollback/parking on both sides of the split.
    let plan = || {
        FaultPlan::seeded(0xDEAD_BEA7)
            .with_send_loss(200_000)
            .with_bus_drops(120_000)
            .with_trap_delays(300_000, 9)
            .with_stall(1, 5, 60)
            .with_stall(2, 20, 90)
    };
    let run = |shards: usize| {
        let rec = Recorder::new(1 << 16);
        let mut sys = build(4, shards, Some(plan()), Some(&rec));
        let out = sys.run().expect("runs");
        (out, rec.records(), Snapshot::capture(&sys).state_digest())
    };
    let (baseline, base_records, base_digest) = run(1);
    assert_eq!(baseline.output, vec![234]);
    for shards in [2, 4] {
        let (out, records, digest) = run(shards);
        assert_eq!(out, baseline, "shards={shards}");
        assert_eq!(records, base_records, "shards={shards}");
        assert_eq!(digest, base_digest, "shards={shards}");
    }
}

#[test]
fn pause_boundaries_quiesce_with_matching_digests() {
    // run_until must consume every pending frontier step before pausing
    // (a mid-quantum capture is normalized to a consumption barrier), so
    // the digest at each pause equals the serial one and the stitched
    // run finishes identically.
    let (baseline, _, _) = run_traced(4, 1);
    for pause_at in [1, 25, 60, 120, 250, 500] {
        let mut serial = build(4, 1, None, None);
        let mut sharded = build(4, 4, None, None);
        let s1 = serial.run_until(pause_at).expect("serial half");
        let s2 = sharded.run_until(pause_at).expect("sharded half");
        assert_eq!(
            Snapshot::capture(&serial).state_digest(),
            Snapshot::capture(&sharded).state_digest(),
            "pause digest at {pause_at}"
        );
        let finish = |sys: &mut System, status: RunStatus| match status {
            RunStatus::Done(o) => o,
            RunStatus::Paused { .. } => sys.run().expect("second half"),
        };
        assert_eq!(finish(&mut serial, s1), baseline, "serial stitched at {pause_at}");
        assert_eq!(finish(&mut sharded, s2), baseline, "sharded stitched at {pause_at}");
    }
}

#[test]
fn snapshots_cross_shard_counts_both_ways() {
    // Snapshot bytes are shard-count-invariant: capture under the serial
    // scheduler, resume sharded — and the reverse — both finish the
    // baseline run exactly.
    let (baseline, _, _) = run_traced(4, 1);
    for (cap_shards, resume_shards) in [(1, 4), (4, 1), (2, 8)] {
        let mut sys = build(4, cap_shards, None, None);
        match sys.run_until(90).expect("first half") {
            RunStatus::Done(_) => panic!("program must outlive the pause"),
            RunStatus::Paused { .. } => {}
        }
        let bytes = Snapshot::capture(&sys).encode();
        let snap = Snapshot::decode(&bytes).expect("decodes");
        let mut resumed = System::restore(&snap).expect("restores");
        resumed.set_shards(resume_shards);
        let out = resumed.run().expect("second half");
        assert_eq!(out, baseline, "capture@{cap_shards} → resume@{resume_shards}");
    }
}

#[test]
fn cadence_snapshot_files_are_byte_identical_serial_vs_sharded() {
    // Both runs use the *same* directory (sequentially) because the
    // cadence configuration — directory path included — is part of the
    // captured state, so different dirs would differ trivially.
    let dir = std::env::temp_dir().join(format!("qm-shard-cadence-{}", std::process::id()));
    let capture = |shards: usize| -> Vec<(std::ffi::OsString, Vec<u8>)> {
        std::fs::create_dir_all(&dir).unwrap();
        let mut sys = Simulation::builder()
            .config(SystemConfig::with_pes(4))
            .assembly(COMPUTE_FAN_OUT)
            .shards(shards)
            .snapshot_every(64)
            .snapshot_dir(dir.to_str().unwrap())
            .build()
            .expect("builds");
        sys.run().expect("runs");
        let mut v: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "snap"))
            .collect();
        v.sort();
        let files =
            v.iter().map(|p| (p.file_name().unwrap().to_owned(), std::fs::read(p).unwrap()));
        let files = files.collect();
        std::fs::remove_dir_all(&dir).ok();
        files
    };
    let serial = capture(1);
    let sharded = capture(4);
    assert!(!serial.is_empty(), "cadence produced snapshots");
    assert_eq!(serial.len(), sharded.len(), "same snapshot schedule");
    for ((an, ab), (bn, bb)) in serial.iter().zip(&sharded) {
        assert_eq!(an, bn, "same capture cycles");
        assert_eq!(ab, bb, "snapshot bytes diverged at {an:?}");
    }
}
