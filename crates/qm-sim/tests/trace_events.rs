//! Integration coverage for the structured trace layer: a multi-context
//! program recorded end-to-end, the Chrome exporter's JSON shape, and the
//! guarantee that tracing never perturbs the simulation.

use qm_sim::config::SystemConfig;
use qm_sim::msg::ChanDir;
use qm_sim::system::System;
use qm_sim::trace::{ChromeTrace, Recorder, TraceEvent};

/// Four children each double a value; main scatters and gathers.
const FAN_OUT: &str = "
main:   trap #0,#child :r0,r1
        trap #0,#child :r2,r3
        trap #0,#child :r4,r5
        trap #0,#child :r6,r7
        send r0,#1
        send r2,#2
        send r4,#3
        send r6,#4
        recv r1,#0 :r8
        recv r3,#0 :r9
        recv r5,#0 :r10
        recv r7,#0 :r11
        plus r8,r9 :r12
        plus r10,r11 :r13
        plus r12,r13 :r14
        send #0,r14
        trap #2,#0
child:  recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";

fn traced_system(pes: usize, capacity: usize) -> (System, Recorder) {
    let mut cfg = SystemConfig::with_pes(pes);
    cfg.channel_capacity = capacity;
    let mut sys = System::with_assembly(cfg, FAN_OUT).unwrap();
    let rec = Recorder::new(1 << 16);
    sys.set_trace_sink(rec.sink());
    (sys, rec)
}

#[test]
fn fan_out_run_produces_a_complete_event_stream() {
    let (mut sys, rec) = traced_system(4, 8);
    let out = sys.run().unwrap();
    assert_eq!(out.output, vec![20]);

    let forks = rec.matching(|e| matches!(e, TraceEvent::Fork { .. }));
    assert_eq!(forks.len(), 4, "one fork event per child");
    for f in &forks {
        assert!(matches!(f.event, TraceEvent::Fork { parent: 0, .. }));
    }

    let retires = rec.matching(|e| matches!(e, TraceEvent::CtxRetire { .. }));
    assert_eq!(retires.len(), 5, "main and all four children retire");

    // Every completed channel transfer shows up as a send and a recv
    // event; child results plus the host report.
    let sends = rec.matching(|e| matches!(e, TraceEvent::ChanSend { .. }));
    let recvs = rec.matching(|e| matches!(e, TraceEvent::ChanRecv { .. }));
    assert_eq!(sends.len() as u64, out.pes.iter().map(|p| p.stats.sends).sum::<u64>());
    assert_eq!(recvs.len() as u64, out.pes.iter().map(|p| p.stats.recvs).sum::<u64>());

    // With message-cache slots free, scattered sends park as cache hits.
    let hits = rec.matching(|e| matches!(e, TraceEvent::CacheHit { .. }));
    assert!(!hits.is_empty(), "capacity-8 sends park in the message cache");

    // Kernel traps cover the forks, the retires and the halt-free end.
    let traps = rec.matching(|e| matches!(e, TraceEvent::KernelTrap { .. }));
    assert_eq!(traps.len() as u64, out.pes.iter().map(|p| p.stats.traps).sum::<u64>());

    // Every block names the channel it parked on and is eventually
    // matched by a wake on the same channel (no lost wakeups).
    let blocks = rec.matching(|e| matches!(e, TraceEvent::CtxBlock { .. }));
    let wakes = rec.matching(|e| matches!(e, TraceEvent::CtxWake { .. }));
    for b in &blocks {
        let TraceEvent::CtxBlock { ctx, chan, dir, pc, .. } = b.event else { unreachable!() };
        assert!(pc > 0, "blocked PC recorded");
        let _ = (ctx, chan, dir);
    }
    assert!(
        wakes.len() <= blocks.len(),
        "every wake corresponds to a block ({} wakes, {} blocks)",
        wakes.len(),
        blocks.len()
    );
    assert_eq!(rec.dropped(), 0);
}

#[test]
fn pure_rendezvous_run_records_rendezvous_events() {
    let (mut sys, rec) = traced_system(2, 0);
    let out = sys.run().unwrap();
    assert_eq!(out.output, vec![20]);
    let rendezvous = rec.matching(|e| matches!(e, TraceEvent::Rendezvous { .. }));
    assert!(!rendezvous.is_empty(), "capacity-0 transfers complete as rendezvous");
    let spills = rec.matching(|e| matches!(e, TraceEvent::CacheSpill { .. }));
    let hits = rec.matching(|e| matches!(e, TraceEvent::CacheHit { .. }));
    assert!(hits.is_empty(), "no cache slots, no hits");
    // A blocked send on an empty rendezvous channel parks as a spill.
    assert!(!spills.is_empty(), "sender-first transfers spill to the blocked queue");
    for s in &spills {
        assert!(matches!(s.event, TraceEvent::CacheSpill { senders: 1, .. }));
    }
    let blocks = rec.matching(|e| matches!(e, TraceEvent::CtxBlock { dir: ChanDir::Send, .. }));
    assert!(!blocks.is_empty(), "the spilling sender blocks");
}

#[test]
fn tracing_never_perturbs_the_run() {
    for (pes, capacity) in [(1, 8), (2, 0), (4, 8)] {
        let mut cfg = SystemConfig::with_pes(pes);
        cfg.channel_capacity = capacity;
        let mut plain = System::with_assembly(cfg.clone(), FAN_OUT).unwrap();
        let untraced = plain.run().unwrap();
        let mut cfg2 = SystemConfig::with_pes(pes);
        cfg2.channel_capacity = capacity;
        let mut sys = System::with_assembly(cfg2, FAN_OUT).unwrap();
        let rec = Recorder::new(1 << 16);
        sys.set_trace_sink(rec.sink());
        let traced = sys.run().unwrap();
        assert_eq!(untraced, traced, "pes={pes} capacity={capacity}");
    }
}

#[test]
fn chrome_export_is_well_formed_and_lane_complete() {
    let mut cfg = SystemConfig::with_pes(4);
    cfg.channel_capacity = 8;
    let mut sys = System::with_assembly(cfg, FAN_OUT).unwrap();
    let chrome = ChromeTrace::new();
    sys.set_trace_sink(chrome.sink());
    sys.run().unwrap();

    let json = chrome.to_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with('}'));
    // Balanced slices: every B has an E (to_json closes stragglers).
    assert_eq!(
        json.matches("\"ph\":\"B\"").count(),
        json.matches("\"ph\":\"E\"").count(),
        "balanced duration slices"
    );
    // One process lane per PE that did work, named contexts.
    assert!(json.contains("\"name\":\"PE 0\""));
    assert!(json.contains("\"name\":\"ctx0\""));
    assert!(json.contains("\"name\":\"process_name\""));
    assert!(json.contains("\"name\":\"thread_name\""));
    // Instant events carry thread scope.
    assert!(json.contains("\"ph\":\"i\""));
    assert!(json.contains("\"s\":\"t\""));
    // Braces balance (cheap structural sanity without a JSON parser).
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "balanced braces");
    // No trailing comma before the closing bracket.
    assert!(!json.contains(",\n]"));
}
