//! Stable `qm-api/v1` wire format for simulator results.
//!
//! Every result type the simulator hands to callers — [`RunOutcome`],
//! [`DegradationReport`], and the architectural
//! [`state_digest`](crate::snapshot::Snapshot::state_digest) — gains a
//! `to_json()` rendering into the versioned envelope of
//! [`qm_core::json`]:
//!
//! ```json
//! {"schema":"qm-api/v1","kind":"run_outcome","data":{…}}
//! ```
//!
//! This is the serving contract: `qm-serve` answers HTTP requests with
//! these envelopes, `qm-bench` bins embed the same bodies in their
//! sweep files, and the golden-file tests in
//! `crates/qm-bench/tests/api_golden.rs` pin the exact bytes so wire
//! drift fails CI. Field additions keep `qm-api/v1`; renames, removals
//! or retypes require bumping the envelope version (`docs/API.md` has
//! the full rules and per-kind field tables).

use qm_core::json::{Envelope, JsonBuf};

use crate::fault::DegradationReport;
use crate::system::{PeReport, RunOutcome};

/// Render a 64-bit architectural state digest as its canonical wire
/// form: a fixed-width, zero-padded hex string (`"0x" + 16 digits`),
/// never a JSON number (53-bit mantissas would corrupt it in
/// double-precision clients).
#[must_use]
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:#018x}")
}

/// The `state_digest` envelope: the digest of a
/// [`Snapshot`](crate::snapshot::Snapshot) at a given cycle.
#[must_use]
pub fn state_digest_json(digest: u64, cycle: u64) -> String {
    Envelope::render("state_digest", |j| {
        j.str_field("digest", &digest_hex(digest));
        j.u64_field("cycle", cycle);
    })
}

/// Write the `data` body of a [`DegradationReport`] (shared between its
/// own envelope and its embedding inside `run_outcome`).
pub fn write_degradation(j: &mut JsonBuf, d: &DegradationReport) {
    j.u64_field("send_drops", d.send_drops);
    j.u64_field("bus_drops", d.bus_drops);
    j.u64_field("pe_stalls", d.pe_stalls);
    j.u64_field("trap_delays", d.trap_delays);
    j.u64_field("retries", d.retries);
    j.u64_field("recovered_transfers", d.recovered_transfers);
    j.u64_field("stall_cycles", d.stall_cycles);
    j.u64_field("backoff_cycles", d.backoff_cycles);
    j.u64_field("delay_cycles", d.delay_cycles);
}

fn write_pe(j: &mut JsonBuf, p: &PeReport) {
    j.begin_obj();
    j.u64_field("cycles", p.cycles);
    j.u64_field("busy_cycles", p.busy_cycles);
    j.u64_field("instructions", p.stats.instructions);
    j.u64_field("window_hits", p.stats.window_hits);
    j.u64_field("window_misses", p.stats.window_misses);
    j.u64_field("mem_reads", p.stats.mem_reads);
    j.u64_field("mem_writes", p.stats.mem_writes);
    j.u64_field("sends", p.stats.sends);
    j.u64_field("recvs", p.stats.recvs);
    j.u64_field("traps", p.stats.traps);
    j.u64_field("context_switches", p.stats.context_switches);
    j.u64_field("rollouts", p.stats.rollouts);
    j.end_obj();
}

/// Write the `data` body of a [`RunOutcome`] (shared between its own
/// envelope and the job-result envelope `qm-serve` returns).
pub fn write_run_outcome(j: &mut JsonBuf, o: &RunOutcome) {
    j.key("output");
    j.begin_arr();
    for &w in &o.output {
        j.i64_val(i64::from(w));
    }
    j.end_arr();
    j.u64_field("elapsed_cycles", o.elapsed_cycles);
    j.u64_field("instructions", o.instructions);
    j.u64_field("contexts_created", o.contexts_created);
    j.u64_field("peak_live_contexts", o.peak_live_contexts);
    j.u64_field("channel_transfers", o.channel_transfers);
    j.key("mem");
    j.begin_obj();
    j.u64_field("local_accesses", o.mem.local_accesses);
    j.u64_field("remote_accesses", o.mem.remote_accesses);
    j.u64_field("bus_cycles", o.mem.bus_cycles);
    j.end_obj();
    j.key("degradation");
    j.begin_obj();
    write_degradation(j, &o.degradation);
    j.end_obj();
    j.key("pes");
    j.begin_arr();
    for p in &o.pes {
        write_pe(j, p);
    }
    j.end_arr();
}

impl RunOutcome {
    /// Serialise as a `qm-api/v1` `run_outcome` envelope.
    #[must_use]
    pub fn to_json(&self) -> String {
        Envelope::render("run_outcome", |j| write_run_outcome(j, self))
    }
}

impl DegradationReport {
    /// Serialise as a `qm-api/v1` `degradation_report` envelope.
    #[must_use]
    pub fn to_json(&self) -> String {
        Envelope::render("degradation_report", |j| write_degradation(j, self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_hex_is_fixed_width() {
        assert_eq!(digest_hex(0), "0x0000000000000000");
        assert_eq!(digest_hex(u64::MAX), "0xffffffffffffffff");
        assert_eq!(digest_hex(0x1234), "0x0000000000001234");
    }

    #[test]
    fn state_digest_envelope_shape() {
        let json = state_digest_json(0xABC, 42);
        assert_eq!(
            json,
            "{\"schema\":\"qm-api/v1\",\"kind\":\"state_digest\",\
             \"data\":{\"digest\":\"0x0000000000000abc\",\"cycle\":42}}"
        );
    }

    #[test]
    fn degradation_envelope_carries_every_counter() {
        let d = DegradationReport { send_drops: 1, retries: 2, ..DegradationReport::default() };
        let json = d.to_json();
        assert!(json.contains("\"kind\":\"degradation_report\""), "{json}");
        assert!(json.contains("\"send_drops\":1"), "{json}");
        assert!(json.contains("\"retries\":2"), "{json}");
        assert!(json.contains("\"delay_cycles\":0"), "{json}");
    }

    #[test]
    fn run_outcome_envelope_from_a_real_run() {
        let src = "
main:   send+3 #0,#7
        trap #3,#0
";
        let mut sys = crate::Simulation::builder().assembly(src).build().unwrap();
        let outcome = sys.run().unwrap();
        let json = outcome.to_json();
        assert!(json.starts_with("{\"schema\":\"qm-api/v1\",\"kind\":\"run_outcome\""), "{json}");
        assert!(json.contains("\"output\":[7]"), "{json}");
        assert!(json.contains(&format!("\"elapsed_cycles\":{}", outcome.elapsed_cycles)), "{json}");
        assert!(json.contains("\"degradation\":{\"send_drops\":0"), "{json}");
        // The body parses back with the shared parser.
        let v = qm_core::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("kind").and_then(qm_core::json::JsonValue::as_str), Some("run_outcome"));
    }
}
