//! Versioned snapshot/restore of the complete machine state (`qm-snap/v1`).
//!
//! A [`Snapshot`] is the simulator's *instantaneous description*: every
//! PE (window registers, presence bits, globals, clock, statistics),
//! the context and channel tables, both memory planes, the scheduler's
//! ready queues, the fault engine's draw counters and the run-loop
//! scalars. The defining invariant, pinned by `tests/snapshot_resume.rs`
//! and the round-trip proptest:
//!
//! > **Restore-then-run is bit-identical to an uninterrupted run** —
//! > metrics, trace events and fault draws included.
//!
//! Two design points make that invariant cheap to keep:
//!
//! * Snapshots are only taken at run-loop *step boundaries* (between
//!   instructions), where the deferred trace buffers are empty and no
//!   transfer is half-done — [`System::run_until`] pauses exactly there.
//! * The scheduler's lazy actor heap is *not* state: the run loop
//!   rebuilds it on entry, and its selection is invariant over any hint
//!   multiset (see [`crate::sched`]). Only the ready queues and the
//!   arrival counter are captured.
//!
//! # Wire format (`qm-snap/v1`)
//!
//! Little-endian throughout:
//!
//! ```text
//! magic   8 bytes  "qm-snap\0"
//! version u32      1
//! count   u32      number of sections
//! table   count × { tag u32, offset u64, length u64, checksum u64 }
//! payload concatenated section bodies (offsets relative to here)
//! ```
//!
//! Checksums are [`rng::checksum`] over each section body. Decoding
//! rejects a wrong magic, an unknown version, truncated or overlapping
//! sections and checksum mismatches with a structured
//! [`SnapshotError`] — never a panic. Every collection is serialized in
//! a canonical (sorted) order, so `capture → encode → decode → restore
//! → capture → encode` reproduces the bytes exactly.
//!
//! Versioning policy: the version is bumped on any layout change; old
//! versions are not migrated (a snapshot is a working artifact of one
//! simulator build, not an archive format). Decode reports
//! [`SnapshotError::UnknownVersion`] so callers can fail cleanly.

use std::collections::HashMap;
use std::path::Path;

use qm_isa::asm::Object;
use qm_isa::pe::{CycleModel, PeStats};
use qm_isa::regs::WINDOW_SIZE;

use crate::config::{BusCosts, KernelCosts, Placement, RecoveryConfig, SystemConfig};
use crate::fault::{DegradationReport, FaultEngine};
use crate::kernel::{Context, CtxState};
use crate::memory::MemStats;
use crate::msg::ChannelSnap;
use crate::rng;
use crate::sched::Scheduler;
use crate::system::System;
use crate::{CtxId, UWord, Word};

/// Snapshot format version (`qm-snap/v1`).
pub const VERSION: u32 = 1;

const MAGIC: [u8; 8] = *b"qm-snap\0";
const HEADER_LEN: usize = 16;
const TABLE_ENTRY_LEN: usize = 28;

/// Section tags of the `qm-snap/v1` layout.
mod tag {
    pub const CONFIG: u32 = 1;
    pub const MEMORY: u32 = 2;
    pub const CHANNELS: u32 = 3;
    pub const PES: u32 = 4;
    pub const CONTEXTS: u32 = 5;
    pub const SCHED: u32 = 6;
    pub const PAGES: u32 = 7;
    pub const FAULTS: u32 = 8;
    pub const SYSTEM: u32 = 9;
    pub const SYMBOLS: u32 = 10;
    pub const ALL: [u32; 10] =
        [CONFIG, MEMORY, CHANNELS, PES, CONTEXTS, SCHED, PAGES, FAULTS, SYSTEM, SYMBOLS];

    pub fn name(t: u32) -> &'static str {
        match t {
            CONFIG => "config",
            MEMORY => "memory",
            CHANNELS => "channels",
            PES => "pes",
            CONTEXTS => "contexts",
            SCHED => "sched",
            PAGES => "pages",
            FAULTS => "faults",
            SYSTEM => "system",
            SYMBOLS => "symbols",
            _ => "unknown",
        }
    }
}

/// Structured snapshot failure. Decoding never panics on hostile input:
/// every malformation maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input does not start with the `qm-snap\0` magic.
    BadMagic,
    /// The input's format version is not [`VERSION`].
    UnknownVersion(u32),
    /// The input ended inside the named structure.
    Truncated(&'static str),
    /// A section body does not match its table checksum.
    ChecksumMismatch {
        /// Tag of the corrupt section.
        section: u32,
    },
    /// The input parsed but describes an impossible machine (bad
    /// cross-references, out-of-range enum values, duplicate sections…).
    Malformed(String),
    /// Reading or writing the snapshot file failed.
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a qm-snap file (bad magic)"),
            SnapshotError::UnknownVersion(v) => {
                write!(f, "unknown snapshot version {v} (this build reads v{VERSION})")
            }
            SnapshotError::Truncated(what) => write!(f, "snapshot truncated in {what}"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section '{}'", tag::name(*section))
            }
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapshotError::Io(msg) => write!(f, "snapshot i/o failed: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Little-endian wire primitives shared by the snapshot sections and the
/// `qm-bench` sweep checkpoints (same framing discipline, same
/// structured errors).
pub mod wire {
    use super::SnapshotError;

    /// Append-only little-endian byte writer.
    #[derive(Debug, Default)]
    pub struct Writer {
        buf: Vec<u8>,
    }

    impl Writer {
        /// An empty writer.
        #[must_use]
        pub fn new() -> Self {
            Writer::default()
        }

        /// The bytes written so far.
        #[must_use]
        pub fn as_bytes(&self) -> &[u8] {
            &self.buf
        }

        /// Consume the writer, yielding its buffer.
        #[must_use]
        pub fn into_bytes(self) -> Vec<u8> {
            self.buf
        }

        /// Append one byte.
        pub fn u8(&mut self, v: u8) {
            self.buf.push(v);
        }

        /// Append a little-endian `u32`.
        pub fn u32(&mut self, v: u32) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Append a little-endian `u64`.
        pub fn u64(&mut self, v: u64) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Append a little-endian `i32` (machine word).
        pub fn i32(&mut self, v: i32) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Append a `usize` as `u64`.
        pub fn usize(&mut self, v: usize) {
            self.u64(v as u64);
        }

        /// Append a bool as one byte (0/1).
        pub fn bool(&mut self, v: bool) {
            self.u8(u8::from(v));
        }

        /// Append a length-prefixed UTF-8 string.
        pub fn str(&mut self, s: &str) {
            self.usize(s.len());
            self.buf.extend_from_slice(s.as_bytes());
        }
    }

    /// Bounds-checked little-endian reader over a byte slice.
    #[derive(Debug)]
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// A reader over `buf`, positioned at the start.
        #[must_use]
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        /// Bytes not yet consumed.
        #[must_use]
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
            if self.remaining() < n {
                return Err(SnapshotError::Truncated("wire value"));
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        /// Read one byte.
        pub fn u8(&mut self) -> Result<u8, SnapshotError> {
            Ok(self.take(1)?[0])
        }

        /// Read a little-endian `u32`.
        pub fn u32(&mut self) -> Result<u32, SnapshotError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
        }

        /// Read a little-endian `u64`.
        pub fn u64(&mut self) -> Result<u64, SnapshotError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
        }

        /// Read a little-endian `i32` (machine word).
        pub fn i32(&mut self) -> Result<i32, SnapshotError> {
            Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
        }

        /// Read a `u64` into a `usize`.
        pub fn usize(&mut self) -> Result<usize, SnapshotError> {
            usize::try_from(self.u64()?)
                .map_err(|_| SnapshotError::Malformed("usize overflow".into()))
        }

        /// Read a bool; any byte other than 0/1 is malformed.
        pub fn bool(&mut self) -> Result<bool, SnapshotError> {
            match self.u8()? {
                0 => Ok(false),
                1 => Ok(true),
                b => Err(SnapshotError::Malformed(format!("bad bool byte {b:#x}"))),
            }
        }

        /// Read a sequence length whose elements each occupy at least
        /// `min_elem` bytes — rejecting lengths the remaining input
        /// cannot possibly hold, so hostile lengths cannot force huge
        /// allocations.
        pub fn len(&mut self, min_elem: usize) -> Result<usize, SnapshotError> {
            let n = self.usize()?;
            if min_elem > 0 && n > self.remaining() / min_elem {
                return Err(SnapshotError::Truncated("sequence"));
            }
            Ok(n)
        }

        /// Read a length-prefixed UTF-8 string.
        pub fn str(&mut self) -> Result<String, SnapshotError> {
            let n = self.len(1)?;
            let bytes = self.take(n)?;
            String::from_utf8(bytes.to_vec())
                .map_err(|_| SnapshotError::Malformed("invalid utf-8 string".into()))
        }
    }
}

use wire::{Reader, Writer};

/// One PE's complete captured state (registers, clock, statistics,
/// residency bookkeeping).
#[derive(Debug, Clone, PartialEq, Eq)]
struct PeSnap {
    window: [Word; WINDOW_SIZE],
    presence: [bool; WINDOW_SIZE],
    globals: [Word; 16],
    cycles: u64,
    model: CycleModel,
    stats: PeStats,
    last_result: Word,
    current: Option<CtxId>,
    busy: u64,
    slice_base: PeStats,
}

/// One context record's captured state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CtxSnap {
    globals: [Word; 16],
    state: CtxState,
    pe: usize,
    queue_page: UWord,
    ready_at: u64,
    send_retries: u32,
}

/// The fault engine's complete runtime state (rates, stall schedule,
/// draw counters, retry mailbox) — a resumed run replays the identical
/// fault stream.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultSnap {
    send_loss_ppm: u32,
    bus_drop_ppm: u32,
    trap_delay_ppm: u32,
    trap_delay_cycles: u64,
    recovery: RecoveryConfig,
    stalls: Vec<Vec<(u64, u64)>>,
    seed: u64,
    send_seq: u64,
    bus_seq: u64,
    trap_seq: u64,
    pending_retry: Option<u64>,
}

/// The loaded object's symbol information (words, sorted symbol table,
/// base address). Immutable once loaded, so [`System`] caches one behind
/// an `Arc` at load time and every cadence capture clones the pointer —
/// snapshot cost no longer scales with program size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ObjSnap {
    pub(crate) base: UWord,
    pub(crate) words: Vec<u32>,
    pub(crate) symbols: Vec<(String, UWord)>,
}

impl ObjSnap {
    /// The snapshot view of a loaded object: code words plus the symbol
    /// table sorted by `(name, address)` (the canonical export order).
    pub(crate) fn of(obj: &Object) -> Self {
        let mut syms: Vec<(String, UWord)> =
            obj.symbols().iter().map(|(k, &v)| (k.clone(), v)).collect();
        syms.sort_unstable();
        ObjSnap { base: obj.base(), words: obj.words().to_vec(), symbols: syms }
    }
}

/// A complete, self-contained capture of a [`System`] at a step
/// boundary. Obtain one with [`Snapshot::capture`] or
/// [`Snapshot::decode`]/[`Snapshot::read_from`]; turn it back into a
/// running system with [`System::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    cfg: SystemConfig,
    global_mem: Vec<(UWord, Word)>,
    local_mem: Vec<Vec<(UWord, Word)>>,
    mem_stats: MemStats,
    channels: Vec<ChannelSnap>,
    next_chan: Word,
    output: Vec<Word>,
    input: Vec<Word>,
    transfers: u64,
    pes: Vec<PeSnap>,
    contexts: Vec<CtxSnap>,
    ready: Vec<Vec<(u64, u64, CtxId)>>,
    sched_seq: u64,
    pages: Vec<(UWord, Vec<UWord>)>,
    faults: Option<FaultSnap>,
    report: DegradationReport,
    rr: u64,
    halted: bool,
    live: u64,
    created: u64,
    peak_live: u64,
    idle_steps: u64,
    instr_count: u64,
    snap_every: Option<u64>,
    snap_dir: String,
    next_snap_at: u64,
    symbols: Option<std::sync::Arc<ObjSnap>>,
}

impl Snapshot {
    /// Capture the complete state of `sys`. Meaningful at step
    /// boundaries: freshly built, paused by [`System::run_until`], or
    /// finished. Every collection is exported in canonical order, so
    /// capturing the same state twice yields identical bytes.
    #[must_use]
    pub fn capture(sys: &System) -> Snapshot {
        // Captures happen at run-loop barriers (pauses, cadence
        // boundaries, or outside a run), where a sharded run holds no
        // pre-executed frontier state: the captured bytes are identical
        // for every shard count.
        debug_assert!(sys.shard_quiescent(), "capture at a mid-quantum point");
        let (global_mem, local_mem) = sys.memory.export_planes();
        let (ready, sched_seq) = sys.sched.export_ready();
        // The object is immutable after load: share the cached snapshot
        // view instead of re-copying names and code words per capture.
        let symbols = sys.symbol_snap.clone();
        Snapshot {
            cfg: sys.cfg.clone(),
            global_mem,
            local_mem,
            mem_stats: sys.memory.stats,
            channels: sys.channels.export_channels(),
            next_chan: sys.channels.next_id(),
            output: sys.channels.output.clone(),
            input: sys.channels.input.iter().copied().collect(),
            transfers: sys.channels.transfers,
            pes: sys
                .pes
                .iter()
                .map(|u| {
                    let (window, presence, globals) = u.pe.regs.full_state();
                    PeSnap {
                        window,
                        presence,
                        globals,
                        cycles: u.pe.cycles,
                        model: u.pe.model,
                        stats: u.pe.stats,
                        last_result: u.pe.last_result(),
                        current: u.current,
                        busy: u.busy,
                        slice_base: u.slice_base,
                    }
                })
                .collect(),
            contexts: sys
                .contexts
                .iter()
                .map(|c| CtxSnap {
                    globals: c.saved.globals,
                    state: c.state,
                    pe: c.pe,
                    queue_page: c.queue_page,
                    ready_at: c.ready_at,
                    send_retries: c.send_retries,
                })
                .collect(),
            ready,
            sched_seq,
            pages: sys.pages.iter().map(|p| p.export_state()).collect(),
            faults: sys.faults.as_ref().map(|f| FaultSnap {
                send_loss_ppm: f.send_loss_ppm,
                bus_drop_ppm: f.bus_drop_ppm,
                trap_delay_ppm: f.trap_delay_ppm,
                trap_delay_cycles: f.trap_delay_cycles,
                recovery: f.recovery,
                stalls: f.stalls.clone(),
                seed: f.seed,
                send_seq: f.send_seq,
                bus_seq: f.bus_seq,
                trap_seq: f.trap_seq,
                pending_retry: f.pending_retry,
            }),
            report: sys.report,
            rr: sys.rr as u64,
            halted: sys.halted,
            live: sys.live as u64,
            created: sys.created,
            peak_live: sys.peak_live,
            idle_steps: sys.idle_steps,
            instr_count: sys.instr_count,
            snap_every: sys.snap_every,
            snap_dir: sys.snap_dir.clone(),
            next_snap_at: sys.next_snap_at,
            symbols,
        }
    }

    /// Simulated time of the capture: the furthest-ahead PE clock.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.pes.iter().map(|p| p.cycles).max().unwrap_or(0)
    }

    /// Digest of the *architectural* state only: memory, channels, PEs,
    /// contexts, scheduler, pages and the run-loop scalars — excluding
    /// the configuration, the fault engine, the degradation tallies and
    /// the watchdog's idle counter, which differ *by construction*
    /// between two variants replayed from a shared snapshot. Two
    /// variants have diverged observably exactly when their digests
    /// differ; the `qm-bench` replay bin binary-searches this predicate
    /// for the first divergent cycle.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut w = Writer::new();
        self.sec_memory(&mut w);
        self.sec_channels(&mut w);
        self.sec_pes(&mut w);
        self.sec_contexts(&mut w);
        self.sec_sched(&mut w);
        self.sec_pages(&mut w);
        w.u64(self.rr);
        w.bool(self.halted);
        w.u64(self.live);
        w.u64(self.created);
        w.u64(self.peak_live);
        w.u64(self.instr_count);
        rng::checksum(w.as_bytes())
    }

    /// Serialize to the `qm-snap/v1` byte format. Deterministic: equal
    /// snapshots encode to equal bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut bodies: Vec<(u32, Vec<u8>)> = Vec::with_capacity(tag::ALL.len());
        for t in tag::ALL {
            let mut w = Writer::new();
            match t {
                tag::CONFIG => self.sec_config(&mut w),
                tag::MEMORY => self.sec_memory(&mut w),
                tag::CHANNELS => self.sec_channels(&mut w),
                tag::PES => self.sec_pes(&mut w),
                tag::CONTEXTS => self.sec_contexts(&mut w),
                tag::SCHED => self.sec_sched(&mut w),
                tag::PAGES => self.sec_pages(&mut w),
                tag::FAULTS => self.sec_faults(&mut w),
                tag::SYSTEM => self.sec_system(&mut w),
                tag::SYMBOLS => self.sec_symbols(&mut w),
                _ => unreachable!("tag::ALL is exhaustive"),
            }
            bodies.push((t, w.into_bytes()));
        }
        let payload_len: usize = bodies.iter().map(|(_, b)| b.len()).sum();
        let mut out = Vec::with_capacity(HEADER_LEN + TABLE_ENTRY_LEN * bodies.len() + payload_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        #[allow(clippy::cast_possible_truncation)]
        out.extend_from_slice(&(bodies.len() as u32).to_le_bytes());
        let mut offset: u64 = 0;
        for (t, body) in &bodies {
            out.extend_from_slice(&t.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(body.len() as u64).to_le_bytes());
            out.extend_from_slice(&rng::checksum(body).to_le_bytes());
            offset += body.len() as u64;
        }
        for (_, body) in &bodies {
            out.extend_from_slice(body);
        }
        out
    }

    /// Parse `qm-snap/v1` bytes back into a snapshot.
    ///
    /// # Errors
    ///
    /// Structured [`SnapshotError`]s for a wrong magic, unknown version,
    /// truncated input or sections, checksum mismatches and semantic
    /// malformations. Never panics on arbitrary input.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated("header"));
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(SnapshotError::UnknownVersion(version));
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        if count > 64 {
            return Err(SnapshotError::Malformed(format!("absurd section count {count}")));
        }
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * count;
        if bytes.len() < table_end {
            return Err(SnapshotError::Truncated("section table"));
        }
        let payload = &bytes[table_end..];
        let mut sections: HashMap<u32, &[u8]> = HashMap::new();
        for i in 0..count {
            let e = &bytes[HEADER_LEN + TABLE_ENTRY_LEN * i..];
            let t = u32::from_le_bytes(e[0..4].try_into().expect("4 bytes"));
            let off = u64::from_le_bytes(e[4..12].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(e[12..20].try_into().expect("8 bytes"));
            let sum = u64::from_le_bytes(e[20..28].try_into().expect("8 bytes"));
            let end = off.checked_add(len).filter(|&e| e <= payload.len() as u64);
            let Some(end) = end else {
                return Err(SnapshotError::Truncated(tag::name(t)));
            };
            #[allow(clippy::cast_possible_truncation)]
            let body = &payload[off as usize..end as usize];
            if rng::checksum(body) != sum {
                return Err(SnapshotError::ChecksumMismatch { section: t });
            }
            if sections.insert(t, body).is_some() {
                return Err(SnapshotError::Malformed(format!(
                    "duplicate section '{}'",
                    tag::name(t)
                )));
            }
        }
        fn open<'a>(
            sections: &HashMap<u32, &'a [u8]>,
            t: u32,
        ) -> Result<Reader<'a>, SnapshotError> {
            sections.get(&t).copied().map(Reader::new).ok_or_else(|| {
                SnapshotError::Malformed(format!("missing section '{}'", tag::name(t)))
            })
        }
        fn close(r: &Reader, t: u32) -> Result<(), SnapshotError> {
            if r.remaining() != 0 {
                return Err(SnapshotError::Malformed(format!(
                    "trailing bytes in section '{}'",
                    tag::name(t)
                )));
            }
            Ok(())
        }

        let mut snap = Snapshot {
            cfg: SystemConfig::default(),
            global_mem: Vec::new(),
            local_mem: Vec::new(),
            mem_stats: MemStats::default(),
            channels: Vec::new(),
            next_chan: 1,
            output: Vec::new(),
            input: Vec::new(),
            transfers: 0,
            pes: Vec::new(),
            contexts: Vec::new(),
            ready: Vec::new(),
            sched_seq: 0,
            pages: Vec::new(),
            faults: None,
            report: DegradationReport::default(),
            rr: 0,
            halted: false,
            live: 0,
            created: 0,
            peak_live: 0,
            idle_steps: 0,
            instr_count: 0,
            snap_every: None,
            snap_dir: String::new(),
            next_snap_at: 0,
            symbols: None,
        };
        let mut r = open(&sections, tag::CONFIG)?;
        snap.cfg = dec_config(&mut r)?;
        close(&r, tag::CONFIG)?;

        let mut r = open(&sections, tag::MEMORY)?;
        snap.global_mem = dec_mem_plane(&mut r)?;
        let planes = r.len(8)?;
        snap.local_mem = (0..planes).map(|_| dec_mem_plane(&mut r)).collect::<Result<_, _>>()?;
        snap.mem_stats =
            MemStats { local_accesses: r.u64()?, remote_accesses: r.u64()?, bus_cycles: r.u64()? };
        close(&r, tag::MEMORY)?;

        let mut r = open(&sections, tag::CHANNELS)?;
        let n = r.len(4)?;
        snap.channels = (0..n).map(|_| dec_channel(&mut r)).collect::<Result<_, _>>()?;
        snap.next_chan = r.i32()?;
        snap.output = dec_words(&mut r)?;
        snap.input = dec_words(&mut r)?;
        snap.transfers = r.u64()?;
        close(&r, tag::CHANNELS)?;

        let mut r = open(&sections, tag::PES)?;
        let n = r.len(16)?;
        snap.pes = (0..n).map(|_| dec_pe(&mut r)).collect::<Result<_, _>>()?;
        close(&r, tag::PES)?;

        let mut r = open(&sections, tag::CONTEXTS)?;
        let n = r.len(16)?;
        snap.contexts = (0..n).map(|_| dec_ctx(&mut r)).collect::<Result<_, _>>()?;
        close(&r, tag::CONTEXTS)?;

        let mut r = open(&sections, tag::SCHED)?;
        let pes = r.len(8)?;
        snap.ready = (0..pes)
            .map(|_| {
                let n = r.len(24)?;
                (0..n)
                    .map(|_| Ok((r.u64()?, r.u64()?, r.usize()?)))
                    .collect::<Result<Vec<_>, SnapshotError>>()
            })
            .collect::<Result<_, _>>()?;
        snap.sched_seq = r.u64()?;
        close(&r, tag::SCHED)?;

        let mut r = open(&sections, tag::PAGES)?;
        let n = r.len(12)?;
        snap.pages = (0..n)
            .map(|_| {
                let next = r.u32()?;
                let free = dec_u32s(&mut r)?;
                Ok((next, free))
            })
            .collect::<Result<_, SnapshotError>>()?;
        close(&r, tag::PAGES)?;

        let mut r = open(&sections, tag::FAULTS)?;
        if r.bool()? {
            snap.faults = Some(dec_faults(&mut r)?);
        }
        snap.report = DegradationReport {
            send_drops: r.u64()?,
            bus_drops: r.u64()?,
            pe_stalls: r.u64()?,
            trap_delays: r.u64()?,
            retries: r.u64()?,
            recovered_transfers: r.u64()?,
            stall_cycles: r.u64()?,
            backoff_cycles: r.u64()?,
            delay_cycles: r.u64()?,
        };
        close(&r, tag::FAULTS)?;

        let mut r = open(&sections, tag::SYSTEM)?;
        snap.rr = r.u64()?;
        snap.halted = r.bool()?;
        snap.live = r.u64()?;
        snap.created = r.u64()?;
        snap.peak_live = r.u64()?;
        snap.idle_steps = r.u64()?;
        snap.instr_count = r.u64()?;
        snap.snap_every = if r.bool()? { Some(r.u64()?) } else { None };
        snap.snap_dir = r.str()?;
        snap.next_snap_at = r.u64()?;
        close(&r, tag::SYSTEM)?;

        let mut r = open(&sections, tag::SYMBOLS)?;
        if r.bool()? {
            let base = r.u32()?;
            let words = dec_u32s(&mut r)?;
            let n = r.len(12)?;
            let symbols = (0..n)
                .map(|_| Ok((r.str()?, r.u32()?)))
                .collect::<Result<Vec<_>, SnapshotError>>()?;
            snap.symbols = Some(std::sync::Arc::new(ObjSnap { base, words, symbols }));
        }
        close(&r, tag::SYMBOLS)?;
        Ok(snap)
    }

    /// Write the encoded snapshot to `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        std::fs::write(path, self.encode()).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    /// Read and decode a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure, otherwise as
    /// [`Snapshot::decode`].
    pub fn read_from(path: &Path) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Snapshot::decode(&bytes)
    }

    // ---- section encoders (canonical order; reused by state_digest) ----

    fn sec_config(&self, w: &mut Writer) {
        let c = &self.cfg;
        w.usize(c.pes);
        w.usize(c.partitions);
        for v in [
            c.bus.mem_same_partition,
            c.bus.mem_remote_base,
            c.bus.mem_per_segment,
            c.bus.chan_local,
            c.bus.chan_same_partition,
            c.bus.chan_remote_base,
            c.bus.chan_per_segment,
            c.kernel.fork,
            c.kernel.end,
            c.kernel.dispatch,
        ] {
            w.u64(v);
        }
        enc_model(w, &c.cycle_model);
        w.u8(match c.placement {
            Placement::RoundRobin => 0,
            Placement::LeastLoaded => 1,
            Placement::Local => 2,
        });
        w.u32(c.queue_page_words);
        w.usize(c.channel_capacity);
        w.u64(c.max_instructions);
    }

    fn sec_memory(&self, w: &mut Writer) {
        enc_mem_plane(w, &self.global_mem);
        w.usize(self.local_mem.len());
        for plane in &self.local_mem {
            enc_mem_plane(w, plane);
        }
        w.u64(self.mem_stats.local_accesses);
        w.u64(self.mem_stats.remote_accesses);
        w.u64(self.mem_stats.bus_cycles);
    }

    fn sec_channels(&self, w: &mut Writer) {
        w.usize(self.channels.len());
        for c in &self.channels {
            w.i32(c.chan);
            w.usize(c.buffer.len());
            for &(v, pe) in &c.buffer {
                w.i32(v);
                w.usize(pe);
            }
            w.usize(c.senders.len());
            for &(ctx, pe, v) in &c.senders {
                w.usize(ctx);
                w.usize(pe);
                w.i32(v);
            }
            w.usize(c.receivers.len());
            for &(ctx, pe) in &c.receivers {
                w.usize(ctx);
                w.usize(pe);
            }
            w.usize(c.acked.len());
            for &ctx in &c.acked {
                w.usize(ctx);
            }
            w.usize(c.ready.len());
            for &(ctx, v, pe) in &c.ready {
                w.usize(ctx);
                w.i32(v);
                w.usize(pe);
            }
        }
        w.i32(self.next_chan);
        enc_words(w, &self.output);
        enc_words(w, &self.input);
        w.u64(self.transfers);
    }

    fn sec_pes(&self, w: &mut Writer) {
        w.usize(self.pes.len());
        for p in &self.pes {
            for &v in &p.window {
                w.i32(v);
            }
            for &b in &p.presence {
                w.bool(b);
            }
            for &v in &p.globals {
                w.i32(v);
            }
            w.u64(p.cycles);
            enc_model(w, &p.model);
            enc_stats(w, &p.stats);
            w.i32(p.last_result);
            match p.current {
                Some(c) => {
                    w.bool(true);
                    w.usize(c);
                }
                None => w.bool(false),
            }
            w.u64(p.busy);
            enc_stats(w, &p.slice_base);
        }
    }

    fn sec_contexts(&self, w: &mut Writer) {
        w.usize(self.contexts.len());
        for c in &self.contexts {
            for &v in &c.globals {
                w.i32(v);
            }
            w.u8(match c.state {
                CtxState::Ready => 0,
                CtxState::Running => 1,
                CtxState::Blocked => 2,
                CtxState::Dead => 3,
            });
            w.usize(c.pe);
            w.u32(c.queue_page);
            w.u64(c.ready_at);
            w.u32(c.send_retries);
        }
    }

    fn sec_sched(&self, w: &mut Writer) {
        w.usize(self.ready.len());
        for entries in &self.ready {
            w.usize(entries.len());
            for &(at, seq, ctx) in entries {
                w.u64(at);
                w.u64(seq);
                w.usize(ctx);
            }
        }
        w.u64(self.sched_seq);
    }

    fn sec_pages(&self, w: &mut Writer) {
        w.usize(self.pages.len());
        for (next, free) in &self.pages {
            w.u32(*next);
            enc_u32s(w, free);
        }
    }

    fn sec_faults(&self, w: &mut Writer) {
        match &self.faults {
            Some(f) => {
                w.bool(true);
                w.u32(f.send_loss_ppm);
                w.u32(f.bus_drop_ppm);
                w.u32(f.trap_delay_ppm);
                w.u64(f.trap_delay_cycles);
                w.u32(f.recovery.max_retries);
                w.u64(f.recovery.backoff_base);
                w.u64(f.recovery.backoff_cap);
                w.u64(f.recovery.watchdog_steps);
                w.usize(f.stalls.len());
                for windows in &f.stalls {
                    w.usize(windows.len());
                    for &(s, e) in windows {
                        w.u64(s);
                        w.u64(e);
                    }
                }
                w.u64(f.seed);
                w.u64(f.send_seq);
                w.u64(f.bus_seq);
                w.u64(f.trap_seq);
                match f.pending_retry {
                    Some(at) => {
                        w.bool(true);
                        w.u64(at);
                    }
                    None => w.bool(false),
                }
            }
            None => w.bool(false),
        }
        for v in [
            self.report.send_drops,
            self.report.bus_drops,
            self.report.pe_stalls,
            self.report.trap_delays,
            self.report.retries,
            self.report.recovered_transfers,
            self.report.stall_cycles,
            self.report.backoff_cycles,
            self.report.delay_cycles,
        ] {
            w.u64(v);
        }
    }

    fn sec_system(&self, w: &mut Writer) {
        w.u64(self.rr);
        w.bool(self.halted);
        w.u64(self.live);
        w.u64(self.created);
        w.u64(self.peak_live);
        w.u64(self.idle_steps);
        w.u64(self.instr_count);
        match self.snap_every {
            Some(e) => {
                w.bool(true);
                w.u64(e);
            }
            None => w.bool(false),
        }
        w.str(&self.snap_dir);
        w.u64(self.next_snap_at);
    }

    fn sec_symbols(&self, w: &mut Writer) {
        match &self.symbols {
            Some(o) => {
                w.bool(true);
                w.u32(o.base);
                enc_u32s(w, &o.words);
                w.usize(o.symbols.len());
                for (name, addr) in &o.symbols {
                    w.str(name);
                    w.u32(*addr);
                }
            }
            None => w.bool(false),
        }
    }
}

fn enc_model(w: &mut Writer, m: &CycleModel) {
    for v in [
        m.base,
        m.imm_word,
        m.mem_extra,
        m.window_miss,
        m.branch_taken,
        m.trap,
        m.channel,
        m.context_switch,
        m.rollout_per_reg,
    ] {
        w.u64(v);
    }
}

fn dec_model(r: &mut Reader) -> Result<CycleModel, SnapshotError> {
    Ok(CycleModel {
        base: r.u64()?,
        imm_word: r.u64()?,
        mem_extra: r.u64()?,
        window_miss: r.u64()?,
        branch_taken: r.u64()?,
        trap: r.u64()?,
        channel: r.u64()?,
        context_switch: r.u64()?,
        rollout_per_reg: r.u64()?,
    })
}

fn enc_stats(w: &mut Writer, s: &PeStats) {
    for v in [
        s.instructions,
        s.window_hits,
        s.window_misses,
        s.mem_reads,
        s.mem_writes,
        s.sends,
        s.recvs,
        s.traps,
        s.context_switches,
        s.rollouts,
    ] {
        w.u64(v);
    }
}

fn dec_stats(r: &mut Reader) -> Result<PeStats, SnapshotError> {
    Ok(PeStats {
        instructions: r.u64()?,
        window_hits: r.u64()?,
        window_misses: r.u64()?,
        mem_reads: r.u64()?,
        mem_writes: r.u64()?,
        sends: r.u64()?,
        recvs: r.u64()?,
        traps: r.u64()?,
        context_switches: r.u64()?,
        rollouts: r.u64()?,
    })
}

fn enc_mem_plane(w: &mut Writer, plane: &[(UWord, Word)]) {
    w.usize(plane.len());
    for &(a, v) in plane {
        w.u32(a);
        w.i32(v);
    }
}

fn dec_mem_plane(r: &mut Reader) -> Result<Vec<(UWord, Word)>, SnapshotError> {
    let n = r.len(8)?;
    (0..n).map(|_| Ok((r.u32()?, r.i32()?))).collect()
}

fn enc_words(w: &mut Writer, words: &[Word]) {
    w.usize(words.len());
    for &v in words {
        w.i32(v);
    }
}

fn dec_words(r: &mut Reader) -> Result<Vec<Word>, SnapshotError> {
    let n = r.len(4)?;
    (0..n).map(|_| r.i32()).collect()
}

fn enc_u32s(w: &mut Writer, vals: &[u32]) {
    w.usize(vals.len());
    for &v in vals {
        w.u32(v);
    }
}

fn dec_u32s(r: &mut Reader) -> Result<Vec<u32>, SnapshotError> {
    let n = r.len(4)?;
    (0..n).map(|_| r.u32()).collect()
}

fn dec_config(r: &mut Reader) -> Result<SystemConfig, SnapshotError> {
    let pes = r.usize()?;
    let partitions = r.usize()?;
    let bus = BusCosts {
        mem_same_partition: r.u64()?,
        mem_remote_base: r.u64()?,
        mem_per_segment: r.u64()?,
        chan_local: r.u64()?,
        chan_same_partition: r.u64()?,
        chan_remote_base: r.u64()?,
        chan_per_segment: r.u64()?,
    };
    let kernel = KernelCosts { fork: r.u64()?, end: r.u64()?, dispatch: r.u64()? };
    let cycle_model = dec_model(r)?;
    let placement = match r.u8()? {
        0 => Placement::RoundRobin,
        1 => Placement::LeastLoaded,
        2 => Placement::Local,
        b => return Err(SnapshotError::Malformed(format!("bad placement byte {b:#x}"))),
    };
    Ok(SystemConfig {
        pes,
        partitions,
        bus,
        kernel,
        cycle_model,
        placement,
        queue_page_words: r.u32()?,
        channel_capacity: r.usize()?,
        max_instructions: r.u64()?,
    })
}

fn dec_channel(r: &mut Reader) -> Result<ChannelSnap, SnapshotError> {
    let chan = r.i32()?;
    let n = r.len(12)?;
    let buffer =
        (0..n).map(|_| Ok((r.i32()?, r.usize()?))).collect::<Result<Vec<_>, SnapshotError>>()?;
    let n = r.len(20)?;
    let senders = (0..n)
        .map(|_| Ok((r.usize()?, r.usize()?, r.i32()?)))
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let n = r.len(16)?;
    let receivers =
        (0..n).map(|_| Ok((r.usize()?, r.usize()?))).collect::<Result<Vec<_>, SnapshotError>>()?;
    let n = r.len(8)?;
    let acked = (0..n).map(|_| r.usize()).collect::<Result<Vec<_>, _>>()?;
    let n = r.len(16)?;
    let ready = (0..n)
        .map(|_| Ok((r.usize()?, r.i32()?, r.usize()?)))
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    Ok(ChannelSnap { chan, buffer, senders, receivers, acked, ready })
}

fn dec_pe(r: &mut Reader) -> Result<PeSnap, SnapshotError> {
    let mut window = [0; WINDOW_SIZE];
    for v in &mut window {
        *v = r.i32()?;
    }
    let mut presence = [false; WINDOW_SIZE];
    for b in &mut presence {
        *b = r.bool()?;
    }
    let mut globals = [0; 16];
    for v in &mut globals {
        *v = r.i32()?;
    }
    Ok(PeSnap {
        window,
        presence,
        globals,
        cycles: r.u64()?,
        model: dec_model(r)?,
        stats: dec_stats(r)?,
        last_result: r.i32()?,
        current: r.bool()?.then(|| r.usize()).transpose()?,
        busy: r.u64()?,
        slice_base: dec_stats(r)?,
    })
}

fn dec_ctx(r: &mut Reader) -> Result<CtxSnap, SnapshotError> {
    let mut globals = [0; 16];
    for v in &mut globals {
        *v = r.i32()?;
    }
    let state = match r.u8()? {
        0 => CtxState::Ready,
        1 => CtxState::Running,
        2 => CtxState::Blocked,
        3 => CtxState::Dead,
        b => return Err(SnapshotError::Malformed(format!("bad context state byte {b:#x}"))),
    };
    Ok(CtxSnap {
        globals,
        state,
        pe: r.usize()?,
        queue_page: r.u32()?,
        ready_at: r.u64()?,
        send_retries: r.u32()?,
    })
}

fn dec_faults(r: &mut Reader) -> Result<FaultSnap, SnapshotError> {
    let send_loss_ppm = r.u32()?;
    let bus_drop_ppm = r.u32()?;
    let trap_delay_ppm = r.u32()?;
    let trap_delay_cycles = r.u64()?;
    let recovery = RecoveryConfig {
        max_retries: r.u32()?,
        backoff_base: r.u64()?,
        backoff_cap: r.u64()?,
        watchdog_steps: r.u64()?,
    };
    let pes = r.len(8)?;
    let stalls = (0..pes)
        .map(|_| {
            let n = r.len(16)?;
            (0..n).map(|_| Ok((r.u64()?, r.u64()?))).collect::<Result<Vec<_>, SnapshotError>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FaultSnap {
        send_loss_ppm,
        bus_drop_ppm,
        trap_delay_ppm,
        trap_delay_cycles,
        recovery,
        stalls,
        seed: r.u64()?,
        send_seq: r.u64()?,
        bus_seq: r.u64()?,
        trap_seq: r.u64()?,
        pending_retry: r.bool()?.then(|| r.u64()).transpose()?,
    })
}

impl System {
    /// Rebuild a running system from a snapshot. The result continues
    /// bit-identically to the captured run: same metrics, same trace
    /// events (once a sink is reinstalled — sinks are host-side
    /// observers, not machine state), same fault draws.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when the snapshot's cross-references
    /// don't describe a consistent machine (wrong plane counts,
    /// out-of-range PE or context indices, bad page geometry).
    pub fn restore(snap: &Snapshot) -> Result<System, SnapshotError> {
        let cfg = &snap.cfg;
        let bad = |msg: String| Err(SnapshotError::Malformed(msg));
        if !(1..=1024).contains(&cfg.pes) {
            return bad(format!("unsupported PE count {}", cfg.pes));
        }
        if cfg.partitions == 0 {
            return bad("zero partitions".into());
        }
        if !cfg.queue_page_words.is_power_of_two() || cfg.queue_page_words > 256 {
            return bad(format!("bad queue page size {}", cfg.queue_page_words));
        }
        let pes = cfg.pes;
        let ctxs = snap.contexts.len();
        if snap.pes.len() != pes {
            return bad(format!("{} PE records for a {pes}-PE config", snap.pes.len()));
        }
        if snap.local_mem.len() != pes || snap.ready.len() != pes || snap.pages.len() != pes {
            return bad("per-PE table sizes disagree with the config".into());
        }
        if let Some(f) = &snap.faults {
            if f.stalls.len() != pes {
                return bad("fault stall schedule sized for a different PE count".into());
            }
        }
        for (i, p) in snap.pes.iter().enumerate() {
            if let Some(c) = p.current {
                if c >= ctxs {
                    return bad(format!("pe{i} runs nonexistent context {c}"));
                }
            }
        }
        for (id, c) in snap.contexts.iter().enumerate() {
            if c.pe >= pes {
                return bad(format!("ctx{id} bound to nonexistent pe{}", c.pe));
            }
        }
        for (pe, entries) in snap.ready.iter().enumerate() {
            for &(_, _, ctx) in entries {
                if ctx >= ctxs {
                    return bad(format!("pe{pe} ready queue names nonexistent context {ctx}"));
                }
            }
        }
        for c in &snap.channels {
            let refs = c
                .senders
                .iter()
                .map(|&(ctx, _, _)| ctx)
                .chain(c.receivers.iter().map(|&(ctx, _)| ctx))
                .chain(c.acked.iter().copied())
                .chain(c.ready.iter().map(|&(ctx, _, _)| ctx));
            for ctx in refs {
                if ctx >= ctxs {
                    return bad(format!("chan {} names nonexistent context {ctx}", c.chan));
                }
            }
        }

        let mut sys = System::new(cfg.clone());
        sys.memory.restore_planes(snap.global_mem.clone(), snap.local_mem.clone());
        sys.memory.stats = snap.mem_stats;
        sys.channels.restore_channels(snap.channels.clone(), snap.next_chan);
        sys.channels.output = snap.output.clone();
        sys.channels.input = snap.input.iter().copied().collect();
        sys.channels.transfers = snap.transfers;
        for (unit, p) in sys.pes.iter_mut().zip(&snap.pes) {
            unit.pe.regs.restore_full(p.window, p.presence, p.globals);
            unit.pe.cycles = p.cycles;
            unit.pe.model = p.model;
            unit.pe.stats = p.stats;
            unit.pe.set_last_result(p.last_result);
            unit.current = p.current;
            unit.busy = p.busy;
            unit.slice_base = p.slice_base;
        }
        sys.contexts = snap
            .contexts
            .iter()
            .map(|c| Context {
                saved: qm_isa::regs::SavedRegisters { globals: c.globals },
                state: c.state,
                pe: c.pe,
                queue_page: c.queue_page,
                ready_at: c.ready_at,
                send_retries: c.send_retries,
            })
            .collect();
        sys.sched = Scheduler::restore_ready(snap.ready.clone(), snap.sched_seq);
        for (alloc, (next, free)) in sys.pages.iter_mut().zip(&snap.pages) {
            alloc.restore_state(*next, free.clone());
        }
        if let Some(o) = &snap.symbols {
            sys.set_symbols(Object::from_parts(
                o.words.clone(),
                o.symbols.iter().cloned().collect(),
                o.base,
            ));
            // Share the snapshot's view directly; set_symbols derived an
            // identical one, this just drops the duplicate storage.
            sys.symbol_snap = Some(o.clone());
        }
        sys.faults = snap.faults.as_ref().map(|f| FaultEngine {
            send_loss_ppm: f.send_loss_ppm,
            bus_drop_ppm: f.bus_drop_ppm,
            trap_delay_ppm: f.trap_delay_ppm,
            trap_delay_cycles: f.trap_delay_cycles,
            recovery: f.recovery,
            stalls: f.stalls.clone(),
            seed: f.seed,
            send_seq: f.send_seq,
            bus_seq: f.bus_seq,
            trap_seq: f.trap_seq,
            pending_retry: f.pending_retry,
        });
        sys.report = snap.report;
        #[allow(clippy::cast_possible_truncation)]
        {
            sys.rr = snap.rr as usize;
            sys.live = snap.live as usize;
        }
        sys.halted = snap.halted;
        sys.created = snap.created;
        sys.peak_live = snap.peak_live;
        sys.idle_steps = snap.idle_steps;
        sys.instr_count = snap.instr_count;
        sys.snap_every = snap.snap_every;
        sys.snap_dir = snap.snap_dir.clone();
        sys.next_snap_at = snap.next_snap_at;
        Ok(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid_run_system() -> System {
        let src = "
main:   trap #0,#child :r0,r1
        send r0,#21
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
child:  recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";
        let mut sys = System::with_assembly(SystemConfig::with_pes(2), src).unwrap();
        let status = sys.run_until(20).unwrap();
        assert!(matches!(status, crate::system::RunStatus::Paused { .. }));
        sys
    }

    #[test]
    fn wire_round_trips_every_primitive() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i32(-42);
        w.usize(7);
        w.bool(true);
        w.bool(false);
        w.str("qm-snap");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "qm-snap");
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.u8(), Err(SnapshotError::Truncated(_))));
    }

    #[test]
    fn hostile_lengths_are_rejected_not_allocated() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // a sequence length no input can hold
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.len(8), Err(SnapshotError::Truncated(_))));
    }

    #[test]
    fn capture_encode_decode_restore_capture_is_byte_identical() {
        let sys = mid_run_system();
        let snap = Snapshot::capture(&sys);
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, snap, "decode inverts encode");
        let restored = System::restore(&decoded).unwrap();
        let again = Snapshot::capture(&restored);
        assert_eq!(again, snap, "capture after restore reproduces the snapshot");
        assert_eq!(again.encode(), bytes, "… down to the exact bytes");
    }

    #[test]
    fn decode_rejects_corruption_with_structured_errors() {
        let bytes = Snapshot::capture(&mid_run_system()).encode();

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert_eq!(Snapshot::decode(&wrong_magic), Err(SnapshotError::BadMagic));

        let mut future = bytes.clone();
        future[8] = 99;
        assert_eq!(Snapshot::decode(&future), Err(SnapshotError::UnknownVersion(99)));

        assert!(matches!(Snapshot::decode(&bytes[..4]), Err(SnapshotError::Truncated(_))));
        assert!(matches!(
            Snapshot::decode(&bytes[..bytes.len() / 2]),
            Err(SnapshotError::Truncated(_) | SnapshotError::ChecksumMismatch { .. })
        ));

        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(Snapshot::decode(&flipped), Err(SnapshotError::ChecksumMismatch { .. })));

        assert_eq!(Snapshot::decode(&[]), Err(SnapshotError::Truncated("header")));
    }

    #[test]
    fn state_digest_tracks_architecture_not_fault_config() {
        let sys = mid_run_system();
        let a = Snapshot::capture(&sys);
        let mut with_faults = System::restore(&a).unwrap();
        with_faults.set_fault_plan(&crate::fault::FaultPlan::seeded(1).with_send_loss(100_000));
        let b = Snapshot::capture(&with_faults);
        assert_ne!(a, b, "the snapshots differ (engine installed)");
        assert_eq!(a.state_digest(), b.state_digest(), "… but not architecturally yet");
        let mut advanced = System::restore(&a).unwrap();
        advanced.run().unwrap();
        let c = Snapshot::capture(&advanced);
        assert_ne!(a.state_digest(), c.state_digest(), "running changes the digest");
    }

    #[test]
    fn cycle_reports_the_furthest_pe_clock() {
        let sys = mid_run_system();
        let snap = Snapshot::capture(&sys);
        assert_eq!(snap.cycle(), sys.elapsed_cycles());
        assert!(snap.cycle() > 0);
    }
}
