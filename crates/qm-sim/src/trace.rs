//! Structured event tracing and metrics (replaces the old
//! `System::trace` stderr flag).
//!
//! The simulator emits typed [`TraceEvent`]s — context dispatch / block /
//! wake / retire, forks, channel sends / receives / rendezvous,
//! message-cache hits and spills, ring-bus transfers and kernel traps —
//! into a [`TraceSink`] installed with
//! [`System::set_trace_sink`](crate::System::set_trace_sink). Three sinks
//! are provided:
//!
//! * none installed — the default: event construction is skipped entirely
//!   (a single branch on an `Option`), so an untraced run pays nothing;
//! * [`Recorder`] — a bounded in-memory ring buffer, queryable from tests
//!   through a cloneable handle;
//! * [`ChromeTrace`] — a Chrome trace-event JSON exporter (one process
//!   lane per PE, one thread lane per context) loadable in Perfetto or
//!   `chrome://tracing`.
//!
//! Modules that cannot reach the sink directly (the channel table, the
//! shared memory) buffer events in a [`TraceBuffer`]; the run loop drains
//! them after every step, stamping the acting PE's cycle clock.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

use crate::msg::ChanDir;
use crate::{CtxId, UWord, Word};

/// Which kernel fork service created a context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForkKind {
    /// `trap #0` — recursive fork, fresh in/out channels, spread by the
    /// placement policy.
    Recursive,
    /// `trap #1` — iterative fork, inherits the parent's out channel.
    Iterative,
    /// `trap #7` — recursive fork pinned to the forking PE.
    Local,
}

/// One structured simulator event. Every variant is `Copy`: recording an
/// event never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A context started (or resumed) executing on its PE.
    CtxDispatch {
        /// The dispatched context.
        ctx: CtxId,
        /// Program counter it resumes at.
        pc: UWord,
        /// True when the context never left the PE (window registers
        /// intact — the §5.2 fast path).
        resident: bool,
    },
    /// The running context blocked on a channel rendezvous.
    CtxBlock {
        /// The blocking context.
        ctx: CtxId,
        /// Channel it is parked on.
        chan: Word,
        /// Whether it was sending or receiving.
        dir: ChanDir,
        /// PC of the blocked instruction (re-executed on resume).
        pc: UWord,
        /// Instructions retired in the residency slice that just ended.
        instructions: u64,
    },
    /// A blocked context was re-readied by a channel partner.
    CtxWake {
        /// The woken context.
        ctx: CtxId,
        /// Channel the rendezvous completed on.
        chan: Word,
        /// Earliest cycle the context may resume.
        at: u64,
    },
    /// A context terminated (`trap #2`).
    CtxRetire {
        /// The terminating context.
        ctx: CtxId,
        /// Instructions retired in its final residency slice.
        instructions: u64,
    },
    /// The kernel created a context.
    Fork {
        /// Which fork service ran.
        kind: ForkKind,
        /// The forking context.
        parent: CtxId,
        /// The new context.
        child: CtxId,
        /// PE the child was placed on.
        child_pe: usize,
        /// Child entry point.
        pc: UWord,
    },
    /// A send completed (value accepted by the channel layer).
    ChanSend {
        /// Sending context.
        ctx: CtxId,
        /// Channel sent on (0 = host).
        chan: Word,
        /// The transferred word.
        value: Word,
    },
    /// A receive completed (value delivered to the context).
    ChanRecv {
        /// Receiving context.
        ctx: CtxId,
        /// Channel received on (0 = host).
        chan: Word,
        /// The transferred word.
        value: Word,
    },
    /// A sender and receiver met on a channel: one of them had been
    /// parked and is now released.
    Rendezvous {
        /// Channel the rendezvous completed on.
        chan: Word,
        /// Sending context.
        sender: CtxId,
        /// Receiving context.
        receiver: CtxId,
        /// The transferred word.
        value: Word,
    },
    /// A send was absorbed by a free message-cache slot (§5.5): the
    /// sender continues without blocking.
    CacheHit {
        /// Sending context.
        ctx: CtxId,
        /// Channel the value parked on.
        chan: Word,
        /// The parked word.
        value: Word,
        /// Cache occupancy after parking.
        buffered: usize,
    },
    /// The message cache was full: the sender spills to the blocked
    /// queue.
    CacheSpill {
        /// Spilling context.
        ctx: CtxId,
        /// The full channel.
        chan: Word,
        /// The word that could not be parked.
        value: Word,
        /// Senders now parked behind the cache (including this one).
        senders: usize,
    },
    /// A word access crossed the ring bus.
    BusTransfer {
        /// Global address accessed.
        addr: UWord,
        /// Bus cycles charged.
        cycles: u64,
    },
    /// A kernel entry was invoked (`trap #n`).
    KernelTrap {
        /// Trapping context.
        ctx: CtxId,
        /// Kernel entry number.
        entry: Word,
        /// Entry name (`rfork`, `end`, …).
        name: &'static str,
        /// The trap argument word.
        arg: Word,
    },
    /// Fault injection idled the acting PE for a stall window
    /// (see [`crate::fault`]).
    FaultStall {
        /// First stalled cycle.
        from: u64,
        /// First cycle after the window (the PE's clock is advanced
        /// here).
        until: u64,
    },
    /// Fault injection lost a channel send in transit; the sending
    /// context retries after backoff.
    FaultSendDrop {
        /// The sending context.
        ctx: CtxId,
        /// Channel the lost send targeted.
        chan: Word,
        /// The word that was lost.
        value: Word,
        /// Retry attempt number this drop triggers (1-based).
        attempt: u32,
        /// Cycle the retry is scheduled at.
        retry_at: u64,
    },
    /// Fault injection dropped a cross-PE bus transfer one or more
    /// times; it was re-sent immediately at extra cost.
    FaultBusDrop {
        /// Channel whose transfer was dropped.
        chan: Word,
        /// Consecutive drops before the transfer got through.
        attempts: u32,
        /// Extra bus cycles charged for the re-sends.
        penalty: u64,
    },
    /// Fault injection delayed a kernel trap.
    FaultTrapDelay {
        /// The trapping context.
        ctx: CtxId,
        /// Kernel entry number of the delayed trap.
        entry: Word,
        /// Extra cycles charged.
        delay: u64,
    },
    /// A transfer completed after one or more fault-injected drops.
    FaultRecovered {
        /// The sending context that finally got through.
        ctx: CtxId,
        /// Channel the transfer completed on.
        chan: Word,
        /// Drops the transfer survived.
        retries: u32,
    },
}

/// A recorded event with its timestamp and originating PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// The acting PE's cycle clock when the event was recorded.
    pub cycle: u64,
    /// The acting PE.
    pub pe: usize,
    /// The event.
    pub event: TraceEvent,
}

/// Receives every [`TraceRecord`] the simulator emits.
pub trait TraceSink: Send {
    /// Consume one record.
    fn record(&mut self, rec: &TraceRecord);
}

/// A sink that discards everything — useful for measuring the cost of
/// event *construction* alone (with no sink at all, construction is
/// skipped too).
#[derive(Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _rec: &TraceRecord) {}
}

/// The simulator-side dispatcher: holds the installed sink, if any.
/// With no sink, [`Tracer::emit`] is a single branch and the event
/// closure never runs.
#[derive(Default)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
}

impl Tracer {
    /// A tracer with no sink (the default): emits nothing.
    #[must_use]
    pub fn off() -> Self {
        Tracer { sink: None }
    }

    /// A tracer feeding `sink`.
    #[must_use]
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Whether a sink is installed.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit the event built by `f` — `f` only runs when a sink is
    /// installed.
    #[inline]
    pub fn emit(&mut self, cycle: u64, pe: usize, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&TraceRecord { cycle, pe, event: f() });
        }
    }

    /// Forward an already-built record (used when draining
    /// [`TraceBuffer`]s).
    #[inline]
    pub fn record(&mut self, rec: &TraceRecord) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(rec);
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.enabled()).finish()
    }
}

/// Deferred event storage for modules that have no sink access (the
/// channel table, the shared memory). Disabled by default; the run loop
/// enables it alongside the sink and drains it after every step.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    enabled: bool,
    pending: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// Enable or disable buffering. While disabled, [`push`](Self::push)
    /// is a single branch.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.pending.clear();
        }
    }

    /// Buffer the event built by `f` — `f` only runs while enabled.
    #[inline]
    pub fn push(&mut self, f: impl FnOnce() -> TraceEvent) {
        if self.enabled {
            self.pending.push(f());
        }
    }

    /// Take everything buffered since the last drain. Replaces the
    /// backing storage; prefer [`drain`](Self::drain) on hot paths.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.pending)
    }

    /// Drain everything buffered since the last drain, keeping the
    /// backing storage — the buffer reaches a steady-state capacity and
    /// never allocates again.
    pub fn drain(&mut self) -> std::vec::Drain<'_, TraceEvent> {
        self.pending.drain(..)
    }

    /// Whether anything is buffered (a cheap pre-check before `take`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

// ---------------------------------------------------------------------
// Recorder: bounded in-memory ring buffer with a cloneable query handle.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct RecorderBuf {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

/// Handle to an in-memory ring-buffer recorder. Clone it, install
/// [`Recorder::sink`] on the system, run, then query the records here.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Mutex<RecorderBuf>>,
}

impl Recorder {
    /// A recorder keeping at most `capacity` records (oldest dropped
    /// first).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "recorder capacity must be positive");
        Recorder {
            inner: Arc::new(Mutex::new(RecorderBuf {
                capacity,
                records: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    /// A sink feeding this recorder (install with `set_trace_sink`).
    #[must_use]
    pub fn sink(&self) -> Box<dyn TraceSink> {
        Box::new(RecorderSink { inner: Arc::clone(&self.inner) })
    }

    /// Snapshot of the retained records, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if a sink holder panicked while recording.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.lock().expect("recorder poisoned").records.iter().copied().collect()
    }

    /// Records whose event matches `f`.
    #[must_use]
    pub fn matching(&self, f: impl Fn(&TraceEvent) -> bool) -> Vec<TraceRecord> {
        self.records().into_iter().filter(|r| f(&r.event)).collect()
    }

    /// Number of records dropped to the capacity bound.
    ///
    /// # Panics
    ///
    /// Panics if a sink holder panicked while recording.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("recorder poisoned").dropped
    }
}

struct RecorderSink {
    inner: Arc<Mutex<RecorderBuf>>,
}

impl TraceSink for RecorderSink {
    fn record(&mut self, rec: &TraceRecord) {
        let mut buf = self.inner.lock().expect("recorder poisoned");
        if buf.records.len() == buf.capacity {
            buf.records.pop_front();
            buf.dropped += 1;
        }
        buf.records.push_back(*rec);
    }
}

// ---------------------------------------------------------------------
// Chrome trace-event JSON exporter.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct ChromeBuf {
    /// Pre-rendered JSON event objects (without trailing commas).
    events: Vec<String>,
    /// Open duration slice per PE: `(ctx, since)`.
    open: HashMap<usize, (CtxId, u64)>,
    /// Context lanes seen per PE.
    threads: HashSet<(usize, CtxId)>,
    pes: HashSet<usize>,
    bus_lanes: HashSet<usize>,
    fault_lanes: HashSet<usize>,
    last_ts: u64,
}

/// Thread lane used for bus-transfer instants (no owning context).
const BUS_TID: u64 = 1_000_000;
/// Thread lane used for fault-injection instants with no owning context
/// (stalls, bus drops).
const FAULT_TID: u64 = 1_000_001;

impl ChromeBuf {
    fn slice_begin(&mut self, pe: usize, ctx: CtxId, ts: u64, resident: bool) {
        if self.open.contains_key(&pe) {
            // Unbalanced dispatch (e.g. a WAIT re-ready): self-heal by
            // closing the previous slice here.
            self.slice_end(pe, ts);
        }
        self.threads.insert((pe, ctx));
        let tag = if resident { "run (resident)" } else { "run" };
        self.events.push(format!(
            "{{\"name\":\"{tag}\",\"cat\":\"ctx\",\"ph\":\"B\",\"ts\":{ts},\"pid\":{pe},\"tid\":{ctx}}}"
        ));
        self.open.insert(pe, (ctx, ts));
    }

    fn slice_end(&mut self, pe: usize, ts: u64) {
        if let Some((ctx, since)) = self.open.remove(&pe) {
            // Chrome drops zero-width slices rendered at identical B/E
            // timestamps in some viewers; they are still valid JSON.
            let ts = ts.max(since);
            self.events.push(format!("{{\"ph\":\"E\",\"ts\":{ts},\"pid\":{pe},\"tid\":{ctx}}}"));
        }
    }

    fn instant(&mut self, pe: usize, tid: u64, ts: u64, name: &str, args: &str) {
        self.events.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pe},\"tid\":{tid},\"args\":{{{args}}}}}"
        ));
    }

    fn record(&mut self, rec: &TraceRecord) {
        let ts = rec.cycle;
        let pe = rec.pe;
        self.pes.insert(pe);
        self.last_ts = self.last_ts.max(ts);
        match rec.event {
            TraceEvent::CtxDispatch { ctx, pc, resident } => {
                self.slice_begin(pe, ctx, ts, resident);
                let _ = pc;
            }
            TraceEvent::CtxBlock { ctx, chan, dir, pc, instructions } => {
                self.threads.insert((pe, ctx));
                self.instant(
                    pe,
                    ctx as u64,
                    ts,
                    &format!("block:{dir}"),
                    &format!("\"chan\":{chan},\"pc\":{pc},\"instructions\":{instructions}"),
                );
                self.slice_end(pe, ts);
            }
            TraceEvent::CtxWake { ctx, chan, at } => {
                self.threads.insert((pe, ctx));
                self.instant(pe, ctx as u64, ts, "wake", &format!("\"chan\":{chan},\"at\":{at}"));
            }
            TraceEvent::CtxRetire { ctx, instructions } => {
                self.threads.insert((pe, ctx));
                self.instant(
                    pe,
                    ctx as u64,
                    ts,
                    "retire",
                    &format!("\"instructions\":{instructions}"),
                );
                self.slice_end(pe, ts);
            }
            TraceEvent::Fork { kind, parent, child, child_pe, pc } => {
                self.threads.insert((pe, parent));
                self.instant(
                    pe,
                    parent as u64,
                    ts,
                    &format!("fork:{kind:?}"),
                    &format!("\"child\":{child},\"child_pe\":{child_pe},\"pc\":{pc}"),
                );
            }
            TraceEvent::ChanSend { ctx, chan, value } => {
                self.threads.insert((pe, ctx));
                self.instant(
                    pe,
                    ctx as u64,
                    ts,
                    "send",
                    &format!("\"chan\":{chan},\"value\":{value}"),
                );
            }
            TraceEvent::ChanRecv { ctx, chan, value } => {
                self.threads.insert((pe, ctx));
                self.instant(
                    pe,
                    ctx as u64,
                    ts,
                    "recv",
                    &format!("\"chan\":{chan},\"value\":{value}"),
                );
            }
            TraceEvent::Rendezvous { chan, sender, receiver, value } => {
                self.instant(
                    pe,
                    sender as u64,
                    ts,
                    "rendezvous",
                    &format!("\"chan\":{chan},\"sender\":{sender},\"receiver\":{receiver},\"value\":{value}"),
                );
            }
            TraceEvent::CacheHit { ctx, chan, value, buffered } => {
                self.threads.insert((pe, ctx));
                self.instant(
                    pe,
                    ctx as u64,
                    ts,
                    "cache-hit",
                    &format!("\"chan\":{chan},\"value\":{value},\"buffered\":{buffered}"),
                );
            }
            TraceEvent::CacheSpill { ctx, chan, value, senders } => {
                self.threads.insert((pe, ctx));
                self.instant(
                    pe,
                    ctx as u64,
                    ts,
                    "cache-spill",
                    &format!("\"chan\":{chan},\"value\":{value},\"senders\":{senders}"),
                );
            }
            TraceEvent::BusTransfer { addr, cycles } => {
                self.bus_lanes.insert(pe);
                self.instant(
                    pe,
                    BUS_TID,
                    ts,
                    "bus",
                    &format!("\"addr\":{addr},\"cycles\":{cycles}"),
                );
            }
            TraceEvent::KernelTrap { ctx, entry, name, arg } => {
                self.threads.insert((pe, ctx));
                self.instant(
                    pe,
                    ctx as u64,
                    ts,
                    &format!("trap:{name}"),
                    &format!("\"entry\":{entry},\"arg\":{arg}"),
                );
            }
            TraceEvent::FaultStall { from, until } => {
                self.fault_lanes.insert(pe);
                self.instant(
                    pe,
                    FAULT_TID,
                    ts,
                    "fault:stall",
                    &format!("\"from\":{from},\"until\":{until}"),
                );
            }
            TraceEvent::FaultSendDrop { ctx, chan, value, attempt, retry_at } => {
                self.threads.insert((pe, ctx));
                self.instant(
                    pe,
                    ctx as u64,
                    ts,
                    "fault:send-drop",
                    &format!(
                        "\"chan\":{chan},\"value\":{value},\"attempt\":{attempt},\"retry_at\":{retry_at}"
                    ),
                );
            }
            TraceEvent::FaultBusDrop { chan, attempts, penalty } => {
                self.fault_lanes.insert(pe);
                self.instant(
                    pe,
                    FAULT_TID,
                    ts,
                    "fault:bus-drop",
                    &format!("\"chan\":{chan},\"attempts\":{attempts},\"penalty\":{penalty}"),
                );
            }
            TraceEvent::FaultTrapDelay { ctx, entry, delay } => {
                self.threads.insert((pe, ctx));
                self.instant(
                    pe,
                    ctx as u64,
                    ts,
                    "fault:trap-delay",
                    &format!("\"entry\":{entry},\"delay\":{delay}"),
                );
            }
            TraceEvent::FaultRecovered { ctx, chan, retries } => {
                self.threads.insert((pe, ctx));
                self.instant(
                    pe,
                    ctx as u64,
                    ts,
                    "fault:recovered",
                    &format!("\"chan\":{chan},\"retries\":{retries}"),
                );
            }
        }
    }

    fn to_json(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut pes: Vec<_> = self.pes.iter().copied().collect();
        pes.sort_unstable();
        for pe in &pes {
            parts.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pe},\"args\":{{\"name\":\"PE {pe}\"}}}}"
            ));
        }
        let mut threads: Vec<_> = self.threads.iter().copied().collect();
        threads.sort_unstable();
        for (pe, ctx) in threads {
            let label = qm_verify::names::ctx_label(ctx, None);
            parts.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pe},\"tid\":{ctx},\"args\":{{\"name\":\"{label}\"}}}}"
            ));
        }
        let mut buses: Vec<_> = self.bus_lanes.iter().copied().collect();
        buses.sort_unstable();
        for pe in buses {
            parts.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pe},\"tid\":{BUS_TID},\"args\":{{\"name\":\"ring bus\"}}}}"
            ));
        }
        let mut faults: Vec<_> = self.fault_lanes.iter().copied().collect();
        faults.sort_unstable();
        for pe in faults {
            parts.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pe},\"tid\":{FAULT_TID},\"args\":{{\"name\":\"faults\"}}}}"
            ));
        }
        parts.extend(self.events.iter().cloned());
        // Close any slice still open at export time.
        let mut open: Vec<_> = self.open.iter().map(|(&pe, &(ctx, _))| (pe, ctx)).collect();
        open.sort_unstable();
        for (pe, ctx) in open {
            let ts = self.last_ts;
            parts.push(format!("{{\"ph\":\"E\",\"ts\":{ts},\"pid\":{pe},\"tid\":{ctx}}}"));
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&parts.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

/// Handle to a Chrome trace-event JSON builder. Clone it, install
/// [`ChromeTrace::sink`] on the system, run, then serialise with
/// [`ChromeTrace::to_json`]. One process lane per PE, one thread lane per
/// context (plus a per-PE "ring bus" lane); the timestamp unit is one
/// simulated cycle.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    inner: Arc<Mutex<ChromeBuf>>,
}

impl ChromeTrace {
    /// An empty trace builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink feeding this builder (install with `set_trace_sink`).
    #[must_use]
    pub fn sink(&self) -> Box<dyn TraceSink> {
        Box::new(ChromeSink { inner: Arc::clone(&self.inner) })
    }

    /// Serialise everything recorded so far as Chrome trace-event JSON.
    ///
    /// # Panics
    ///
    /// Panics if a sink holder panicked while recording.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.inner.lock().expect("chrome trace poisoned").to_json()
    }

    /// Number of events recorded (excluding metadata).
    ///
    /// # Panics
    ///
    /// Panics if a sink holder panicked while recording.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("chrome trace poisoned").events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct ChromeSink {
    inner: Arc<Mutex<ChromeBuf>>,
}

impl TraceSink for ChromeSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.inner.lock().expect("chrome trace poisoned").record(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_builds_events() {
        let mut t = Tracer::off();
        t.emit(0, 0, || panic!("event closure must not run with no sink"));
        assert!(!t.enabled());
    }

    #[test]
    fn recorder_retains_records_in_order() {
        let rec = Recorder::new(16);
        let mut t = Tracer::new(rec.sink());
        t.emit(5, 0, || TraceEvent::CtxDispatch { ctx: 0, pc: 0x40, resident: false });
        t.emit(9, 1, || TraceEvent::ChanSend { ctx: 0, chan: 2, value: 7 });
        let rs = rec.records();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].cycle, 5);
        assert_eq!(rs[1].pe, 1);
        assert!(matches!(rs[1].event, TraceEvent::ChanSend { value: 7, .. }));
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn recorder_ring_buffer_drops_oldest() {
        let rec = Recorder::new(2);
        let mut t = Tracer::new(rec.sink());
        for i in 0..5u64 {
            t.emit(i, 0, || TraceEvent::CtxRetire { ctx: 0, instructions: i });
        }
        let rs = rec.records();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].cycle, 3);
        assert_eq!(rs[1].cycle, 4);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn trace_buffer_is_inert_until_enabled() {
        let mut b = TraceBuffer::default();
        b.push(|| panic!("must not run while disabled"));
        assert!(b.is_empty());
        b.set_enabled(true);
        b.push(|| TraceEvent::BusTransfer { addr: 0x100, cycles: 3 });
        assert_eq!(b.take().len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn chrome_trace_balances_slices_and_names_lanes() {
        let ct = ChromeTrace::new();
        let mut t = Tracer::new(ct.sink());
        t.emit(10, 0, || TraceEvent::CtxDispatch { ctx: 1, pc: 0x40, resident: false });
        t.emit(20, 0, || TraceEvent::CtxBlock {
            ctx: 1,
            chan: 3,
            dir: ChanDir::Recv,
            pc: 0x44,
            instructions: 4,
        });
        t.emit(25, 0, || TraceEvent::CtxDispatch { ctx: 2, pc: 0x80, resident: false });
        // Leave ctx 2 open: to_json must close it.
        let json = ct.to_json();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert!(json.contains("\"name\":\"PE 0\""));
        // Lane labels route through qm_verify::names::ctx_label, the
        // same spelling deadlock wait-for reports use.
        assert!(json.contains("\"name\":\"ctx1\""));
        assert!(json.contains("block:recv"));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn chrome_trace_renders_fault_events_on_their_own_lane() {
        let ct = ChromeTrace::new();
        let mut t = Tracer::new(ct.sink());
        t.emit(3, 0, || TraceEvent::FaultStall { from: 3, until: 9 });
        t.emit(5, 0, || TraceEvent::FaultSendDrop {
            ctx: 1,
            chan: 2,
            value: 7,
            attempt: 1,
            retry_at: 9,
        });
        t.emit(6, 0, || TraceEvent::FaultBusDrop { chan: 2, attempts: 2, penalty: 20 });
        t.emit(7, 0, || TraceEvent::FaultTrapDelay { ctx: 1, entry: 0, delay: 12 });
        t.emit(9, 0, || TraceEvent::FaultRecovered { ctx: 1, chan: 2, retries: 1 });
        let json = ct.to_json();
        for tag in [
            "fault:stall",
            "fault:send-drop",
            "fault:bus-drop",
            "fault:trap-delay",
            "fault:recovered",
        ] {
            assert!(json.contains(tag), "missing {tag}");
        }
        assert!(json.contains("\"name\":\"faults\""), "fault lane is named");
    }

    #[test]
    fn chrome_trace_self_heals_unbalanced_dispatch() {
        let ct = ChromeTrace::new();
        let mut t = Tracer::new(ct.sink());
        t.emit(1, 0, || TraceEvent::CtxDispatch { ctx: 1, pc: 0, resident: false });
        // A second dispatch with no intervening block (WAIT re-ready).
        t.emit(5, 0, || TraceEvent::CtxDispatch { ctx: 1, pc: 8, resident: true });
        t.emit(9, 0, || TraceEvent::CtxRetire { ctx: 1, instructions: 3 });
        let json = ct.to_json();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
    }
}
