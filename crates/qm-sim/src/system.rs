//! The top-level multiprocessor simulator and its run loop.
//!
//! Each PE advances an independent cycle clock; the simulator always steps
//! the PE whose clock is furthest behind, so cross-PE interactions
//! (channel wakes) are causally ordered. A context that blocks on a
//! channel rendezvous is switched out (window registers rolled into its
//! queue page — the §5.2 cost at the heart of the thesis's speed-up
//! behaviour) and the PE dispatches the next ready context.
//!
//! Selecting the furthest-behind PE and its earliest-ready context is
//! delegated to [`crate::sched::Scheduler`] — priority heaps, so blocked
//! contexts cost nothing per step instead of being re-scanned each cycle.

use qm_isa::asm::Object;
use qm_isa::pe::{BlockReason, Pe, PeStats, RecvOutcome, SendOutcome, Services, StepResult};
use qm_isa::Word as IsaWord;

use crate::config::{Placement, SystemConfig};
use crate::fault::{DegradationReport, FaultEngine, FaultPlan};
use crate::kernel::{entry, Context, CtxState, PageAllocator, REG_OUT_CHAN};
use crate::memory::{MemStats, SharedMemory};
use crate::msg::{CacheState, ChanDir, ChannelTable, RecvResult, SendResult, HOST_CHANNEL};
use crate::sched::Scheduler;
use crate::trace::{ForkKind, TraceEvent, TraceRecord, TraceSink, Tracer};
use crate::{CtxId, UWord, Word};

/// One context stuck in a deadlock: what it waits for and where it
/// stopped (the wait-for report of [`SimError::Deadlock`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedCtx {
    /// The blocked context.
    pub ctx: CtxId,
    /// Canonical label for the context from
    /// [`qm_verify::names::ctx_label`] — `ctx1`, or `ctx1 (child)` when
    /// a program symbol covers the blocked PC. Traces and the static
    /// deadlock lint use the same helper, so the spellings agree.
    pub label: String,
    /// PE it is bound to.
    pub pe: usize,
    /// Channel it waits on.
    pub chan: Word,
    /// Whether it is blocked sending or receiving.
    pub dir: ChanDir,
    /// PC of the blocked instruction (re-executed if ever woken).
    pub pc: UWord,
    /// The value a blocked sender is offering (`None` for receivers).
    pub value: Option<Word>,
    /// Observable state of the channel's message-cache entry.
    pub chan_state: CacheState,
}

impl std::fmt::Display for BlockedCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on pe{}: {} on chan {} at pc {:#x}",
            self.label, self.pe, self.dir, self.chan, self.pc
        )?;
        if let Some(v) = self.value {
            write!(f, " (offering {v})")?;
        }
        write!(f, " [channel {:?}]", self.chan_state)
    }
}

/// A context caught mid-retry by the watchdog: its send keeps being
/// dropped by fault injection (part of [`SimError::Watchdog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryingCtx {
    /// The retrying context.
    pub ctx: CtxId,
    /// PE it is bound to.
    pub pe: usize,
    /// Drops its current transfer has suffered so far.
    pub retries: u32,
}

impl std::fmt::Display for RetryingCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on pe{}: send dropped {} time(s), still retrying",
            qm_verify::names::ctx_label(self.ctx, None),
            self.pe,
            self.retries
        )
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Live contexts exist but none can run.
    Deadlock {
        /// Wait-for report: every context parked on a channel, with the
        /// channel, direction, blocked PC and cache occupancy.
        blocked: Vec<BlockedCtx>,
    },
    /// The fault-recovery watchdog fired: the run loop went
    /// [`RecoveryConfig::watchdog_steps`](crate::config::RecoveryConfig::watchdog_steps)
    /// consecutive steps without retiring an instruction (a retry
    /// livelock rather than a true deadlock). Only armed while a fault
    /// engine is installed.
    Watchdog {
        /// Consecutive no-progress steps observed.
        steps: u64,
        /// Wait-for report of contexts parked on channels (same shape as
        /// [`SimError::Deadlock`]).
        blocked: Vec<BlockedCtx>,
        /// Contexts spinning on fault-dropped sends (not parked in the
        /// channel table, so invisible to the wait-for report).
        retrying: Vec<RetryingCtx>,
    },
    /// The `max_instructions` safety valve fired.
    InstructionBudget,
    /// A PE hit an undecodable instruction.
    Pe(String),
    /// A trap named an unknown kernel entry.
    UnknownTrap(Word),
    /// Assembly failed while building the system.
    Asm(String),
    /// Static verification rejected the program before it ran (builder
    /// [`verify(VerifyLevel::Strict)`](crate::builder::SimBuilder::verify)).
    Verify {
        /// The verifier's findings (render with
        /// [`Report::render`](qm_verify::Report::render) for the full
        /// rustc-style diagnostics).
        report: qm_verify::Report,
    },
    /// Writing or reading a snapshot failed (automatic cadence snapshots
    /// or a builder `resume_from`); the message carries the underlying
    /// [`SnapshotError`](crate::snapshot::SnapshotError) or I/O error.
    Snapshot(String),
    /// The requested execution backend is unavailable for this build
    /// (builder [`backend`](crate::builder::SimBuilder::backend):
    /// `Backend::Translated` demands `VerifyLevel::Strict`).
    Backend(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "deadlock: {} context(s) blocked on channels", blocked.len())?;
                for b in blocked {
                    write!(f, "\n  {b}")?;
                }
                Ok(())
            }
            SimError::Watchdog { steps, blocked, retrying } => {
                write!(
                    f,
                    "watchdog: no forward progress for {steps} steps \
                     ({} blocked, {} retrying)",
                    blocked.len(),
                    retrying.len()
                )?;
                for b in blocked {
                    write!(f, "\n  {b}")?;
                }
                for r in retrying {
                    write!(f, "\n  {r}")?;
                }
                Ok(())
            }
            SimError::InstructionBudget => write!(f, "instruction budget exhausted"),
            SimError::Pe(msg) => write!(f, "processing element fault: {msg}"),
            SimError::UnknownTrap(n) => write!(f, "unknown kernel entry {n}"),
            SimError::Asm(msg) => write!(f, "assembly failed: {msg}"),
            SimError::Verify { report } => {
                write!(f, "static verification rejected the program: {}", report.summary())?;
                for line in report.render().lines() {
                    write!(f, "\n  {line}")?;
                }
                Ok(())
            }
            SimError::Snapshot(msg) => write!(f, "snapshot failed: {msg}"),
            SimError::Backend(msg) => write!(f, "backend unavailable: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-PE results of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeReport {
    /// Final value of the PE's cycle clock.
    pub cycles: u64,
    /// Cycles spent actually executing (excludes idle skips).
    pub busy_cycles: u64,
    /// Detailed PE statistics.
    pub stats: PeStats,
}

/// Results of a completed run (the raw material of Tables 6.2–6.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Words the program sent to the host channel.
    pub output: Vec<Word>,
    /// Wall-clock cycles: the maximum over all PE clocks.
    pub elapsed_cycles: u64,
    /// Total instructions retired.
    pub instructions: u64,
    /// Contexts created over the whole run.
    pub contexts_created: u64,
    /// Peak simultaneously-live contexts (the exposed parallelism).
    pub peak_live_contexts: u64,
    /// Completed channel transfers.
    pub channel_transfers: u64,
    /// Memory/bus traffic.
    pub mem: MemStats,
    /// Fault-injection and recovery tallies (all zeros for a clean run).
    pub degradation: DegradationReport,
    /// Per-PE breakdown.
    pub pes: Vec<PeReport>,
}

/// Result of a bounded run ([`System::run_until`]): either the program
/// finished (with its outcome) or the limit was reached first and the
/// system paused at a clean step boundary — safe to snapshot via
/// [`Snapshot::capture`](crate::snapshot::Snapshot::capture).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The program ran to completion before the limit.
    Done(RunOutcome),
    /// The limit was reached; `cycle` is the time of the next pending
    /// action (≥ the limit). Calling [`System::run`] or
    /// [`System::run_until`] again continues exactly where the
    /// uninterrupted run would have.
    Paused {
        /// Cycle time of the next pending action.
        cycle: u64,
    },
}

pub(crate) struct PeUnit {
    pub(crate) pe: Pe,
    pub(crate) current: Option<CtxId>,
    pub(crate) busy: u64,
    /// Stats snapshot at the last dispatch: the delta against the live
    /// counters is the activity of the current residency slice.
    pub(crate) slice_base: PeStats,
}

/// The queue machine multiprocessor.
///
/// Fields are `pub(crate)` so [`crate::snapshot`] can capture and
/// restore the complete machine state; outside the crate the public API
/// is unchanged.
pub struct System {
    pub(crate) cfg: SystemConfig,
    /// The shared memory (public for workload initialisation).
    pub memory: SharedMemory,
    pub(crate) channels: ChannelTable,
    pub(crate) pes: Vec<PeUnit>,
    pub(crate) sched: Scheduler,
    pub(crate) contexts: Vec<Context>,
    pub(crate) pages: Vec<PageAllocator>,
    pub(crate) symbols: Option<Object>,
    /// Snapshot-ready view of the loaded object (code words + sorted
    /// symbols), built once at load. Cadence captures clone the `Arc`
    /// instead of re-copying names and words, so `snapshot_every` cost
    /// stops scaling with program size.
    pub(crate) symbol_snap: Option<std::sync::Arc<crate::snapshot::ObjSnap>>,
    /// Symbol table sorted by `(address, name)` — the shape the
    /// `qm_verify::names` span helpers take — cached at load so wait-for
    /// reports borrow it instead of re-cloning every name.
    pub(crate) symbol_addr_table: Vec<(String, UWord)>,
    pub(crate) rr: usize,
    pub(crate) halted: bool,
    pub(crate) live: usize,
    pub(crate) created: u64,
    pub(crate) peak_live: u64,
    pub(crate) tracer: Tracer,
    /// Compiled fault plan, `None` for fault-free runs (the fast path is
    /// untouched: no engine, no draws, bit-identical behaviour).
    pub(crate) faults: Option<FaultEngine>,
    /// Fault/recovery tallies for the current run.
    pub(crate) report: DegradationReport,
    /// Consecutive run-loop steps that ended blocked (watchdog input).
    pub(crate) idle_steps: u64,
    /// Instructions retired by the run loop so far — persistent (and
    /// snapshotted) so the `max_instructions` budget spans pause/resume
    /// exactly like an uninterrupted run.
    pub(crate) instr_count: u64,
    /// Automatic snapshot cadence: write a snapshot every this many
    /// cycles (`None` = off). See [`System::set_snapshot_cadence`].
    pub(crate) snap_every: Option<u64>,
    /// Directory automatic snapshots are written into.
    pub(crate) snap_dir: String,
    /// Next cycle boundary an automatic snapshot fires at (snapshotted,
    /// so a resumed run hits the identical boundaries).
    pub(crate) next_snap_at: u64,
    /// Requested host-thread shard count (see [`System::set_shards`]).
    /// A host-side execution knob, not machine state: it is *not*
    /// snapshotted, so captures are shard-count-invariant.
    pub(crate) shards: usize,
    /// Frontier bookkeeping while a sharded `run_until` is in flight
    /// (`None` between runs and for effective shard count 1).
    pub(crate) shard: Option<crate::shard::ShardRt>,
    /// Execution backend (see [`System::set_backend`]). Like `shards`, a
    /// host-side execution knob, not machine state: it is *not*
    /// snapshotted, so captures are backend-invariant.
    pub(crate) backend: crate::xlate::Backend,
    /// Cached translation of the loaded object (`None` until the first
    /// translated step, or after the retranslation budget is spent).
    pub(crate) xlate: Option<crate::xlate::XProgram>,
    /// Retranslations performed this run-lifetime (code-write epochs
    /// absorbed); capped by `xlate::MAX_RETRANSLATIONS`.
    pub(crate) xlate_retrans: u32,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cfg", &self.cfg)
            .field("contexts", &self.contexts.len())
            .field("live", &self.live)
            .field("halted", &self.halted)
            .field("faults_active", &self.faults.is_some())
            .field("tracing", &self.tracer.enabled())
            .finish_non_exhaustive()
    }
}

/// How a translated batch ended. Consequences that need the whole
/// `&mut System` (context roll-out, trap service) are applied after the
/// borrow of the translation is released.
enum BatchExit {
    /// Back to the outer loop: bound reached, slot missing, epoch moved.
    Outer,
    /// The last step blocked on a channel; `before` is its start cycle.
    Blocked { before: u64 },
    /// The last step trapped (PC already advanced past the trap).
    Trap { before: u64, entry: Word, arg: Word, dst1: u8, dst2: u8 },
    /// The instruction stream was undecodable.
    Error(String),
}

struct Svc<'a> {
    channels: &'a mut ChannelTable,
    contexts: &'a mut [Context],
    sched: &'a mut Scheduler,
    cfg: &'a SystemConfig,
    tracer: &'a mut Tracer,
    faults: &'a mut Option<FaultEngine>,
    report: &'a mut DegradationReport,
    ctx: CtxId,
    time: u64,
}

impl Svc<'_> {
    fn wake(&mut self, w: CtxId, chan: Word, at: u64) {
        let c = &mut self.contexts[w];
        debug_assert_eq!(c.state, CtxState::Blocked);
        c.state = CtxState::Ready;
        c.ready_at = at;
        let pe = c.pe;
        self.sched.push_ready(pe, w, at);
        self.tracer.emit(self.time, pe, || TraceEvent::CtxWake { ctx: w, chan, at });
    }

    /// Fault check for a channel send about to enter the channel layer.
    /// When the engine drops it, the sender is charged a backoff and a
    /// retry is scheduled (collected by the run loop right after it
    /// parks the context); returns `true` so the caller reports
    /// [`SendOutcome::Block`] without touching the channel table. Host
    /// sends never drop (channel 0 is the simulation's observation
    /// point), and a transfer beyond its retry budget is forced through.
    fn drop_this_send(&mut self, pe: usize, chan: Word, value: Word) -> bool {
        let Some(f) = self.faults.as_mut() else { return false };
        if chan == HOST_CHANNEL {
            return false;
        }
        let attempt = self.contexts[self.ctx].send_retries;
        if attempt >= f.recovery.max_retries || !f.drop_send() {
            return false;
        }
        let delay = f.recovery.backoff(attempt);
        let at = self.time + delay;
        self.contexts[self.ctx].send_retries = attempt + 1;
        self.report.send_drops += 1;
        self.report.retries += 1;
        self.report.backoff_cycles += delay;
        f.schedule_retry(at);
        let ctx = self.ctx;
        self.tracer.emit(self.time, pe, || TraceEvent::FaultSendDrop {
            ctx,
            chan,
            value,
            attempt: attempt + 1,
            retry_at: at,
        });
        true
    }

    /// Extra cycles fault injection adds to a cross-PE bus transfer of
    /// base cost `base`: each consecutive drop re-charges the transfer
    /// plus a backoff, bounded by the retry budget.
    fn bus_penalty(&mut self, pe: usize, chan: Word, base: u64) -> u64 {
        let Some(f) = self.faults.as_mut() else { return 0 };
        let attempts = f.bus_drop_attempts();
        if attempts == 0 {
            return 0;
        }
        let mut penalty = 0;
        for i in 0..attempts {
            penalty += base + f.recovery.backoff(i);
        }
        self.report.bus_drops += u64::from(attempts);
        self.report.retries += u64::from(attempts);
        self.report.backoff_cycles += penalty;
        self.tracer.emit(self.time, pe, || TraceEvent::FaultBusDrop { chan, attempts, penalty });
        penalty
    }

    /// Reset the sender's retry counter after its transfer finally got
    /// through, recording the recovery.
    fn note_send_completed(&mut self, pe: usize, chan: Word) {
        let retries = self.contexts[self.ctx].send_retries;
        if retries > 0 {
            self.contexts[self.ctx].send_retries = 0;
            self.report.recovered_transfers += 1;
            let ctx = self.ctx;
            self.tracer.emit(self.time, pe, || TraceEvent::FaultRecovered { ctx, chan, retries });
        }
    }
}

impl Services for Svc<'_> {
    fn send(&mut self, pe: usize, chan: IsaWord, value: IsaWord) -> SendOutcome {
        if self.drop_this_send(pe, chan, value) {
            return SendOutcome::Block;
        }
        let ctx = self.ctx;
        match self.channels.send(ctx, pe, chan, value) {
            SendResult::Done { woke } => {
                if self.faults.is_some() {
                    self.note_send_completed(pe, chan);
                }
                self.tracer.emit(self.time, pe, || TraceEvent::ChanSend { ctx, chan, value });
                let cycles = match woke {
                    Some(w) => {
                        let to_pe = self.contexts[w].pe;
                        let mut c = self.cfg.chan_cost(pe, to_pe);
                        if to_pe != pe {
                            c += self.bus_penalty(pe, chan, c);
                        }
                        self.wake(w, chan, self.time + c);
                        c
                    }
                    None if chan == HOST_CHANNEL => self.cfg.bus.chan_local,
                    None => 0, // resumed after ack: cost was charged at match
                };
                SendOutcome::Done { cycles }
            }
            SendResult::Block => SendOutcome::Block,
        }
    }

    fn recv(&mut self, pe: usize, chan: IsaWord) -> RecvOutcome {
        let ctx = self.ctx;
        match self.channels.recv(ctx, pe, chan) {
            RecvResult::Done { value, woke, from_pe } => {
                self.tracer.emit(self.time, pe, || TraceEvent::ChanRecv { ctx, chan, value });
                let cycles = match (woke, from_pe) {
                    (Some(w), Some(spe)) => {
                        let mut c = self.cfg.chan_cost(spe, pe);
                        if spe != pe {
                            c += self.bus_penalty(pe, chan, c);
                        }
                        self.wake(w, chan, self.time + c);
                        c
                    }
                    (None, Some(spe)) => {
                        let mut c = self.cfg.chan_cost(spe, pe);
                        if spe != pe {
                            c += self.bus_penalty(pe, chan, c);
                        }
                        c
                    }
                    _ => self.cfg.bus.chan_local,
                };
                RecvOutcome::Done { value, cycles }
            }
            RecvResult::Block => RecvOutcome::Block,
        }
    }
}

impl System {
    /// An empty system: load code and spawn a main context before
    /// running.
    #[must_use]
    pub fn new(cfg: SystemConfig) -> Self {
        let memory = SharedMemory::new(&cfg);
        let pes = (0..cfg.pes)
            .map(|i| {
                let mut pe = Pe::new(i);
                pe.model = cfg.cycle_model;
                PeUnit { pe, current: None, busy: 0, slice_base: PeStats::default() }
            })
            .collect();
        let pages = (0..cfg.pes).map(|_| PageAllocator::new(cfg.queue_page_words)).collect();
        System {
            sched: Scheduler::new(cfg.pes),
            memory,
            channels: ChannelTable::new(cfg.channel_capacity),
            pes,
            contexts: Vec::new(),
            pages,
            symbols: None,
            symbol_snap: None,
            symbol_addr_table: Vec::new(),
            rr: 0,
            halted: false,
            live: 0,
            created: 0,
            peak_live: 0,
            tracer: Tracer::off(),
            faults: None,
            report: DegradationReport::default(),
            idle_steps: 0,
            instr_count: 0,
            snap_every: None,
            snap_dir: String::from("."),
            next_snap_at: 0,
            shards: 1,
            shard: None,
            backend: crate::xlate::Backend::Interp,
            xlate: None,
            xlate_retrans: 0,
            cfg,
        }
    }

    /// Shard the simulation across `shards` host threads (clamped to
    /// `1..=pes`; the default 1 is the serial scheduler, byte for byte).
    /// Sharding is an execution strategy, not a machine parameter: any
    /// shard count produces bit-identical results — same cycles, same
    /// [`Snapshot::state_digest`](crate::snapshot::Snapshot::state_digest),
    /// same trace streams, same fault draws,
    /// same snapshot bytes — as the serial run (`docs/DETERMINISM.md`;
    /// pinned by `tests/shard_equivalence.rs`). It is therefore safe to
    /// change between runs, including on a restored snapshot.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// The requested shard count (before clamping to the PE count).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Select the execution backend for the PE hot loop (see
    /// [`crate::xlate`]). Like [`System::set_shards`], the backend is an
    /// execution strategy, not a machine parameter: both backends
    /// produce bit-identical results — same cycles, same
    /// [`Snapshot::state_digest`](crate::snapshot::Snapshot::state_digest),
    /// same trace streams, same fault draws, same snapshot bytes
    /// (`docs/DETERMINISM.md`; pinned by `tests/xlate_equivalence.rs`).
    /// It is therefore safe to change between runs, including on a
    /// restored snapshot.
    ///
    /// This is the unchecked low-level knob (replay and resumed service
    /// jobs re-apply it to restored systems). The verified front door is
    /// [`crate::SimBuilder::backend`], which insists on Strict
    /// verification before enabling the translated backend on a fresh
    /// build.
    pub fn set_backend(&mut self, backend: crate::xlate::Backend) {
        self.backend = backend;
    }

    /// The selected execution backend.
    #[must_use]
    pub fn backend(&self) -> crate::xlate::Backend {
        self.backend
    }

    /// Install a fault-injection plan (see [`crate::fault`]). An empty
    /// plan installs nothing: the run stays on the fault-free fast path
    /// and is bit-identical to never having called this. Installing a
    /// plan resets the degradation tallies.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.report = DegradationReport::default();
        self.idle_steps = 0;
        self.faults = if plan.is_empty() { None } else { Some(plan.compile(self.cfg.pes)) };
    }

    /// Whether a fault engine is installed (a non-empty plan was set).
    #[must_use]
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// Install a trace sink: every simulator event (context dispatch /
    /// block / wake / retire, forks, channel traffic, message-cache hits
    /// and spills, bus transfers, kernel traps) is delivered to it. See
    /// [`crate::trace`] for the provided sinks. With no sink installed
    /// (the default) events are never even constructed.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer = Tracer::new(sink);
        self.channels.trace.set_enabled(true);
        self.memory.trace.set_enabled(true);
    }

    /// Remove the trace sink and stop buffering events.
    pub fn clear_trace_sink(&mut self) {
        self.tracer = Tracer::off();
        self.channels.trace.set_enabled(false);
        self.memory.trace.set_enabled(false);
    }

    /// Assemble `src`, load it, and spawn the main context at label
    /// `main` (or the first instruction when no such label exists).
    ///
    /// # Errors
    ///
    /// [`SimError::Asm`] when the source does not assemble.
    pub fn with_assembly(cfg: SystemConfig, src: &str) -> Result<Self, SimError> {
        System::builder().config(cfg).assembly(src).build()
    }

    /// Record the loaded object for symbol lookup (the builder's path to
    /// the private field), caching the derived views — the snapshot
    /// `ObjSnap` and the address-sorted symbol table — once, so neither
    /// is rebuilt per capture or per report.
    pub(crate) fn set_symbols(&mut self, obj: Object) {
        self.symbol_snap = Some(std::sync::Arc::new(crate::snapshot::ObjSnap::of(&obj)));
        let mut table: Vec<(String, UWord)> =
            obj.symbols().iter().map(|(n, &a)| (n.clone(), a)).collect();
        table.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        self.symbol_addr_table = table;
        self.symbols = Some(obj);
    }

    /// Load an assembled object into code memory.
    pub fn load_object(&mut self, obj: &Object) {
        self.memory.load_words(obj.base(), obj.words());
    }

    /// Address of a label in the loaded object.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<UWord> {
        self.symbols.as_ref().and_then(|o| o.symbol(name))
    }

    /// Pre-load host input (read by `recv` on channel 0).
    pub fn push_input(&mut self, value: Word) {
        self.channels.input.push_back(value);
    }

    /// Spawn the root context at `entry` on PE 0 with host channels.
    pub fn spawn_main(&mut self, pc: UWord) {
        let page = self.pages[0].alloc();
        let pom = self.pages[0].pom();
        let ctx = Context::new(pc, 0, page, pom, HOST_CHANNEL, HOST_CHANNEL, 0);
        let id = self.contexts.len();
        self.contexts.push(ctx);
        self.sched.push_ready(0, id, 0);
        self.live += 1;
        self.created += 1;
        self.peak_live = self.peak_live.max(self.live as u64);
    }

    /// System configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    fn choose_pe(&mut self, parent: usize) -> usize {
        match self.cfg.placement {
            Placement::Local => parent,
            Placement::RoundRobin => {
                // Plain rotation, parent included: a forking parent
                // usually blocks right after, so its PE is as good a
                // target as any (skipping it desynchronises the rotation
                // and measurably hurts — see ablation_placement).
                let pe = self.rr % self.cfg.pes;
                self.rr += 1;
                pe
            }
            Placement::LeastLoaded => {
                // Least busy: the PE whose clock is furthest behind, with
                // queued-work count and PE number as tie-breakers. (Pure
                // context counting converges every iteration chain onto
                // one PE, because a chain keeps only one context alive.)
                // Every Ready context sits in exactly one ready queue and
                // every Running context is some PE's current, so the load
                // is a queue length plus a running bit — no context scan.
                // Under sharding a PE's live clock may have run ahead
                // through pre-executed local steps; the tie-break uses
                // the serial-equivalent clock so fork placement matches
                // the serial run exactly.
                (0..self.cfg.pes)
                    .min_by_key(|&i| {
                        let running = self.pes[i]
                            .current
                            .is_some_and(|c| self.contexts[c].state == CtxState::Running);
                        let load = self.sched.ready_len(i) + usize::from(running);
                        (load, self.shard_serial_clock(i), i)
                    })
                    .unwrap_or(parent)
            }
        }
    }

    /// Earliest cycle PE `pe` can act: its clock while a context is
    /// running, else the earliest queued `ready_at` clamped to the clock,
    /// or `None` when nothing can run there. A PE whose resident context
    /// is blocked only acts when some context (possibly that one,
    /// re-woken) is ready.
    pub(crate) fn actor_time(&self, pe: usize) -> Option<u64> {
        let unit = &self.pes[pe];
        let running = unit.current.is_some_and(|c| self.contexts[c].state == CtxState::Running);
        if running {
            Some(unit.pe.cycles)
        } else {
            self.sched.min_ready_at(pe).map(|r| r.max(unit.pe.cycles))
        }
    }

    /// Re-plant every PE's actor candidate from current state (run-loop
    /// entry: spawns/loads may have happened in any order outside it).
    fn rebuild_actors(&mut self) {
        self.sched.clear_actors();
        for pe in 0..self.cfg.pes {
            let t = self.actor_time(pe);
            self.sched.refresh(pe, t);
        }
    }

    /// Which PE should act next: `(pe, at)` or `None` when nothing can
    /// run — the heap-backed equivalent of scanning every PE for the
    /// minimum [`Self::actor_time`] (ties to the lowest PE index).
    fn next_actor(&mut self) -> Option<(usize, u64)> {
        let Self { sched, pes, contexts, .. } = self;
        sched.next_actor(|pe, min_ready| {
            let unit = &pes[pe];
            let running = unit.current.is_some_and(|c| contexts[c].state == CtxState::Running);
            if running {
                Some(unit.pe.cycles)
            } else {
                min_ready.map(|r| r.max(unit.pe.cycles))
            }
        })
    }

    fn dispatch(&mut self, i: usize) {
        // The ready context with the earliest ready_at (FIFO ties).
        let ctx_id = self.sched.pop_ready(i).expect("dispatch called with ready work");
        if self.pes[i].current == Some(ctx_id) {
            // The blocked context never left the PE: resume in place with
            // its window registers intact (§5.2 — the effect behind the
            // better-than-linear multiprocessor curves: lightly loaded
            // PEs skip the roll-out entirely).
            let ctx = &mut self.contexts[ctx_id];
            ctx.state = CtxState::Running;
            let unit = &mut self.pes[i];
            unit.pe.cycles = unit.pe.cycles.max(ctx.ready_at) + 1;
            unit.slice_base = unit.pe.stats;
            let (cycles, pc) = (unit.pe.cycles, unit.pe.regs.pc());
            self.tracer.emit(cycles, i, || TraceEvent::CtxDispatch {
                ctx: ctx_id,
                pc,
                resident: true,
            });
            return;
        }
        // Evict a blocked resident context first.
        if let Some(resident) = self.pes[i].current.take() {
            let saved = self.pes[i].pe.switch_out(&mut self.memory);
            self.contexts[resident].saved = saved;
        }
        let ctx = &mut self.contexts[ctx_id];
        ctx.state = CtxState::Running;
        let unit = &mut self.pes[i];
        unit.pe.cycles = unit.pe.cycles.max(ctx.ready_at) + self.cfg.kernel.dispatch;
        unit.pe.switch_in(&ctx.saved);
        unit.current = Some(ctx_id);
        unit.slice_base = unit.pe.stats;
        let (cycles, pc) = (unit.pe.cycles, unit.pe.regs.pc());
        self.tracer.emit(cycles, i, || TraceEvent::CtxDispatch {
            ctx: ctx_id,
            pc,
            resident: false,
        });
    }

    fn block_current(&mut self, i: usize) {
        let ctx_id = self.pes[i].current.expect("blocking the running context");
        // A channel wake may already have arrived for a WAIT-style block;
        // only mark Blocked if nothing re-readied us (normal case).
        if self.contexts[ctx_id].state == CtxState::Running {
            self.contexts[ctx_id].state = CtxState::Blocked;
        }
        if self.sched.ready_len(i) == 0 {
            // Nothing else to run: stay resident, keep the window
            // registers live, skip the roll-out.
            return;
        }
        let saved = self.pes[i].pe.switch_out(&mut self.memory);
        self.contexts[ctx_id].saved = saved;
        self.pes[i].current = None;
    }

    fn handle_trap(
        &mut self,
        i: usize,
        entry_no: Word,
        arg: Word,
        dst1: u8,
        dst2: u8,
    ) -> Result<(), SimError> {
        if self.tracer.enabled() {
            if let Some(ctx) = self.pes[i].current {
                let cycles = self.pes[i].pe.cycles;
                self.tracer.emit(cycles, i, || TraceEvent::KernelTrap {
                    ctx,
                    entry: entry_no,
                    name: entry::name(entry_no),
                    arg,
                });
            }
        }
        // Fault injection: a delayed trap charges extra service cycles
        // before the entry runs.
        if let Some(delay) = self.faults.as_mut().and_then(FaultEngine::trap_delay) {
            self.pes[i].pe.cycles += delay;
            self.report.trap_delays += 1;
            self.report.delay_cycles += delay;
            if let Some(ctx) = self.pes[i].current {
                let cycles = self.pes[i].pe.cycles;
                self.tracer.emit(cycles, i, || TraceEvent::FaultTrapDelay {
                    ctx,
                    entry: entry_no,
                    delay,
                });
            }
        }
        #[allow(clippy::cast_sign_loss)]
        match entry_no {
            entry::RFORK | entry::IFORK | entry::RFORK_LOCAL => {
                let parent_out = self.pes[i].pe.regs.read_global(REG_OUT_CHAN);
                // iforks continue an iteration chain and local rforks are
                // continuations the parent blocks on: both stay on the
                // forking PE. Plain rfork spreads load.
                let child_pe = if entry_no == entry::RFORK { self.choose_pe(i) } else { i };
                let c_in = self.channels.allocate();
                let c_out =
                    if entry_no == entry::IFORK { parent_out } else { self.channels.allocate() };
                let page = self.pages[child_pe].alloc();
                let pom = self.pages[child_pe].pom();
                self.pes[i].pe.cycles += self.cfg.kernel.fork;
                let at = self.pes[i].pe.cycles;
                let ctx = Context::new(arg as UWord, child_pe, page, pom, c_in, c_out, at);
                let id = self.contexts.len();
                self.contexts.push(ctx);
                self.sched.push_ready(child_pe, id, at);
                self.live += 1;
                self.created += 1;
                self.peak_live = self.peak_live.max(self.live as u64);
                self.pes[i].pe.write_dst(dst1, c_in);
                if entry_no != entry::IFORK {
                    self.pes[i].pe.write_dst(dst2, c_out);
                }
                if self.tracer.enabled() {
                    if let Some(parent) = self.pes[i].current {
                        let kind = match entry_no {
                            entry::IFORK => ForkKind::Iterative,
                            entry::RFORK_LOCAL => ForkKind::Local,
                            _ => ForkKind::Recursive,
                        };
                        self.tracer.emit(at, i, || TraceEvent::Fork {
                            kind,
                            parent,
                            child: id,
                            child_pe,
                            pc: arg as UWord,
                        });
                    }
                }
                Ok(())
            }
            entry::END => {
                let ctx_id = self.pes[i].current.take().expect("END from a running context");
                let ctx = &mut self.contexts[ctx_id];
                ctx.state = CtxState::Dead;
                self.pages[i].free(ctx.queue_page);
                self.live -= 1;
                self.pes[i].pe.cycles += self.cfg.kernel.end;
                if self.tracer.enabled() {
                    let unit = &self.pes[i];
                    let instructions = unit.pe.stats.delta(&unit.slice_base).instructions;
                    let cycles = unit.pe.cycles;
                    self.tracer
                        .emit(cycles, i, || TraceEvent::CtxRetire { ctx: ctx_id, instructions });
                }
                Ok(())
            }
            entry::HALT => {
                self.halted = true;
                Ok(())
            }
            entry::NOW => {
                #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
                let now = self.pes[i].pe.cycles as Word;
                self.pes[i].pe.write_dst(dst1, now);
                Ok(())
            }
            entry::CHAN => {
                let id = self.channels.allocate();
                self.pes[i].pe.write_dst(dst1, id);
                Ok(())
            }
            entry::WAIT => {
                let target = arg as u64;
                if target > self.pes[i].pe.cycles {
                    let ctx_id = self.pes[i].current.expect("WAIT from a running context");
                    self.contexts[ctx_id].ready_at = target;
                    self.block_current(i);
                    self.contexts[ctx_id].state = CtxState::Ready;
                    self.sched.push_ready(i, ctx_id, target);
                }
                Ok(())
            }
            other => Err(SimError::UnknownTrap(other)),
        }
    }

    /// Run to completion: until the system halts (`trap #3`) or every
    /// context has terminated.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when live contexts exist but none can make
    /// progress; [`SimError::InstructionBudget`] past the configured
    /// instruction limit; [`SimError::Pe`]/[`SimError::UnknownTrap`] on
    /// faults.
    pub fn run(&mut self) -> Result<RunOutcome, SimError> {
        match self.run_until(u64::MAX)? {
            RunStatus::Done(outcome) => Ok(outcome),
            RunStatus::Paused { .. } => unreachable!("a u64::MAX limit cannot pause"),
        }
    }

    /// Run until the program completes or the next pending action would
    /// happen at or after `limit` cycles, whichever comes first. Pausing
    /// happens only at step boundaries (no instruction, trap or transfer
    /// is half-done), so the paused system can be snapshotted and a
    /// restored copy continues bit-identically to an uninterrupted run —
    /// the invariant pinned by `tests/snapshot_resume.rs`.
    ///
    /// # Errors
    ///
    /// As [`System::run`]; additionally [`SimError::Snapshot`] when an
    /// automatic cadence snapshot (see
    /// [`System::set_snapshot_cadence`]) cannot be written.
    pub fn run_until(&mut self, limit: u64) -> Result<RunStatus, SimError> {
        // Sharded execution (see `crate::shard`) lives entirely within
        // one run_until call: the bookkeeping is installed here, torn
        // down on every exit path, and never part of captured state.
        // Every pause, cadence snapshot and completion below happens at
        // a consumption barrier, where the machine state is exactly the
        // serial scheduler's.
        self.shard_begin_run();
        let result = self.run_until_inner(limit);
        self.shard = None;
        result
    }

    fn run_until_inner(&mut self, limit: u64) -> Result<RunStatus, SimError> {
        self.rebuild_actors();
        while !self.halted && self.live > 0 {
            if self.shard.is_some() {
                self.shard_phase_a(limit);
            }
            let Some((i, t)) = self.next_actor() else {
                debug_assert!(self.shard_quiescent(), "pending frontier implies a runnable PE");
                return Err(SimError::Deadlock { blocked: self.deadlock_report() });
            };
            if self.shard.is_some() {
                // Pre-executed local steps up to this selection are now
                // serial history: fold them into instr_count/idle_steps.
                self.shard_consume(t, i);
            }
            if t >= limit {
                // The popped actor hint is discarded; the next run_until
                // re-plants every candidate via rebuild_actors. All
                // frontier keys were < limit ≤ t, so the consume above
                // drained them: the paused state is the serial state.
                debug_assert!(self.shard_quiescent());
                return Ok(RunStatus::Paused { cycle: t });
            }
            if self.snap_every.is_some() {
                self.write_due_snapshots(t)?;
            }
            // Fault injection: a PE inside a stall window cannot act; its
            // clock is idled to the end of the window and the scheduler
            // re-plants it there. Windows are half-open, so the clock
            // strictly advances — the loop cannot spin on a stall.
            if let Some(until) = self.faults.as_ref().and_then(|f| f.stall_until(i, t)) {
                self.report.pe_stalls += 1;
                self.report.stall_cycles += until - t;
                let unit = &mut self.pes[i];
                unit.pe.cycles = unit.pe.cycles.max(until);
                self.tracer.emit(t, i, || TraceEvent::FaultStall { from: t, until });
                let time = self.actor_time(i);
                self.sched.refresh(i, time);
                if self.shard.is_some() {
                    // The stall window is behind this PE's clock now, so
                    // its frontier is eligible again.
                    self.shard_after_step(i);
                }
                continue;
            }
            let running =
                self.pes[i].current.is_some_and(|c| self.contexts[c].state == CtxState::Running);
            if !running {
                self.dispatch(i);
            }
            let ctx_id = self.pes[i].current.expect("dispatched");
            let before = self.pes[i].pe.cycles;
            let translated = self.backend == crate::xlate::Backend::Translated;
            let result = {
                // Translated backend: use the pre-decoded slot when one
                // exists for this PC; otherwise fall back to the
                // interpreter (same exec functions either way — see
                // crate::xlate for the equivalence argument).
                let slot = if translated {
                    self.ensure_translation();
                    self.xlate.as_ref().and_then(|xp| xp.slot(self.pes[i].pe.regs.pc())).copied()
                } else {
                    None
                };
                let mut svc = Svc {
                    channels: &mut self.channels,
                    contexts: &mut self.contexts,
                    sched: &mut self.sched,
                    cfg: &self.cfg,
                    tracer: &mut self.tracer,
                    faults: &mut self.faults,
                    report: &mut self.report,
                    ctx: ctx_id,
                    time: before,
                };
                match slot {
                    Some(d) => self.pes[i].pe.step_decoded(&d, &mut self.memory, &mut svc),
                    None => self.pes[i].pe.step(&mut self.memory, &mut svc),
                }
            };
            let continued = matches!(result, StepResult::Continue);
            match result {
                StepResult::Continue | StepResult::Return { .. } => {
                    self.idle_steps = 0;
                }
                StepResult::Blocked(ref reason) => {
                    // Charge the failed poll one base cycle so spinning is
                    // never free, then switch out.
                    self.pes[i].pe.cycles += 1;
                    if self.tracer.enabled() {
                        let (chan, dir) = match *reason {
                            BlockReason::SendOn(c) => (c, ChanDir::Send),
                            BlockReason::RecvOn(c) => (c, ChanDir::Recv),
                        };
                        let unit = &self.pes[i];
                        let instructions = unit.pe.stats.delta(&unit.slice_base).instructions;
                        // The PC was not advanced: it still names the
                        // blocked instruction, re-executed on resume.
                        let (cycles, pc) = (unit.pe.cycles, unit.pe.regs.pc());
                        self.tracer.emit(cycles, i, || TraceEvent::CtxBlock {
                            ctx: ctx_id,
                            chan,
                            dir,
                            pc,
                            instructions,
                        });
                    }
                    self.block_current(i);
                    // A fault-dropped send scheduled a retry: re-ready the
                    // context at its backoff time (the WAIT pattern — the
                    // context is parked, then immediately queued with a
                    // future ready_at, so nothing dispatches it earlier).
                    if let Some(at) = self.faults.as_mut().and_then(FaultEngine::take_retry) {
                        debug_assert_eq!(self.contexts[ctx_id].state, CtxState::Blocked);
                        self.contexts[ctx_id].state = CtxState::Ready;
                        self.contexts[ctx_id].ready_at = at;
                        self.sched.push_ready(i, ctx_id, at);
                    }
                    self.idle_steps += 1;
                    if let Some(f) = self.faults.as_ref() {
                        let wd = f.recovery.watchdog_steps;
                        if wd > 0 && self.idle_steps >= wd {
                            return Err(SimError::Watchdog {
                                steps: self.idle_steps,
                                blocked: self.deadlock_report(),
                                retrying: self.retrying_report(),
                            });
                        }
                    }
                }
                StepResult::Trap { entry: e, arg, dst1, dst2, .. } => {
                    self.idle_steps = 0;
                    self.handle_trap(i, e, arg, dst1, dst2)?;
                }
                StepResult::Error(msg) => return Err(SimError::Pe(msg)),
            }
            let after = self.pes[i].pe.cycles;
            self.pes[i].busy += after - before;
            // The acting PE's next-action time changed: re-plant its heap
            // candidate (other PEs were hinted by push_ready on wakes).
            let t = self.actor_time(i);
            self.sched.refresh(i, t);
            if self.tracer.enabled() {
                self.drain_buffered_events(i, after);
            }
            self.instr_count += 1;
            if self.instr_count > self.cfg.max_instructions {
                return Err(SimError::InstructionBudget);
            }
            if self.shard.is_some() {
                self.shard_after_step(i);
            }
            // Translated fast path: after a sequential retire in an
            // unsharded, fault-free, untraced run, keep stepping this
            // context in a tight loop up to the first cycle at which the
            // outer loop's per-step checks could choose differently.
            if continued
                && translated
                && self.shard.is_none()
                && self.faults.is_none()
                && !self.tracer.enabled()
            {
                self.run_translated_batch(i, limit)?;
            }
        }
        debug_assert!(self.shard_quiescent(), "completion is a consumption barrier");
        Ok(RunStatus::Done(self.outcome()))
    }

    /// Retire as many further steps of PE `i`'s running context as the
    /// serial schedule allows, without per-step scheduling. Called only
    /// right after that context retired an instruction and continued, in
    /// an unsharded, fault-free, untraced translated run. See
    /// `crate::xlate` for the two batching rules (any step runs while
    /// this PE is provably the serial scheduler's next pick; local-only
    /// steps additionally run ahead of the global cycle order) and the
    /// equivalence argument behind each.
    ///
    /// Each iteration re-checks everything that depends on PE `i`
    /// itself: the hard bound (pause limit, snapshot boundary), the
    /// instruction budget (the error fires at the exact same retired
    /// count as the outer loop's check), the code-write epoch, and that
    /// the next instruction has a translated slot — anything else exits
    /// to the outer loop, which re-proves the schedule from scratch.
    /// Steps that block or trap are retired here exactly as the outer
    /// loop's match arms would under the batch gate (no tracer, no
    /// faults), then end the batch.
    ///
    /// # Errors
    ///
    /// [`SimError::InstructionBudget`] at exactly the retired count the
    /// outer loop would have raised it; [`SimError::Pe`] and trap
    /// failures as the outer loop would surface them.
    pub(crate) fn run_translated_batch(&mut self, i: usize, limit: u64) -> Result<(), SimError> {
        let mut retired = false;
        let exit = {
            let Some(xp) = self.xlate.as_ref() else {
                return Ok(());
            };
            let epoch = xp.epoch;
            let hard = if self.snap_every.is_some() { limit.min(self.next_snap_at) } else { limit };
            // `LeastLoaded` forks tie-break on other PEs' *clocks*, so a
            // PE whose clock ran ahead through local-only steps would be
            // observed mid-batch. Under that policy every step keeps the
            // cycle-order bound, which makes the batch exactly the
            // serial dispatch prefix — clocks stay serial-exact
            // whenever any other PE can act.
            let clocks_observed = self.cfg.placement == Placement::LeastLoaded;
            // Lower bound on every other PE's next-action `(time, pe)`
            // heap key, fetched lazily and re-fetched after any step
            // that may have woken another PE (a channel transfer
            // completing). `(u64::MAX, _)` means no other PE can act.
            let mut bound: Option<(u64, usize)> = None;
            loop {
                if self.memory.code_writes != epoch {
                    break BatchExit::Outer;
                }
                let unit = &self.pes[i];
                if unit.pe.cycles >= hard {
                    break BatchExit::Outer;
                }
                let Some(d) = xp.slot(unit.pe.regs.pc()) else {
                    break BatchExit::Outer;
                };
                let seq = d.is_sequential();
                if clocks_observed || !(seq && d.is_local_only(&unit.pe)) {
                    let b = match bound {
                        Some(b) => b,
                        None => {
                            let b = self.sched.min_other_hint(i).unwrap_or((u64::MAX, 0));
                            bound = Some(b);
                            b
                        }
                    };
                    // The serial scheduler pops the least `(time, pe)`
                    // key, and a running PE's key is `(cycles, pe)`: this
                    // PE is provably next exactly while its key compares
                    // below every other PE's — including winning the
                    // equal-time tie by lower index, as the heap would.
                    if (unit.pe.cycles, i) >= b {
                        break BatchExit::Outer;
                    }
                }
                let ctx_id = self.pes[i].current.expect("batched context is running");
                let before = self.pes[i].pe.cycles;
                let mut svc = Svc {
                    channels: &mut self.channels,
                    contexts: &mut self.contexts,
                    sched: &mut self.sched,
                    cfg: &self.cfg,
                    tracer: &mut self.tracer,
                    faults: &mut self.faults,
                    report: &mut self.report,
                    ctx: ctx_id,
                    time: before,
                };
                match self.pes[i].pe.step_decoded(d, &mut self.memory, &mut svc) {
                    StepResult::Continue | StepResult::Return { .. } => {
                        self.idle_steps = 0;
                        retired = true;
                        let unit = &mut self.pes[i];
                        unit.busy += unit.pe.cycles - before;
                        self.instr_count += 1;
                        if self.instr_count > self.cfg.max_instructions {
                            return Err(SimError::InstructionBudget);
                        }
                        if !seq {
                            // A completed transfer may have readied a
                            // context on another PE: re-prove the bound.
                            bound = None;
                        }
                    }
                    StepResult::Blocked(_) => break BatchExit::Blocked { before },
                    StepResult::Trap { entry, arg, dst1, dst2, .. } => {
                        break BatchExit::Trap { before, entry, arg, dst1, dst2 }
                    }
                    StepResult::Error(msg) => break BatchExit::Error(msg),
                }
            }
        };
        match exit {
            BatchExit::Outer => {}
            BatchExit::Blocked { before } => {
                // The outer loop's Blocked arm under the batch gate:
                // charge the failed poll one base cycle, park the
                // context, account the step.
                retired = true;
                self.pes[i].pe.cycles += 1;
                self.block_current(i);
                self.idle_steps += 1;
                let unit = &mut self.pes[i];
                unit.busy += unit.pe.cycles - before;
                self.instr_count += 1;
                if self.instr_count > self.cfg.max_instructions {
                    return Err(SimError::InstructionBudget);
                }
            }
            BatchExit::Trap { before, entry, arg, dst1, dst2 } => {
                retired = true;
                self.idle_steps = 0;
                self.handle_trap(i, entry, arg, dst1, dst2)?;
                let unit = &mut self.pes[i];
                unit.busy += unit.pe.cycles - before;
                self.instr_count += 1;
                if self.instr_count > self.cfg.max_instructions {
                    return Err(SimError::InstructionBudget);
                }
            }
            BatchExit::Error(msg) => return Err(SimError::Pe(msg)),
        }
        if retired {
            // Keep PE `i`'s heap hint tight: its clock moved across the
            // whole batch but was only re-planted for the pre-batch
            // step. A zero-step batch that fell straight through to the
            // outer loop changed nothing, so the hint is still exact.
            let t = self.actor_time(i);
            self.sched.refresh(i, t);
        }
        Ok(())
    }

    /// Arm automatic snapshots: every `every` cycles (of simulated time)
    /// the run loop writes a full snapshot into `dir` as
    /// `qm-snap-<cycle>.snap`. The cadence state is itself snapshotted,
    /// so a run resumed from any of the files keeps writing at the same
    /// boundaries. `every` must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn set_snapshot_cadence(&mut self, every: u64, dir: impl Into<String>) {
        assert!(every > 0, "snapshot cadence must be non-zero");
        self.snap_every = Some(every);
        self.snap_dir = dir.into();
        if self.next_snap_at == 0 {
            self.next_snap_at = every;
        }
    }

    /// Write every cadence snapshot due at or before step time `t`
    /// (normally one; a long stall can skip several boundaries at once).
    fn write_due_snapshots(&mut self, t: u64) -> Result<(), SimError> {
        while let Some(every) = self.snap_every {
            if t < self.next_snap_at {
                break;
            }
            // Frontiers never pre-execute past next_snap_at and
            // everything before this step time was consumed, so a
            // cadence capture sees exact serial state regardless of the
            // shard count.
            debug_assert!(self.shard_quiescent(), "cadence captures happen at barriers");
            let path = std::path::Path::new(&self.snap_dir)
                .join(format!("qm-snap-{:012}.snap", self.next_snap_at));
            crate::snapshot::Snapshot::capture(self)
                .write_to(&path)
                .map_err(|e| SimError::Snapshot(format!("{}: {e}", path.display())))?;
            self.next_snap_at += every;
        }
        Ok(())
    }

    /// Wall-clock cycles elapsed so far: the maximum over all PE clocks.
    /// Valid mid-run (e.g. on a paused system), unlike
    /// [`RunOutcome::elapsed_cycles`] which exists only at completion.
    #[must_use]
    pub fn elapsed_cycles(&self) -> u64 {
        self.pes.iter().map(|u| u.pe.cycles).max().unwrap_or(0)
    }

    /// The wait-for report of every context currently parked on a
    /// channel — the same records a [`SimError::Deadlock`] would carry,
    /// but available on demand for a live (e.g. paused or restored)
    /// system. Used by the `qm-bench` replay bin's divergence reports.
    #[must_use]
    pub fn wait_for_report(&self) -> Vec<BlockedCtx> {
        self.deadlock_report()
    }

    /// Degradation tallies accumulated so far (mid-run view of
    /// [`RunOutcome::degradation`]).
    #[must_use]
    pub fn degradation(&self) -> DegradationReport {
        self.report
    }

    /// Override the context placement policy mid-run. Placement only
    /// affects future fork decisions, so this is safe on a restored
    /// snapshot — the replay bin uses it to run two placement variants
    /// from one captured state.
    pub fn set_placement(&mut self, placement: Placement) {
        self.cfg.placement = placement;
    }

    /// Forward events buffered by the channel table and the memory system
    /// during the step PE `i` just executed, stamped with its clock.
    /// Draining keeps the buffers' capacity, so a traced run settles into
    /// zero allocation per step.
    fn drain_buffered_events(&mut self, i: usize, cycle: u64) {
        for ev in self.channels.trace.drain() {
            self.tracer.record(&TraceRecord { cycle, pe: i, event: ev });
        }
        for ev in self.memory.trace.drain() {
            self.tracer.record(&TraceRecord { cycle, pe: i, event: ev });
        }
    }

    /// PC a context would resume at: live registers when it is resident
    /// on its PE, its saved registers otherwise.
    fn ctx_pc(&self, id: CtxId) -> UWord {
        let pe = self.contexts[id].pe;
        if self.pes[pe].current == Some(id) {
            self.pes[pe].pe.regs.pc()
        } else {
            let mut r = qm_isa::regs::RegisterFile::new();
            r.restore(&self.contexts[id].saved);
            r.pc()
        }
    }

    /// The program's symbol table as sorted `(name, address)` pairs —
    /// the shape the `qm_verify::names` span helpers take. A borrow of
    /// the table cached at load time: nothing is cloned per report.
    fn symbol_table(&self) -> &[(String, UWord)] {
        &self.symbol_addr_table
    }

    /// The wait-for report for a detected deadlock: every context parked
    /// on a channel, with direction, blocked PC and channel occupancy.
    /// Contexts are labelled through [`qm_verify::names::ctx_label`]
    /// with the symbol covering the blocked PC, matching trace lanes and
    /// the static deadlock lint.
    fn deadlock_report(&self) -> Vec<BlockedCtx> {
        let syms = self.symbol_table();
        self.channels
            .blocked_infos()
            .into_iter()
            .map(|b| {
                let pc = self.ctx_pc(b.ctx);
                let sym = qm_verify::names::nearest_symbol(syms, pc).map(|(n, _)| n);
                BlockedCtx {
                    ctx: b.ctx,
                    label: qm_verify::names::ctx_label(b.ctx, sym),
                    pe: self.contexts[b.ctx].pe,
                    chan: b.chan,
                    dir: b.dir,
                    pc,
                    value: b.value,
                    chan_state: self.channels.state(b.chan),
                }
            })
            .collect()
    }

    /// Contexts spinning on fault-dropped sends: they never reach the
    /// channel table, so the wait-for report cannot see them.
    fn retrying_report(&self) -> Vec<RetryingCtx> {
        self.contexts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.state != CtxState::Dead && c.send_retries > 0)
            .map(|(id, c)| RetryingCtx { ctx: id, pe: c.pe, retries: c.send_retries })
            .collect()
    }

    fn outcome(&self) -> RunOutcome {
        let pes: Vec<PeReport> = self
            .pes
            .iter()
            .map(|u| PeReport { cycles: u.pe.cycles, busy_cycles: u.busy, stats: u.pe.stats })
            .collect();
        RunOutcome {
            output: self.channels.output.clone(),
            elapsed_cycles: pes.iter().map(|p| p.cycles).max().unwrap_or(0),
            instructions: pes.iter().map(|p| p.stats.instructions).sum(),
            contexts_created: self.created,
            peak_live_contexts: self.peak_live,
            channel_transfers: self.channels.transfers,
            mem: self.memory.stats,
            degradation: self.report,
            pes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(pes: usize, src: &str) -> RunOutcome {
        let mut sys = System::with_assembly(SystemConfig::with_pes(pes), src).unwrap();
        sys.run().unwrap()
    }

    #[test]
    fn straight_line_program_reports_output() {
        let out = run_src(
            1,
            "main: plus #20,#22 :r0\n\
                   send+1 #0,r0\n\
                   trap #2,#0\n",
        );
        assert_eq!(out.output, vec![42]);
        assert_eq!(out.contexts_created, 1);
        assert!(out.elapsed_cycles > 0);
    }

    #[test]
    fn fork_and_join_across_pes() {
        let src = "
main:   trap #0,#child :r0,r1
        send r0,#21
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
child:  recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";
        for pes in [1, 2, 4] {
            let out = run_src(pes, src);
            assert_eq!(out.output, vec![42], "{pes} PEs");
            assert_eq!(out.contexts_created, 2);
        }
    }

    #[test]
    fn ifork_child_inherits_out_channel() {
        // main rforks A; A iforks B; B sends the final result directly on
        // the inherited out channel back to main (Fig. 4.6's iteration
        // pattern).
        let src = "
main:   trap #0,#a :r0,r1
        send r0,#5
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
a:      recv r17,#0 :r0          ; receive 5
        plus+1 r0,#1 :r0         ; 6
        trap #1,#b :r1           ; ifork b (inherits out channel)
        send r1,r0
        trap+2 #2,#0
b:      recv r17,#0 :r0          ; receive 6
        mul+1 r0,#7 :r0          ; 42
        send+1 r18,r0            ; straight to main
        trap #2,#0
";
        let out = run_src(2, src);
        assert_eq!(out.output, vec![42]);
        assert_eq!(out.contexts_created, 3);
    }

    #[test]
    fn rendezvous_blocks_sender_until_receiver() {
        // Child computes long before main receives; the channel must hold
        // the rendezvous.
        let src = "
main:   trap #0,#child :r0,r1
        send r0,#1
        plus #0,#0 :r17
        plus #0,#0 :r17
        plus #0,#0 :r17
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
child:  recv r17,#0 :r0
        plus+1 r0,#9 :r0
        send+1 r18,r0
        trap #2,#0
";
        let out = run_src(2, src);
        assert_eq!(out.output, vec![10]);
    }

    #[test]
    fn halt_stops_everything() {
        let out = run_src(
            1,
            "main: send #0,#7\n\
                   trap #3,#0\n\
                   send #0,#8\n",
        );
        assert_eq!(out.output, vec![7], "instruction after halt never ran");
    }

    #[test]
    fn clean_runs_never_scan_channel_diagnostics() {
        // The blocked-context reports walk every touched channel — fine
        // from an error path, a hot-path regression anywhere else. A run
        // that completes (with plenty of blocking traffic on the way)
        // must never trigger a scan; a deadlocked one scans to build its
        // report.
        let src = "
main:   trap #0,#child :r0,r1
        send r0,#1
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
child:  recv r17,#0 :r0
        plus+1 r0,#9 :r0
        send+1 r18,r0
        trap #2,#0
";
        let mut cfg = SystemConfig::with_pes(1);
        cfg.channel_capacity = 0;
        let mut sys = System::with_assembly(cfg, src).unwrap();
        sys.run().unwrap();
        assert_eq!(sys.channels.diag_scan_count(), 0, "clean run reached a diagnostic scan");

        let mut sys =
            System::with_assembly(SystemConfig::with_pes(1), "main: recv #1,#0 :r0\n").unwrap();
        sys.run().unwrap_err();
        assert!(sys.channels.diag_scan_count() > 0, "deadlock report scans channels");
    }

    #[test]
    fn deadlock_is_detected() {
        let src = "main: recv #1,#0 :r0\n      trap #2,#0\n";
        let mut sys = System::with_assembly(SystemConfig::with_pes(1), src).unwrap();
        let main_pc = sys.symbol("main").unwrap();
        match sys.run() {
            Err(SimError::Deadlock { blocked }) => {
                assert_eq!(blocked.len(), 1);
                let b = &blocked[0];
                assert_eq!(b.ctx, 0);
                assert_eq!(b.pe, 0);
                assert_eq!(b.chan, 1);
                assert_eq!(b.dir, ChanDir::Recv);
                assert_eq!(b.value, None);
                assert_eq!(b.pc, main_pc, "the blocked PC names the un-advanced recv instruction");
                assert_eq!(b.chan_state, CacheState::ReceiverBlocked { receivers: 1 });
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_report_includes_parked_senders() {
        // Two contexts: main sends on a channel nobody reads; the child
        // receives on a channel nobody writes. Capacity 0 (pure
        // rendezvous) so the send genuinely parks.
        let src = "
main:   trap #0,#child :r0,r1
        send #55,#9
        trap #2,#0
child:  recv #66,#0 :r0
        trap #2,#0
";
        let mut cfg = SystemConfig::with_pes(1);
        cfg.channel_capacity = 0;
        let mut sys = System::with_assembly(cfg, src).unwrap();
        let err = sys.run().unwrap_err();
        let SimError::Deadlock { blocked } = &err else {
            panic!("expected deadlock, got {err:?}");
        };
        assert_eq!(blocked.len(), 2);
        let sender = blocked.iter().find(|b| b.dir == ChanDir::Send).expect("parked sender");
        assert_eq!(sender.chan, 55);
        assert_eq!(sender.value, Some(9));
        assert!(matches!(sender.chan_state, CacheState::SenderBlocked { senders: 1, .. }));
        let receiver = blocked.iter().find(|b| b.dir == ChanDir::Recv).expect("parked receiver");
        assert_eq!(receiver.chan, 66);
        let report = err.to_string();
        assert!(report.contains("send on chan 55"), "report: {report}");
        assert!(report.contains("recv on chan 66"), "report: {report}");
        assert!(report.contains("offering 9"), "report: {report}");
    }

    #[test]
    fn recorder_sees_the_whole_context_lifecycle() {
        use crate::trace::{Recorder, TraceEvent};
        let src = "
main:   trap #0,#child :r0,r1
        send r0,#21
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
child:  recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";
        let rec = Recorder::new(4096);
        let mut sys = System::with_assembly(SystemConfig::with_pes(2), src).unwrap();
        sys.set_trace_sink(rec.sink());
        let out = sys.run().unwrap();
        assert_eq!(out.output, vec![42]);
        let dispatches = rec.matching(|e| matches!(e, TraceEvent::CtxDispatch { .. }));
        assert!(!dispatches.is_empty(), "dispatch events recorded");
        assert!(matches!(
            dispatches[0].event,
            TraceEvent::CtxDispatch { ctx: 0, resident: false, .. }
        ));
        let forks = rec.matching(|e| matches!(e, TraceEvent::Fork { .. }));
        assert_eq!(forks.len(), 1);
        assert!(matches!(
            forks[0].event,
            TraceEvent::Fork { parent: 0, child: 1, kind: crate::trace::ForkKind::Recursive, .. }
        ));
        let retires = rec.matching(|e| matches!(e, TraceEvent::CtxRetire { .. }));
        assert_eq!(retires.len(), 2, "both contexts retire");
        let rendezvous = rec.matching(|e| matches!(e, TraceEvent::Rendezvous { .. }));
        assert!(!rendezvous.is_empty(), "the blocked transfer completes as a rendezvous");
        assert_eq!(rec.dropped(), 0);
        // Timestamps never decrease per PE.
        for pe in 0..2 {
            let cycles: Vec<u64> =
                rec.records().iter().filter(|r| r.pe == pe).map(|r| r.cycle).collect();
            assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "pe{pe} timestamps sorted");
        }
    }

    #[test]
    fn tracing_does_not_change_the_simulation() {
        let src = "
main:   trap #0,#child :r0,r1
        send r0,#21
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
child:  recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";
        let untraced = run_src(2, src);
        let rec = crate::trace::Recorder::new(4096);
        let mut sys = System::with_assembly(SystemConfig::with_pes(2), src).unwrap();
        sys.set_trace_sink(rec.sink());
        let traced = sys.run().unwrap();
        assert_eq!(untraced, traced, "tracing is pure observation");
    }

    #[test]
    fn host_input_feeds_channel_zero() {
        let src = "
main:   recv #0,#0 :r0
        mul+1 r0,#3 :r0
        send+1 #0,r0
        trap #2,#0
";
        let mut sys = System::with_assembly(SystemConfig::with_pes(1), src).unwrap();
        sys.push_input(14);
        let out = sys.run().unwrap();
        assert_eq!(out.output, vec![42]);
    }

    #[test]
    fn now_and_wait() {
        let src = "
main:   trap #4,#0 :r17          ; now → r17
        trap #5,#200             ; wait until cycle 200
        trap #4,#0 :r18          ; now again
        his r18,#200 :r0
        send+1 #0,r0
        trap #2,#0
";
        let out = run_src(1, src);
        assert_eq!(out.output, vec![-1], "second reading is past the deadline");
    }

    #[test]
    fn parallel_children_spread_over_pes() {
        // Four children each double a value; main gathers.
        let src = "
main:   trap #0,#child :r0,r1
        trap #0,#child :r2,r3
        trap #0,#child :r4,r5
        trap #0,#child :r6,r7
        send r0,#1
        send r2,#2
        send r4,#3
        send r6,#4
        recv r1,#0 :r8
        recv r3,#0 :r9
        recv r5,#0 :r10
        recv r7,#0 :r11
        plus+2 r8,r9 :r0         ; wait: consumed r0..r7? no — see below
        trap #3,#0
child:  recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";
        // NOTE: r8..r11 hold 2,4,6,8; the final plus only sanity-checks
        // the first two.
        let out = run_src(4, src);
        assert_eq!(out.contexts_created, 5);
        assert!(out.peak_live_contexts >= 2);
        let _ = out;
    }

    #[test]
    fn local_rfork_stays_on_forking_pe() {
        // trap #7 pins the child; with 2 PEs everything runs on PE 0.
        let src = "
main:   trap #7,#child :r0,r1
        send r0,#5
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
child:  recv r17,#0 :r0
        plus+1 r0,#1 :r0
        send+1 r18,r0
        trap #2,#0
";
        let mut sys = System::with_assembly(SystemConfig::with_pes(2), src).unwrap();
        let out = sys.run().unwrap();
        assert_eq!(out.output, vec![6]);
        assert_eq!(out.pes[1].stats.instructions, 0, "PE 1 never ran anything");
    }

    #[test]
    fn chan_trap_allocates_distinct_channels() {
        // trap #6 twice, send on one, receive from it; the ids differ.
        let src = "
main:   trap #6,#0 :r17
        trap #6,#0 :r18
        ne r17,r18 :r0
        send+1 #0,r0
        trap #7,#echo :r1,r2
        send r1,r17              ; tell the child which channel to use
        send r17,#33             ; then rendezvous over it
        recv r2,#0 :r3
        send+4 #0,r3
        trap #2,#0
echo:   recv r17,#0 :r0          ; the program channel id
        recv+1 r0,#0 :r1         ; value over the program channel
        plus+1 r1,#9 :r1
        send+1 r18,r1
        trap #2,#0
";
        let mut sys = System::with_assembly(SystemConfig::with_pes(1), src).unwrap();
        let out = sys.run().unwrap();
        assert_eq!(out.output, vec![-1, 42]);
    }

    #[test]
    fn blocked_context_stays_resident_when_pe_is_idle() {
        // Main blocks on a recv while both children (placed by round
        // robin on PE 0 and PE 1) work. Main resumes on PE 0 afterwards;
        // the total switch count stays low because blocked contexts stay
        // resident whenever their PE has nothing else ready.
        let src = "
main:   trap #0,#child :r0,r1
        trap #0,#child :r2,r3
        send r0,#3
        send r2,#4
        recv r1,#0 :r4
        recv r3,#0 :r5
        plus+4 r4,r5 :r6
        send #0,r6
        trap #2,#0
child:  recv r17,#0 :r0
        mul+1 r0,r0 :r0
        send+1 r18,r0
        trap #2,#0
";
        let mut sys = System::with_assembly(SystemConfig::with_pes(2), src).unwrap();
        let out = sys.run().unwrap();
        assert_eq!(out.output, vec![25]);
        let total_switches: u64 = out.pes.iter().map(|p| p.stats.context_switches).sum();
        assert!(total_switches <= 2, "resident blocking keeps switches rare: {total_switches}");
    }

    #[test]
    fn run_until_pauses_then_finishes_identically() {
        let src = "
main:   trap #0,#child :r0,r1
        send r0,#21
        recv r1,#0 :r2
        send+3 #0,r2
        trap #2,#0
child:  recv r17,#0 :r0
        mul+1 r0,#2 :r0
        send+1 r18,r0
        trap #2,#0
";
        let uninterrupted = run_src(2, src);
        let mut sys = System::with_assembly(SystemConfig::with_pes(2), src).unwrap();
        // Pause at every cycle boundary in turn: the stitched-together
        // run must end with the exact same outcome.
        let mut limit = 1;
        let outcome = loop {
            match sys.run_until(limit).unwrap() {
                RunStatus::Done(out) => break out,
                RunStatus::Paused { cycle } => {
                    assert!(cycle >= limit, "paused at {cycle} before limit {limit}");
                    limit = cycle + 1;
                }
            }
        };
        assert_eq!(outcome, uninterrupted, "pausing is invisible to the results");
    }

    #[test]
    fn run_until_zero_pauses_immediately_without_stepping() {
        let src = "main: send #0,#7\n      trap #2,#0\n";
        let mut sys = System::with_assembly(SystemConfig::with_pes(1), src).unwrap();
        assert!(matches!(sys.run_until(0).unwrap(), RunStatus::Paused { .. }));
        assert_eq!(sys.instr_count, 0, "nothing retired before the limit");
        let out = sys.run().unwrap();
        assert_eq!(out.output, vec![7]);
    }

    #[test]
    fn more_pes_do_not_slow_down_parallel_work() {
        let src = "
main:   trap #0,#child :r0,r1
        trap #0,#child :r2,r3
        send r0,#10
        send r2,#20
        recv r1,#0 :r4
        recv r3,#0 :r5
        plus r4,r5 :r6
        send+6 #0,r6
        trap #2,#0
child:  recv r17,#0 :r0
        mul+1 r0,r0 :r0
        mul r0,r0 :r1
        mul r1,r1 :r2
        plus+3 r0,r2 :r0
        send+1 r18,r0
        trap #2,#0
";
        let one = run_src(1, src);
        let two = run_src(2, src);
        assert_eq!(one.output, two.output);
        assert!(
            two.elapsed_cycles <= one.elapsed_cycles,
            "{} vs {}",
            two.elapsed_cycles,
            one.elapsed_cycles
        );
    }
}
