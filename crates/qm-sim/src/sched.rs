//! Run-loop scheduling structures: per-PE ready queues and the min-clock
//! actor heap.
//!
//! The run loop must repeatedly answer two questions:
//!
//! 1. *Which PE acts next?* Causal ordering across PEs requires stepping
//!    the PE whose next action has the earliest cycle time (ties broken
//!    by PE index).
//! 2. *Which context does that PE dispatch?* The ready context with the
//!    earliest `ready_at` (FIFO among ties).
//!
//! The original implementation answered both with linear scans — every
//! simulated instruction re-walked all PEs and their ready queues, so
//! blocked contexts were paid for on every step. This module replaces the
//! scans with:
//!
//! * a binary min-heap per PE over `(ready_at, arrival)` keys — dispatch
//!   is a pop, the earliest `ready_at` is a peek, and parked (blocked)
//!   contexts sit in *no* structure at all;
//! * one lazy min-heap of `(time, pe)` *actor candidates*. Entries are
//!   hints, maintained under the invariant that every runnable PE has at
//!   least one entry at or below its true next-action time. Stale entries
//!   are re-validated against the caller on pop and corrected, so the
//!   selected `(time, pe)` is always exactly what the linear scan would
//!   have chosen — including the tie-break — at `O(log)` cost.
//!
//! Each PE has exactly one *live* candidate at a time, tracked in
//! `planted`; heap entries that no longer match it are garbage and are
//! discarded unexamined when popped (lazy deletion). An earlier revision
//! instead re-pushed every corrected hint, so the heap's population never
//! shrank: every step re-popped and re-pushed all entries below the
//! advancing clock, making per-step cost grow with the total hints ever
//! planted — O(total contexts) per step at 1 PE, the superlinear
//! single-PE slowdown fixed by this design. With the live-candidate rule
//! the heap holds at most one live entry per PE plus already-superseded
//! garbage that each cost one O(log) pop, ever.
//!
//! The equivalence with the linear scan is locked by unit tests here (a
//! seeded random state-machine comparison) and by the `proptest` harness
//! in `tests/sched_linear_equivalence.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::CtxId;

/// Ready-queue ordering key: earliest `ready_at` first, then arrival
/// order (FIFO among equal ready times), then context id (never reached
/// in practice — arrival numbers are unique).
/// One ready-queue entry: `(ready_at, arrival_seq, ctx)`.
pub(crate) type ReadyKey = (u64, u64, CtxId);

/// The scheduler's durable snapshot state: per-PE sorted ready entries
/// plus the arrival counter (see [`Scheduler::export_ready`]).
pub(crate) type ReadyState = (Vec<Vec<ReadyKey>>, u64);

/// The run loop's scheduling state: per-PE ready queues plus the actor
/// heap selecting which PE steps next.
#[derive(Debug, Default)]
pub struct Scheduler {
    ready: Vec<BinaryHeap<Reverse<ReadyKey>>>,
    /// Lazy candidates `(time, pe)`. Invariant: every PE that can act has
    /// an entry with `time` ≤ its true next-action time.
    actors: BinaryHeap<Reverse<(u64, usize)>>,
    /// The one *live* hint time per PE (`None` = no live hint). A heap
    /// entry `(t, pe)` with `t != planted[pe]` is garbage: superseded by
    /// a better hint or already consumed — dropped on pop without
    /// consulting the caller.
    planted: Vec<Option<u64>>,
    /// Monotone arrival counter for FIFO tie-breaking.
    seq: u64,
}

impl Scheduler {
    /// A scheduler for `pes` processing elements, all queues empty.
    #[must_use]
    pub fn new(pes: usize) -> Self {
        Scheduler {
            ready: (0..pes).map(|_| BinaryHeap::new()).collect(),
            actors: BinaryHeap::new(),
            planted: vec![None; pes],
            seq: 0,
        }
    }

    /// Improve `pe`'s live hint to the lower bound `t`: plants a heap
    /// entry only when `t` beats the current live hint, so a PE never
    /// owns more than one live entry (anything older becomes garbage).
    fn plant(&mut self, pe: usize, t: u64) {
        if self.planted[pe].is_none_or(|cur| t < cur) {
            self.planted[pe] = Some(t);
            self.actors.push(Reverse((t, pe)));
        }
    }

    /// Number of PEs scheduled over.
    #[must_use]
    pub fn pes(&self) -> usize {
        self.ready.len()
    }

    /// Queue `ctx` as ready on `pe` from cycle `ready_at` on. Also plants
    /// an actor-heap hint: `ready_at` is a lower bound on the PE's new
    /// next-action time, which preserves the heap invariant even when the
    /// caller cannot see that PE's clock (the cross-PE wake path).
    pub fn push_ready(&mut self, pe: usize, ctx: CtxId, ready_at: u64) {
        self.ready[pe].push(Reverse((ready_at, self.seq, ctx)));
        self.seq += 1;
        self.plant(pe, ready_at);
    }

    /// Number of contexts queued ready on `pe`.
    #[must_use]
    pub fn ready_len(&self, pe: usize) -> usize {
        self.ready[pe].len()
    }

    /// Total contexts queued ready across all PEs (watchdog reports use
    /// this to distinguish livelock-with-work from full deadlock).
    #[must_use]
    pub fn total_ready(&self) -> usize {
        self.ready.iter().map(BinaryHeap::len).sum()
    }

    /// Earliest `ready_at` queued on `pe`, if any.
    #[must_use]
    pub fn min_ready_at(&self, pe: usize) -> Option<u64> {
        self.ready[pe].peek().map(|&Reverse((at, _, _))| at)
    }

    /// Dequeue the ready context on `pe` with the earliest `ready_at`
    /// (FIFO among ties) — the dispatch choice.
    pub fn pop_ready(&mut self, pe: usize) -> Option<CtxId> {
        self.ready[pe].pop().map(|Reverse((_, _, ctx))| ctx)
    }

    /// Re-plant `pe`'s actor candidate after its state changed (the
    /// caller passes the freshly computed next-action time, or `None`
    /// when the PE has nothing to do). Authoritative: it *replaces* the
    /// live hint, retiring any previous entry to garbage — unless the
    /// hint is already exactly `time`, in which case its live heap entry
    /// is kept and nothing is pushed.
    pub fn refresh(&mut self, pe: usize, time: Option<u64>) {
        if self.planted[pe] == time {
            return;
        }
        self.planted[pe] = time;
        if let Some(t) = time {
            self.actors.push(Reverse((t, pe)));
        }
    }

    /// Drop every actor candidate — used when entering the run loop,
    /// after arbitrary outside mutation. The caller re-plants each PE
    /// with [`Scheduler::refresh`]; no intermediate collection is
    /// built, keeping run-loop entry allocation-free.
    pub fn clear_actors(&mut self) {
        self.actors.clear();
        self.planted.fill(None);
    }

    /// Export the scheduler's durable state for snapshots: per-PE ready
    /// entries `(ready_at, arrival, ctx)` in ascending key order, plus
    /// the arrival counter. The actor heap is deliberately *not*
    /// exported — it is a lazy cache of hints that [`Scheduler::rebuild`]
    /// reconstructs at run-loop entry, and [`Scheduler::next_actor`]
    /// returns the same choice for any hint multiset satisfying the
    /// invariant.
    #[must_use]
    pub(crate) fn export_ready(&self) -> ReadyState {
        let mut out: Vec<Vec<ReadyKey>> = Vec::with_capacity(self.ready.len());
        for heap in &self.ready {
            let mut entries: Vec<ReadyKey> = heap.iter().map(|&Reverse(k)| k).collect();
            entries.sort_unstable();
            out.push(entries);
        }
        (out, self.seq)
    }

    /// Rebuild a scheduler from [`Scheduler::export_ready`] state. Ready
    /// entries keep their original arrival numbers, so FIFO tie-breaking
    /// is preserved exactly; the actor heap starts empty (callers run
    /// `rebuild` before scheduling).
    #[must_use]
    pub(crate) fn restore_ready(ready: Vec<Vec<ReadyKey>>, seq: u64) -> Self {
        let pes = ready.len();
        Scheduler {
            ready: ready
                .into_iter()
                .map(|entries| entries.into_iter().map(Reverse).collect())
                .collect(),
            actors: BinaryHeap::new(),
            planted: vec![None; pes],
            seq,
        }
    }

    /// A lower bound on the next-action `(time, pe)` key of every PE
    /// *except* `exclude`, or `None` when no other PE can act. O(log)
    /// amortized: garbage entries met on the way are drained (exactly as
    /// [`Scheduler::next_actor`] would), `exclude`'s own live entry is
    /// stepped over and re-planted untouched, and the first other live
    /// hint is returned *without* consuming it. Because every hint obeys
    /// the heap invariant (`time` ≤ the PE's true next-action time), the
    /// returned key is a conservative bound — exact in the common case,
    /// since hints are refreshed to exact times whenever a PE acts.
    ///
    /// The full `(time, pe)` key is returned because it is exactly what
    /// [`Scheduler::next_actor`]'s heap orders by: a caller racing
    /// `exclude` against this bound can therefore reproduce the serial
    /// tie-break (lowest PE index at equal times), not just the time.
    ///
    /// The translated backend's batch loop uses this to decide how far
    /// the acting PE may run *globally visible* instructions before
    /// another PE could observe the difference (`qm-sim::xlate`).
    pub(crate) fn min_other_hint(&mut self, exclude: usize) -> Option<(u64, usize)> {
        let mut stash = None;
        let hint = loop {
            match self.actors.peek() {
                None => break None,
                Some(&Reverse((t, pe))) => {
                    if self.planted[pe] != Some(t) {
                        self.actors.pop(); // garbage: superseded or consumed
                    } else if pe == exclude {
                        // At most one live entry per PE: step over it.
                        stash = self.actors.pop();
                    } else {
                        break Some((t, pe));
                    }
                }
            }
        };
        if let Some(e) = stash {
            self.actors.push(e);
        }
        hint
    }

    /// The next `(pe, time)` to act, or `None` when no PE can.
    ///
    /// `eval` computes a PE's true next-action time right now, given the
    /// earliest `ready_at` queued on it (`None` when it cannot act).
    /// Garbage entries (superseded or consumed hints) are dropped without
    /// consulting `eval`; the live hint is validated against `eval` and
    /// corrected when stale. The returned pair is exactly the linear
    /// scan's choice: minimum time, ties to the lowest PE index.
    ///
    /// The returned PE's live hint is *consumed* — callers must `refresh`
    /// it after acting (the run loop does, on every path) or `rebuild`
    /// before scheduling again (run-loop entry does).
    pub fn next_actor(
        &mut self,
        mut eval: impl FnMut(usize, Option<u64>) -> Option<u64>,
    ) -> Option<(usize, u64)> {
        while let Some(Reverse((t, pe))) = self.actors.pop() {
            if self.planted[pe] != Some(t) {
                continue; // garbage: superseded by a better hint
            }
            self.planted[pe] = None;
            let min_ready = self.min_ready_at(pe);
            match eval(pe, min_ready) {
                Some(actual) if actual == t => return Some((pe, t)),
                // Stale lower bound: re-plant at the exact time. The hint
                // invariant guarantees `actual > t`, so this terminates —
                // each correction strictly advances the PE's hint.
                Some(actual) => self.plant(pe, actual),
                None => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-optimisation linear scan, kept verbatim as the reference
    /// semantics: minimum of clock (running) or `max(min ready_at,
    /// clock)` (ready work), strict `<` so ties go to the lowest PE.
    fn linear_scan(
        clocks: &[u64],
        running: &[bool],
        ready_min: &[Option<u64>],
    ) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for pe in 0..clocks.len() {
            let t = if running[pe] {
                Some(clocks[pe])
            } else {
                ready_min[pe].map(|r| r.max(clocks[pe]))
            };
            if let Some(t) = t {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((pe, t));
                }
            }
        }
        best
    }

    #[test]
    fn pop_ready_is_fifo_among_equal_ready_times() {
        let mut s = Scheduler::new(1);
        s.push_ready(0, 7, 5);
        s.push_ready(0, 8, 5);
        s.push_ready(0, 9, 3);
        assert_eq!(s.min_ready_at(0), Some(3));
        assert_eq!(s.pop_ready(0), Some(9), "earliest ready_at first");
        assert_eq!(s.pop_ready(0), Some(7), "FIFO among ties");
        assert_eq!(s.pop_ready(0), Some(8));
        assert_eq!(s.pop_ready(0), None);
    }

    #[test]
    fn next_actor_prefers_earliest_time_then_lowest_pe() {
        let mut s = Scheduler::new(3);
        s.push_ready(0, 0, 9);
        s.push_ready(1, 1, 4);
        s.push_ready(2, 2, 4);
        let clocks = [0u64; 3];
        let pick = s.next_actor(|pe, mr| mr.map(|r| r.max(clocks[pe])));
        assert_eq!(pick, Some((1, 4)), "tie between PE 1 and 2 goes to PE 1");
    }

    #[test]
    fn stale_hints_are_corrected_not_trusted() {
        let mut s = Scheduler::new(2);
        // The hint says 2, but the PE's clock has advanced to 10.
        s.push_ready(0, 0, 2);
        s.push_ready(1, 1, 7);
        let clocks = [10u64, 0];
        let pick = s.next_actor(|pe, mr| mr.map(|r| r.max(clocks[pe])));
        assert_eq!(pick, Some((1, 7)), "PE 0's true time is 10, so PE 1 wins");
        // PE 0's corrected entry survives for the next round.
        let pick = s.next_actor(|pe, mr| mr.map(|r| r.max(clocks[pe])));
        assert_eq!(pick, Some((0, 10)));
    }

    #[test]
    fn export_restore_preserves_fifo_order_and_arrival_counter() {
        let mut s = Scheduler::new(2);
        s.push_ready(0, 7, 5);
        s.push_ready(0, 8, 5);
        s.push_ready(1, 9, 3);
        let (ready, seq) = s.export_ready();
        assert_eq!(seq, 3);
        let (again, _) = s.export_ready();
        assert_eq!(again, ready, "export is sorted, hence deterministic");
        let mut r = Scheduler::restore_ready(ready, seq);
        assert_eq!(r.pop_ready(0), Some(7), "FIFO among ties survives the round trip");
        assert_eq!(r.pop_ready(0), Some(8));
        assert_eq!(r.pop_ready(1), Some(9));
        r.push_ready(0, 10, 0);
        let (restored, seq) = r.export_ready();
        assert_eq!(seq, 4, "arrival counter continues from the snapshot");
        assert_eq!(restored[0], vec![(0, 3, 10)]);
    }

    #[test]
    fn exhausted_scheduler_reports_none() {
        let mut s = Scheduler::new(2);
        assert_eq!(s.next_actor(|_, _| None), None);
        s.push_ready(0, 0, 1);
        // The context blocked meanwhile: eval sees no runnable work.
        assert_eq!(s.next_actor(|_, _| None), None);
        assert_eq!(s.next_actor(|_, _| None), None, "stale hints drained, still none");
    }

    /// Seeded random state machine: a fleet of PEs gains ready work,
    /// steps, blocks and re-wakes; after every transition the heap-based
    /// choice must equal the linear scan's. (The dependency-free sibling
    /// of `tests/sched_linear_equivalence.rs`.)
    #[test]
    fn random_state_machine_matches_linear_scan() {
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for pes in [1usize, 2, 3, 8] {
            let mut s = Scheduler::new(pes);
            let mut clocks = vec![0u64; pes];
            let mut running = vec![false; pes];
            let mut ready: Vec<Vec<(u64, u64)>> = vec![Vec::new(); pes];
            let mut seq = 0u64;
            for step in 0..2000 {
                match rng() % 4 {
                    // A wake/fork lands on a random PE.
                    0 | 1 => {
                        let pe = (rng() as usize) % pes;
                        let at = rng() % 64;
                        ready[pe].push((at, seq));
                        s.push_ready(pe, seq as CtxId, at);
                        seq += 1;
                    }
                    // The selected PE steps: advance its clock, then
                    // either keep running, block, or retire.
                    _ => {
                        let ready_min: Vec<Option<u64>> =
                            ready.iter().map(|q| q.iter().map(|&(at, _)| at).min()).collect();
                        let expect = linear_scan(&clocks, &running, &ready_min);
                        let got = s.next_actor(|pe, mr| {
                            assert_eq!(mr, ready_min[pe], "ready heads agree");
                            if running[pe] {
                                Some(clocks[pe])
                            } else {
                                mr.map(|r| r.max(clocks[pe]))
                            }
                        });
                        assert_eq!(got, expect, "step {step} on {pes} PEs");
                        let Some((pe, t)) = got else { continue };
                        if !running[pe] {
                            // Dispatch: reference removes its FIFO-minimum
                            // entry, mirroring `pop_ready`.
                            let k = (0..ready[pe].len())
                                .min_by_key(|&i| ready[pe][i])
                                .expect("selectable PE has ready work");
                            let (_, id) = ready[pe].remove(k);
                            assert_eq!(s.pop_ready(pe), Some(id as CtxId));
                        }
                        clocks[pe] = t + 1 + rng() % 8;
                        running[pe] = rng() % 3 != 0;
                        let time = if running[pe] {
                            Some(clocks[pe])
                        } else {
                            ready[pe].iter().map(|&(at, _)| at).min().map(|r| r.max(clocks[pe]))
                        };
                        s.refresh(pe, time);
                    }
                }
            }
        }
    }
}
