//! Analytic speed-up models (thesis Figs 6.6–6.7).
//!
//! Fig. 6.6 plots classical Amdahl's law with parallel fraction
//! `f = 0.93`; Fig. 6.7 plots a *modified* law with `f = 0.63`, `g = 0.3`
//! that fits the measured curves better. The thesis text for the modified
//! law is not in our source scan; we reconstruct it as classical Amdahl
//! plus a fraction `g` of work — the per-context switching/rollout
//! overhead — whose cost falls off *quadratically* with the number of
//! PEs (each PE hosts `1/n` of the contexts and each context competes
//! with `1/n` as many neighbours for its window registers). This is the
//! same mechanism the simulator models mechanically, and it produces
//! better-than-linear marginal speed-up exactly where the measured curves
//! show it.

/// Classical Amdahl speed-up: `1 / ((1 − f) + f/n)` with parallel
/// fraction `f`.
///
/// # Panics
///
/// Panics unless `0 ≤ f ≤ 1` and `n ≥ 1`.
#[must_use]
pub fn amdahl(f: f64, n: u32) -> f64 {
    assert!((0.0..=1.0).contains(&f), "f must be a fraction");
    assert!(n >= 1);
    1.0 / ((1.0 - f) + f / f64::from(n))
}

/// Modified Amdahl speed-up: `1 / ((1 − f − g) + f/n + g/n²)` — the
/// fraction `g` is overhead that shrinks quadratically with `n` (see
/// module docs).
///
/// # Panics
///
/// Panics unless `f, g ≥ 0`, `f + g ≤ 1`, and `n ≥ 1`.
#[must_use]
pub fn modified_amdahl(f: f64, g: f64, n: u32) -> f64 {
    assert!(f >= 0.0 && g >= 0.0 && f + g <= 1.0, "f and g must partition the work");
    assert!(n >= 1);
    let nf = f64::from(n);
    1.0 / ((1.0 - f - g) + f / nf + g / (nf * nf))
}

/// One point of a Fig. 6.6/6.7-style curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Number of processors.
    pub n: u32,
    /// Classical Amdahl speed-up at the thesis's `f = 0.93`.
    pub amdahl: f64,
    /// Modified speed-up at the thesis's `f = 0.63`, `g = 0.3`.
    pub modified: f64,
}

/// The two thesis curves sampled at `1..=n_max` processors.
#[must_use]
pub fn thesis_curves(n_max: u32) -> Vec<CurvePoint> {
    (1..=n_max)
        .map(|n| CurvePoint { n, amdahl: amdahl(0.93, n), modified: modified_amdahl(0.63, 0.3, n) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_limits() {
        assert!((amdahl(0.93, 1) - 1.0).abs() < 1e-12);
        // n → ∞ limit is 1/(1−f).
        assert!(amdahl(0.93, 1_000_000) < 1.0 / 0.07 + 1e-3);
        assert!(amdahl(0.0, 8) == 1.0, "no parallel fraction, no speed-up");
        assert!((amdahl(1.0, 8) - 8.0).abs() < 1e-12, "fully parallel is linear");
    }

    #[test]
    fn amdahl_is_monotone_in_n() {
        let mut prev = 0.0;
        for n in 1..=16 {
            let s = amdahl(0.93, n);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn modified_starts_at_one_and_exceeds_classical_fit() {
        assert!((modified_amdahl(0.63, 0.3, 1) - 1.0).abs() < 1e-12);
        // The quadratic overhead term decays faster, so the modified curve
        // climbs more steeply at small n than classical Amdahl with the
        // same *total* non-sequential share (f+g = 0.93).
        for n in 2..=8 {
            assert!(modified_amdahl(0.63, 0.3, n) > amdahl(0.93, n) * 0.9, "n = {n}");
        }
    }

    #[test]
    fn thesis_curves_cover_requested_range() {
        let pts = thesis_curves(8);
        assert_eq!(pts.len(), 8);
        assert_eq!(pts[0].n, 1);
        assert!(pts[7].amdahl > pts[6].amdahl);
        assert!(pts[7].modified > pts[6].modified);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        let _ = amdahl(1.5, 4);
    }
}
