//! Translated execution: the verified-fast backend for the PE hot loop.
//!
//! The interpreter pays two costs per simulated instruction that never
//! change for a given code word: three `fetch_code` hash lookups and a
//! full decode. `XProgram` pays them *once per code address at load*,
//! caching the [`DecodedInstr`] (operands resolved, exec function
//! pointer bound) for every word of the loaded object. The run loop
//! then dispatches straight into the shared exec functions — the same
//! ones `Pe::step` runs — so the translated backend cannot disagree
//! with the interpreter on cycles, statistics, fault draws, traces or
//! snapshot bytes. That bit-identity is the backend contract
//! (`docs/DETERMINISM.md`) and is pinned by
//! `tests/xlate_equivalence.rs` and the full sweep's `identical` flag.
//!
//! # Safety / fallback ladder
//!
//! The fast path is *opt-in and verified*: [`crate::SimBuilder`]
//! accepts [`Backend::Translated`] only together with
//! [`VerifyLevel::Strict`](qm_verify::VerifyLevel), whose report
//! carries the machine-readable fast-path certificate
//! (`qm_verify::Report::fast_path_certificate`). Within a run, the
//! translation degrades — never diverges — in three ways:
//!
//! * **Per-slot**: a word that does not decode (data in the code
//!   segment, mid-immediate jump targets) gets no slot; executing from
//!   it falls back to `Pe::step`, which reproduces the interpreter's
//!   exact error or behaviour.
//! * **Per-epoch**: any store below `GLOBAL_BASE` bumps
//!   `SharedMemory::code_writes`; a stale `XProgram` is retranslated
//!   from *current* memory before its next use, so self-modifying code
//!   executes its new words exactly like the interpreter.
//! * **Per-run**: pathologically self-modifying programs (more than
//!   `MAX_RETRANSLATIONS` epochs) drop the translation for the rest
//!   of the run and execute interpreted — a host-side throttle with no
//!   architectural effect.
//!
//! # The batched serial fast path
//!
//! Caching the decode is not enough for the target speed-up: in the
//! serial run loop the per-step scheduler bookkeeping costs more than
//! the decode did. When the acting PE just retired an instruction and
//! the run is unsharded, fault-free and untraced,
//! `System::run_translated_batch` keeps stepping that PE's context in a
//! tight loop — channel operations included, against the real kernel
//! services — without re-proving the schedule per step. Two rules
//! decide how far it may run, both inside the hard bound of the pause
//! limit and the next snapshot boundary:
//!
//! * **Any step may run while this PE is provably next.** While the
//!   PE's `(clock, pe)` key compares below a conservative lower bound
//!   on every other PE's next-action key
//!   (`Scheduler::min_other_hint`, O(log) from the
//!   actor heap — not an O(PEs) scan; the lexicographic compare wins
//!   equal-time ties by lower PE index, exactly as the heap does), the
//!   serial scheduler would dispatch this same PE anyway, so executing
//!   its next step — a `send`, a global `store`, even a `trap` — *is*
//!   the serial schedule. A step that can wake another PE (a channel transfer
//!   completing) invalidates the cached bound; a step that blocks or
//!   traps exits the batch to the outer loop's context-switch and
//!   kernel paths.
//! * **Local-only steps also run ahead of the global cycle order.** A
//!   step that provably touches nothing but the PE's own registers and
//!   local plane ([`DecodedInstr::is_local_only`] — ALU/compare,
//!   branches and `dup`s whose fill/queue addresses are local) commutes
//!   with every other PE's steps: PEs have no shared clock (each
//!   dispatch clamps to the *acting PE's* own cycles), so nothing
//!   another PE does can observe or be observed by it. This is the
//!   sharded frontier's locality argument (`qm-sim::shard`), applied
//!   without undo logs because nothing here needs rolling back. The
//!   paused/idle states still coincide with the serial schedule's: a
//!   pause at `limit` retires exactly the steps with start cycle below
//!   `limit` in either order, and a deadlock or completion can only be
//!   declared once no runnable work remains anywhere.
//!
//! The local-only rule assumes no other PE can observe this PE's
//! private state — which `LeastLoaded` placement violates: forks
//! tie-break on other PEs' clocks. Under that policy *every* batched
//! step keeps the cycle-order bound, which makes the batch exactly the
//! serial dispatch prefix, and observed clocks stay serial-exact.
//!
//! One carve-out, shared in spirit with the sharded frontier's
//! instruction-budget margin: the budget error still fires at the exact
//! same retired-instruction count on either backend, but because
//! local-only steps may retire ahead of the global cycle order, the
//! machine state behind an *aborted* run (budget exhaustion — a host
//! safety valve, not an architectural event) may interleave
//! differently. Completed runs, pauses, snapshots, deadlocks and every
//! architectural observable are bit-identical (`docs/DETERMINISM.md`).

use qm_isa::decoded::DecodedInstr;
use qm_isa::UWord;

use crate::memory::SharedMemory;
use crate::system::System;

/// Execution backend for the PE hot loop (see [`crate::SimBuilder::backend`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Fetch + decode every step (the reference semantics).
    #[default]
    Interp,
    /// Decode once at load into direct-threaded [`DecodedInstr`] slots;
    /// bit-identical to [`Backend::Interp`] by construction. Requires
    /// Strict verification through the builder.
    Translated,
}

impl Backend {
    /// Stable lowercase name (wire format and CLI flag value).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Translated => "translated",
        }
    }

    /// Parse a CLI/wire backend name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "interp" => Some(Backend::Interp),
            "translated" => Some(Backend::Translated),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Retranslation budget per run: a program that rewrites its code
/// segment more than this many times executes interpreted from then on
/// (identical results, no translation churn).
pub(crate) const MAX_RETRANSLATIONS: u32 = 16;

/// The translation of the loaded object: one pre-decoded slot per code
/// word address in `base .. base + 4 * slots.len()`. Slots are
/// position-indexed, so computed jumps and mid-instruction targets
/// resolve exactly like the interpreter's fetch at that address.
#[derive(Debug, Clone)]
pub(crate) struct XProgram {
    base: UWord,
    slots: Vec<Option<DecodedInstr>>,
    /// `SharedMemory::code_writes` at translation time; a mismatch means
    /// the code segment changed and this translation is stale.
    pub(crate) epoch: u64,
}

impl XProgram {
    /// Translate `len` code words starting at `base`, reading *current*
    /// memory through the same default-zero view `fetch_code` uses — a
    /// slot decodes exactly the words the interpreter would fetch at
    /// that address, or stays empty when decode fails there.
    pub(crate) fn translate(mem: &SharedMemory, base: UWord, len: usize, epoch: u64) -> XProgram {
        let word = |i: usize| {
            #[allow(clippy::cast_sign_loss)]
            {
                mem.peek_global(base.wrapping_add(4 * i as UWord)) as u32
            }
        };
        let slots = (0..len)
            .map(|i| {
                let words = [word(i), word(i + 1), word(i + 2)];
                DecodedInstr::translate(&words).ok()
            })
            .collect();
        XProgram { base, slots, epoch }
    }

    /// The slot for the instruction at `pc`, or `None` when `pc` is
    /// outside the translated range or the words there do not decode.
    #[inline]
    pub(crate) fn slot(&self, pc: UWord) -> Option<&DecodedInstr> {
        let off = pc.wrapping_sub(self.base);
        if off & 3 != 0 {
            return None;
        }
        self.slots.get((off / 4) as usize)?.as_ref()
    }
}

impl System {
    /// Make the cached translation match the current code segment:
    /// (re)translate when the code-write epoch moved, drop the
    /// translation for the run after [`MAX_RETRANSLATIONS`] epochs.
    /// Cheap when current (one counter compare).
    pub(crate) fn ensure_translation(&mut self) {
        let epoch = self.memory.code_writes;
        if self.xlate.as_ref().is_some_and(|xp| xp.epoch == epoch) {
            return;
        }
        if self.xlate_retrans >= MAX_RETRANSLATIONS {
            self.xlate = None;
            return;
        }
        let Some(obj) = self.symbol_snap.as_deref() else {
            self.xlate = None;
            return;
        };
        self.xlate_retrans += 1;
        self.xlate = Some(XProgram::translate(&self.memory, obj.base, obj.words.len(), epoch));
    }
}
