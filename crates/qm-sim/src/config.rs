//! System configuration: topology, cost parameters, scheduling policy.

use qm_isa::CycleModel;

/// Where the kernel places newly forked contexts (`ifork`s and
/// continuation `rfork`s always stay on the forking PE; this policy
/// governs true-parallelism forks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Rotate over all PEs — the kernel default (see the
    /// `ablation_placement` study: blind spreading beats load counting
    /// because a forking parent usually blocks right after forking).
    #[default]
    RoundRobin,
    /// The PE with the fewest ready/running contexts, breaking ties by
    /// the PE clock.
    LeastLoaded,
    /// Always on the forking PE (degenerates to uniprocessing; useful for
    /// ablation).
    Local,
}

/// Ring-bus and channel-transfer cost parameters (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusCosts {
    /// Arbitration + transfer for a global-memory access whose home
    /// partition is the requester's own.
    pub mem_same_partition: u64,
    /// Base cost of a remote global-memory access.
    pub mem_remote_base: u64,
    /// Additional cost per ring segment crossed.
    pub mem_per_segment: u64,
    /// Channel transfer between contexts on the same PE (intraprocessor
    /// path, Fig. 5.17).
    pub chan_local: u64,
    /// Channel transfer within one bus partition.
    pub chan_same_partition: u64,
    /// Base cost of an interprocessor channel transfer across partitions
    /// (Fig. 5.16).
    pub chan_remote_base: u64,
    /// Additional channel cost per ring segment crossed.
    pub chan_per_segment: u64,
}

impl Default for BusCosts {
    fn default() -> Self {
        BusCosts {
            mem_same_partition: 2,
            mem_remote_base: 6,
            mem_per_segment: 2,
            chan_local: 2,
            chan_same_partition: 6,
            chan_remote_base: 10,
            chan_per_segment: 2,
        }
    }
}

/// Kernel service costs (cycles charged on top of the trap itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCosts {
    /// Creating a context (allocate record + queue page + channels).
    pub fork: u64,
    /// Retiring a context.
    pub end: u64,
    /// Dispatching/waking bookkeeping per scheduling decision.
    pub dispatch: u64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts { fork: 20, end: 8, dispatch: 4 }
    }
}

/// Retry, backoff and watchdog tuning for the fault-recovery machinery
/// (see [`crate::fault`]). Carried inside a
/// [`FaultPlan`](crate::fault::FaultPlan); irrelevant to fault-free runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Retries granted per transfer before it is forced through (the
    /// bound guarantees liveness under any loss rate).
    pub max_retries: u32,
    /// Backoff before the first retry, in cycles; doubles per attempt.
    pub backoff_base: u64,
    /// Ceiling on any single backoff interval.
    pub backoff_cap: u64,
    /// Watchdog threshold: consecutive blocked run-loop steps tolerated
    /// before the run aborts with
    /// [`SimError::Watchdog`](crate::SimError::Watchdog). `0` disables
    /// the watchdog. Only armed while a fault engine is installed.
    pub watchdog_steps: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_retries: 8,
            backoff_base: 4,
            backoff_cap: 1024,
            watchdog_steps: 100_000,
        }
    }
}

impl RecoveryConfig {
    /// Backoff interval before retry number `attempt` (0-based):
    /// `backoff_base · 2^attempt`, clamped to `backoff_cap` and never
    /// zero (a zero interval could re-ready a context in its own cycle).
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> u64 {
        let doubled = self.backoff_base.saturating_mul(1u64 << attempt.min(32));
        doubled.min(self.backoff_cap).max(1)
    }
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of processing elements (1–1024; the thesis hardware is
    /// 1–16, larger machines extrapolate its packaging).
    pub pes: usize,
    /// Number of bus partitions the PEs are split into (ring nodes).
    /// The thesis's Fig. 5.18 shows 4 PEs in 2 partitions.
    pub partitions: usize,
    /// Bus/channel costs.
    pub bus: BusCosts,
    /// Kernel costs.
    pub kernel: KernelCosts,
    /// Per-PE instruction cost model.
    pub cycle_model: CycleModel,
    /// Context placement policy.
    pub placement: Placement,
    /// Queue page size in words (power of two ≤ 256).
    pub queue_page_words: u32,
    /// Message-cache slots per channel (0 = pure rendezvous; the default
    /// models the §5.5 message-cache hardware, which accepts in-flight
    /// values so a sending context only blocks when the cache is full).
    pub channel_capacity: usize,
    /// Safety valve: abort after this many total instructions.
    pub max_instructions: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            pes: 1,
            partitions: 1,
            bus: BusCosts::default(),
            kernel: KernelCosts::default(),
            cycle_model: CycleModel::default(),
            placement: Placement::default(),
            queue_page_words: 256,
            channel_capacity: 8,
            max_instructions: 500_000_000,
        }
    }
}

impl SystemConfig {
    /// A configuration with `pes` processing elements, two PEs per bus
    /// partition (the thesis's packaging), and default costs. The thesis
    /// hardware tops out at 16 PEs; configurations up to 1024 extrapolate
    /// its packaging for the big-machine sweeps (run them sharded — see
    /// [`crate::system::System::set_shards`]).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ pes ≤ 1024`.
    #[must_use]
    pub fn with_pes(pes: usize) -> Self {
        assert!((1..=1024).contains(&pes), "1..=1024 PEs supported");
        SystemConfig { pes, partitions: pes.div_ceil(2), ..Self::default() }
    }

    /// Partition housing `pe`.
    #[must_use]
    pub fn partition_of(&self, pe: usize) -> usize {
        pe * self.partitions / self.pes
    }

    /// Ring distance (segments crossed) between two partitions.
    #[must_use]
    pub fn ring_distance(&self, a: usize, b: usize) -> u64 {
        let n = self.partitions;
        let d = a.abs_diff(b) % n;
        d.min(n - d) as u64
    }

    /// Cycles for a global-memory access from `pe` to an address homed at
    /// partition `home`.
    #[must_use]
    pub fn mem_cost(&self, pe: usize, home: usize) -> u64 {
        let here = self.partition_of(pe);
        let home = home % self.partitions.max(1);
        if here == home {
            self.bus.mem_same_partition
        } else {
            self.bus.mem_remote_base + self.bus.mem_per_segment * self.ring_distance(here, home)
        }
    }

    /// Cycles for a channel transfer between two PEs.
    #[must_use]
    pub fn chan_cost(&self, from_pe: usize, to_pe: usize) -> u64 {
        if from_pe == to_pe {
            return self.bus.chan_local;
        }
        let (a, b) = (self.partition_of(from_pe), self.partition_of(to_pe));
        if a == b {
            self.bus.chan_same_partition
        } else {
            self.bus.chan_remote_base + self.bus.chan_per_segment * self.ring_distance(a, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_pes_pairs_pes_into_partitions() {
        assert_eq!(SystemConfig::with_pes(1).partitions, 1);
        assert_eq!(SystemConfig::with_pes(4).partitions, 2);
        assert_eq!(SystemConfig::with_pes(8).partitions, 4);
    }

    #[test]
    fn partition_assignment_is_balanced() {
        let c = SystemConfig::with_pes(8);
        let parts: Vec<usize> = (0..8).map(|pe| c.partition_of(pe)).collect();
        assert_eq!(parts, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn ring_distance_wraps() {
        let c = SystemConfig::with_pes(8); // 4 partitions
        assert_eq!(c.ring_distance(0, 1), 1);
        assert_eq!(c.ring_distance(0, 3), 1, "ring wraps around");
        assert_eq!(c.ring_distance(0, 2), 2);
        assert_eq!(c.ring_distance(2, 2), 0);
    }

    #[test]
    fn channel_costs_grow_with_distance() {
        let c = SystemConfig::with_pes(8);
        let local = c.chan_cost(0, 0);
        let same_part = c.chan_cost(0, 1);
        let near = c.chan_cost(0, 2);
        let far = c.chan_cost(0, 4);
        assert!(local < same_part);
        assert!(same_part < near);
        assert!(near < far);
    }

    #[test]
    fn memory_cost_prefers_local_partition() {
        let c = SystemConfig::with_pes(4);
        assert!(c.mem_cost(0, 0) < c.mem_cost(0, 1));
    }

    #[test]
    #[should_panic(expected = "1..=1024")]
    fn too_many_pes_rejected() {
        let _ = SystemConfig::with_pes(1025);
    }

    #[test]
    fn big_machine_configs_accepted() {
        for pes in [17, 64, 256, 1024] {
            let c = SystemConfig::with_pes(pes);
            assert_eq!(c.partitions, pes.div_ceil(2));
            assert_eq!(c.partition_of(pes - 1), c.partitions - 1);
        }
    }

    #[test]
    fn backoff_doubles_clamps_and_never_returns_zero() {
        let r = RecoveryConfig { backoff_base: 4, backoff_cap: 24, ..RecoveryConfig::default() };
        assert_eq!(r.backoff(0), 4);
        assert_eq!(r.backoff(1), 8);
        assert_eq!(r.backoff(2), 16);
        assert_eq!(r.backoff(3), 24, "clamped to the cap");
        assert_eq!(r.backoff(63), 24, "huge attempts saturate, no overflow");
        let zero = RecoveryConfig { backoff_base: 0, ..RecoveryConfig::default() };
        assert_eq!(zero.backoff(0), 1, "a zero interval is rounded up");
    }
}
