//! Shared deterministic mixing primitives (SplitMix64).
//!
//! One audited source for every seeded draw and integrity hash in the
//! simulator: the fault engine's counter-keyed event streams
//! ([`crate::fault`]) and the snapshot format's section checksums
//! ([`crate::snapshot`]) both build on [`mix`]. Keeping the finalizer in
//! one place means one set of tests vouches for its avalanche behaviour,
//! and a change to it cannot silently diverge between the two users.

/// SplitMix64 finalizer: a full-avalanche mix of the 64-bit input.
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `seq`-th draw of stream `stream` under `seed` — pure, so any
/// draw can be recomputed without replaying the others.
#[must_use]
pub fn draw(seed: u64, stream: u64, seq: u64) -> u64 {
    mix(seed ^ mix((stream << 56) ^ seq))
}

/// Whether the `seq`-th draw of `stream` under `seed` hits an event with
/// probability `ppm` parts-per-million.
#[must_use]
pub fn hits(seed: u64, stream: u64, seq: u64, ppm: u32) -> bool {
    ppm > 0 && draw(seed, stream, seq) % 1_000_000 < u64::from(ppm)
}

/// Integrity checksum of a byte string: a [`mix`]-based rolling fold over
/// 8-byte chunks, with the length folded in so truncations and
/// extensions always change the sum. Not cryptographic — it guards
/// against corruption and mis-framing, not adversaries.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0x51CC_5EED_0000_0001;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h ^ u64::from_le_bytes(word));
    }
    mix(h ^ bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_avalanches_single_bit_flips() {
        // Every single-bit flip of the input should change roughly half
        // the output bits; accept a generous band.
        for bit in 0..64 {
            let a = mix(0xDEAD_BEEF_CAFE_F00D);
            let b = mix(0xDEAD_BEEF_CAFE_F00D ^ (1 << bit));
            let flipped = (a ^ b).count_ones();
            assert!((16..=48).contains(&flipped), "bit {bit}: {flipped} output bits flipped");
        }
    }

    #[test]
    fn draws_are_pure_and_stream_separated() {
        assert_eq!(draw(1, 2, 3), draw(1, 2, 3));
        assert_ne!(draw(1, 2, 3), draw(1, 2, 4));
        assert_ne!(draw(1, 2, 3), draw(1, 3, 3));
        assert_ne!(draw(1, 2, 3), draw(2, 2, 3));
    }

    #[test]
    fn hits_honours_the_ppm_extremes() {
        assert!((0..1000).all(|seq| !hits(7, 1, seq, 0)), "0 ppm never hits");
        assert!((0..1000).all(|seq| hits(7, 1, seq, 1_000_000)), "1e6 ppm always hits");
    }

    #[test]
    fn checksum_detects_flips_truncation_and_extension() {
        let data = b"qm-snap section payload".to_vec();
        let base = checksum(&data);
        assert_eq!(base, checksum(&data), "checksum is a pure function");

        let mut flipped = data.clone();
        flipped[3] ^= 0x01;
        assert_ne!(base, checksum(&flipped));

        assert_ne!(base, checksum(&data[..data.len() - 1]), "truncation changes the sum");
        let mut extended = data.clone();
        extended.push(0);
        assert_ne!(base, checksum(&extended), "zero-extension changes the sum");
        assert_ne!(checksum(b""), checksum(&[0u8]), "length is folded in");
    }
}
