//! Deterministic sharded execution: host-parallel local frontiers.
//!
//! [`System::set_shards`] partitions the PEs into contiguous shards, one
//! host thread each. The run loop stays the single source of truth for
//! every *globally visible* action — channel traffic, traps and forks,
//! global-memory accesses, dispatches, fault draws, traces — executing
//! them one at a time in the exact serial `(cycle, pe)` order. What the
//! shard threads run in parallel is each PE's **local frontier**: the
//! run of consecutive instructions that provably touch nothing outside
//! the PE itself (its registers and its private local-memory plane) and
//! therefore commute with every other PE's actions.
//!
//! Why not a fixed time-quantum barrier sized from the minimum
//! cross-shard latency, as tick-based multi-core simulators use? This
//! machine has *zero-latency* cross-PE dependences: the `LeastLoaded`
//! placement policy reads every PE's clock the instant a fork traps, so
//! no latency bound > 0 is conservative. The safe quantum is instead
//! derived per instruction: a shard may run a PE ahead only through
//! steps that cannot interact at all, and stops at the first one that
//! might. That conservative frontier is what makes a sharded run
//! **bit-identical** to the serial scheduler — same cycles, same
//! `state_digest`, same trace streams, same fault draws (the contract
//! in `docs/DETERMINISM.md`, pinned by `tests/shard_equivalence.rs`).
//!
//! # The frontier discipline
//!
//! A pre-executed step is recorded as a `(pre-step cycle, pe)` key plus
//! a `StepBackup` holding the complete PE state before the step and
//! an undo log of the local words it overwrote. The run loop *consumes*
//! keys lexicographically `≤` its current `(cycle, pe)` selection —
//! those steps are now part of serial history, so `instr_count`,
//! `idle_steps` and the memory statistics advance exactly as the serial
//! loop would have — and *rolls back* everything still pending when the
//! machine halts or a store rewrites the code segment. Instructions are
//! classified local by decode: `dup`s and ALU/compare/branch `Basic`
//! ops whose operands resolve through the window. Because the queue
//! pointer is program-writable, classification alone cannot prove an
//! access stays local, so the frontier executes against a guarded
//! [`DataPort`] (`FrontierPort`): any access that would leave the
//! PE's local plane flags a violation, the step is rolled back from its
//! backup, and the PE is parked for the run loop to execute serially.

use std::collections::VecDeque;

use qm_isa::isa::{Instruction, Opcode};
use qm_isa::mem::{is_local, DataPort, GLOBAL_BASE};
use qm_isa::pe::{Pe, RecvOutcome, SendOutcome, Services, StepResult};

use crate::fault::FaultEngine;
use crate::kernel::CtxState;
use crate::memory::{GlobalPlane, LocalPlane};
use crate::system::{PeUnit, System};
use crate::{UWord, Word};

/// Most pre-executed (unconsumed) steps a PE's frontier may hold. Also
/// the per-PE term of the instruction-budget margin: frontiers shut off
/// within `pes × FRONTIER_CAP` steps of `max_instructions`, so the final
/// march to the budget runs fully serial and a budget abort leaves the
/// exact serial machine state behind.
pub(crate) const FRONTIER_CAP: usize = 64;

/// Undo record for one pre-executed local step.
#[derive(Debug)]
struct StepBackup {
    /// Complete PE state before the step (`Pe` is flat — registers,
    /// clocks and counters, nothing heap-allocated — so a clone is a
    /// fixed-size copy).
    pe: Pe,
    /// Local-plane words the step overwrote, in write order:
    /// `(address, prior value)` with `None` for previously-absent words.
    writes: Vec<(UWord, Option<Word>)>,
    /// `local_accesses` the step charged (subtracted on rollback).
    local_accesses: u64,
}

/// Why a PE's frontier run stopped (decides who re-examines it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Stop {
    /// Next instruction is (or may be) globally visible — or the PE is
    /// simply not running. Re-examined after its next serial step.
    #[default]
    NonLocal,
    /// Hit the pause/snapshot boundary; re-examined when it advances.
    Bound,
    /// Deque at [`FRONTIER_CAP`]; re-examined when consumption drains it.
    Cap,
}

/// Per-PE frontier state.
#[derive(Debug, Default)]
struct PeFrontier {
    /// Pre-step cycles of executed-but-unconsumed steps, ascending.
    keys: VecDeque<u64>,
    /// One backup per key, same order.
    backups: VecDeque<StepBackup>,
    /// A guarded access left the local plane: the step was rolled back
    /// and the run loop must execute this PE serially before the
    /// frontier may try again.
    parked: bool,
    stop: Stop,
}

/// Runtime bookkeeping for a sharded run — rebuilt by every `run_until`
/// call and deliberately *not* part of snapshots: captured state is
/// always at a consumption barrier, so snapshot bytes are identical for
/// every shard count (including 1, the serial scheduler).
#[derive(Debug)]
pub(crate) struct ShardRt {
    /// Effective shard count (`2..=pes`).
    shards: usize,
    /// Owning shard of each PE (contiguous ranges).
    shard_of: Vec<usize>,
    fr: Vec<PeFrontier>,
    /// PEs with a nonempty deque.
    active: Vec<usize>,
    in_active: Vec<bool>,
    /// PEs whose frontier eligibility must be re-examined.
    recheck: Vec<usize>,
    in_recheck: Vec<bool>,
    /// Total unconsumed keys across all PEs.
    pending: u64,
    /// `SharedMemory::code_writes` at the last barrier; a change means a
    /// store rewrote the code segment and pending frontiers are stale.
    code_epoch: u64,
    /// Last frontier bound; pending `Stop::Bound` PEs are re-examined
    /// when it advances (a cadence snapshot boundary was crossed).
    last_bound: u64,
}

impl ShardRt {
    fn new(pes: usize, shards: usize, code_epoch: u64) -> Self {
        let shard_of = (0..shards)
            .flat_map(|s| {
                let (lo, hi) = (s * pes / shards, (s + 1) * pes / shards);
                std::iter::repeat_n(s, hi - lo)
            })
            .collect();
        ShardRt {
            shards,
            shard_of,
            fr: (0..pes).map(|_| PeFrontier::default()).collect(),
            active: Vec::new(),
            in_active: vec![false; pes],
            recheck: (0..pes).collect(),
            in_recheck: vec![true; pes],
            pending: 0,
            code_epoch,
            last_bound: 0,
        }
    }

    fn push_recheck(&mut self, p: usize) {
        if !self.in_recheck[p] {
            self.in_recheck[p] = true;
            self.recheck.push(p);
        }
    }
}

/// Channel services are globally visible, so a frontier step can never
/// legitimately reach them: the classifier only admits instructions
/// without `send`/`recv` semantics.
struct NoSvc;

impl Services for NoSvc {
    fn send(&mut self, _pe: usize, _chan: Word, _value: Word) -> SendOutcome {
        unreachable!("local-classified instructions never send")
    }
    fn recv(&mut self, _pe: usize, _chan: Word) -> RecvOutcome {
        unreachable!("local-classified instructions never recv")
    }
}

/// Guarded [`DataPort`] for frontier steps: serves the PE's local plane
/// with the exact cost/statistics semantics of
/// [`crate::memory::SharedMemory`], records an undo log, and flags any
/// access outside the local plane as a violation instead of serving it.
struct FrontierPort<'a> {
    local: &'a mut LocalPlane,
    global: &'a GlobalPlane,
    writes: &'a mut Vec<(UWord, Option<Word>)>,
    local_accesses: u64,
    violated: bool,
}

impl DataPort for FrontierPort<'_> {
    fn read_word(&mut self, _pe: usize, addr: UWord) -> (Word, u64) {
        if !is_local(addr) {
            self.violated = true;
            return (0, 0);
        }
        self.local_accesses += 1;
        (self.local.get(addr & !3).unwrap_or(0), 0)
    }

    fn write_word(&mut self, _pe: usize, addr: UWord, value: Word) -> u64 {
        if !is_local(addr) {
            self.violated = true;
            return 0;
        }
        self.local_accesses += 1;
        let a = addr & !3;
        self.writes.push((a, self.local.get(a)));
        self.local.insert(a, value);
        0
    }

    fn read_byte(&mut self, pe: usize, addr: UWord) -> (Word, u64) {
        let (word, cost) = self.read_word(pe, addr & !3);
        let shift = (addr & 3) * 8;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_wrap)]
        (((word as u32 >> shift) & 0xFF) as Word, cost)
    }

    fn write_byte(&mut self, pe: usize, addr: UWord, value: Word) -> u64 {
        let aligned = addr & !3;
        let (old, _) = self.read_word(pe, aligned);
        let shift = (addr & 3) * 8;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_wrap)]
        let merged = {
            let old = old as u32;
            ((old & !(0xFFu32 << shift)) | (((value as u32) & 0xFF) << shift)) as Word
        };
        self.write_word(pe, aligned, merged)
    }

    fn fetch_code(&mut self, _pe: usize, addr: UWord) -> u32 {
        #[allow(clippy::cast_sign_loss)]
        {
            self.global.get(addr & !3).unwrap_or(0) as u32
        }
    }
}

/// Can this instruction execute entirely within the PE? `dup` only
/// writes queue-page slots; a `Basic` op is local when it has ALU
/// semantics ([`Opcode::alu`]) or is a branch — those read operands
/// through the window (a miss is a queue-page read) and never touch
/// channels, traps or operand memory. `fetch`/`store` and channel ops
/// are conservatively global; traps always are.
fn is_local_instr(ins: &Instruction) -> bool {
    match ins {
        Instruction::Dup { .. } => true,
        Instruction::Basic { op, .. } => {
            op.alu(0, 1).is_some() || matches!(op, Opcode::Bne | Opcode::Beq)
        }
    }
}

fn fetch(global: &GlobalPlane, addr: UWord) -> u32 {
    #[allow(clippy::cast_sign_loss)]
    {
        global.get(addr & !3).unwrap_or(0) as u32
    }
}

/// Whether the PE's next instruction is local-classified. Requires the
/// PC (and the up-to-3-word encoding after it) to sit inside the code
/// segment (below [`GLOBAL_BASE`]): frontier fetches then never observe
/// mutable global data, and the `code_writes` barrier epoch is the only
/// staleness hazard left.
fn next_is_local(pe: &Pe, global: &GlobalPlane) -> bool {
    let pc = pe.regs.pc();
    if pc & 3 != 0 || pc.checked_add(12).is_none_or(|end| end >= GLOBAL_BASE) {
        return false;
    }
    let words = [fetch(global, pc), fetch(global, pc + 4), fetch(global, pc + 8)];
    match Instruction::decode(&words) {
        Ok((ins, _)) => is_local_instr(&ins),
        Err(_) => false,
    }
}

/// Run one PE's frontier until something non-local comes up. Returns
/// nothing: progress lands in `unit`/`local`/`fr`, statistics in `la`.
#[allow(clippy::too_many_arguments)]
fn run_frontier(
    p: usize,
    unit: &mut PeUnit,
    fr: &mut PeFrontier,
    local: &mut LocalPlane,
    global: &GlobalPlane,
    faults: Option<&FaultEngine>,
    bound: u64,
    la: &mut u64,
) {
    loop {
        let t = unit.pe.cycles;
        if t >= bound {
            fr.stop = Stop::Bound;
            return;
        }
        if fr.keys.len() >= FRONTIER_CAP {
            fr.stop = Stop::Cap;
            return;
        }
        fr.stop = Stop::NonLocal;
        // A stall window is a fault draw the run loop must account for.
        if faults.is_some_and(|f| f.stall_until(p, t).is_some()) {
            return;
        }
        if !next_is_local(&unit.pe, global) {
            return;
        }
        let mut backup = StepBackup { pe: unit.pe.clone(), writes: Vec::new(), local_accesses: 0 };
        let (result, step_la, violated) = {
            let mut port = FrontierPort {
                local,
                global,
                writes: &mut backup.writes,
                local_accesses: 0,
                violated: false,
            };
            let r = unit.pe.step(&mut port, &mut NoSvc);
            (r, port.local_accesses, port.violated)
        };
        if violated || !matches!(result, StepResult::Continue) {
            // The queue pointer (or POM) pointed outside the local
            // plane: undo the step and let the run loop execute it with
            // full global semantics.
            for &(addr, old) in backup.writes.iter().rev() {
                match old {
                    Some(w) => {
                        local.insert(addr, w);
                    }
                    None => {
                        local.remove(addr);
                    }
                }
            }
            unit.pe = backup.pe;
            fr.parked = true;
            return;
        }
        unit.busy += unit.pe.cycles - t;
        *la += step_la;
        backup.local_accesses = step_la;
        fr.keys.push_back(t);
        fr.backups.push_back(backup);
    }
}

impl System {
    /// Install the frontier bookkeeping for this `run_until` call, or
    /// `None` when the effective shard count is 1 (the run loop is then
    /// byte-for-byte the serial scheduler).
    pub(crate) fn shard_begin_run(&mut self) {
        let eff = self.shards.min(self.cfg.pes);
        self.shard = if eff > 1 {
            Some(ShardRt::new(self.cfg.pes, eff, self.memory.code_writes))
        } else {
            None
        };
    }

    /// True when no pre-executed steps are pending — the state every
    /// snapshot capture and pause boundary is proven to be in.
    pub(crate) fn shard_quiescent(&self) -> bool {
        self.shard.as_ref().is_none_or(|rt| rt.pending == 0)
    }

    /// Phase A of a sharded iteration: run the eligible PEs' local
    /// frontiers, in parallel across shards. Eligibility is maintained
    /// incrementally (`recheck`), so iterations that change nothing a
    /// frontier depends on cost O(1) here.
    pub(crate) fn shard_phase_a(&mut self, limit: u64) {
        let Some(rt) = self.shard.as_mut() else { return };
        let bound = match self.snap_every {
            // Never pre-execute across a cadence boundary: the capture
            // must see exact serial state.
            Some(_) => limit.min(self.next_snap_at),
            None => limit,
        };
        if bound > rt.last_bound {
            rt.last_bound = bound;
            for p in 0..rt.fr.len() {
                if rt.fr[p].stop == Stop::Bound && !rt.fr[p].parked {
                    rt.push_recheck(p);
                }
            }
        }
        if rt.recheck.is_empty() {
            return;
        }
        // Instruction-budget margin: stop pre-executing when fewer than
        // pes × FRONTIER_CAP instructions remain, so a budget abort
        // happens on a serial step with no pending frontier state.
        let margin = (self.cfg.pes * FRONTIER_CAP) as u64;
        if self.cfg.max_instructions.saturating_sub(self.instr_count).saturating_sub(rt.pending)
            <= margin
        {
            for &p in &rt.recheck {
                rt.in_recheck[p] = false;
            }
            rt.recheck.clear();
            return;
        }
        let (global, locals) = self.memory.shard_split();
        let faults = self.faults.as_ref();
        // Filter the recheck set down to PEs that can actually run a
        // frontier right now, grouped by owning shard.
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); rt.shards];
        let mut any = false;
        for idx in 0..rt.recheck.len() {
            let p = rt.recheck[idx];
            rt.in_recheck[p] = false;
            let unit = &self.pes[p];
            let running = unit.current.is_some_and(|c| self.contexts[c].state == CtxState::Running);
            let fr = &rt.fr[p];
            if !running
                || fr.parked
                || fr.keys.len() >= FRONTIER_CAP
                || unit.pe.cycles >= bound
                || faults.is_some_and(|f| f.stall_until(p, unit.pe.cycles).is_some())
                || !next_is_local(&unit.pe, global)
            {
                if running && !fr.parked && unit.pe.cycles >= bound {
                    rt.fr[p].stop = Stop::Bound;
                }
                continue;
            }
            per_shard[rt.shard_of[p]].push(p);
            any = true;
        }
        rt.recheck.clear();
        if !any {
            return;
        }
        let shards_hit = per_shard.iter().filter(|v| !v.is_empty()).count();
        let mut la_slots = vec![0u64; rt.shards];
        if shards_hit == 1 {
            // One shard's worth of work: run it inline, no thread spawn.
            let s = per_shard.iter().position(|v| !v.is_empty()).unwrap();
            for &p in &per_shard[s] {
                run_frontier(
                    p,
                    &mut self.pes[p],
                    &mut rt.fr[p],
                    &mut locals[p],
                    global,
                    faults,
                    bound,
                    &mut la_slots[s],
                );
            }
        } else {
            let n = self.pes.len();
            let shards = rt.shards;
            let mut pes_rest: &mut [PeUnit] = &mut self.pes;
            let mut locals_rest: &mut [LocalPlane] = locals;
            let mut fr_rest: &mut [PeFrontier] = &mut rt.fr;
            let mut la_rest: &mut [u64] = &mut la_slots;
            let mut base = 0usize;
            std::thread::scope(|scope| {
                for (s, cands) in per_shard.iter().enumerate() {
                    let hi = (s + 1) * n / shards;
                    let w = hi - base;
                    let (pes_s, pr) = pes_rest.split_at_mut(w);
                    let (locals_s, lr) = locals_rest.split_at_mut(w);
                    let (fr_s, fr2) = fr_rest.split_at_mut(w);
                    let (la_s, lar) = la_rest.split_at_mut(1);
                    pes_rest = pr;
                    locals_rest = lr;
                    fr_rest = fr2;
                    la_rest = lar;
                    let lo = base;
                    base = hi;
                    if cands.is_empty() {
                        continue;
                    }
                    scope.spawn(move || {
                        let la = &mut la_s[0];
                        for &p in cands {
                            run_frontier(
                                p,
                                &mut pes_s[p - lo],
                                &mut fr_s[p - lo],
                                &mut locals_s[p - lo],
                                global,
                                faults,
                                bound,
                                la,
                            );
                        }
                    });
                }
            });
        }
        self.memory.stats.local_accesses += la_slots.iter().sum::<u64>();
        let rt = self.shard.as_mut().expect("installed above");
        for cands in &per_shard {
            for &p in cands {
                if !rt.fr[p].keys.is_empty() && !rt.in_active[p] {
                    rt.in_active[p] = true;
                    rt.active.push(p);
                }
            }
        }
        rt.pending = rt.fr.iter().map(|f| f.keys.len() as u64).sum();
    }

    /// Consume every pre-executed step lexicographically `≤ (t, i)` —
    /// the serial loop executed exactly those before reaching this
    /// selection — folding them into the serial bookkeeping:
    /// `instr_count` (each consumed step passed its budget check when
    /// the serial loop would have run it), `idle_steps` (local steps
    /// always complete, resetting the watchdog), and dropping their
    /// rollback backups.
    pub(crate) fn shard_consume(&mut self, t: u64, i: usize) {
        let Some(rt) = self.shard.as_mut() else { return };
        if rt.active.is_empty() {
            return;
        }
        let mut consumed_total = 0u64;
        let mut idx = 0;
        while idx < rt.active.len() {
            let p = rt.active[idx];
            let fr = &mut rt.fr[p];
            let mut n = 0u64;
            while let Some(&k) = fr.keys.front() {
                if k < t || (k == t && p <= i) {
                    fr.keys.pop_front();
                    fr.backups.pop_front();
                    n += 1;
                } else {
                    break;
                }
            }
            if n > 0 {
                consumed_total += n;
                rt.pending -= n;
                if !rt.in_recheck[p] {
                    rt.in_recheck[p] = true;
                    rt.recheck.push(p);
                }
            }
            if fr.keys.is_empty() {
                rt.in_active[p] = false;
                rt.active.swap_remove(idx);
            } else {
                idx += 1;
            }
        }
        if consumed_total > 0 {
            self.instr_count += consumed_total;
            self.idle_steps = 0;
        }
    }

    /// Post-step hook for a sharded iteration: the PE that just executed
    /// serially becomes frontier-eligible again (and un-parked — its
    /// violating instruction has now run with full global semantics).
    /// When the step halted the machine or rewrote the code segment,
    /// every still-pending frontier step is rolled back: the serial
    /// machine would never have executed them (HALT) or would have
    /// executed them against the new code.
    pub(crate) fn shard_after_step(&mut self, i: usize) {
        let Some(rt) = self.shard.as_mut() else { return };
        rt.fr[i].parked = false;
        rt.push_recheck(i);
        let must_roll = self.halted || self.memory.code_writes != rt.code_epoch;
        if must_roll {
            self.shard_rollback_pending();
        }
    }

    /// Roll every pending frontier step back: restore each PE from its
    /// earliest backup, undo the local writes newest-first, and return
    /// the charged statistics. Scheduler hints are refreshed because the
    /// rolled-back clocks moved backwards.
    fn shard_rollback_pending(&mut self) {
        let rt = self.shard.as_mut().expect("called on a sharded run");
        rt.code_epoch = self.memory.code_writes;
        if rt.active.is_empty() {
            return;
        }
        let mut rolled: Vec<(usize, u64)> = Vec::with_capacity(rt.active.len());
        {
            let (_global, locals) = self.memory.shard_split();
            for &p in &rt.active {
                let fr = &mut rt.fr[p];
                let Some(first) = fr.backups.front() else { continue };
                let restored = first.pe.clone();
                let mut la = 0;
                for b in fr.backups.iter().rev() {
                    for &(addr, old) in b.writes.iter().rev() {
                        match old {
                            Some(w) => {
                                locals[p].insert(addr, w);
                            }
                            None => {
                                locals[p].remove(addr);
                            }
                        }
                    }
                    la += b.local_accesses;
                }
                let unit = &mut self.pes[p];
                unit.busy -= unit.pe.cycles - restored.cycles;
                unit.pe = restored;
                rt.pending -= fr.keys.len() as u64;
                fr.keys.clear();
                fr.backups.clear();
                rolled.push((p, la));
            }
            for &p in &rt.active {
                rt.in_active[p] = false;
            }
            rt.active.clear();
        }
        for &(p, la) in &rolled {
            self.memory.stats.local_accesses -= la;
            let t = self.actor_time(p);
            self.sched.refresh(p, t);
            if let Some(rt) = self.shard.as_mut() {
                rt.push_recheck(p);
            }
        }
    }

    /// The clock the serial scheduler would observe for PE `p` right
    /// now: pre-executed frontier steps haven't happened yet in serial
    /// terms, so it is the pre-step cycle of the earliest unconsumed
    /// step, or the live clock when nothing is pending. `LeastLoaded`
    /// placement breaks ties on this, so fork decisions (and therefore
    /// everything downstream) match the serial run exactly.
    pub(crate) fn shard_serial_clock(&self, p: usize) -> u64 {
        match &self.shard {
            Some(rt) => rt.fr[p].keys.front().copied().unwrap_or(self.pes[p].pe.cycles),
            None => self.pes[p].pe.cycles,
        }
    }
}

/// The full determinism contract (`docs/DETERMINISM.md`), embedded so
/// `cargo doc` renders it next to the API it governs and the
/// `-D warnings` doc gate lints it alongside the code.
#[doc = include_str!("../../../docs/DETERMINISM.md")]
pub mod contract {}

#[cfg(test)]
mod tests {
    use super::*;

    fn basic(op: Opcode) -> Instruction {
        Instruction::basic(op, qm_isa::isa::SrcMode::Window(0), qm_isa::isa::SrcMode::Window(1))
    }

    #[test]
    fn alu_compare_branch_and_dup_are_local() {
        for op in [Opcode::Plus, Opcode::Mul, Opcode::Eq, Opcode::Bne, Opcode::Beq] {
            assert!(is_local_instr(&basic(op)), "{op:?}");
        }
        assert!(is_local_instr(&Instruction::Dup { two: false, off1: 0, off2: 0, cont: false }));
    }

    #[test]
    fn memory_channel_and_trap_ops_are_global() {
        for op in [
            Opcode::Fetch,
            Opcode::Store,
            Opcode::Fchb,
            Opcode::Storb,
            Opcode::Send,
            Opcode::Recv,
            Opcode::Trap,
            Opcode::Ftrap,
            Opcode::Fret,
            Opcode::Rett,
        ] {
            assert!(!is_local_instr(&basic(op)), "{op:?}");
        }
    }

    #[test]
    fn frontier_port_guards_non_local_addresses() {
        let mut local = LocalPlane::default();
        let global = GlobalPlane::default();
        let mut writes = Vec::new();
        let mut port = FrontierPort {
            local: &mut local,
            global: &global,
            writes: &mut writes,
            local_accesses: 0,
            violated: false,
        };
        port.write_word(0, qm_isa::mem::LOCAL_BASE + 8, 7);
        assert!(!port.violated);
        assert_eq!(port.read_word(0, qm_isa::mem::LOCAL_BASE + 8).0, 7);
        port.read_word(0, GLOBAL_BASE); // global plane: must trip the guard
        assert!(port.violated);
        assert_eq!(port.local_accesses, 2, "violating access charges nothing");
        assert_eq!(writes.len(), 1);
    }

    #[test]
    fn shard_of_is_contiguous_and_covers_all_pes() {
        for (pes, shards) in [(5, 2), (8, 3), (16, 16), (1024, 7)] {
            let rt = ShardRt::new(pes, shards, 0);
            assert_eq!(rt.shard_of.len(), pes);
            assert!(rt.shard_of.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(*rt.shard_of.last().unwrap(), shards - 1);
        }
    }
}
