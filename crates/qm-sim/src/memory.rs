//! Shared, partitioned memory with ring-bus access costs.
//!
//! Implements [`qm_isa::mem::DataPort`] over:
//!
//! * a single **global** space (code + shared data) whose addresses are
//!   homed at a partition (see [`qm_isa::mem`]); accesses from another
//!   partition cross the ring bus and cost more;
//! * one **local** space per PE (queue pages, kernel records), free of bus
//!   traffic and invisible to other PEs.

use std::collections::HashMap;

use qm_isa::mem::{global_home, is_local, DataPort, LOCAL_BASE};

use crate::config::SystemConfig;
use crate::trace::{TraceBuffer, TraceEvent};
use crate::{UWord, Word};

/// Words per directly mapped local page (4 KiB of address span).
const LP_PAGE_WORDS: usize = 1024;
/// Directly mapped pages per local plane: 4 MiB of span above
/// [`LOCAL_BASE`], comfortably covering every kernel allocation (queue
/// pages are bump-allocated densely from `LOCAL_BASE + 0x1000`).
/// Addresses beyond the span — programs *can* compute wild local
/// addresses — spill to an exact map.
const LP_MAX_PAGES: usize = 1024;

/// One 4 KiB page of a memory plane: backing words plus a per-word
/// presence bitmap, so the *populated set* (which addresses have ever
/// been written) is tracked exactly like the `HashMap` plane this
/// replaced — snapshots export identical `(address, value)` pairs.
#[derive(Debug, Clone)]
struct PlanePage {
    words: [Word; LP_PAGE_WORDS],
    present: [u64; LP_PAGE_WORDS / 64],
}

impl PlanePage {
    fn new() -> Box<PlanePage> {
        Box::new(PlanePage { words: [0; LP_PAGE_WORDS], present: [0; LP_PAGE_WORDS / 64] })
    }
}

/// One PE's private memory plane. The kernel allocates queue pages and
/// context records densely just above [`LOCAL_BASE`], so the hot path
/// (window-miss fills, `dup` queue writes) is a direct page-offset
/// array access instead of a hash lookup; presence bitmaps preserve the
/// exact populated-set semantics of a map (absent words read as 0 but
/// are not exported). Addresses outside the mapped span fall back to
/// [`LocalPlane::spill`].
#[derive(Debug, Clone, Default)]
pub(crate) struct LocalPlane {
    /// Directly mapped pages, grown on demand, indexed by
    /// `(addr - LOCAL_BASE) / 4096`.
    pages: Vec<Option<Box<PlanePage>>>,
    /// Exact store for addresses beyond the mapped span.
    spill: HashMap<UWord, Word>,
}

impl LocalPlane {
    /// `(page, slot)` for a mapped local address, `None` for spill.
    #[inline]
    fn index(addr: UWord) -> Option<(usize, usize)> {
        if addr < LOCAL_BASE {
            return None;
        }
        let idx = (addr.wrapping_sub(LOCAL_BASE) >> 2) as usize;
        let page = idx / LP_PAGE_WORDS;
        (page < LP_MAX_PAGES).then_some((page, idx % LP_PAGE_WORDS))
    }

    /// The word at `addr`, or `None` when never written (reads as 0).
    #[inline]
    pub(crate) fn get(&self, addr: UWord) -> Option<Word> {
        match Self::index(addr) {
            Some((p, s)) => {
                let page = self.pages.get(p)?.as_ref()?;
                (page.present[s / 64] >> (s % 64) & 1 == 1).then(|| page.words[s])
            }
            None => self.spill.get(&(addr & !3)).copied(),
        }
    }

    /// Write the word at `addr`, marking it populated.
    #[inline]
    pub(crate) fn insert(&mut self, addr: UWord, value: Word) {
        match Self::index(addr) {
            Some((p, s)) => {
                if self.pages.len() <= p {
                    self.pages.resize_with(p + 1, || None);
                }
                let page = self.pages[p].get_or_insert_with(PlanePage::new);
                page.present[s / 64] |= 1 << (s % 64);
                page.words[s] = value;
            }
            None => {
                self.spill.insert(addr & !3, value);
            }
        }
    }

    /// Un-populate the word at `addr` (the sharded frontier's undo log
    /// replays previously-absent words this way).
    pub(crate) fn remove(&mut self, addr: UWord) {
        match Self::index(addr) {
            Some((p, s)) => {
                if let Some(Some(page)) = self.pages.get_mut(p) {
                    page.present[s / 64] &= !(1 << (s % 64));
                }
            }
            None => {
                self.spill.remove(&(addr & !3));
            }
        }
    }

    /// Every populated `(address, value)` pair, sorted by address.
    fn export(&self) -> MemPlane {
        let mut out: MemPlane = Vec::new();
        for (p, page) in self.pages.iter().enumerate() {
            let Some(page) = page else { continue };
            for s in 0..LP_PAGE_WORDS {
                if page.present[s / 64] >> (s % 64) & 1 == 1 {
                    #[allow(clippy::cast_possible_truncation)]
                    let addr = LOCAL_BASE + 4 * (p * LP_PAGE_WORDS + s) as UWord;
                    out.push((addr, page.words[s]));
                }
            }
        }
        // Mapped pairs are already ascending and every spill address is
        // above the mapped span, but sort anyway: export is cold and the
        // ordering contract (snapshot byte determinism) must not lean on
        // that layout detail.
        out.extend(self.spill.iter().map(|(&a, &w)| (a, w)));
        out.sort_unstable();
        out
    }
}

/// Directly mapped pages in the global data plane: 4 MiB of span above
/// [`GLOBAL_BASE`](qm_isa::mem::GLOBAL_BASE), covering every compiler
/// allocation (`qm-occam` bump-allocates data densely from
/// `DATA_BASE == GLOBAL_BASE`). Wild addresses spill to the exact map.
const GP_MAX_PAGES: usize = 1024;

/// The shared global space: code plus shared data. The data region just
/// above [`GLOBAL_BASE`](qm_isa::mem::GLOBAL_BASE) — where the compiler
/// bump-allocates arrays and scalars — is directly mapped like
/// [`LocalPlane`], so the `fetch`/`store` hot path on *both* backends is
/// a page-offset array access; presence bitmaps preserve the exact
/// populated-set semantics of the map this replaced. The code segment
/// (below `GLOBAL_BASE`) and wild computed addresses stay in the exact
/// map: code is position-indexed by the translation anyway, and the
/// interpreter's `fetch_code` pays the same hash lookup it always did.
#[derive(Debug, Clone, Default)]
pub(crate) struct GlobalPlane {
    /// Directly mapped data pages, grown on demand, indexed by
    /// `(addr - GLOBAL_BASE) / 4096`.
    pages: Vec<Option<Box<PlanePage>>>,
    /// Exact store for the code segment and addresses beyond the span.
    map: HashMap<UWord, Word>,
}

impl GlobalPlane {
    /// `(page, slot)` for a mapped data address, `None` for the map.
    #[inline]
    fn index(addr: UWord) -> Option<(usize, usize)> {
        if addr < qm_isa::mem::GLOBAL_BASE {
            return None; // code segment
        }
        let idx = (addr.wrapping_sub(qm_isa::mem::GLOBAL_BASE) >> 2) as usize;
        let page = idx / LP_PAGE_WORDS;
        (page < GP_MAX_PAGES).then_some((page, idx % LP_PAGE_WORDS))
    }

    /// The word at `addr`, or `None` when never written (reads as 0).
    #[inline]
    pub(crate) fn get(&self, addr: UWord) -> Option<Word> {
        match Self::index(addr) {
            Some((p, s)) => {
                let page = self.pages.get(p)?.as_ref()?;
                (page.present[s / 64] >> (s % 64) & 1 == 1).then(|| page.words[s])
            }
            None => self.map.get(&(addr & !3)).copied(),
        }
    }

    /// Write the word at `addr`, marking it populated.
    #[inline]
    pub(crate) fn insert(&mut self, addr: UWord, value: Word) {
        match Self::index(addr) {
            Some((p, s)) => {
                if self.pages.len() <= p {
                    self.pages.resize_with(p + 1, || None);
                }
                let page = self.pages[p].get_or_insert_with(PlanePage::new);
                page.present[s / 64] |= 1 << (s % 64);
                page.words[s] = value;
            }
            None => {
                self.map.insert(addr & !3, value);
            }
        }
    }

    /// Every populated `(address, value)` pair, sorted by address.
    fn export(&self) -> MemPlane {
        let mut out: MemPlane = self.map.iter().map(|(&a, &w)| (a, w)).collect();
        for (p, page) in self.pages.iter().enumerate() {
            let Some(page) = page else { continue };
            for s in 0..LP_PAGE_WORDS {
                if page.present[s / 64] >> (s % 64) & 1 == 1 {
                    #[allow(clippy::cast_possible_truncation)]
                    let addr = qm_isa::mem::GLOBAL_BASE + 4 * (p * LP_PAGE_WORDS + s) as UWord;
                    out.push((addr, page.words[s]));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Memory traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Word accesses served within the requester's partition.
    pub local_accesses: u64,
    /// Word accesses that crossed the ring bus.
    pub remote_accesses: u64,
    /// Total bus cycles consumed by remote accesses.
    pub bus_cycles: u64,
}

/// One memory plane exported for snapshots: populated `(address, value)`
/// pairs, sorted by address.
pub(crate) type MemPlane = Vec<(UWord, Word)>;

/// The multiprocessor memory system.
#[derive(Debug)]
pub struct SharedMemory {
    global: GlobalPlane,
    locals: Vec<LocalPlane>,
    config: SystemConfig,
    /// Traffic statistics.
    pub stats: MemStats,
    /// Deferred bus-transfer trace events, drained by the run loop after
    /// each step. Inert unless the system installs a trace sink.
    pub trace: TraceBuffer,
    /// Monotone count of run-time stores into the code segment (below
    /// `GLOBAL_BASE`). Code is contractually pure, but a program *can*
    /// store there; the sharded run loop compares this epoch after every
    /// serial step and rolls back pre-executed frontier work that may
    /// have fetched stale code. Transient (not snapshotted): it is only
    /// ever compared within a single run-loop iteration.
    pub(crate) code_writes: u64,
}

impl SharedMemory {
    /// Memory for the given system configuration.
    #[must_use]
    pub fn new(config: &SystemConfig) -> Self {
        SharedMemory {
            global: GlobalPlane::default(),
            locals: vec![LocalPlane::default(); config.pes],
            config: config.clone(),
            stats: MemStats::default(),
            trace: TraceBuffer::default(),
            code_writes: 0,
        }
    }

    /// Split borrow for the sharded frontier workers: the global plane
    /// shared read-only (code fetches) and the per-PE local planes
    /// mutably, to be chunked per shard. Statistics and tracing stay
    /// with the run loop — frontier-legal accesses are local and emit no
    /// trace events, and their `local_accesses` are merged back at the
    /// barrier.
    pub(crate) fn shard_split(&mut self) -> (&GlobalPlane, &mut [LocalPlane]) {
        (&self.global, &mut self.locals)
    }

    fn cost(&mut self, pe: usize, addr: UWord) -> u64 {
        if is_local(addr) || addr < qm_isa::mem::GLOBAL_BASE {
            self.stats.local_accesses += 1;
            0
        } else {
            let home = global_home(addr);
            let c = self.config.mem_cost(pe, home);
            if self.config.partition_of(pe) == home % self.config.partitions.max(1) {
                self.stats.local_accesses += 1;
            } else {
                self.stats.remote_accesses += 1;
                self.stats.bus_cycles += c;
                self.trace.push(|| TraceEvent::BusTransfer { addr, cycles: c });
            }
            c
        }
    }

    /// Load raw words into global memory (code or data).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned.
    pub fn load_words(&mut self, base: UWord, words: &[u32]) {
        assert_eq!(base & 3, 0);
        for (i, &w) in words.iter().enumerate() {
            #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
            self.global.insert(base + 4 * i as UWord, w as Word);
        }
    }

    /// Peek a global word (host-side inspection, no cost).
    #[must_use]
    pub fn peek_global(&self, addr: UWord) -> Word {
        self.global.get(addr & !3).unwrap_or(0)
    }

    /// Poke a global word (host-side initialisation, no cost).
    pub fn poke_global(&mut self, addr: UWord, value: Word) {
        self.global.insert(addr & !3, value);
    }

    /// Peek a PE-local word.
    #[must_use]
    pub fn peek_local(&self, pe: usize, addr: UWord) -> Word {
        self.locals[pe].get(addr & !3).unwrap_or(0)
    }

    /// Export every populated word for snapshots: the global plane and
    /// each PE-local plane as `(address, value)` pairs sorted by address
    /// (deterministic bytes regardless of map iteration order).
    #[must_use]
    pub(crate) fn export_planes(&self) -> (MemPlane, Vec<MemPlane>) {
        (self.global.export(), self.locals.iter().map(LocalPlane::export).collect())
    }

    /// Replace the memory planes with snapshot state (the inverse of
    /// [`SharedMemory::export_planes`]); `locals` must have one plane per
    /// PE.
    pub(crate) fn restore_planes(&mut self, global: MemPlane, locals: Vec<MemPlane>) {
        debug_assert_eq!(locals.len(), self.locals.len());
        self.global = GlobalPlane::default();
        for (a, w) in global {
            self.global.insert(a, w);
        }
        self.locals = locals
            .into_iter()
            .map(|plane| {
                let mut lp = LocalPlane::default();
                for (a, w) in plane {
                    lp.insert(a, w);
                }
                lp
            })
            .collect();
    }
}

impl DataPort for SharedMemory {
    fn read_word(&mut self, pe: usize, addr: UWord) -> (Word, u64) {
        let cost = self.cost(pe, addr);
        let a = addr & !3;
        let v = if is_local(addr) {
            self.locals[pe].get(a).unwrap_or(0)
        } else {
            self.global.get(a).unwrap_or(0)
        };
        (v, cost)
    }

    fn write_word(&mut self, pe: usize, addr: UWord, value: Word) -> u64 {
        let cost = self.cost(pe, addr);
        let a = addr & !3;
        if is_local(addr) {
            self.locals[pe].insert(a, value);
        } else {
            if addr < qm_isa::mem::GLOBAL_BASE {
                // A store rewrote the code segment: bump the epoch so a
                // sharded run invalidates pre-fetched frontier work.
                self.code_writes += 1;
            }
            self.global.insert(a, value);
        }
        cost
    }

    fn read_byte(&mut self, pe: usize, addr: UWord) -> (Word, u64) {
        let (word, cost) = self.read_word(pe, addr & !3);
        let shift = (addr & 3) * 8;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_wrap)]
        (((word as u32 >> shift) & 0xFF) as Word, cost)
    }

    fn write_byte(&mut self, pe: usize, addr: UWord, value: Word) -> u64 {
        let aligned = addr & !3;
        let (old, _) = self.read_word(pe, aligned);
        let shift = (addr & 3) * 8;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_wrap)]
        let merged = {
            let old = old as u32;
            ((old & !(0xFFu32 << shift)) | (((value as u32) & 0xFF) << shift)) as Word
        };
        self.write_word(pe, aligned, merged)
    }

    fn fetch_code(&mut self, _pe: usize, addr: UWord) -> u32 {
        // Code is pure and replicated per PE (thesis: pseudo-static
        // instruction space) — no bus traffic.
        #[allow(clippy::cast_sign_loss)]
        {
            self.global.get(addr & !3).unwrap_or(0) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qm_isa::mem::LOCAL_BASE;

    #[test]
    fn locals_are_private_per_pe() {
        let cfg = SystemConfig::with_pes(2);
        let mut m = SharedMemory::new(&cfg);
        m.write_word(0, LOCAL_BASE + 0x100, 7);
        assert_eq!(m.read_word(0, LOCAL_BASE + 0x100).0, 7);
        assert_eq!(m.read_word(1, LOCAL_BASE + 0x100).0, 0, "PE 1 sees its own plane");
    }

    #[test]
    fn global_memory_is_shared() {
        let cfg = SystemConfig::with_pes(2);
        let mut m = SharedMemory::new(&cfg);
        m.write_word(0, 0x0010_0000, 42);
        assert_eq!(m.read_word(1, 0x0010_0000).0, 42);
    }

    #[test]
    fn remote_access_costs_bus_cycles() {
        let cfg = SystemConfig::with_pes(8); // 4 partitions
        let mut m = SharedMemory::new(&cfg);
        // Partition 0 home (addr bits 27:24 = 0) accessed from PE 0 (cheap)
        // and PE 7 in partition 3 (remote).
        let (_, c_near) = m.read_word(0, 0x0010_0000);
        let (_, c_far) = m.read_word(7, 0x0010_0000);
        assert!(c_near < c_far, "near {c_near} vs far {c_far}");
        assert!(m.stats.remote_accesses > 0);
        assert!(m.stats.bus_cycles >= c_far);
    }

    #[test]
    fn remote_accesses_emit_bus_events_when_traced() {
        let cfg = SystemConfig::with_pes(8);
        let mut m = SharedMemory::new(&cfg);
        m.read_word(7, 0x0010_0000); // remote, but tracing disabled
        assert!(m.trace.take().is_empty());
        m.trace.set_enabled(true);
        m.read_word(0, 0x0010_0000); // near access: no bus event
        let (_, far_cost) = m.read_word(7, 0x0010_0000);
        let events = m.trace.take();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            crate::trace::TraceEvent::BusTransfer { addr: 0x0010_0000, cycles } if cycles == far_cost
        ));
    }

    #[test]
    fn local_accesses_are_free() {
        let cfg = SystemConfig::with_pes(2);
        let mut m = SharedMemory::new(&cfg);
        assert_eq!(m.write_word(1, LOCAL_BASE + 4, 1), 0);
        assert_eq!(m.stats.bus_cycles, 0);
    }

    #[test]
    fn byte_operations_merge_within_words() {
        let cfg = SystemConfig::with_pes(1);
        let mut m = SharedMemory::new(&cfg);
        m.write_word(0, 0x0010_0010, 0x11223344);
        m.write_byte(0, 0x0010_0011, 0xAB);
        assert_eq!(m.read_word(0, 0x0010_0010).0, 0x1122_AB44);
        assert_eq!(m.read_byte(0, 0x0010_0011).0, 0xAB);
    }

    #[test]
    fn code_fetch_is_free_and_global() {
        let cfg = SystemConfig::with_pes(4);
        let mut m = SharedMemory::new(&cfg);
        m.load_words(0, &[0xCAFE_F00D]);
        assert_eq!(m.fetch_code(3, 0), 0xCAFE_F00D);
        assert_eq!(m.stats.remote_accesses, 0);
    }
}
