//! Shared, partitioned memory with ring-bus access costs.
//!
//! Implements [`qm_isa::mem::DataPort`] over:
//!
//! * a single **global** space (code + shared data) whose addresses are
//!   homed at a partition (see [`qm_isa::mem`]); accesses from another
//!   partition cross the ring bus and cost more;
//! * one **local** space per PE (queue pages, kernel records), free of bus
//!   traffic and invisible to other PEs.

use std::collections::HashMap;

use qm_isa::mem::{global_home, is_local, DataPort};

use crate::config::SystemConfig;
use crate::trace::{TraceBuffer, TraceEvent};
use crate::{UWord, Word};

/// Memory traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Word accesses served within the requester's partition.
    pub local_accesses: u64,
    /// Word accesses that crossed the ring bus.
    pub remote_accesses: u64,
    /// Total bus cycles consumed by remote accesses.
    pub bus_cycles: u64,
}

/// One memory plane exported for snapshots: populated `(address, value)`
/// pairs, sorted by address.
pub(crate) type MemPlane = Vec<(UWord, Word)>;

/// The multiprocessor memory system.
#[derive(Debug)]
pub struct SharedMemory {
    global: HashMap<UWord, Word>,
    locals: Vec<HashMap<UWord, Word>>,
    config: SystemConfig,
    /// Traffic statistics.
    pub stats: MemStats,
    /// Deferred bus-transfer trace events, drained by the run loop after
    /// each step. Inert unless the system installs a trace sink.
    pub trace: TraceBuffer,
    /// Monotone count of run-time stores into the code segment (below
    /// `GLOBAL_BASE`). Code is contractually pure, but a program *can*
    /// store there; the sharded run loop compares this epoch after every
    /// serial step and rolls back pre-executed frontier work that may
    /// have fetched stale code. Transient (not snapshotted): it is only
    /// ever compared within a single run-loop iteration.
    pub(crate) code_writes: u64,
}

impl SharedMemory {
    /// Memory for the given system configuration.
    #[must_use]
    pub fn new(config: &SystemConfig) -> Self {
        SharedMemory {
            global: HashMap::new(),
            locals: vec![HashMap::new(); config.pes],
            config: config.clone(),
            stats: MemStats::default(),
            trace: TraceBuffer::default(),
            code_writes: 0,
        }
    }

    /// Split borrow for the sharded frontier workers: the global plane
    /// shared read-only (code fetches) and the per-PE local planes
    /// mutably, to be chunked per shard. Statistics and tracing stay
    /// with the run loop — frontier-legal accesses are local and emit no
    /// trace events, and their `local_accesses` are merged back at the
    /// barrier.
    pub(crate) fn shard_split(&mut self) -> (&HashMap<UWord, Word>, &mut [HashMap<UWord, Word>]) {
        (&self.global, &mut self.locals)
    }

    fn plane(&mut self, pe: usize, addr: UWord) -> &mut HashMap<UWord, Word> {
        if is_local(addr) {
            &mut self.locals[pe]
        } else {
            &mut self.global
        }
    }

    fn cost(&mut self, pe: usize, addr: UWord) -> u64 {
        if is_local(addr) || addr < qm_isa::mem::GLOBAL_BASE {
            self.stats.local_accesses += 1;
            0
        } else {
            let home = global_home(addr);
            let c = self.config.mem_cost(pe, home);
            if self.config.partition_of(pe) == home % self.config.partitions.max(1) {
                self.stats.local_accesses += 1;
            } else {
                self.stats.remote_accesses += 1;
                self.stats.bus_cycles += c;
                self.trace.push(|| TraceEvent::BusTransfer { addr, cycles: c });
            }
            c
        }
    }

    /// Load raw words into global memory (code or data).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned.
    pub fn load_words(&mut self, base: UWord, words: &[u32]) {
        assert_eq!(base & 3, 0);
        for (i, &w) in words.iter().enumerate() {
            #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
            self.global.insert(base + 4 * i as UWord, w as Word);
        }
    }

    /// Peek a global word (host-side inspection, no cost).
    #[must_use]
    pub fn peek_global(&self, addr: UWord) -> Word {
        self.global.get(&(addr & !3)).copied().unwrap_or(0)
    }

    /// Poke a global word (host-side initialisation, no cost).
    pub fn poke_global(&mut self, addr: UWord, value: Word) {
        self.global.insert(addr & !3, value);
    }

    /// Peek a PE-local word.
    #[must_use]
    pub fn peek_local(&self, pe: usize, addr: UWord) -> Word {
        self.locals[pe].get(&(addr & !3)).copied().unwrap_or(0)
    }

    /// Export every populated word for snapshots: the global plane and
    /// each PE-local plane as `(address, value)` pairs sorted by address
    /// (deterministic bytes regardless of map iteration order).
    #[must_use]
    pub(crate) fn export_planes(&self) -> (MemPlane, Vec<MemPlane>) {
        let sorted = |m: &HashMap<UWord, Word>| {
            let mut v: MemPlane = m.iter().map(|(&a, &w)| (a, w)).collect();
            v.sort_unstable();
            v
        };
        (sorted(&self.global), self.locals.iter().map(sorted).collect())
    }

    /// Replace the memory planes with snapshot state (the inverse of
    /// [`SharedMemory::export_planes`]); `locals` must have one plane per
    /// PE.
    pub(crate) fn restore_planes(&mut self, global: MemPlane, locals: Vec<MemPlane>) {
        debug_assert_eq!(locals.len(), self.locals.len());
        self.global = global.into_iter().collect();
        self.locals = locals.into_iter().map(|plane| plane.into_iter().collect()).collect();
    }
}

impl DataPort for SharedMemory {
    fn read_word(&mut self, pe: usize, addr: UWord) -> (Word, u64) {
        let cost = self.cost(pe, addr);
        let v = self.plane(pe, addr & !3).get(&(addr & !3)).copied().unwrap_or(0);
        (v, cost)
    }

    fn write_word(&mut self, pe: usize, addr: UWord, value: Word) -> u64 {
        let cost = self.cost(pe, addr);
        if !is_local(addr) && addr < qm_isa::mem::GLOBAL_BASE {
            // A store rewrote the code segment: bump the epoch so a
            // sharded run invalidates pre-fetched frontier work.
            self.code_writes += 1;
        }
        self.plane(pe, addr & !3).insert(addr & !3, value);
        cost
    }

    fn read_byte(&mut self, pe: usize, addr: UWord) -> (Word, u64) {
        let (word, cost) = self.read_word(pe, addr & !3);
        let shift = (addr & 3) * 8;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_wrap)]
        (((word as u32 >> shift) & 0xFF) as Word, cost)
    }

    fn write_byte(&mut self, pe: usize, addr: UWord, value: Word) -> u64 {
        let aligned = addr & !3;
        let (old, _) = self.read_word(pe, aligned);
        let shift = (addr & 3) * 8;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_wrap)]
        let merged = {
            let old = old as u32;
            ((old & !(0xFFu32 << shift)) | (((value as u32) & 0xFF) << shift)) as Word
        };
        self.write_word(pe, aligned, merged)
    }

    fn fetch_code(&mut self, _pe: usize, addr: UWord) -> u32 {
        // Code is pure and replicated per PE (thesis: pseudo-static
        // instruction space) — no bus traffic.
        #[allow(clippy::cast_sign_loss)]
        {
            self.global.get(&(addr & !3)).copied().unwrap_or(0) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qm_isa::mem::LOCAL_BASE;

    #[test]
    fn locals_are_private_per_pe() {
        let cfg = SystemConfig::with_pes(2);
        let mut m = SharedMemory::new(&cfg);
        m.write_word(0, LOCAL_BASE + 0x100, 7);
        assert_eq!(m.read_word(0, LOCAL_BASE + 0x100).0, 7);
        assert_eq!(m.read_word(1, LOCAL_BASE + 0x100).0, 0, "PE 1 sees its own plane");
    }

    #[test]
    fn global_memory_is_shared() {
        let cfg = SystemConfig::with_pes(2);
        let mut m = SharedMemory::new(&cfg);
        m.write_word(0, 0x0010_0000, 42);
        assert_eq!(m.read_word(1, 0x0010_0000).0, 42);
    }

    #[test]
    fn remote_access_costs_bus_cycles() {
        let cfg = SystemConfig::with_pes(8); // 4 partitions
        let mut m = SharedMemory::new(&cfg);
        // Partition 0 home (addr bits 27:24 = 0) accessed from PE 0 (cheap)
        // and PE 7 in partition 3 (remote).
        let (_, c_near) = m.read_word(0, 0x0010_0000);
        let (_, c_far) = m.read_word(7, 0x0010_0000);
        assert!(c_near < c_far, "near {c_near} vs far {c_far}");
        assert!(m.stats.remote_accesses > 0);
        assert!(m.stats.bus_cycles >= c_far);
    }

    #[test]
    fn remote_accesses_emit_bus_events_when_traced() {
        let cfg = SystemConfig::with_pes(8);
        let mut m = SharedMemory::new(&cfg);
        m.read_word(7, 0x0010_0000); // remote, but tracing disabled
        assert!(m.trace.take().is_empty());
        m.trace.set_enabled(true);
        m.read_word(0, 0x0010_0000); // near access: no bus event
        let (_, far_cost) = m.read_word(7, 0x0010_0000);
        let events = m.trace.take();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            crate::trace::TraceEvent::BusTransfer { addr: 0x0010_0000, cycles } if cycles == far_cost
        ));
    }

    #[test]
    fn local_accesses_are_free() {
        let cfg = SystemConfig::with_pes(2);
        let mut m = SharedMemory::new(&cfg);
        assert_eq!(m.write_word(1, LOCAL_BASE + 4, 1), 0);
        assert_eq!(m.stats.bus_cycles, 0);
    }

    #[test]
    fn byte_operations_merge_within_words() {
        let cfg = SystemConfig::with_pes(1);
        let mut m = SharedMemory::new(&cfg);
        m.write_word(0, 0x0010_0010, 0x11223344);
        m.write_byte(0, 0x0010_0011, 0xAB);
        assert_eq!(m.read_word(0, 0x0010_0010).0, 0x1122_AB44);
        assert_eq!(m.read_byte(0, 0x0010_0011).0, 0xAB);
    }

    #[test]
    fn code_fetch_is_free_and_global() {
        let cfg = SystemConfig::with_pes(4);
        let mut m = SharedMemory::new(&cfg);
        m.load_words(0, &[0xCAFE_F00D]);
        assert_eq!(m.fetch_code(3, 0), 0xCAFE_F00D);
        assert_eq!(m.stats.remote_accesses, 0);
    }
}
