//! Deterministic fault injection and recovery accounting.
//!
//! The thesis assumes a perfect interconnect: every channel transfer
//! arrives, every PE always makes progress. This module models the
//! *unreliable* counterpart — stalled PEs, dropped bus transfers, lost
//! channel sends, delayed kernel traps — without giving up determinism:
//! a [`FaultPlan`] is a pure description (a seed plus rates and explicit
//! stall windows) that [`FaultPlan::compile`] turns into a
//! [`FaultEngine`], a counter-driven event stream the run loop consults.
//! The same plan replayed against the same program produces the same
//! faults, the same retries and the same cycle counts — on one thread or
//! many — so faulty runs are as reproducible as clean ones.
//!
//! Recovery is the run loop's half of the contract (see
//! [`crate::system`]):
//!
//! * a dropped channel send is retried with exponential backoff, bounded
//!   by [`RecoveryConfig::max_retries`], after which the transfer is
//!   forced through (the bound guarantees liveness);
//! * a dropped bus transfer is re-sent immediately, charging the base
//!   cost again plus backoff, also bounded;
//! * a watchdog converts livelock (unbounded retry storms) into a
//!   structured [`SimError::Watchdog`](crate::SimError::Watchdog) report;
//! * every injected fault, retry and recovery is tallied in the
//!   [`DegradationReport`] returned inside
//!   [`RunOutcome`](crate::RunOutcome).
//!
//! The key invariant, locked by `tests/fault_equivalence.rs` and the
//! golden tests in `qm-bench`: an **empty plan is bit-identical to no
//! plan at all** — [`System::set_fault_plan`](crate::System::set_fault_plan)
//! installs no engine for an empty plan, so the fault-free fast path is
//! byte-for-byte the pre-fault simulator.

use crate::config::RecoveryConfig;

/// One scheduled window during which a PE cannot act (a transient
/// hardware stall: the PE's clock is idled to the window's end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// The stalled PE.
    pub pe: usize,
    /// First cycle of the stall.
    pub start: u64,
    /// Length in cycles (zero-length windows are ignored).
    pub cycles: u64,
}

/// A deterministic fault-injection plan: what goes wrong, how often,
/// seeded so every run replays identically.
///
/// Rates are in parts-per-million of the respective event stream (each
/// considered channel send, bus transfer or kernel trap draws once from
/// a seeded counter-keyed generator). The default plan is empty: no
/// faults, and [`System::set_fault_plan`](crate::System::set_fault_plan)
/// treats it exactly like never having called it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic draw.
    pub seed: u64,
    /// Probability (ppm) that a non-host channel send is lost in transit
    /// before reaching the message processor (retried with backoff).
    pub send_loss_ppm: u32,
    /// Probability (ppm) that a cross-PE bus transfer is dropped and
    /// must be re-sent (re-charged immediately, with backoff).
    pub bus_drop_ppm: u32,
    /// Probability (ppm) that a kernel trap incurs an extra service
    /// delay.
    pub trap_delay_ppm: u32,
    /// Cycles added to each delayed trap.
    pub trap_delay_cycles: u64,
    /// Explicit PE stall windows.
    pub stall_windows: Vec<StallWindow>,
    /// Number of additional randomly placed stall windows, generated
    /// from the seed at compile time.
    pub random_stalls: u32,
    /// Length of each random stall window.
    pub random_stall_cycles: u64,
    /// Random stall start times are drawn uniformly from
    /// `[0, random_stall_horizon)`.
    pub random_stall_horizon: u64,
    /// Retry / backoff / watchdog tuning.
    pub recovery: RecoveryConfig,
}

impl FaultPlan {
    /// An empty plan carrying `seed` (attach faults with the `with_*`
    /// builders).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..Self::default() }
    }

    /// Lose channel sends at `ppm` parts-per-million.
    #[must_use]
    pub fn with_send_loss(mut self, ppm: u32) -> Self {
        self.send_loss_ppm = ppm;
        self
    }

    /// Drop cross-PE bus transfers at `ppm` parts-per-million.
    #[must_use]
    pub fn with_bus_drops(mut self, ppm: u32) -> Self {
        self.bus_drop_ppm = ppm;
        self
    }

    /// Delay kernel traps at `ppm` parts-per-million by `cycles` each.
    #[must_use]
    pub fn with_trap_delays(mut self, ppm: u32, cycles: u64) -> Self {
        self.trap_delay_ppm = ppm;
        self.trap_delay_cycles = cycles;
        self
    }

    /// Add an explicit stall window.
    #[must_use]
    pub fn with_stall(mut self, pe: usize, start: u64, cycles: u64) -> Self {
        self.stall_windows.push(StallWindow { pe, start, cycles });
        self
    }

    /// Add `count` seeded random stall windows of `cycles` cycles each,
    /// starting somewhere in `[0, horizon)`.
    #[must_use]
    pub fn with_random_stalls(mut self, count: u32, cycles: u64, horizon: u64) -> Self {
        self.random_stalls = count;
        self.random_stall_cycles = cycles;
        self.random_stall_horizon = horizon;
        self
    }

    /// Override the recovery tuning.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Whether this plan injects nothing at all. Empty plans compile to
    /// no engine, keeping fault-free runs bit-identical to the
    /// pre-fault simulator.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.send_loss_ppm == 0
            && self.bus_drop_ppm == 0
            && self.trap_delay_ppm == 0
            && (self.stall_windows.iter().all(|w| w.cycles == 0))
            && (self.random_stalls == 0 || self.random_stall_cycles == 0)
    }

    /// Compile the plan for a `pes`-PE system: resolve the stall
    /// windows (explicit + seeded random, merged per PE) and arm the
    /// counter-keyed draw streams.
    #[must_use]
    pub fn compile(&self, pes: usize) -> FaultEngine {
        let mut stalls: Vec<Vec<(u64, u64)>> = vec![Vec::new(); pes];
        for w in &self.stall_windows {
            if w.pe < pes && w.cycles > 0 {
                stalls[w.pe].push((w.start, w.start + w.cycles));
            }
        }
        if self.random_stall_cycles > 0 {
            for k in 0..u64::from(self.random_stalls) {
                let pe = (draw(self.seed, STREAM_STALL, 2 * k) % pes as u64) as usize;
                let start =
                    draw(self.seed, STREAM_STALL, 2 * k + 1) % self.random_stall_horizon.max(1);
                stalls[pe].push((start, start + self.random_stall_cycles));
            }
        }
        for windows in &mut stalls {
            windows.sort_unstable();
            // Merge overlaps so each stall advances the clock exactly
            // once (guaranteeing run-loop progress).
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(windows.len());
            for &(s, e) in windows.iter() {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            *windows = merged;
        }
        FaultEngine {
            send_loss_ppm: self.send_loss_ppm,
            bus_drop_ppm: self.bus_drop_ppm,
            trap_delay_ppm: self.trap_delay_ppm,
            trap_delay_cycles: self.trap_delay_cycles,
            recovery: self.recovery,
            stalls,
            seed: self.seed,
            send_seq: 0,
            bus_seq: 0,
            trap_seq: 0,
            pending_retry: None,
        }
    }
}

/// Per-run fault and recovery tallies, reported in
/// [`RunOutcome::degradation`](crate::RunOutcome::degradation). A clean
/// (fault-free) run reports all zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradationReport {
    /// Channel sends lost in transit.
    pub send_drops: u64,
    /// Cross-PE bus transfers dropped and re-sent.
    pub bus_drops: u64,
    /// PE stall windows applied.
    pub pe_stalls: u64,
    /// Kernel traps delayed.
    pub trap_delays: u64,
    /// Total retries performed (send retries + bus re-sends).
    pub retries: u64,
    /// Transfers that completed after at least one drop.
    pub recovered_transfers: u64,
    /// Cycles PEs spent idled by stall windows.
    pub stall_cycles: u64,
    /// Cycles charged to retry backoff.
    pub backoff_cycles: u64,
    /// Cycles added by delayed kernel traps.
    pub delay_cycles: u64,
}

impl DegradationReport {
    /// Total faults injected across all categories.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.send_drops + self.bus_drops + self.pe_stalls + self.trap_delays
    }

    /// Whether the run saw no faults at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} fault(s) injected ({} send drops, {} bus drops, {} stalls, {} trap delays), \
             {} retries, {} recovered",
            self.total_injected(),
            self.send_drops,
            self.bus_drops,
            self.pe_stalls,
            self.trap_delays,
            self.retries,
            self.recovered_transfers,
        )
    }
}

// Stream tags keep the draw sequences of the four fault categories
// independent: consuming a send draw never shifts the bus stream.
const STREAM_SEND: u64 = 1;
const STREAM_BUS: u64 = 2;
const STREAM_TRAP: u64 = 3;
const STREAM_STALL: u64 = 4;

use crate::rng::{draw, hits};

/// A compiled [`FaultPlan`]: the runtime event stream the run loop
/// consults. Holds the per-PE stall schedule, the draw counters and the
/// one-slot retry mailbox the run loop drains after a dropped send.
///
/// Fields are `pub(crate)` so [`crate::snapshot`] can serialize the
/// engine mid-run (counters and mailbox included) and rebuild it
/// exactly — a resumed run replays the identical fault stream.
#[derive(Debug, Clone)]
pub struct FaultEngine {
    pub(crate) send_loss_ppm: u32,
    pub(crate) bus_drop_ppm: u32,
    pub(crate) trap_delay_ppm: u32,
    pub(crate) trap_delay_cycles: u64,
    /// Retry / backoff / watchdog tuning (public: the run loop applies
    /// it).
    pub recovery: RecoveryConfig,
    /// Per-PE stall windows, sorted and non-overlapping.
    pub(crate) stalls: Vec<Vec<(u64, u64)>>,
    pub(crate) seed: u64,
    pub(crate) send_seq: u64,
    pub(crate) bus_seq: u64,
    pub(crate) trap_seq: u64,
    pub(crate) pending_retry: Option<u64>,
}

impl FaultEngine {
    /// Whether the next considered channel send is lost (consumes one
    /// draw from the send stream).
    pub fn drop_send(&mut self) -> bool {
        let hit = hits(self.seed, STREAM_SEND, self.send_seq, self.send_loss_ppm);
        self.send_seq += 1;
        hit
    }

    /// How many consecutive times the next bus transfer is dropped
    /// before getting through, bounded by
    /// [`RecoveryConfig::max_retries`]. Consumes one draw per drop plus
    /// the terminating success (when under the bound).
    pub fn bus_drop_attempts(&mut self) -> u32 {
        if self.bus_drop_ppm == 0 {
            return 0;
        }
        let mut n = 0;
        while n < self.recovery.max_retries {
            let hit = hits(self.seed, STREAM_BUS, self.bus_seq, self.bus_drop_ppm);
            self.bus_seq += 1;
            if !hit {
                break;
            }
            n += 1;
        }
        n
    }

    /// Extra cycles the next kernel trap costs, if it is one of the
    /// delayed ones (consumes one draw from the trap stream).
    pub fn trap_delay(&mut self) -> Option<u64> {
        let hit = hits(self.seed, STREAM_TRAP, self.trap_seq, self.trap_delay_ppm);
        self.trap_seq += 1;
        (hit && self.trap_delay_cycles > 0).then_some(self.trap_delay_cycles)
    }

    /// If cycle `t` falls inside one of `pe`'s stall windows, the first
    /// cycle after the window — the time the PE may act again.
    #[must_use]
    pub fn stall_until(&self, pe: usize, t: u64) -> Option<u64> {
        let windows = self.stalls.get(pe)?;
        let i = windows.partition_point(|&(start, _)| start <= t);
        let &(_, end) = windows[..i].last()?;
        (t < end).then_some(end)
    }

    /// Arm the retry mailbox: the context whose send was just dropped
    /// must be re-readied at cycle `at`. The run loop collects it with
    /// [`take_retry`](Self::take_retry) right after parking the context.
    pub fn schedule_retry(&mut self, at: u64) {
        debug_assert!(self.pending_retry.is_none(), "one retry per step");
        self.pending_retry = Some(at);
    }

    /// Drain the retry mailbox.
    pub fn take_retry(&mut self) -> Option<u64> {
        self.pending_retry.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_seeded_builders_are_not() {
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan::seeded(7).is_empty(), "a seed alone injects nothing");
        assert!(!FaultPlan::seeded(7).with_send_loss(1).is_empty());
        assert!(!FaultPlan::seeded(7).with_bus_drops(1).is_empty());
        assert!(!FaultPlan::seeded(7).with_trap_delays(1, 4).is_empty());
        assert!(!FaultPlan::seeded(7).with_stall(0, 10, 5).is_empty());
        assert!(!FaultPlan::seeded(7).with_random_stalls(1, 5, 100).is_empty());
        // Degenerate windows inject nothing.
        assert!(FaultPlan::seeded(7).with_stall(0, 10, 0).is_empty());
        assert!(FaultPlan::seeded(7).with_random_stalls(3, 0, 100).is_empty());
    }

    #[test]
    fn draw_streams_are_deterministic_and_independent() {
        let a = draw(42, STREAM_SEND, 0);
        assert_eq!(a, draw(42, STREAM_SEND, 0), "same seed, same draw");
        assert_ne!(a, draw(42, STREAM_SEND, 1));
        assert_ne!(a, draw(42, STREAM_BUS, 0), "streams are independent");
        assert_ne!(a, draw(43, STREAM_SEND, 0), "seeds are independent");
    }

    #[test]
    fn send_loss_rate_is_roughly_honoured() {
        let mut e = FaultPlan::seeded(1).with_send_loss(250_000).compile(1);
        let drops = (0..10_000).filter(|_| e.drop_send()).count();
        assert!((2_000..3_000).contains(&drops), "~25% of 10k, got {drops}");
        let mut none = FaultPlan::seeded(1).compile(1);
        assert!((0..1000).all(|_| !none.drop_send()), "0 ppm never drops");
    }

    #[test]
    fn identical_seeds_replay_identical_fault_streams() {
        let plan = FaultPlan::seeded(99).with_send_loss(100_000).with_bus_drops(50_000);
        let mut a = plan.compile(4);
        let mut b = plan.compile(4);
        for _ in 0..1000 {
            assert_eq!(a.drop_send(), b.drop_send());
            assert_eq!(a.bus_drop_attempts(), b.bus_drop_attempts());
        }
    }

    #[test]
    fn bus_drop_attempts_are_bounded_by_max_retries() {
        let recovery = RecoveryConfig { max_retries: 3, ..RecoveryConfig::default() };
        let mut e =
            FaultPlan::seeded(5).with_bus_drops(1_000_000).with_recovery(recovery).compile(1);
        for _ in 0..100 {
            assert_eq!(e.bus_drop_attempts(), 3, "100% drop rate saturates at the bound");
        }
    }

    #[test]
    fn stall_windows_merge_and_answer_containment() {
        let e = FaultPlan::seeded(0)
            .with_stall(0, 10, 10) // [10, 20)
            .with_stall(0, 15, 10) // overlaps → [10, 25)
            .with_stall(0, 40, 5) // [40, 45)
            .with_stall(1, 0, 3) // other PE
            .compile(2);
        assert_eq!(e.stall_until(0, 9), None);
        assert_eq!(e.stall_until(0, 10), Some(25));
        assert_eq!(e.stall_until(0, 24), Some(25));
        assert_eq!(e.stall_until(0, 25), None, "windows are half-open");
        assert_eq!(e.stall_until(0, 41), Some(45));
        assert_eq!(e.stall_until(1, 1), Some(3));
        assert_eq!(e.stall_until(1, 50), None);
    }

    #[test]
    fn random_stalls_are_seed_deterministic_and_in_horizon() {
        let plan = FaultPlan::seeded(77).with_random_stalls(8, 50, 1000);
        let a = plan.compile(4);
        let b = plan.compile(4);
        assert_eq!(a.stalls, b.stalls, "same seed, same schedule");
        let total: usize = a.stalls.iter().map(Vec::len).sum();
        assert!(total > 0 && total <= 8, "merging may shrink but never grow: {total}");
        for windows in &a.stalls {
            for &(s, e) in windows {
                assert!(s < 1000, "start inside horizon");
                assert!(e > s);
            }
        }
        let other = FaultPlan::seeded(78).with_random_stalls(8, 50, 1000).compile(4);
        assert_ne!(a.stalls, other.stalls, "different seed, different schedule");
    }

    #[test]
    fn retry_mailbox_is_one_shot() {
        let mut e = FaultPlan::seeded(0).with_send_loss(1).compile(1);
        assert_eq!(e.take_retry(), None);
        e.schedule_retry(42);
        assert_eq!(e.take_retry(), Some(42));
        assert_eq!(e.take_retry(), None);
    }

    #[test]
    fn degradation_report_display_and_totals() {
        let mut r = DegradationReport::default();
        assert!(r.is_clean());
        r.send_drops = 2;
        r.bus_drops = 1;
        r.pe_stalls = 1;
        r.retries = 3;
        r.recovered_transfers = 2;
        assert!(!r.is_clean());
        assert_eq!(r.total_injected(), 4);
        let s = r.to_string();
        assert!(s.contains("4 fault(s)"), "{s}");
        assert!(s.contains("3 retries"), "{s}");
    }
}
