//! Queue machine multiprocessor simulator (thesis §5.5–5.6 and Chapter 6).
//!
//! The simulated system is a set of queue-machine processing elements
//! (from [`qm_isa`]) grouped into partitions of a shared, segmented bus
//! connected in a ring (Fig. 5.18). Each PE has a dedicated *message
//! processor* with a message cache implementing blocking channel
//! rendezvous (Figs 5.13–5.17); a multiprocessing kernel (Chapter 6,
//! reimplemented in Rust per `DESIGN.md` substitution #1) creates,
//! schedules and retires *contexts* — the dynamic data-flow graph splicing
//! mechanism of Chapter 4.
//!
//! * [`config`] — system size, bus/kernel cost parameters, scheduling
//!   policy, recovery tuning.
//! * [`msg`] — channel table / message-cache state machines.
//! * [`memory`] — the shared, partitioned memory with ring-bus costs.
//! * [`kernel`] — context records, state machine, kernel entry points.
//! * [`sched`] — the run loop's ready queues and min-clock actor heap.
//! * [`shard`] — deterministic host-parallel execution: local frontiers
//!   pre-run provably PE-private instructions across shard threads while
//!   the run loop serializes everything globally visible, bit-identical
//!   to the serial scheduler (contract in `docs/DETERMINISM.md`).
//! * [`system`] — the top-level simulator and run loop.
//! * [`builder`] — fluent construction: [`Simulation::builder()`].
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]) and the
//!   recovery/degradation accounting.
//! * [`snapshot`] — versioned capture/restore of complete machine state
//!   (`qm-snap/v1`) with deterministic-replay guarantees.
//! * [`rng`] — the splitmix64 mixer behind fault draws and snapshot
//!   checksums.
//! * [`report`] — the stable `qm-api/v1` JSON wire format for
//!   [`RunOutcome`], [`DegradationReport`] and architectural state
//!   digests (the contract `qm-serve` serves over HTTP).
//! * [`trace`] — structured event tracing: typed simulator events, the
//!   sink trait, an in-memory recorder and a Chrome trace-event exporter.
//! * [`amdahl`] — the analytic speed-up models of Figs 6.6–6.7.
//!
//! # Example
//!
//! Run a two-context program where the main context forks a child that
//! doubles a value:
//!
//! ```
//! use qm_sim::{Simulation, SystemConfig};
//!
//! let src = "
//! main:   trap #0,#child :r0,r1   ; rfork → c_in, c_out
//!         send r0,#21             ; argument
//!         recv r1,#0 :r2          ; result
//!         send+3 #0,r2            ; report to host (channel 0)
//!         trap #3,#0              ; halt
//! child:  recv r17,#0 :r0         ; r17 = my in channel
//!         mul+1 r0,#2 :r0
//!         send+1 r18,r0           ; r18 = my out channel
//!         trap #2,#0              ; end context
//! ";
//! let mut sys = Simulation::builder()
//!     .config(SystemConfig::with_pes(2))
//!     .assembly(src)
//!     .build()
//!     .unwrap();
//! let outcome = sys.run().unwrap();
//! assert_eq!(outcome.output, vec![42]);
//! assert!(outcome.degradation.is_clean(), "no faults were injected");
//! ```

pub mod amdahl;
pub mod builder;
pub mod config;
pub mod fault;
pub mod kernel;
pub mod memory;
pub mod msg;
pub mod report;
pub mod rng;
pub mod sched;
pub mod shard;
pub mod snapshot;
pub mod system;
pub mod trace;
pub mod xlate;

pub use builder::{SimBuilder, Simulation};
pub use config::{RecoveryConfig, SystemConfig};
pub use fault::{DegradationReport, FaultPlan, StallWindow};
// Convenience duplicates of `qm_verify`'s types; the documented way in
// is `qm_verify::{VerifyLevel, VerifyOptions}` (or the facade prelude).
#[doc(hidden)]
pub use qm_verify::{VerifyLevel, VerifyOptions};
pub use snapshot::{Snapshot, SnapshotError};
pub use system::{BlockedCtx, RetryingCtx, RunOutcome, RunStatus, SimError, System};
pub use trace::{ChromeTrace, Recorder, TraceEvent, TraceRecord, TraceSink, Tracer};
pub use xlate::Backend;

/// Machine word, shared with the rest of the workspace.
pub type Word = qm_isa::Word;
/// Unsigned word / address.
pub type UWord = qm_isa::UWord;
/// Context identifier.
pub type CtxId = usize;
