//! Multiprocessing kernel data structures (thesis §6.2).
//!
//! The thesis kernel is written in Concurrent Euclid and entered through
//! `trap` instructions at memory-mapped entry points (Table 6.1); here the
//! same services are implemented in the simulator host (substitution #1 in
//! `DESIGN.md`) with explicit cycle charges so kernel overhead remains
//! visible in the results. The context state machine is Fig. 6.4.

use qm_isa::regs::SavedRegisters;

use crate::{UWord, Word};

/// Kernel entry point numbers (`trap #n` — our rendering of Table 6.1).
pub mod entry {
    use crate::Word;

    /// Recursive fork: create a context with fresh in/out channels.
    /// `arg` = code address; results: `dst1` = in channel, `dst2` = out.
    pub const RFORK: Word = 0;
    /// Iterative fork: create a context inheriting the caller's out
    /// channel. `arg` = code address; result: `dst1` = in channel.
    pub const IFORK: Word = 1;
    /// Terminate the calling context.
    pub const END: Word = 2;
    /// Halt the whole system.
    pub const HALT: Word = 3;
    /// Read the global cycle clock into `dst1` (the `now` actor).
    pub const NOW: Word = 4;
    /// Suspend the caller until the clock reaches `arg` (the `wait`
    /// actor).
    pub const WAIT: Word = 5;
    /// Allocate a fresh channel identifier into `dst1` (used for OCCAM
    /// `chan` declarations).
    pub const CHAN: Word = 6;
    /// Recursive fork pinned to the forking PE — used for continuation
    /// contexts (loop entries, `if` branches) whose parent immediately
    /// blocks waiting for them.
    pub const RFORK_LOCAL: Word = 7;

    /// Human-readable name of a kernel entry (trace events, deadlock
    /// reports).
    #[must_use]
    pub fn name(n: Word) -> &'static str {
        match n {
            RFORK => "rfork",
            IFORK => "ifork",
            END => "end",
            HALT => "halt",
            NOW => "now",
            WAIT => "wait",
            CHAN => "chan",
            RFORK_LOCAL => "rfork-local",
            _ => "unknown",
        }
    }
}

/// Context life-cycle states (Fig. 6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtxState {
    /// Eligible to run, queued on its PE.
    Ready,
    /// Currently executing on its PE.
    Running,
    /// Blocked on a channel rendezvous.
    Blocked,
    /// Terminated; resources freed.
    Dead,
}

/// Global register holding a context's *in* channel id (`r17`).
pub const REG_IN_CHAN: u8 = 17;
/// Global register holding a context's *out* channel id (`r18`).
pub const REG_OUT_CHAN: u8 = 18;

/// A context record: the state of one process evaluating an acyclic
/// data-flow graph (§4.2).
#[derive(Debug, Clone)]
pub struct Context {
    /// Saved registers (PC, QP, POM and the channel registers live in the
    /// globals).
    pub saved: SavedRegisters,
    /// Life-cycle state.
    pub state: CtxState,
    /// The PE this context is bound to (its queue page lives there).
    pub pe: usize,
    /// Base address of its operand queue page (PE-local).
    pub queue_page: UWord,
    /// Earliest time the context may (re)start.
    pub ready_at: u64,
    /// Consecutive fault-injected send drops suffered by the context's
    /// current transfer (see [`crate::fault`]); reset to zero when the
    /// send finally completes. Always zero in fault-free runs.
    pub send_retries: u32,
}

impl Context {
    /// Create a context record starting at `pc` on `pe` with queue page
    /// `queue_page`, channel registers `in_chan`/`out_chan`, page offset
    /// mask `pom`.
    #[must_use]
    pub fn new(
        pc: UWord,
        pe: usize,
        queue_page: UWord,
        pom: u8,
        in_chan: Word,
        out_chan: Word,
        ready_at: u64,
    ) -> Self {
        let mut regs = qm_isa::regs::RegisterFile::new();
        regs.set_pc(pc);
        regs.set_qp(queue_page);
        regs.set_pom(pom);
        regs.write_global(REG_IN_CHAN, in_chan);
        regs.write_global(REG_OUT_CHAN, out_chan);
        Context {
            saved: regs.save(),
            state: CtxState::Ready,
            pe,
            queue_page,
            ready_at,
            send_retries: 0,
        }
    }
}

/// Per-PE queue page allocator (kernel memory map, Fig. 6.3: local memory
/// past the kernel area is carved into fixed-size queue pages).
#[derive(Debug, Clone)]
pub struct PageAllocator {
    next: UWord,
    free: Vec<UWord>,
    page_bytes: UWord,
}

impl PageAllocator {
    /// Allocator handing out `page_words`-word pages from the PE-local
    /// region.
    ///
    /// # Panics
    ///
    /// Panics unless `page_words` is a power of two ≤ 256.
    #[must_use]
    pub fn new(page_words: u32) -> Self {
        assert!(page_words.is_power_of_two() && page_words <= 256);
        PageAllocator {
            next: qm_isa::mem::LOCAL_BASE + 0x1000,
            free: Vec::new(),
            page_bytes: page_words * 4,
        }
    }

    /// POM value selecting this allocator's page size.
    #[must_use]
    pub fn pom(&self) -> u8 {
        let words = self.page_bytes / 4;
        let m = words.trailing_zeros();
        #[allow(clippy::cast_possible_truncation)]
        {
            ((0xFFu32 << m) & 0xFF) as u8
        }
    }

    /// Allocate a page (page-size aligned).
    pub fn alloc(&mut self) -> UWord {
        if let Some(p) = self.free.pop() {
            return p;
        }
        let p = self.next;
        self.next += self.page_bytes;
        p
    }

    /// Return a page to the free list.
    pub fn free(&mut self, page: UWord) {
        self.free.push(page);
    }

    /// Allocator state for snapshots: the bump cursor and the free list
    /// in its exact (LIFO) order, so a restored allocator hands out the
    /// same pages in the same order.
    #[must_use]
    pub(crate) fn export_state(&self) -> (UWord, Vec<UWord>) {
        (self.next, self.free.clone())
    }

    /// Restore state captured by [`PageAllocator::export_state`] onto an
    /// allocator of the same page size.
    pub(crate) fn restore_state(&mut self, next: UWord, free: Vec<UWord>) {
        self.next = next;
        self.free = free;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_carries_channel_registers() {
        let c = Context::new(0x40, 2, 0x8000_1000, 0, 7, 9, 0);
        let mut regs = qm_isa::regs::RegisterFile::new();
        regs.restore(&c.saved);
        assert_eq!(regs.pc(), 0x40);
        assert_eq!(regs.qp(), 0x8000_1000);
        assert_eq!(regs.read_global(REG_IN_CHAN), 7);
        assert_eq!(regs.read_global(REG_OUT_CHAN), 9);
        assert_eq!(c.state, CtxState::Ready);
    }

    #[test]
    fn entry_names_cover_all_services() {
        assert_eq!(entry::name(entry::RFORK), "rfork");
        assert_eq!(entry::name(entry::WAIT), "wait");
        assert_eq!(entry::name(entry::RFORK_LOCAL), "rfork-local");
        assert_eq!(entry::name(99), "unknown");
    }

    #[test]
    fn page_allocator_recycles() {
        let mut a = PageAllocator::new(256);
        let p1 = a.alloc();
        let p2 = a.alloc();
        assert_eq!(p2 - p1, 1024);
        assert_eq!(p1 % 1024, 0, "pages are page-aligned");
        a.free(p1);
        assert_eq!(a.alloc(), p1);
    }

    #[test]
    fn pom_matches_page_size() {
        assert_eq!(PageAllocator::new(256).pom(), 0x00);
        assert_eq!(PageAllocator::new(32).pom(), 0xE0);
        assert_eq!(PageAllocator::new(1).pom(), 0xFF);
    }
}
