//! Fluent construction of a simulation: [`Simulation::builder()`].
//!
//! Building a runnable system used to take a scatter of calls —
//! `System::new`, `set_trace_sink`, `load_object`, `push_input`,
//! `spawn_main` — in an order the caller had to get right. The builder
//! consolidates them behind one fluent chain and is the only
//! construction path that also installs a fault plan before anything
//! runs:
//!
//! ```
//! use qm_sim::{Simulation, SystemConfig};
//!
//! let src = "
//! main:   recv #0,#0 :r0
//!         mul+1 r0,#3 :r0
//!         send+1 #0,r0
//!         trap #2,#0
//! ";
//! let mut sys = Simulation::builder()
//!     .config(SystemConfig::with_pes(2))
//!     .assembly(src)
//!     .input(14)
//!     .build()
//!     .unwrap();
//! assert_eq!(sys.run().unwrap().output, vec![42]);
//! ```
//!
//! The pre-existing piecewise methods remain as thin delegates (and for
//! post-build mutation such as workload memory initialisation).

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock, PoisonError};

use qm_isa::asm::{assemble, Object};
use qm_isa::UWord;
use qm_verify::{verify_object_at, Report, VerifyLevel, VerifyOptions};

use crate::config::SystemConfig;
use crate::fault::FaultPlan;
use crate::snapshot::Snapshot;
use crate::system::{SimError, System};
use crate::trace::TraceSink;
use crate::xlate::Backend;
use crate::Word;

/// Alias for [`System`] so construction reads as `Simulation::builder()`;
/// the two names are interchangeable.
pub type Simulation = System;

/// Verification is a pure function of (object, entry, page size), and
/// harnesses that sweep one program across many machine shapes re-verify
/// it per point. A small process-wide memo makes the repeats free.
/// `Object` is `Eq` but not `Hash`, so this is a bounded linear scan —
/// entries are whole programs, so more than a handful is rare.
const VERIFY_MEMO_CAP: usize = 128;

fn verify_memoized(obj: &Object, entry: UWord, page_words: u32) -> Report {
    type Memo = Vec<(Object, UWord, u32, Report)>;
    static MEMO: OnceLock<Mutex<Memo>> = OnceLock::new();
    let memo = MEMO.get_or_init(Mutex::default);
    let guard = memo.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some((.., report)) =
        guard.iter().find(|(o, e, p, _)| *e == entry && *p == page_words && o == obj)
    {
        return report.clone();
    }
    drop(guard);
    let report = verify_object_at(obj, entry, &VerifyOptions { page_words });
    let mut guard = memo.lock().unwrap_or_else(PoisonError::into_inner);
    if guard.len() >= VERIFY_MEMO_CAP {
        drop(guard.remove(0));
    }
    guard.push((obj.clone(), entry, page_words, report.clone()));
    report
}

/// Fluent builder for a [`System`]; obtained from [`System::builder`].
///
/// Defaults: a 1-PE [`SystemConfig`], no trace sink, no program, no
/// inputs, no faults. When a program is given (via
/// [`object`](Self::object) or [`assembly`](Self::assembly)) the root
/// context is spawned at the `main` label — or the object's base when no
/// such label exists — unless [`no_spawn`](Self::no_spawn) or an
/// explicit [`entry`](Self::entry) overrides that.
#[must_use = "call .build() to obtain the System"]
pub struct SimBuilder {
    cfg: SystemConfig,
    sink: Option<Box<dyn TraceSink>>,
    object: Option<Object>,
    assembly: Option<String>,
    inputs: Vec<Word>,
    fault_plan: Option<FaultPlan>,
    entry: Option<String>,
    spawn: bool,
    verify: VerifyLevel,
    snap_every: Option<u64>,
    snap_dir: Option<String>,
    resume_from: Option<PathBuf>,
    shards: Option<usize>,
    backend: Backend,
}

impl System {
    /// Start building a simulation (see [`crate::builder`]).
    pub fn builder() -> SimBuilder {
        SimBuilder {
            cfg: SystemConfig::default(),
            sink: None,
            object: None,
            assembly: None,
            inputs: Vec::new(),
            fault_plan: None,
            entry: None,
            spawn: true,
            verify: VerifyLevel::default(),
            snap_every: None,
            snap_dir: None,
            resume_from: None,
            shards: None,
            backend: Backend::default(),
        }
    }
}

impl SimBuilder {
    /// Use `cfg` as the system configuration.
    pub fn config(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Shorthand for `.config(SystemConfig::with_pes(pes))`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ pes ≤ 1024` (from
    /// [`SystemConfig::with_pes`]).
    pub fn pes(self, pes: usize) -> Self {
        self.config(SystemConfig::with_pes(pes))
    }

    /// Install `sink` as the trace sink (see [`crate::trace`]).
    pub fn trace(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Load the pre-assembled `obj`. Mutually exclusive with
    /// [`assembly`](Self::assembly).
    pub fn object(mut self, obj: &Object) -> Self {
        self.object = Some(obj.clone());
        self
    }

    /// Assemble and load `src`. Mutually exclusive with
    /// [`object`](Self::object).
    pub fn assembly(mut self, src: &str) -> Self {
        self.assembly = Some(src.to_string());
        self
    }

    /// Pre-load host input words (read by `recv` on channel 0), appended
    /// to any given earlier.
    pub fn inputs(mut self, values: &[Word]) -> Self {
        self.inputs.extend_from_slice(values);
        self
    }

    /// Pre-load one host input word.
    pub fn input(mut self, value: Word) -> Self {
        self.inputs.push(value);
        self
    }

    /// Install a fault-injection plan (see [`crate::fault`]). An empty
    /// plan is equivalent to not calling this at all.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Spawn the root context at `label` instead of `main`. Unlike the
    /// `main` default, a missing explicit label is a build error.
    pub fn entry(mut self, label: &str) -> Self {
        self.entry = Some(label.to_string());
        self
    }

    /// Load the program but spawn nothing (the caller will
    /// [`System::spawn_main`] later, e.g. after initialising memory).
    pub fn no_spawn(mut self) -> Self {
        self.spawn = false;
        self
    }

    /// How strictly to statically verify the program before anything
    /// runs (default [`VerifyLevel::Warn`]). The `qm-verify` passes run
    /// over the object code at the resolved entry point, before the
    /// root context is spawned, with the page size taken from the
    /// system configuration:
    ///
    /// * [`VerifyLevel::Off`] — skip verification entirely.
    /// * [`VerifyLevel::Warn`] — print any findings to stderr and build
    ///   anyway.
    /// * [`VerifyLevel::Strict`] — fail the build with
    ///   [`SimError::Verify`] when the verifier finds anything at all,
    ///   warnings included.
    ///
    /// A [`resume_from`](Self::resume_from) build skips verification:
    /// the snapshot's program was verified when it was first built and
    /// is already mid-run.
    pub fn verify(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// Write an automatic snapshot every `n` cycles while running (see
    /// [`System::set_snapshot_cadence`]). Files named
    /// `qm-snap-<cycle>.snap` land in the directory given by
    /// [`snapshot_dir`](Self::snapshot_dir) (default: the current
    /// directory).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn snapshot_every(mut self, n: u64) -> Self {
        assert!(n > 0, "snapshot cadence must be positive");
        self.snap_every = Some(n);
        self
    }

    /// Directory automatic snapshots are written into (used with
    /// [`snapshot_every`](Self::snapshot_every)).
    pub fn snapshot_dir(mut self, dir: impl Into<String>) -> Self {
        self.snap_dir = Some(dir.into());
        self
    }

    /// Shard the simulation across `n` host threads (see
    /// [`System::set_shards`]). Sharding is an execution strategy, not
    /// machine state: every shard count — including the default 1, the
    /// serial scheduler — produces bit-identical results, so this
    /// composes with every other option, including
    /// [`resume_from`](Self::resume_from) (a snapshot captured serially
    /// may be resumed sharded and vice versa; the snapshot bytes carry
    /// no shard count). The contract and its test pins are documented
    /// in `docs/DETERMINISM.md`.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Execution backend for the PE hot loop (default
    /// [`Backend::Interp`]). [`Backend::Translated`] pre-decodes the
    /// verified object into direct-threaded slots and batches
    /// sequential steps — bit-identical results, several times faster
    /// (see [`crate::xlate`] and `docs/DETERMINISM.md`).
    ///
    /// The translated backend is *verified-fast*: a fresh build demands
    /// [`verify`](Self::verify) `==` [`VerifyLevel::Strict`], so only
    /// programs holding a clean Strict report (the fast-path
    /// certificate, `qm_verify::Report::fast_path_certificate`) reach
    /// it; [`build`](Self::build) fails with [`SimError::Verify`]
    /// otherwise. Like [`shards`](Self::shards) this is an execution
    /// strategy, not machine state: it composes with
    /// [`resume_from`](Self::resume_from) in either direction — a
    /// snapshot captured interpreted resumes translated and vice versa,
    /// and the snapshot bytes carry no backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Resume from a snapshot file instead of building a fresh system.
    /// The restored run continues bit-identically to the captured one.
    /// Mutually exclusive with [`object`](Self::object),
    /// [`assembly`](Self::assembly), [`inputs`](Self::inputs),
    /// [`fault_plan`](Self::fault_plan) and [`entry`](Self::entry) —
    /// the snapshot already carries the program, pending inputs and the
    /// fault engine's exact mid-run state, so overriding any of them
    /// would break the replay guarantee. A trace sink and a snapshot
    /// cadence may still be installed (host-side observers, not machine
    /// state).
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Assemble (if needed), construct the system, install the sink and
    /// fault plan, load the program, queue the inputs and spawn the root
    /// context.
    ///
    /// # Errors
    ///
    /// [`SimError::Asm`] when the source does not assemble, when both a
    /// source and an object were given, or when an explicit
    /// [`entry`](Self::entry) label is absent from the program.
    /// [`SimError::Verify`] when [`verify`](Self::verify) is
    /// [`VerifyLevel::Strict`] and the static verifier found anything.
    /// [`SimError::Snapshot`] when [`resume_from`](Self::resume_from)
    /// was combined with program/input/fault options, or the snapshot
    /// cannot be read.
    /// [`SimError::Backend`] when [`backend`](Self::backend) is
    /// [`Backend::Translated`] on a fresh build without
    /// [`VerifyLevel::Strict`].
    pub fn build(self) -> Result<System, SimError> {
        if let Some(path) = &self.resume_from {
            if self.object.is_some()
                || self.assembly.is_some()
                || !self.inputs.is_empty()
                || self.fault_plan.is_some()
                || self.entry.is_some()
                || !self.spawn
            {
                return Err(SimError::Snapshot(
                    "resume_from() carries the complete machine state; it cannot be \
                     combined with object/assembly/inputs/fault_plan/entry/no_spawn"
                        .to_string(),
                ));
            }
            let snap = Snapshot::read_from(path).map_err(|e| SimError::Snapshot(e.to_string()))?;
            let mut sys = System::restore(&snap).map_err(|e| SimError::Snapshot(e.to_string()))?;
            if let Some(sink) = self.sink {
                sys.set_trace_sink(sink);
            }
            if let Some(every) = self.snap_every {
                sys.set_snapshot_cadence(every, self.snap_dir.unwrap_or_else(|| ".".to_string()));
            }
            if let Some(n) = self.shards {
                sys.set_shards(n);
            }
            // An execution strategy, not machine state: a snapshot
            // resumes under either backend (the program was verified
            // when first built).
            sys.set_backend(self.backend);
            return Ok(sys);
        }
        if self.backend == Backend::Translated && self.verify != VerifyLevel::Strict {
            return Err(SimError::Backend(
                "Backend::Translated is verified-fast: it requires .verify(VerifyLevel::Strict) \
                 so translation starts from a clean fast-path certificate"
                    .to_string(),
            ));
        }
        let obj = match (self.object, self.assembly) {
            (Some(_), Some(_)) => {
                return Err(SimError::Asm(
                    "both .object() and .assembly() given; pick one".to_string(),
                ))
            }
            (Some(obj), None) => Some(obj),
            (None, Some(src)) => Some(assemble(&src).map_err(|e| SimError::Asm(e.to_string()))?),
            (None, None) => None,
        };
        let page_words = self.cfg.queue_page_words;
        let mut sys = System::new(self.cfg);
        if let Some(sink) = self.sink {
            sys.set_trace_sink(sink);
        }
        if let Some(plan) = &self.fault_plan {
            sys.set_fault_plan(plan);
        }
        for v in self.inputs {
            sys.push_input(v);
        }
        if let Some(obj) = obj {
            sys.load_object(&obj);
            let entry = match &self.entry {
                Some(label) => obj
                    .symbol(label)
                    .ok_or_else(|| SimError::Asm(format!("entry label {label:?} not found")))?,
                None => obj.symbol("main").unwrap_or_else(|| obj.base()),
            };
            if self.verify != VerifyLevel::Off {
                let report = verify_memoized(&obj, entry, page_words);
                if !report.is_clean() {
                    if self.verify == VerifyLevel::Strict {
                        return Err(SimError::Verify { report });
                    }
                    eprint!("{}", report.render());
                }
            }
            sys.set_symbols(obj);
            if self.spawn {
                sys.spawn_main(entry);
            }
        } else if self.entry.is_some() {
            return Err(SimError::Asm("entry label given but no program loaded".to_string()));
        }
        if let Some(every) = self.snap_every {
            sys.set_snapshot_cadence(every, self.snap_dir.unwrap_or_else(|| ".".to_string()));
        }
        if let Some(n) = self.shards {
            sys.set_shards(n);
        }
        sys.set_backend(self.backend);
        Ok(sys)
    }
}

impl std::fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("cfg", &self.cfg)
            .field("trace", &self.sink.is_some())
            .field("object", &self.object.is_some())
            .field("assembly", &self.assembly.is_some())
            .field("inputs", &self.inputs)
            .field("fault_plan", &self.fault_plan)
            .field("entry", &self.entry)
            .field("spawn", &self.spawn)
            .field("verify", &self.verify)
            .field("snap_every", &self.snap_every)
            .field("snap_dir", &self.snap_dir)
            .field("resume_from", &self.resume_from)
            .field("shards", &self.shards)
            .field("backend", &self.backend)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ECHO: &str = "
main:   recv #0,#0 :r0
        mul+1 r0,#3 :r0
        send+1 #0,r0
        trap #2,#0
";

    #[test]
    fn builder_matches_piecewise_construction() {
        let mut built = Simulation::builder()
            .config(SystemConfig::with_pes(2))
            .assembly(ECHO)
            .input(14)
            .build()
            .unwrap();
        let mut manual = System::with_assembly(SystemConfig::with_pes(2), ECHO).unwrap();
        manual.push_input(14);
        let a = built.run().unwrap();
        let b = manual.run().unwrap();
        assert_eq!(a, b, "builder and piecewise construction are equivalent");
        assert_eq!(a.output, vec![42]);
    }

    #[test]
    fn builder_accepts_preassembled_objects() {
        let obj = qm_isa::asm::assemble(ECHO).unwrap();
        let mut sys = Simulation::builder().pes(2).object(&obj).inputs(&[14]).build().unwrap();
        assert_eq!(sys.symbol("main"), obj.symbol("main"), "symbols are retained");
        assert_eq!(sys.run().unwrap().output, vec![42]);
    }

    #[test]
    fn builder_rejects_conflicting_programs() {
        let obj = qm_isa::asm::assemble(ECHO).unwrap();
        let err = Simulation::builder().object(&obj).assembly(ECHO).build().unwrap_err();
        assert!(matches!(err, SimError::Asm(_)), "got {err:?}");
    }

    #[test]
    fn builder_rejects_missing_entry_label() {
        let err = Simulation::builder().assembly(ECHO).entry("nowhere").build().unwrap_err();
        assert!(matches!(err, SimError::Asm(ref m) if m.contains("nowhere")), "got {err:?}");
        let err = Simulation::builder().entry("main").build().unwrap_err();
        assert!(matches!(err, SimError::Asm(_)), "entry without a program: {err:?}");
    }

    #[test]
    fn explicit_entry_spawns_elsewhere() {
        let src = "
main:   send+1 #0,#1
        trap #2,#0
alt:    send+1 #0,#2
        trap #2,#0
";
        let mut sys = Simulation::builder().assembly(src).entry("alt").build().unwrap();
        assert_eq!(sys.run().unwrap().output, vec![2]);
    }

    #[test]
    fn no_spawn_defers_the_root_context() {
        let mut sys = Simulation::builder().assembly(ECHO).no_spawn().input(14).build().unwrap();
        let main = sys.symbol("main").unwrap();
        sys.spawn_main(main);
        assert_eq!(sys.run().unwrap().output, vec![42]);
    }

    #[test]
    fn trace_sink_installs_through_the_builder() {
        let rec = crate::trace::Recorder::new(1024);
        let mut sys =
            Simulation::builder().assembly(ECHO).input(1).trace(rec.sink()).build().unwrap();
        sys.run().unwrap();
        assert!(!rec.records().is_empty(), "events flowed to the builder-installed sink");
    }

    #[test]
    fn resume_from_rejects_program_and_fault_options() {
        let err = Simulation::builder()
            .resume_from("/nonexistent.snap")
            .assembly(ECHO)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, SimError::Snapshot(ref m) if m.contains("cannot be combined")),
            "got {err:?}"
        );
        let err = Simulation::builder()
            .resume_from("/nonexistent.snap")
            .fault_plan(crate::fault::FaultPlan::seeded(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::Snapshot(_)), "got {err:?}");
    }

    #[test]
    fn resume_from_reports_unreadable_files() {
        let err = Simulation::builder().resume_from("/nonexistent/qm.snap").build().unwrap_err();
        assert!(matches!(err, SimError::Snapshot(_)), "got {err:?}");
    }

    #[test]
    fn resume_from_round_trips_through_a_file() {
        let mut sys = Simulation::builder().pes(2).assembly(ECHO).input(14).build().unwrap();
        let status = sys.run_until(4).unwrap();
        assert!(matches!(status, crate::system::RunStatus::Paused { .. }));
        let dir = std::env::temp_dir().join(format!("qm-builder-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid.snap");
        crate::snapshot::Snapshot::capture(&sys).write_to(&path).unwrap();
        let mut resumed = Simulation::builder().resume_from(&path).build().unwrap();
        let direct = sys.run().unwrap();
        assert_eq!(resumed.run().unwrap(), direct, "resumed run matches the uninterrupted one");
        assert_eq!(direct.output, vec![42]);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Reads two queue slots nothing ever produced: the verifier proves
    // the underflow statically (QV0001/QV0002 territory).
    const UNDERFLOW: &str = "
main:   plus+2 r0,r1 :r0
        send+1 #0,r0
        trap #2,#0
";

    #[test]
    fn strict_verification_rejects_bad_programs() {
        let err = Simulation::builder()
            .assembly(UNDERFLOW)
            .verify(VerifyLevel::Strict)
            .build()
            .unwrap_err();
        let SimError::Verify { report } = &err else {
            panic!("expected SimError::Verify, got {err:?}");
        };
        assert!(report.has_errors(), "{}", report.render());
        let text = err.to_string();
        assert!(text.contains("static verification rejected"), "{text}");
        assert!(text.contains("QV00"), "diagnostic codes surface in Display: {text}");
    }

    #[test]
    fn warn_verification_reports_but_still_builds() {
        // Default level is Warn: findings go to stderr, the build works.
        let sys = Simulation::builder().assembly(UNDERFLOW).build();
        assert!(sys.is_ok(), "{:?}", sys.err());
    }

    #[test]
    fn verify_off_skips_the_verifier() {
        let sys = Simulation::builder().assembly(UNDERFLOW).verify(VerifyLevel::Off).build();
        assert!(sys.is_ok(), "{:?}", sys.err());
    }

    #[test]
    fn strict_verification_accepts_clean_programs() {
        let mut sys = Simulation::builder()
            .assembly(ECHO)
            .verify(VerifyLevel::Strict)
            .input(14)
            .build()
            .unwrap();
        assert_eq!(sys.run().unwrap().output, vec![42]);
    }

    #[test]
    fn translated_backend_demands_strict_verification() {
        for verify in [VerifyLevel::Off, VerifyLevel::Warn] {
            let err = Simulation::builder()
                .assembly(ECHO)
                .verify(verify)
                .backend(Backend::Translated)
                .build()
                .unwrap_err();
            assert!(matches!(err, SimError::Backend(ref m) if m.contains("Strict")), "got {err:?}");
        }
    }

    #[test]
    fn translated_backend_runs_bit_identically() {
        let mut interp = Simulation::builder().pes(2).assembly(ECHO).input(14).build().unwrap();
        let mut fast = Simulation::builder()
            .pes(2)
            .assembly(ECHO)
            .input(14)
            .verify(VerifyLevel::Strict)
            .backend(Backend::Translated)
            .build()
            .unwrap();
        assert_eq!(fast.backend(), Backend::Translated);
        let a = interp.run().unwrap();
        let b = fast.run().unwrap();
        assert_eq!(a, b, "backends agree on the complete outcome");
        assert_eq!(
            crate::snapshot::Snapshot::capture(&interp).state_digest(),
            crate::snapshot::Snapshot::capture(&fast).state_digest(),
            "and on the final machine state"
        );
    }

    #[test]
    fn snapshots_cross_backends_both_ways() {
        let dir = std::env::temp_dir().join(format!("qm-builder-xlate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (from, to) in
            [(Backend::Interp, Backend::Translated), (Backend::Translated, Backend::Interp)]
        {
            let mut sys = Simulation::builder()
                .pes(2)
                .assembly(ECHO)
                .input(14)
                .verify(VerifyLevel::Strict)
                .backend(from)
                .build()
                .unwrap();
            sys.run_until(4).unwrap();
            let path = dir.join("cross.snap");
            crate::snapshot::Snapshot::capture(&sys).write_to(&path).unwrap();
            let mut resumed = Simulation::builder().resume_from(&path).backend(to).build().unwrap();
            assert_eq!(resumed.backend(), to);
            let direct = sys.run().unwrap();
            assert_eq!(resumed.run().unwrap(), direct, "{from} snapshot resumes under {to}");
            assert_eq!(
                crate::snapshot::Snapshot::capture(&sys).state_digest(),
                crate::snapshot::Snapshot::capture(&resumed).state_digest()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_fault_plan_through_builder_installs_no_engine() {
        let sys = Simulation::builder()
            .assembly(ECHO)
            .fault_plan(crate::fault::FaultPlan::seeded(9))
            .build()
            .unwrap();
        assert!(!sys.faults_active(), "an empty plan must not arm the engine");
        let sys = Simulation::builder()
            .assembly(ECHO)
            .fault_plan(crate::fault::FaultPlan::seeded(9).with_send_loss(1))
            .build()
            .unwrap();
        assert!(sys.faults_active());
    }
}
