//! Channels and the message processor (thesis §5.5).
//!
//! Every PE owns a message processor whose *message cache* holds in-flight
//! channel transfers. A channel provides an unbuffered, simplex rendezvous
//! (§4.2): `send` blocks until a matching `recv` arrives and vice versa.
//! The state machines of Figs 5.16–5.17 (interprocessor and
//! intraprocessor transfers) reduce, at the context level, to the four
//! per-channel queues modelled here:
//!
//! * a sender arrives first → its value parks in the message cache and the
//!   sending context blocks (`waiting_senders`);
//! * a receiver arrives first → the receiving context blocks
//!   (`waiting_receivers`);
//! * the second party completes the transfer, waking the first: the woken
//!   sender finds an *acknowledgement* (`acked`), the woken receiver finds
//!   its *value ready* (`ready`), so the re-executed instruction completes
//!   without re-transferring.
//!
//! Channel 0 is the host channel: sends to it append to the program
//! output; receives read pre-loaded host input.
//!
//! # Hot-path layout
//!
//! Channels live in a dense slab indexed by channel id (ids are handed
//! out sequentially from 1), with a spill map for out-of-range ids a
//! program might conjure arithmetically — so the steady-state send/recv
//! path is an array index, not a hash probe. A woken context's pending
//! acknowledgement or delivered value is a *per-context* slot (a blocked
//! context re-executes exactly one channel instruction, so it can hold
//! at most one of either): flat `Vec`s indexed by context id replace the
//! old per-channel `HashSet`/`HashMap`, leaving zero hash-map traffic
//! per transfer. All queues are `VecDeque`s that retain their capacity,
//! which is what lets a warmed-up system run allocation-free per step
//! (pinned by `tests/steady_state_alloc.rs`).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::trace::{TraceBuffer, TraceEvent};
use crate::{CtxId, Word};

/// Channel ids below this live in the dense slab; anything else (ids a
/// program fabricated out of range, or negative) spills to a map.
const DENSE_LIMIT: Word = 1 << 16;

/// The host channel identifier.
pub const HOST_CHANNEL: Word = 0;

/// Which half of a rendezvous a context is performing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanDir {
    /// Offering a value.
    Send,
    /// Awaiting a value.
    Recv,
}

impl std::fmt::Display for ChanDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChanDir::Send => write!(f, "send"),
            ChanDir::Recv => write!(f, "recv"),
        }
    }
}

/// One context parked on a channel (the raw material of the deadlock
/// wait-for report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedInfo {
    /// The parked context.
    pub ctx: CtxId,
    /// PE it was running on when it parked.
    pub pe: usize,
    /// Channel it waits on.
    pub chan: Word,
    /// Whether it is a parked sender or receiver.
    pub dir: ChanDir,
    /// The value a parked sender is offering (`None` for receivers).
    pub value: Option<Word>,
}

/// Observable message-cache entry states (the context-level reduction of
/// the Fig. 5.16/5.17 transfer state machines; Tables 5.3–5.4 give the
/// per-operation transitions, exercised by this module's tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// No transfer in flight.
    Empty,
    /// Values parked in cache slots (or delivered-but-uncollected),
    /// nobody blocked.
    ValueHeld {
        /// Parked values.
        buffered: usize,
    },
    /// Cache full and senders blocked behind it.
    SenderBlocked {
        /// Values in the cache.
        buffered: usize,
        /// Parked senders.
        senders: usize,
    },
    /// Receivers blocked waiting for a sender.
    ReceiverBlocked {
        /// Parked receivers.
        receivers: usize,
    },
}

/// Result of offering a send to the channel table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendResult {
    /// Transfer complete (a receiver was waiting, or the host took it).
    /// If a blocked receiver was woken it is reported here.
    Done {
        /// Context to wake, with the PE that hosts it (if any).
        woke: Option<CtxId>,
    },
    /// No receiver yet: the sender must block.
    Block,
}

/// Result of offering a receive to the channel table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvResult {
    /// A value was obtained. If a blocked sender was woken it is reported.
    Done {
        /// The transferred word.
        value: Word,
        /// Context to wake (the parked sender, if any).
        woke: Option<CtxId>,
        /// PE of the peer context that sent the value (for bus costing);
        /// `None` when the value came from the host.
        from_pe: Option<usize>,
    },
    /// No sender yet: the receiver must block.
    Block,
}

#[derive(Debug, Default)]
struct Channel {
    /// Message-cache slots holding values already accepted from senders
    /// (Fig. 5.15); `(value, sending PE)`.
    buffer: VecDeque<(Word, usize)>,
    waiting_senders: VecDeque<(CtxId, usize, Word)>,
    waiting_receivers: VecDeque<(CtxId, usize)>,
    /// Delivered-but-uncollected values homed on this channel (the
    /// values themselves sit in the table's per-context `ready` slots;
    /// this count backs [`ChannelTable::state`]).
    ready_count: usize,
    /// Whether `send`/`recv` ever touched this channel. Dense slots exist
    /// for every id below the high-water mark, but exports and state
    /// queries treat untouched ones as nonexistent — exactly the set the
    /// previous map-of-channels representation contained.
    touched: bool,
}

/// One channel's complete state in deterministic order, produced by
/// [`ChannelTable::export_channels`] for snapshot serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ChannelSnap {
    pub(crate) chan: Word,
    /// Cached `(value, sending PE)` slots, FIFO order.
    pub(crate) buffer: Vec<(Word, usize)>,
    /// Parked senders `(ctx, pe, value)`, FIFO order.
    pub(crate) senders: Vec<(CtxId, usize, Word)>,
    /// Parked receivers `(ctx, pe)`, FIFO order.
    pub(crate) receivers: Vec<(CtxId, usize)>,
    /// Contexts holding an uncollected send acknowledgement, sorted.
    pub(crate) acked: Vec<CtxId>,
    /// Delivered-but-uncollected values `(ctx, value, from_pe)`, sorted.
    pub(crate) ready: Vec<(CtxId, Word, usize)>,
}

/// The system-wide channel table (union of all message caches).
#[derive(Debug, Default)]
pub struct ChannelTable {
    /// Dense channel slab: slot `i` is channel id `i` (0, the host
    /// channel, is never stored — its slot stays untouched).
    dense: Vec<Channel>,
    /// Channels whose id falls outside `1..DENSE_LIMIT`.
    spill: HashMap<Word, Channel>,
    /// Per-context pending send acknowledgement: the channel it was
    /// earned on, consumed by the re-executed send. A blocked context
    /// re-executes exactly one instruction, so one slot suffices.
    acks: Vec<Option<Word>>,
    /// Per-context delivered-but-uncollected value `(chan, value,
    /// sending PE)`, consumed by the re-executed receive.
    ready: Vec<Option<(Word, Word, usize)>>,
    /// Diagnostic-collection scan counter: bumped by the wait-for report
    /// paths ([`ChannelTable::blocked_infos`] /
    /// [`ChannelTable::blocked_contexts`]), which walk every channel.
    /// Stays zero across a clean run — the run loop only reaches them
    /// from error paths, a property pinned by a system test.
    pub(crate) diag_scans: AtomicU64,
    next_id: Word,
    /// Message-cache slots per channel: a send completes immediately
    /// while a slot is free. 0 = pure rendezvous (the §4.2 abstract
    /// semantics); >0 models the dedicated message-cache hardware of
    /// §5.5 that parks in-flight values so the sending PE can continue.
    pub capacity: usize,
    /// Values sent to the host channel.
    pub output: Vec<Word>,
    /// Values the host offers to receivers on channel 0.
    pub input: VecDeque<Word>,
    /// Total completed transfers.
    pub transfers: u64,
    /// Deferred cache-level trace events (rendezvous, cache hits and
    /// spills), drained by the run loop after each step. Inert unless the
    /// system installs a trace sink.
    pub trace: TraceBuffer,
}

impl ChannelTable {
    /// A fresh table with the given per-channel message-cache capacity;
    /// channel ids start at 1 (0 is the host).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ChannelTable { next_id: 1, capacity, ..Self::default() }
    }

    /// Allocate a fresh channel identifier.
    pub fn allocate(&mut self) -> Word {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    /// The (touched) slot for `chan`, creating it on first use. A free
    /// function over the storage fields so callers can hold the slot and
    /// the per-context arrays at once (disjoint borrows).
    fn slot<'a>(
        dense: &'a mut Vec<Channel>,
        spill: &'a mut HashMap<Word, Channel>,
        chan: Word,
    ) -> &'a mut Channel {
        if (1..DENSE_LIMIT).contains(&chan) {
            #[allow(clippy::cast_sign_loss)]
            let i = chan as usize;
            if i >= dense.len() {
                dense.resize_with(i + 1, Channel::default);
            }
            let c = &mut dense[i];
            c.touched = true;
            c
        } else {
            let c = spill.entry(chan).or_default();
            c.touched = true;
            c
        }
    }

    /// The slot for `chan` if `send`/`recv` ever touched it.
    fn get(&self, chan: Word) -> Option<&Channel> {
        if (1..DENSE_LIMIT).contains(&chan) {
            #[allow(clippy::cast_sign_loss)]
            self.dense.get(chan as usize).filter(|c| c.touched)
        } else {
            self.spill.get(&chan)
        }
    }

    /// Touched channels in ascending id order (export/report walks).
    fn iter_touched(&self) -> impl Iterator<Item = (Word, &Channel)> {
        #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
        let dense =
            self.dense.iter().enumerate().filter(|(_, c)| c.touched).map(|(i, c)| (i as Word, c));
        dense.chain(self.spill.iter().map(|(&chan, c)| (chan, c)))
    }

    /// The per-context slot for `ctx`, growing the array on demand
    /// (context ids are dense and never recycled).
    fn ctx_slot<T>(slots: &mut Vec<Option<T>>, ctx: CtxId) -> &mut Option<T> {
        if ctx >= slots.len() {
            slots.resize_with(ctx + 1, || None);
        }
        &mut slots[ctx]
    }

    /// Offer a send of `value` on `chan` by context `ctx` running on `pe`.
    pub fn send(&mut self, ctx: CtxId, pe: usize, chan: Word, value: Word) -> SendResult {
        if chan == HOST_CHANNEL {
            self.output.push(value);
            self.transfers += 1;
            return SendResult::Done { woke: None };
        }
        if self.acks.get(ctx).is_some_and(|a| *a == Some(chan)) {
            // Our earlier parked value was taken while we were blocked.
            self.acks[ctx] = None;
            return SendResult::Done { woke: None };
        }
        let capacity = self.capacity;
        let c = Self::slot(&mut self.dense, &mut self.spill, chan);
        if let Some((receiver, _rpe)) = c.waiting_receivers.pop_front() {
            c.ready_count += 1;
            let slot = Self::ctx_slot(&mut self.ready, receiver);
            debug_assert!(slot.is_none(), "a context holds at most one delivered value");
            *slot = Some((chan, value, pe));
            self.transfers += 1;
            self.trace.push(|| TraceEvent::Rendezvous { chan, sender: ctx, receiver, value });
            return SendResult::Done { woke: Some(receiver) };
        }
        if c.buffer.len() < capacity {
            c.buffer.push_back((value, pe));
            self.transfers += 1;
            let buffered = c.buffer.len();
            self.trace.push(|| TraceEvent::CacheHit { ctx, chan, value, buffered });
            return SendResult::Done { woke: None };
        }
        if !c.waiting_senders.iter().any(|&(s, _, _)| s == ctx) {
            c.waiting_senders.push_back((ctx, pe, value));
            let senders = c.waiting_senders.len();
            self.trace.push(|| TraceEvent::CacheSpill { ctx, chan, value, senders });
        }
        SendResult::Block
    }

    /// Offer a receive on `chan` by context `ctx` running on `pe`.
    pub fn recv(&mut self, ctx: CtxId, pe: usize, chan: Word) -> RecvResult {
        if chan == HOST_CHANNEL {
            return match self.input.pop_front() {
                Some(value) => {
                    self.transfers += 1;
                    RecvResult::Done { value, woke: None, from_pe: None }
                }
                None => RecvResult::Block,
            };
        }
        if let Some(slot) = self.ready.get_mut(ctx) {
            if let Some((rchan, value, from_pe)) = *slot {
                if rchan == chan {
                    *slot = None;
                    let c = Self::slot(&mut self.dense, &mut self.spill, chan);
                    c.ready_count -= 1;
                    return RecvResult::Done { value, woke: None, from_pe: Some(from_pe) };
                }
            }
        }
        let c = Self::slot(&mut self.dense, &mut self.spill, chan);
        if let Some((value, from_pe)) = c.buffer.pop_front() {
            // A freed slot admits the next parked sender, if any.
            let woke = if let Some((sender, spe, v)) = c.waiting_senders.pop_front() {
                c.buffer.push_back((v, spe));
                let slot = Self::ctx_slot(&mut self.acks, sender);
                debug_assert!(slot.is_none(), "a context holds at most one pending ack");
                *slot = Some(chan);
                self.transfers += 1;
                let buffered = c.buffer.len();
                self.trace.push(|| TraceEvent::CacheHit { ctx: sender, chan, value: v, buffered });
                Some(sender)
            } else {
                None
            };
            return RecvResult::Done { value, woke, from_pe: Some(from_pe) };
        }
        if let Some((sender, spe, value)) = c.waiting_senders.pop_front() {
            let slot = Self::ctx_slot(&mut self.acks, sender);
            debug_assert!(slot.is_none(), "a context holds at most one pending ack");
            *slot = Some(chan);
            self.transfers += 1;
            self.trace.push(|| TraceEvent::Rendezvous { chan, sender, receiver: ctx, value });
            return RecvResult::Done { value, woke: Some(sender), from_pe: Some(spe) };
        }
        if !c.waiting_receivers.iter().any(|&(r, _)| r == ctx) {
            c.waiting_receivers.push_back((ctx, pe));
        }
        RecvResult::Block
    }

    /// Observable state of one channel's message-cache entry — the
    /// states of the Fig. 5.16/5.17 transfer state machines at context
    /// granularity.
    #[must_use]
    pub fn state(&self, chan: Word) -> CacheState {
        let Some(c) = self.get(chan) else {
            return CacheState::Empty;
        };
        if !c.waiting_receivers.is_empty() {
            CacheState::ReceiverBlocked { receivers: c.waiting_receivers.len() }
        } else if !c.waiting_senders.is_empty() {
            CacheState::SenderBlocked { buffered: c.buffer.len(), senders: c.waiting_senders.len() }
        } else if !c.buffer.is_empty() || c.ready_count > 0 {
            CacheState::ValueHeld { buffered: c.buffer.len() + c.ready_count }
        } else {
            CacheState::Empty
        }
    }

    /// Every context parked on a channel, with the channel, direction and
    /// (for senders) the offered value — sorted by context id. Consumed
    /// by the deadlock and watchdog wait-for reports, which render these
    /// records into text at the edge (there is no stringly-typed
    /// variant). Walks every channel, so it is diagnostic-only: the run
    /// loop must never reach it outside an error path (the `diag_scans`
    /// counter pins that).
    #[must_use]
    #[cold]
    pub fn blocked_infos(&self) -> Vec<BlockedInfo> {
        self.diag_scans.fetch_add(1, Ordering::Relaxed);
        let mut out: Vec<BlockedInfo> =
            self.iter_touched()
                .flat_map(|(chan, c)| {
                    let senders = c.waiting_senders.iter().map(move |&(ctx, pe, value)| {
                        BlockedInfo { ctx, pe, chan, dir: ChanDir::Send, value: Some(value) }
                    });
                    let receivers = c.waiting_receivers.iter().map(move |&(ctx, pe)| BlockedInfo {
                        ctx,
                        pe,
                        chan,
                        dir: ChanDir::Recv,
                        value: None,
                    });
                    senders.chain(receivers)
                })
                .collect();
        out.sort_unstable_by_key(|b| (b.ctx, b.chan));
        out
    }

    /// Total full-table diagnostic scans performed so far (see
    /// `diag_scans`).
    #[must_use]
    pub fn diag_scan_count(&self) -> u64 {
        self.diag_scans.load(Ordering::Relaxed)
    }

    /// The next channel id [`ChannelTable::allocate`] would hand out
    /// (snapshot state).
    #[must_use]
    pub(crate) fn next_id(&self) -> Word {
        self.next_id
    }

    /// Export every channel's complete state for snapshots, in
    /// deterministic order: channels sorted by id, the ack set and
    /// ready map sorted by context. Queue orders (FIFO) are preserved
    /// verbatim. Empty-but-allocated entries are included so a restored
    /// table is structurally identical to the captured one.
    #[must_use]
    pub(crate) fn export_channels(&self) -> Vec<ChannelSnap> {
        // Regroup the per-context ack/ready slots by channel. Context ids
        // ascend during the walk, so the per-channel lists come out
        // sorted by context — the order the snapshot format requires.
        let mut acked_by: HashMap<Word, Vec<CtxId>> = HashMap::new();
        for (ctx, a) in self.acks.iter().enumerate() {
            if let Some(chan) = a {
                acked_by.entry(*chan).or_default().push(ctx);
            }
        }
        let mut ready_by: HashMap<Word, Vec<(CtxId, Word, usize)>> = HashMap::new();
        for (ctx, r) in self.ready.iter().enumerate() {
            if let Some((chan, v, pe)) = r {
                ready_by.entry(*chan).or_default().push((ctx, *v, *pe));
            }
        }
        let mut out: Vec<ChannelSnap> = self
            .iter_touched()
            .map(|(chan, c)| ChannelSnap {
                chan,
                buffer: c.buffer.iter().copied().collect(),
                senders: c.waiting_senders.iter().copied().collect(),
                receivers: c.waiting_receivers.iter().copied().collect(),
                acked: acked_by.remove(&chan).unwrap_or_default(),
                ready: ready_by.remove(&chan).unwrap_or_default(),
            })
            .collect();
        out.sort_unstable_by_key(|s| s.chan);
        debug_assert!(
            acked_by.is_empty() && ready_by.is_empty(),
            "every ack/ready slot belongs to a touched channel"
        );
        out
    }

    /// Replace the table's channels and allocation cursor with snapshot
    /// state (the inverse of [`ChannelTable::export_channels`]).
    pub(crate) fn restore_channels(&mut self, snaps: Vec<ChannelSnap>, next_id: Word) {
        self.next_id = next_id;
        self.dense.clear();
        self.spill.clear();
        self.acks.clear();
        self.ready.clear();
        for s in snaps {
            for &ctx in &s.acked {
                *Self::ctx_slot(&mut self.acks, ctx) = Some(s.chan);
            }
            for &(ctx, v, pe) in &s.ready {
                *Self::ctx_slot(&mut self.ready, ctx) = Some((s.chan, v, pe));
            }
            let c = Self::slot(&mut self.dense, &mut self.spill, s.chan);
            c.buffer = s.buffer.into_iter().collect();
            c.waiting_senders = s.senders.into_iter().collect();
            c.waiting_receivers = s.receivers.into_iter().collect();
            c.ready_count = s.ready.len();
        }
    }

    /// Contexts currently blocked on any channel (for deadlock reports).
    /// Diagnostic-only, like [`ChannelTable::blocked_infos`].
    #[must_use]
    #[cold]
    pub fn blocked_contexts(&self) -> Vec<CtxId> {
        self.diag_scans.fetch_add(1, Ordering::Relaxed);
        let mut out: Vec<CtxId> = self
            .iter_touched()
            .flat_map(|(_, c)| {
                c.waiting_senders
                    .iter()
                    .map(|&(s, _, _)| s)
                    .chain(c.waiting_receivers.iter().map(|&(r, _)| r))
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_first_rendezvous() {
        let mut t = ChannelTable::new(0);
        let ch = t.allocate();
        assert_eq!(t.send(1, 0, ch, 99), SendResult::Block, "sender parks and blocks");
        // Re-offer while still blocked: stays blocked, no duplicate queue entry.
        assert_eq!(t.send(1, 0, ch, 99), SendResult::Block);
        match t.recv(2, 1, ch) {
            RecvResult::Done { value, woke, from_pe } => {
                assert_eq!(value, 99);
                assert_eq!(woke, Some(1), "parked sender wakes");
                assert_eq!(from_pe, Some(0));
            }
            RecvResult::Block => panic!("receiver should complete"),
        }
        // The woken sender re-executes its send and finds the ack.
        assert_eq!(t.send(1, 0, ch, 99), SendResult::Done { woke: None });
    }

    #[test]
    fn receiver_first_rendezvous() {
        let mut t = ChannelTable::new(0);
        let ch = t.allocate();
        assert_eq!(t.recv(2, 1, ch), RecvResult::Block);
        assert_eq!(t.send(1, 0, ch, 7), SendResult::Done { woke: Some(2) });
        // Woken receiver re-executes recv and finds the value ready.
        match t.recv(2, 1, ch) {
            RecvResult::Done { value, woke: None, from_pe: Some(0) } => assert_eq!(value, 7),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sequenced_pair_on_one_channel() {
        // Fig. 4.3: two values in order over a single channel.
        let mut t = ChannelTable::new(0);
        let ch = t.allocate();
        assert_eq!(t.send(1, 0, ch, 10), SendResult::Block);
        assert!(matches!(t.recv(2, 0, ch), RecvResult::Done { value: 10, .. }));
        assert_eq!(t.send(1, 0, ch, 10), SendResult::Done { woke: None }, "ack consumed");
        assert_eq!(t.send(1, 0, ch, 20), SendResult::Block);
        assert!(matches!(t.recv(2, 0, ch), RecvResult::Done { value: 20, .. }));
        assert_eq!(t.transfers, 2);
    }

    #[test]
    fn host_channel_collects_output() {
        let mut t = ChannelTable::new(0);
        assert_eq!(t.send(1, 0, HOST_CHANNEL, 5), SendResult::Done { woke: None });
        assert_eq!(t.send(1, 0, HOST_CHANNEL, 6), SendResult::Done { woke: None });
        assert_eq!(t.output, vec![5, 6]);
    }

    #[test]
    fn host_channel_provides_input() {
        let mut t = ChannelTable::new(0);
        t.input.push_back(11);
        assert!(matches!(
            t.recv(1, 0, HOST_CHANNEL),
            RecvResult::Done { value: 11, woke: None, from_pe: None }
        ));
        assert_eq!(t.recv(1, 0, HOST_CHANNEL), RecvResult::Block);
    }

    #[test]
    fn distinct_channels_do_not_interfere() {
        let mut t = ChannelTable::new(0);
        let a = t.allocate();
        let b = t.allocate();
        assert_ne!(a, b);
        assert_eq!(t.send(1, 0, a, 1), SendResult::Block);
        assert_eq!(t.recv(2, 0, b), RecvResult::Block);
        assert_eq!(t.blocked_contexts(), vec![1, 2]);
    }

    /// Walk the Table 5.3/5.4-style transition table for one cache entry
    /// under rendezvous (capacity 0) semantics.
    #[test]
    fn cache_entry_state_transitions_rendezvous() {
        let mut t = ChannelTable::new(0);
        let ch = t.allocate();
        assert_eq!(t.state(ch), CacheState::Empty);
        // send on Empty → sender blocks.
        t.send(1, 0, ch, 5);
        assert_eq!(t.state(ch), CacheState::SenderBlocked { buffered: 0, senders: 1 });
        // recv on SenderBlocked → transfer completes, back to Empty
        // (the woken sender's ack is not a held value).
        t.recv(2, 0, ch);
        t.send(1, 0, ch, 5); // consume the ack
        assert_eq!(t.state(ch), CacheState::Empty);
        // recv on Empty → receiver blocks.
        t.recv(2, 0, ch);
        assert_eq!(t.state(ch), CacheState::ReceiverBlocked { receivers: 1 });
        // send on ReceiverBlocked → value delivered (held for pickup).
        t.send(1, 0, ch, 9);
        assert_eq!(t.state(ch), CacheState::ValueHeld { buffered: 1 });
        // The woken receiver collects → Empty.
        assert!(matches!(t.recv(2, 0, ch), RecvResult::Done { value: 9, .. }));
        assert_eq!(t.state(ch), CacheState::Empty);
    }

    /// With message-cache slots, sends park values without blocking
    /// until the cache fills (§5.5 hardware behaviour).
    #[test]
    fn cache_entry_state_transitions_buffered() {
        let mut t = ChannelTable::new(2);
        let ch = t.allocate();
        assert_eq!(t.send(1, 0, ch, 10), SendResult::Done { woke: None });
        assert_eq!(t.state(ch), CacheState::ValueHeld { buffered: 1 });
        assert_eq!(t.send(1, 0, ch, 11), SendResult::Done { woke: None });
        assert_eq!(t.state(ch), CacheState::ValueHeld { buffered: 2 });
        // Cache full: third send blocks.
        assert_eq!(t.send(1, 0, ch, 12), SendResult::Block);
        assert_eq!(t.state(ch), CacheState::SenderBlocked { buffered: 2, senders: 1 });
        // A receive frees a slot, pulls the parked value in, wakes the
        // sender, and delivers FIFO.
        match t.recv(2, 0, ch) {
            RecvResult::Done { value, woke, .. } => {
                assert_eq!(value, 10);
                assert_eq!(woke, Some(1));
            }
            RecvResult::Block => panic!("value was buffered"),
        }
        assert_eq!(t.state(ch), CacheState::ValueHeld { buffered: 2 });
        assert!(matches!(t.recv(2, 0, ch), RecvResult::Done { value: 11, .. }));
        assert!(matches!(t.recv(2, 0, ch), RecvResult::Done { value: 12, .. }));
        // Consume the ack before the entry is fully idle.
        assert_eq!(t.send(1, 0, ch, 12), SendResult::Done { woke: None });
        assert_eq!(t.state(ch), CacheState::Empty);
    }

    #[test]
    fn buffered_preserves_fifo_across_many_values() {
        let mut t = ChannelTable::new(4);
        let ch = t.allocate();
        for v in 0..4 {
            assert_eq!(t.send(1, 0, ch, v), SendResult::Done { woke: None });
        }
        for v in 0..4 {
            assert!(matches!(t.recv(2, 0, ch), RecvResult::Done { value, .. } if value == v));
        }
        assert_eq!(t.state(ch), CacheState::Empty);
    }

    #[test]
    fn blocked_infos_reports_direction_and_value() {
        let mut t = ChannelTable::new(0);
        let a = t.allocate();
        let b = t.allocate();
        assert_eq!(t.send(1, 0, a, 41), SendResult::Block);
        assert_eq!(t.recv(2, 1, b), RecvResult::Block);
        let infos = t.blocked_infos();
        assert_eq!(
            infos,
            vec![
                BlockedInfo { ctx: 1, pe: 0, chan: a, dir: ChanDir::Send, value: Some(41) },
                BlockedInfo { ctx: 2, pe: 1, chan: b, dir: ChanDir::Recv, value: None },
            ]
        );
    }

    #[test]
    fn cache_events_are_buffered_when_enabled() {
        let mut t = ChannelTable::new(1);
        t.trace.set_enabled(true);
        let ch = t.allocate();
        t.send(1, 0, ch, 10); // parks in the free slot → hit
        t.send(1, 0, ch, 11); // cache full → spill
        t.recv(2, 0, ch); // frees a slot, re-parks the spilled value → hit
        let events = t.trace.take();
        assert!(matches!(events[0], TraceEvent::CacheHit { ctx: 1, value: 10, buffered: 1, .. }));
        assert!(matches!(events[1], TraceEvent::CacheSpill { ctx: 1, value: 11, senders: 1, .. }));
        assert!(matches!(events[2], TraceEvent::CacheHit { ctx: 1, value: 11, .. }));
        // A sender-first rendezvous (the parked 11 collected directly).
        t.recv(2, 0, ch);
        assert!(t.trace.take().is_empty(), "buffer drain leaves nothing behind");
    }

    #[test]
    fn rendezvous_events_name_both_parties() {
        let mut t = ChannelTable::new(0);
        t.trace.set_enabled(true);
        let ch = t.allocate();
        t.recv(2, 1, ch);
        t.send(1, 0, ch, 9); // receiver-first rendezvous
        let events = t.trace.take();
        assert!(matches!(
            events[..],
            [TraceEvent::Rendezvous { sender: 1, receiver: 2, value: 9, .. }]
        ));
    }

    #[test]
    fn channel_export_restore_round_trips_every_queue() {
        let mut t = ChannelTable::new(1);
        let a = t.allocate();
        t.send(1, 0, a, 10); // fills the single cache slot
        t.send(2, 1, a, 20); // parks sender 2
        let b = t.allocate();
        t.recv(3, 0, b); // parks receiver 3
        let c = t.allocate();
        t.recv(4, 1, c);
        t.send(5, 0, c, 30); // wakes 4 with a ready value
        let d = t.allocate();
        t.send(6, 0, d, 40);
        t.recv(7, 1, d); // wakes 6 with an ack
        let snaps = t.export_channels();
        assert_eq!(snaps.len(), 4, "all four channels exported, sorted");
        assert!(snaps.windows(2).all(|w| w[0].chan < w[1].chan));

        let mut u = ChannelTable::new(1);
        u.restore_channels(snaps.clone(), t.next_id());
        assert_eq!(u.next_id(), t.next_id());
        assert_eq!(u.export_channels(), snaps, "re-export is byte-for-byte stable");
        // The restored table behaves like the original: the woken
        // receiver finds its value, the woken sender finds its ack, the
        // parked pair stays parked.
        assert!(matches!(u.recv(4, 1, c), RecvResult::Done { value: 30, .. }));
        assert_eq!(u.send(6, 0, d, 40), SendResult::Done { woke: None });
        assert_eq!(u.blocked_contexts(), vec![2, 3]);
        assert_eq!(u.allocate(), t.allocate(), "allocation cursor continues in step");
    }

    #[test]
    fn multiple_senders_queue_fifo() {
        let mut t = ChannelTable::new(0);
        let ch = t.allocate();
        assert_eq!(t.send(1, 0, ch, 100), SendResult::Block);
        assert_eq!(t.send(2, 0, ch, 200), SendResult::Block);
        assert!(matches!(t.recv(3, 0, ch), RecvResult::Done { value: 100, woke: Some(1), .. }));
        assert!(matches!(t.recv(3, 0, ch), RecvResult::Done { value: 200, woke: Some(2), .. }));
    }
}
