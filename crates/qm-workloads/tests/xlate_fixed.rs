//! Deterministic translated-backend equivalence checks: a fixed grid of
//! workloads × PE counts (including the 128-PE upper bound) × shards ×
//! channel capacities × a seeded fault plan, asserting bit-identity of
//! outcomes, state digests and snapshot bytes between the interpreter
//! and the translated backend, plus mid-run snapshot hand-offs in both
//! directions.
//!
//! (Dependency-free sibling of the `xlate_equivalence.rs` proptest, so
//! `scripts/offline-build.sh --run-tests` keeps equivalent coverage
//! without the `proptest` dev-dependency.)

use qm_sim::snapshot::Snapshot;
use qm_sim::system::RunStatus;
use qm_sim::{Backend, FaultPlan, System, SystemConfig};
use qm_workloads::{Workload, WorkloadRun};

fn template(pes: usize, capacity: usize, shards: usize, plan: Option<&FaultPlan>) -> WorkloadRun {
    let mut cfg = SystemConfig::with_pes(pes);
    if capacity != 0 {
        cfg.channel_capacity = capacity;
    }
    let mut run = WorkloadRun::new().config(cfg).shards(shards);
    if let Some(plan) = plan {
        run = run.fault_plan(plan.clone());
    }
    run
}

fn plan() -> FaultPlan {
    FaultPlan::seeded(0xD1CE).with_send_loss(150_000).with_bus_drops(60_000)
}

/// Run the same configuration on both backends and demand bit-identity
/// of the outcome (or the identical error), digest and snapshot bytes.
fn assert_backends_agree(
    label: &str,
    w: &Workload,
    pes: usize,
    capacity: usize,
    shards: usize,
    faulty: bool,
) {
    let plan = faulty.then(plan);
    let (mut interp, _) = template(pes, capacity, shards, plan.as_ref())
        .backend(Backend::Interp)
        .prepare(w)
        .expect("interp prepare");
    let (mut translated, _) = template(pes, capacity, shards, plan.as_ref())
        .backend(Backend::Translated)
        .prepare(w)
        .expect("translated prepare");
    let a = interp.run().map_err(|e| e.to_string());
    let b = translated.run().map_err(|e| e.to_string());
    assert_eq!(a, b, "{label}: outcomes diverged");
    let snap_a = Snapshot::capture(&interp);
    let snap_b = Snapshot::capture(&translated);
    assert_eq!(snap_a.state_digest(), snap_b.state_digest(), "{label}: digests diverged");
    assert_eq!(snap_a.encode(), snap_b.encode(), "{label}: snapshot bytes diverged");
}

#[test]
fn backends_agree_across_pe_counts() {
    let w = qm_workloads::matmul(4);
    for pes in [1, 2, 7, 128] {
        assert_backends_agree(&format!("matmul4/{pes}pe"), &w, pes, 0, 0, false);
    }
}

#[test]
fn backends_agree_across_workloads() {
    for (label, w) in
        [("reduction16", qm_workloads::reduction(16)), ("cholesky6", qm_workloads::cholesky(6))]
    {
        assert_backends_agree(label, &w, 4, 0, 0, false);
    }
}

#[test]
fn backends_agree_under_shards_and_tight_capacity() {
    let w = qm_workloads::matmul(4);
    assert_backends_agree("matmul4/2pe/2shards", &w, 2, 0, 2, false);
    assert_backends_agree("matmul4/4pe/cap2", &w, 4, 2, 0, false);
}

#[test]
fn backends_agree_under_fault_injection() {
    let w = qm_workloads::matmul(4);
    assert_backends_agree("matmul4/2pe/faulty", &w, 2, 0, 0, true);
    assert_backends_agree("matmul4/128pe/faulty", &w, 128, 0, 0, true);
}

#[test]
fn snapshots_hand_off_across_backends_both_ways() {
    let w = qm_workloads::matmul(4);
    for faulty in [false, true] {
        let plan = faulty.then(plan);
        let baseline = {
            let (mut sys, _) = template(2, 0, 0, plan.as_ref())
                .backend(Backend::Interp)
                .prepare(&w)
                .expect("baseline prepare");
            sys.run().expect("baseline run")
        };
        let half = baseline.elapsed_cycles / 2;
        for (from, to) in
            [(Backend::Interp, Backend::Translated), (Backend::Translated, Backend::Interp)]
        {
            let (mut sys, _) =
                template(2, 0, 0, plan.as_ref()).backend(from).prepare(&w).expect("prepare");
            let RunStatus::Paused { .. } = sys.run_until(half).expect("runs to the pause") else {
                panic!("matmul(4) finished before its own half-way point");
            };
            let bytes = Snapshot::capture(&sys).encode();
            let snap = Snapshot::decode(&bytes).expect("decodes");
            let mut restored = System::restore(&snap).expect("restores");
            restored.set_backend(to);
            let out = restored.run().expect("resumed run");
            assert_eq!(out, baseline, "{from}->{to} continuation diverged (faulty={faulty})");
        }
    }
}
