//! Property tests for the translated execution backend: over arbitrary
//! workloads × PE counts (1–128) × shard counts × channel capacities ×
//! seeded fault plans, a translated run must be *bit-identical* to the
//! interpreted run — same outcome (or the identical structured error),
//! same architectural state digest, same snapshot bytes — and snapshots
//! captured under one backend must restore and finish under the other,
//! both ways (the backend-invariance clause of `docs/DETERMINISM.md`).
//!
//! (This file needs the `proptest` dev-dependency; the dependency-free
//! sibling with fixed configurations lives in `xlate_fixed.rs` so
//! offline builds keep equivalent coverage.)

use proptest::prelude::*;
use qm_sim::snapshot::Snapshot;
use qm_sim::system::RunStatus;
use qm_sim::{Backend, FaultPlan, System, SystemConfig};
use qm_workloads::{Workload, WorkloadRun};

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        (2usize..=6).prop_map(qm_workloads::matmul),
        (4usize..=24).prop_map(qm_workloads::reduction),
        (2usize..=7).prop_map(qm_workloads::cholesky),
    ]
}

fn plan_strategy() -> impl Strategy<Value = Option<FaultPlan>> {
    prop_oneof![
        Just(None),
        (1u64..=u64::MAX, 0u32..300_000, 0u32..150_000, 0u32..300_000).prop_map(
            |(seed, send, bus, trap)| {
                Some(
                    FaultPlan::seeded(seed)
                        .with_send_loss(send)
                        .with_bus_drops(bus)
                        .with_trap_delays(trap, 8),
                )
            }
        ),
    ]
}

/// A run template for one sampled configuration; cloned per backend so
/// the two systems differ in nothing but the execution strategy.
fn template(pes: usize, capacity: usize, shards: usize, plan: Option<&FaultPlan>) -> WorkloadRun {
    let mut cfg = SystemConfig::with_pes(pes);
    cfg.channel_capacity = capacity;
    let mut run = WorkloadRun::new().config(cfg).shards(shards);
    if let Some(plan) = plan {
        run = run.fault_plan(plan.clone());
    }
    run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full runs: cycle counts, outcomes (or identical structured
    /// errors — fault-heavy configurations may deadlock, identically),
    /// state digests and snapshot bytes all match across backends.
    #[test]
    fn translated_runs_are_bit_identical_to_interpreted((w, pes, shards, capacity, plan) in
        (workload_strategy(), 1usize..=128,
         prop_oneof![Just(0usize), Just(2), Just(4)], 0usize..9, plan_strategy()))
    {
        let (mut interp, _) = template(pes, capacity, shards, plan.as_ref())
            .backend(Backend::Interp)
            .prepare(&w)
            .expect("interp prepare");
        let (mut translated, _) = template(pes, capacity, shards, plan.as_ref())
            .backend(Backend::Translated)
            .prepare(&w)
            .expect("translated prepare");

        let a = interp.run().map_err(|e| e.to_string());
        let b = translated.run().map_err(|e| e.to_string());
        prop_assert_eq!(&a, &b, "outcomes diverged across backends");

        let snap_a = Snapshot::capture(&interp);
        let snap_b = Snapshot::capture(&translated);
        prop_assert_eq!(snap_a.state_digest(), snap_b.state_digest(), "digests diverged");
        prop_assert_eq!(snap_a.encode(), snap_b.encode(), "snapshot bytes diverged");
    }

    /// Mid-run snapshots cross backends both ways: capture under one,
    /// restore and finish under the other; the result must match the
    /// uninterrupted interpreted baseline exactly.
    #[test]
    fn snapshots_cross_backends_both_ways((w, pes, capacity, plan, pause_at) in
        (workload_strategy(), 1usize..=32, 0usize..9, plan_strategy(), 1u64..50_000))
    {
        let baseline = {
            let (mut sys, _) = template(pes, capacity, 0, plan.as_ref())
                .backend(Backend::Interp)
                .prepare(&w)
                .expect("baseline prepare");
            sys.run().map_err(|e| e.to_string())
        };

        for (from, to) in [(Backend::Interp, Backend::Translated),
                           (Backend::Translated, Backend::Interp)] {
            let (mut sys, _) = template(pes, capacity, 0, plan.as_ref())
                .backend(from)
                .prepare(&w)
                .expect("prepare");
            match sys.run_until(pause_at).map_err(|e| e.to_string()) {
                Ok(RunStatus::Done(outcome)) => {
                    prop_assert_eq!(Ok(outcome), baseline.clone(), "finished before the pause");
                }
                Ok(RunStatus::Paused { .. }) => {
                    let bytes = Snapshot::capture(&sys).encode();
                    let snap = Snapshot::decode(&bytes).expect("decodes");
                    let mut restored = System::restore(&snap).expect("restores");
                    // The backend is a host knob, not machine state:
                    // the snapshot carries none, so the continuation
                    // picks its own.
                    restored.set_backend(to);
                    let out = restored.run().map_err(|e| e.to_string());
                    prop_assert_eq!(out, baseline.clone(), "{}->{} continuation diverged", from, to);
                }
                Err(e) => {
                    prop_assert_eq!(Err(e), baseline.clone(), "failed before the pause");
                }
            }
        }
    }
}
