//! Every bundled workload's compiled object code passes the static
//! verifier under `Strict` — no errors *and* no warnings. This is the
//! in-tree twin of the `verify_workloads` CI gate: the OCCAM compiler's
//! output stays inside the verifier's abstract queue-state and
//! channel-wiring models.

use qm_verify::{verify_object, VerifyOptions};
use qm_workloads::{cholesky, congruence, fft, matmul, reduction, Workload};

fn assert_strict_clean(w: &Workload) {
    let compiled = qm_occam::compile(&w.source, &qm_occam::Options::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
    let report = verify_object(&compiled.object, &VerifyOptions::default());
    assert!(
        report.is_clean(),
        "{} does not verify Strict-clean ({}):\n{}",
        w.name,
        report.summary(),
        report.render()
    );
}

#[test]
fn matmul_verifies_strict() {
    assert_strict_clean(&matmul(2));
    assert_strict_clean(&matmul(4));
}

#[test]
fn fft_verifies_strict() {
    assert_strict_clean(&fft(4));
    assert_strict_clean(&fft(8));
}

#[test]
fn cholesky_verifies_strict() {
    assert_strict_clean(&cholesky(3));
    assert_strict_clean(&cholesky(4));
}

#[test]
fn congruence_verifies_strict() {
    assert_strict_clean(&congruence(3));
    assert_strict_clean(&congruence(4));
}

#[test]
fn reduction_verifies_strict() {
    assert_strict_clean(&reduction(4));
    assert_strict_clean(&reduction(8));
}

#[test]
fn workloads_build_strict_through_the_simulator() {
    // The builder integration: `.verify(Strict)` accepts a compiled
    // workload object (verification runs at build, before any spawn).
    let w = matmul(2);
    let compiled = qm_occam::compile(&w.source, &qm_occam::Options::default()).unwrap();
    let sys = qm_sim::Simulation::builder()
        .pes(2)
        .object(&compiled.object)
        .verify(qm_sim::VerifyLevel::Strict)
        .no_spawn()
        .build();
    assert!(
        sys.is_ok(),
        "strict build rejected a clean workload: {}",
        sys.err().map(|e| e.to_string()).unwrap_or_default()
    );
}
