//! Driver-level tests: error paths, configuration sweeps, and cross-size
//! workload checks that don't belong to any single workload module.

use qm_sim::config::SystemConfig;
use qm_sim::fault::FaultPlan;
use qm_workloads::{
    cholesky, congruence, fft, matmul, reduction, Workload, WorkloadError, WorkloadRun,
};

#[test]
fn unknown_input_array_is_reported() {
    let mut w = matmul(3);
    w.inputs.push(("nonexistent".into(), vec![1, 2, 3]));
    match WorkloadRun::new().run(&w) {
        Err(WorkloadError::Array(msg)) => assert!(msg.contains("nonexistent")),
        other => panic!("expected array error, got {other:?}"),
    }
}

#[test]
fn wrong_input_length_is_reported() {
    let mut w = matmul(3);
    w.inputs[0].1.pop();
    match WorkloadRun::new().run(&w) {
        Err(WorkloadError::Array(msg)) => assert!(msg.contains("values"), "{msg}"),
        other => panic!("expected length error, got {other:?}"),
    }
}

#[test]
fn incorrect_expectations_are_mismatches_not_errors() {
    let mut w = matmul(3);
    w.expected_output = vec![123_456_789];
    let r = WorkloadRun::new().run(&w).expect("run completes");
    assert!(!r.correct);
    assert!(r.mismatches.iter().any(|m| m.contains("host output")), "{:?}", r.mismatches);
}

#[test]
fn compile_errors_surface() {
    let w = Workload {
        name: "broken".into(),
        source: "x := 1\n".into(), // undeclared
        inputs: vec![],
        expected: vec![],
        expected_output: vec![],
    };
    assert!(matches!(WorkloadRun::new().run(&w), Err(WorkloadError::Compile(_))));
}

#[test]
fn every_workload_handles_single_pe_rendezvous() {
    // The harshest configuration: one PE, pure rendezvous channels.
    let cfg = || SystemConfig { channel_capacity: 0, ..SystemConfig::with_pes(1) };
    for w in [matmul(3), fft(4), cholesky(3), congruence(3), reduction(8)] {
        let r =
            WorkloadRun::new().config(cfg()).run(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(r.correct, "{}: {:?}", w.name, r.mismatches);
    }
}

#[test]
fn odd_pe_counts_work() {
    for pes in [3, 5, 7] {
        let r = WorkloadRun::with_pes(pes).run(&matmul(4)).unwrap();
        assert!(r.correct, "{pes} PEs: {:?}", r.mismatches);
    }
}

#[test]
fn workload_sizes_scale() {
    for n in [2, 5, 9] {
        let r = WorkloadRun::with_pes(4).run(&matmul(n)).unwrap();
        assert!(r.correct, "matmul {n}: {:?}", r.mismatches);
    }
    for n in [4, 16, 32] {
        let r = WorkloadRun::with_pes(4).run(&fft(n)).unwrap();
        assert!(r.correct, "fft {n}: {:?}", r.mismatches);
    }
    for n in [2, 6, 9] {
        let r = WorkloadRun::with_pes(4).run(&cholesky(n)).unwrap();
        assert!(r.correct, "cholesky {n}: {:?}", r.mismatches);
    }
}

#[test]
fn compiled_code_requires_full_queue_pages() {
    // The compiler lays out queue positions assuming the architectural
    // maximum page of 256 words; a 64-word page silently wraps live
    // slots (exactly what the hardware would do) and corrupts results.
    // This pins the documented contract: compiled workloads run on
    // 256-word pages; smaller pages are for hand-written code whose
    // queue span fits (see qm-isa's von_neumann tests).
    let cfg = SystemConfig { queue_page_words: 64, ..SystemConfig::with_pes(2) };
    let r = WorkloadRun::new().config(cfg).run(&matmul(3)).unwrap();
    assert!(!r.correct, "a 64-word page should corrupt matmul's wide main context");
    let cfg = SystemConfig { queue_page_words: 256, ..SystemConfig::with_pes(2) };
    let r = WorkloadRun::new().config(cfg).run(&matmul(3)).unwrap();
    assert!(r.correct, "{:?}", r.mismatches);
}

#[test]
fn statistics_scale_with_problem_size() {
    let small = WorkloadRun::new().run(&matmul(3)).unwrap();
    let large = WorkloadRun::new().run(&matmul(6)).unwrap();
    assert!(large.outcome.instructions > small.outcome.instructions);
    assert!(large.outcome.elapsed_cycles > small.outcome.elapsed_cycles);
    assert!(large.outcome.channel_transfers >= small.outcome.channel_transfers);
}

#[test]
fn checkpointed_run_is_bit_identical_fault_free() {
    // run_with_checkpoint pauses mid-run, pushes the state through a
    // full snapshot round trip, and finishes on the restored system —
    // the outcome must be indistinguishable from a plain run.
    let w = matmul(3);
    let plain = WorkloadRun::with_pes(2).run(&w).unwrap();
    assert!(plain.correct, "{:?}", plain.mismatches);
    for pause_at in [1, plain.outcome.elapsed_cycles / 2, plain.outcome.elapsed_cycles * 2] {
        let ck = WorkloadRun::with_pes(2).run_with_checkpoint(&w, pause_at).unwrap();
        assert!(ck.correct, "pause {pause_at}: {:?}", ck.mismatches);
        assert_eq!(ck.outcome, plain.outcome, "pause {pause_at}");
    }
}

#[test]
fn checkpointed_run_is_bit_identical_under_faults() {
    // Same invariant with the fault engine armed: the restored run must
    // replay the identical fault stream (counters travel in the
    // snapshot), so even the degradation tallies match exactly.
    let w = matmul(3);
    let plan = || {
        FaultPlan::seeded(0xFA_CADE)
            .with_send_loss(150_000)
            .with_bus_drops(80_000)
            .with_trap_delays(200_000, 10)
    };
    let plain = WorkloadRun::with_pes(2).fault_plan(plan()).run(&w).unwrap();
    assert!(plain.correct, "{:?}", plain.mismatches);
    assert!(plain.outcome.degradation.total_injected() > 0, "faults actually fired");
    for pause_at in [3, plain.outcome.elapsed_cycles / 2] {
        let ck =
            WorkloadRun::with_pes(2).fault_plan(plan()).run_with_checkpoint(&w, pause_at).unwrap();
        assert_eq!(ck.outcome, plain.outcome, "pause {pause_at}");
    }
}
