//! Congruence transformation benchmark (thesis Table 6.5 / Fig. 6.12).
//!
//! Computes `B = Pᵀ·A·P` over `n × n` integer matrices as two row-parallel
//! matrix products (`T = A·P`, then `B = Pᵀ·T`), the classic similarity /
//! congruence transformation of numerical linear algebra.

use crate::data::Lcg;
use crate::Workload;

/// Build the congruence transformation workload.
///
/// # Panics
///
/// Panics unless `1 ≤ n ≤ 16`.
#[must_use]
pub fn congruence(n: usize) -> Workload {
    assert!((1..=16).contains(&n));
    let nn = n * n;
    let source = format!(
        "\
var a[{nn}], p[{nn}], t[{nn}], b[{nn}], part[{n}]:
var i, chk:
seq
  par i = [0 for {n}]
    var j, k, s:
    seq j = [0 for {n}]
      seq
        s := 0
        seq k = [0 for {n}]
          s := s + a[(i * {n}) + k] * p[(k * {n}) + j]
        t[(i * {n}) + j] := s
  par i = [0 for {n}]
    var j, k, s, rowsum:
    seq
      rowsum := 0
      seq j = [0 for {n}]
        seq
          s := 0
          seq k = [0 for {n}]
            s := s + p[(k * {n}) + i] * t[(k * {n}) + j]
          b[(i * {n}) + j] := s
          rowsum := rowsum + s
      part[i] := rowsum
  chk := 0
  seq i = [0 for {n}]
    chk := chk + part[i]
  screen ! chk
"
    );
    let mut rng = Lcg::new(0x434f_4e47); // "CONG"
    let a = rng.vec(nn, -5, 6);
    let p = rng.vec(nn, -3, 4);
    let b = reference(&a, &p, n);
    let chk = b.iter().fold(0i32, |acc, &v| acc.wrapping_add(v));
    Workload {
        name: format!("congruence {n}x{n}"),
        source,
        inputs: vec![("a".into(), a), ("p".into(), p)],
        expected: vec![("b".into(), b)],
        expected_output: vec![chk],
    }
}

/// Reference `Pᵀ·A·P` with wrapping semantics.
#[must_use]
pub fn reference(a: &[i32], p: &[i32], n: usize) -> Vec<i32> {
    let t = crate::matmul::reference(a, p, n);
    // b[i][j] = Σ_k p[k][i] * t[k][j]
    let mut b = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0i32;
            for k in 0..n {
                s = s.wrapping_add(p[k * n + i].wrapping_mul(t[k * n + j]));
            }
            b[i * n + j] = s;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_transform_preserves_a() {
        let n = 3;
        let mut ident = vec![0i32; 9];
        for i in 0..n {
            ident[i * n + i] = 1;
        }
        let a: Vec<i32> = (1..=9).collect();
        assert_eq!(reference(&a, &ident, n), a);
    }

    #[test]
    fn transform_of_symmetric_stays_symmetric() {
        let n = 4;
        let mut rng = Lcg::new(3);
        let m = rng.vec(n * n, -4, 5);
        // A = M + Mᵀ is symmetric.
        let mut a = vec![0i32; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = m[i * n + j] + m[j * n + i];
            }
        }
        let p = rng.vec(n * n, -3, 4);
        let b = reference(&a, &p, n);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(b[i * n + j], b[j * n + i]);
            }
        }
    }

    #[test]
    fn workload_runs_correctly() {
        let w = congruence(3);
        let r = crate::WorkloadRun::with_pes(2).run(&w).unwrap();
        assert!(r.correct, "{:?}", r.mismatches);
    }
}
